"""Source model for rmclint: lexing, suppressions, findings.

The linter is deliberately lexical, not semantic: it tokenizes each
translation unit just enough to separate code, comments and string
literals, then lets rules pattern-match on the code channel (so a banned
token inside a comment or a log message never fires) while the comment
channel carries the suppression protocol.

Suppression protocol (enforced, not advisory):

    // rmclint:allow(<rule-id>): <justification>

on the same line as the finding, or on a comment-only line immediately
above it. The justification is mandatory and must be a real sentence
(>= 10 characters); an allow() that matches no finding is itself an
error (`unused-suppression`), so stale annotations cannot accumulate.
Markdown files may use the HTML-comment form
`<!-- rmclint:allow(<rule-id>): ... -->`.

A file opts into the zero-allocation budget with a `// rmclint:hotpath`
tag anywhere in the file (directories listed in rules.HOT_DIRS are
tagged implicitly).
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

ALLOW_RE = re.compile(
    r"rmclint:allow\(([a-z0-9-]+)\)(?::\s*(.*?))?\s*(?:\*/|-->|$)"
)
HOTPATH_TAG_RE = re.compile(r"rmclint:hotpath\b")
MIN_JUSTIFICATION = 10


@dataclasses.dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    rule: str
    justification: str
    comment_line: int  # where the annotation itself lives
    target_line: int  # the code line it suppresses
    used: bool = False


class SourceFile:
    """One lexed source file: code/comment/string channels plus suppressions."""

    def __init__(self, path: Path, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.text = text
        self.raw_lines = text.splitlines()
        # code_lines: source with comments removed and string/char literal
        # *contents* blanked (quotes kept so grammar stays recognizable).
        # comment_lines: only the comment text, per line.
        # strings: (line_no, literal_contents) for every string literal.
        self.code_lines: list[str] = []
        self.comment_lines: list[str] = []
        self.strings: list[tuple[int, str]] = []
        self._lex()
        self.hotpath_tag = any(HOTPATH_TAG_RE.search(c) for c in self.comment_lines)
        self.suppressions: list[Suppression] = []
        self.bad_suppressions: list[Finding] = []
        self._collect_suppressions()

    # ------------------------------------------------------------------ lexing

    def _lex(self) -> None:
        code: list[list[str]] = [[] for _ in self.raw_lines]
        comment: list[list[str]] = [[] for _ in self.raw_lines]
        text = self.text
        i, n = 0, len(text)
        line = 0
        state = "code"  # code | line_comment | block_comment | string | char | raw_string
        raw_delim = ""
        str_start_line = 0
        str_buf: list[str] = []

        def emit(channel: list[list[str]], ch: str) -> None:
            if ch != "\n":
                channel[line].append(ch)

        while i < n:
            ch = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if state == "code":
                if ch == "/" and nxt == "/":
                    state = "line_comment"
                    i += 2
                    continue
                if ch == "/" and nxt == "*":
                    state = "block_comment"
                    i += 2
                    continue
                if ch == '"':
                    m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:]) if text[i - 1 : i] == "R" else None
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        str_start_line = line
                        str_buf = []
                        emit(code, '"')
                        i += m.end()
                        continue
                    state = "string"
                    str_start_line = line
                    str_buf = []
                    emit(code, '"')
                    i += 1
                    continue
                if ch == "'":
                    # Char literal or digit separator (1'000). Digit separators
                    # sit between alnums; treat those as plain code.
                    prev = text[i - 1] if i > 0 else ""
                    if prev.isalnum() and nxt.isalnum() and not (prev == "u" and False):
                        emit(code, ch)
                        i += 1
                        continue
                    state = "char"
                    emit(code, ch)
                    i += 1
                    continue
                emit(code, ch)
            elif state == "line_comment":
                if ch == "\n":
                    state = "code"
                else:
                    emit(comment, ch)
            elif state == "block_comment":
                if ch == "*" and nxt == "/":
                    state = "code"
                    i += 2
                    continue
                emit(comment, ch)
            elif state == "string":
                if ch == "\\":
                    str_buf.append(text[i : i + 2])
                    i += 2
                    continue
                if ch == '"':
                    self.strings.append((str_start_line + 1, "".join(str_buf)))
                    emit(code, '"')
                    state = "code"
                else:
                    str_buf.append(ch)
            elif state == "raw_string":
                if text.startswith(raw_delim, i):
                    self.strings.append((str_start_line + 1, "".join(str_buf)))
                    emit(code, '"')
                    state = "code"
                    i += len(raw_delim)
                    continue
                str_buf.append(ch)
            elif state == "char":
                if ch == "\\":
                    i += 2
                    continue
                if ch == "'":
                    emit(code, ch)
                    state = "code"
            if ch == "\n":
                line += 1
            i += 1

        self.code_lines = ["".join(parts) for parts in code]
        self.comment_lines = ["".join(parts) for parts in comment]

    # ---------------------------------------------------------- suppressions

    def _collect_suppressions(self) -> None:
        for idx, comment in enumerate(self.comment_lines):
            if "rmclint:allow" not in comment:
                continue
            m = ALLOW_RE.search(comment)
            lineno = idx + 1
            if not m:
                self.bad_suppressions.append(
                    Finding(
                        "bad-suppression",
                        self.rel,
                        lineno,
                        "malformed rmclint:allow annotation "
                        "(expected `rmclint:allow(<rule>): <justification>`)",
                    )
                )
                continue
            rule, justification = m.group(1), (m.group(2) or "").strip()
            if len(justification) < MIN_JUSTIFICATION:
                self.bad_suppressions.append(
                    Finding(
                        "bad-suppression",
                        self.rel,
                        lineno,
                        f"rmclint:allow({rule}) needs a justification "
                        f"(>= {MIN_JUSTIFICATION} chars explaining why the rule "
                        "does not apply here)",
                    )
                )
                continue
            # Same-line annotation suppresses its own line; a comment-only
            # line suppresses the next line that has code on it.
            target = lineno
            if not self.code_lines[idx].strip():
                target = lineno + 1
                while target <= len(self.code_lines) and not self.code_lines[target - 1].strip():
                    target += 1
            self.suppressions.append(Suppression(rule, justification, lineno, target))

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        for s in self.suppressions:
            if s.rule == rule and s.target_line == line:
                return s
        return None


class Project:
    """All lexed files plus shared lookups rules need."""

    def __init__(self, root: Path):
        self.root = root
        self.files: list[SourceFile] = []

    def add(self, path: Path) -> SourceFile:
        rel = str(path.relative_to(self.root)) if path.is_relative_to(self.root) else str(path)
        sf = SourceFile(path, rel, path.read_text(encoding="utf-8", errors="replace"))
        self.files.append(sf)
        return sf


def apply_suppressions(project: Project, findings: list[Finding]) -> list[Finding]:
    """Filter findings through allow() annotations; flag bad/unused ones."""
    by_rel: dict[str, SourceFile] = {f.rel: f for f in project.files}
    kept: list[Finding] = []
    for finding in findings:
        sf = by_rel.get(finding.path)
        if sf is None:
            kept.append(finding)
            continue
        supp = sf.suppression_for(finding.rule, finding.line)
        if supp is not None:
            supp.used = True
        else:
            kept.append(finding)
    for sf in project.files:
        kept.extend(sf.bad_suppressions)
        for s in sf.suppressions:
            if not s.used:
                kept.append(
                    Finding(
                        "unused-suppression",
                        sf.rel,
                        s.comment_line,
                        f"rmclint:allow({s.rule}) suppresses nothing "
                        "(stale annotation — delete it or move it next to the finding)",
                    )
                )
    return kept
