"""rmclint: repo-specific static analysis for the rdma-memcached reproduction.

Mechanically enforces the invariants every figure in this repo rests on:
determinism (bit-identical runs), the zero-allocation hot-path budget, the
metrics-registry name contract, and logging/IO hygiene. See
tools/rmclint/README.md and the "Mechanically enforced invariants" section
of DESIGN.md.
"""
