"""rmclint rule implementations (everything except the metrics cross-check).

Every rule is lexical and repo-specific. The point is not to be a general
C++ analyzer — clang-tidy covers that — but to mechanically pin the three
invariants this reproduction's results rest on:

  determinism-*   the simulator must be bit-identical across runs
  zeroalloc       the request hot path must not allocate (PR 2 budget)
  io-hygiene      library code logs through common/log.hpp, never stdout

Scopes: determinism + io-hygiene apply to src/ (library code);
zeroalloc applies to hot-path-tagged files (src/simnet/, src/ucr/ by
directory, plus any file carrying a `// rmclint:hotpath` tag).
"""

from __future__ import annotations

import re

from .engine import Finding, Project, SourceFile

HOT_DIRS = ("src/simnet/", "src/ucr/")

CXX_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".hh")


def _in_src(sf: SourceFile) -> bool:
    return sf.rel.startswith("src/")


def _is_hotpath(sf: SourceFile) -> bool:
    return sf.rel.startswith(HOT_DIRS) or sf.hotpath_tag


# --------------------------------------------------------------- determinism

RAND_RE = re.compile(r"\brandom_device\b|\bs?rand\s*\(|\bdrand48\b|\blrand48\b")
CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)
GETENV_RE = re.compile(r"\b(?:secure_)?getenv\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?:[;={(,)]|$)"
)
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<\s*[^,<>]*\*\s*[,>]"
)
PRIORITY_QUEUE_RE = re.compile(r"\bpriority_queue\s*<")


def _unordered_names(project: Project) -> set[str]:
    """Names of every variable/member declared as an unordered container
    anywhere in src/ (cross-file: members declared in headers are iterated
    from .cpp files)."""
    names: set[str] = set()
    for sf in project.files:
        if not _in_src(sf):
            continue
        # Join continuation lines so multi-line template declarations parse.
        joined = " ".join(line.strip() for line in sf.code_lines)
        for m in UNORDERED_DECL_RE.finditer(joined):
            names.add(m.group("name"))
    # Drop names too generic to mean anything ("map", single letters).
    return {n for n in names if len(n) > 1 and n not in {"it", "kv"}}


def check_determinism(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    unordered = _unordered_names(project)
    iter_res = [
        # range-for over an unordered container (by name)
        re.compile(r"for\s*\([^;()]*:\s*&?\s*(?:\w+(?:\.|->))*(" + "|".join(map(re.escape, sorted(unordered))) + r")\s*\)")
        if unordered
        else None,
        # explicit iterator walk / algorithm over .begin()
        re.compile(r"\b(" + "|".join(map(re.escape, sorted(unordered))) + r")\s*(?:\.|->)\s*c?begin\s*\(")
        if unordered
        else None,
        # iterating an unnamed/temporary unordered container
        re.compile(r"for\s*\([^;()]*:\s*[^)]*\bunordered_(?:map|set)\b"),
    ]
    for sf in project.files:
        if not _in_src(sf) or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        for idx, line in enumerate(sf.code_lines, start=1):
            if RAND_RE.search(line):
                findings.append(
                    Finding(
                        "determinism-rand",
                        sf.rel,
                        idx,
                        "nondeterministic randomness source in src/ — use the "
                        "seeded rmc::Rng (common/rng.hpp) so runs stay bit-identical",
                    )
                )
            if CLOCK_RE.search(line):
                findings.append(
                    Finding(
                        "determinism-clock",
                        sf.rel,
                        idx,
                        "wall-clock read in src/ — simulated components must take "
                        "time from sim::Scheduler::now() (virtual time) only",
                    )
                )
            if GETENV_RE.search(line):
                findings.append(
                    Finding(
                        "determinism-getenv",
                        sf.rel,
                        idx,
                        "environment-dependent control flow in src/ — thread "
                        "configuration through explicit config structs instead",
                    )
                )
            for rx in iter_res:
                if rx is not None and rx.search(line):
                    findings.append(
                        Finding(
                            "determinism-unordered-iter",
                            sf.rel,
                            idx,
                            "iteration over an unordered container in src/ — "
                            "iteration order is implementation-defined and "
                            "sim-visible; use std::map (monotonic keys preserve "
                            "insertion order), a sorted snapshot, or a vector",
                        )
                    )
                    break
            if POINTER_KEY_RE.search(line):
                findings.append(
                    Finding(
                        "determinism-pointer-key",
                        sf.rel,
                        idx,
                        "pointer-keyed ordered container in src/ — iteration "
                        "order follows allocation addresses, which differ run to "
                        "run; key by a stable id instead",
                    )
                )
            if PRIORITY_QUEUE_RE.search(line):
                findings.append(
                    Finding(
                        "determinism-priority-queue",
                        sf.rel,
                        idx,
                        "std::priority_queue in src/ — its pop order for "
                        "equal keys is unspecified, and same-timestamp event "
                        "order is a pinned guarantee (src/simnet/"
                        "scheduler.hpp); schedule through sim::Scheduler or "
                        "a flat heap keyed by an explicit total order",
                    )
                )
    return findings


# ----------------------------------------------------------------- zeroalloc

ALLOC_RES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"(?<!::)\bnew\s+(?!\()"), "new-expression"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("), "libc allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"), "make_unique/make_shared"),
    (
        re.compile(r"\.\s*(?:push_back|emplace_back|resize|reserve|insert|emplace)\s*\("),
        "container growth",
    ),
    (re.compile(r"\bstd::to_string\s*\("), "std::to_string (allocates)"),
]


def check_zeroalloc(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        if not _is_hotpath(sf) or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        for idx, line in enumerate(sf.code_lines, start=1):
            for rx, what in ALLOC_RES:
                if rx.search(line):
                    findings.append(
                        Finding(
                            "zeroalloc",
                            sf.rel,
                            idx,
                            f"{what} in a hot-path file — the steady-state "
                            "request path must not allocate (PR 2 budget); move "
                            "the allocation to setup, use the simnet pools, or "
                            "annotate why this site is off the hot path",
                        )
                    )
                    break
    return findings


# ---------------------------------------------------------------- io-hygiene

IO_RE = re.compile(
    r"\bstd::cout\b|\bstd::cerr\b|\bstd::clog\b"
    r"|(?<![\w:])(?:std::)?(?:printf|puts|putchar|v?fprintf)\s*\("
)


def check_io_hygiene(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        if not _in_src(sf) or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        for idx, line in enumerate(sf.code_lines, start=1):
            if IO_RE.search(line):
                findings.append(
                    Finding(
                        "io-hygiene",
                        sf.rel,
                        idx,
                        "direct stdout/stderr I/O in library code — route "
                        "diagnostics through common/log.hpp (RMC_LOG_*); only "
                        "designated dump sinks may print, with an annotation",
                    )
                )
    return findings


ALL_RULES = {
    "determinism-rand": "ban rand()/random_device/drand48 in src/",
    "determinism-clock": "ban wall-clock reads in src/",
    "determinism-getenv": "ban getenv-dependent control flow in src/",
    "determinism-unordered-iter": "ban iteration over unordered containers in src/",
    "determinism-pointer-key": "ban pointer-keyed ordered containers in src/",
    "determinism-priority-queue": "ban std::priority_queue in src/ (unspecified tie order)",
    "coro-lifetime": "ban reads of ref/pointer/view params after co_await; "
    "ban by-ref captures escaping into registered callbacks",
    "seqlock-discipline": "ban writes to seqlock-guarded fields outside the "
    "blessed protocol helpers",
    "zeroalloc": "ban allocation in hot-path-tagged files",
    "io-hygiene": "ban direct stdout/stderr I/O in src/",
    "metrics-registry": "cross-check metric names between code and docs/tests/tools",
    "bad-suppression": "allow() annotations must name a rule and justify",
    "unused-suppression": "allow() annotations must suppress a real finding",
}
