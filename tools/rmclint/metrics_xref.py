"""Metrics-registry cross-check.

Every `sim.*` / `ucr.*` / `mc.*` / `verbs.*` / `sock.*` metric — and every
`prof.*` profiler scope, registered the same way by name — lives in two
worlds: the string literal passed to `obs::registry()` (or
`obs::profiler().register_scope()`) in code, and the name quoted in
DESIGN.md, EXPERIMENTS.md, tests/ and tools/run_benches.py.
Nothing ties the two together, so a rename in either direction silently
produces dashboards, gates and docs that read zeros. This check fails on
dangling references in *both* directions:

  - a doc/test/tool reference with no matching literal in code, and
  - a code literal never referenced by any doc, test or the bench runner
    (undocumented metrics rot fastest — document them or delete them).

Grammar: a metric name is `<layer>.<seg>.<seg>[...]` with at least three
dot-separated lowercase segments and a known layer prefix — two-segment
tokens like `ucr.get` are method calls in prose, not metrics. A literal
ending in `.` (e.g. "sim.pool.") declares a *dynamic prefix*: names are
composed at runtime, and any reference under that prefix resolves to it.
References may also use the derived suffixes the registry synthesizes
(`.hwm` for gauges, `.count`/`.mean_ns` for timers) and the documentation
wildcard `<prefix>.*`.
"""

from __future__ import annotations

import re
from pathlib import Path

from .engine import Finding, Project

LAYERS = ("sim", "ucr", "mc", "verbs", "sock", "obs", "prof")

# At least three segments: layer '.' seg ('.' seg)+
METRIC_RE = re.compile(
    r"\b(?:" + "|".join(LAYERS) + r")\.[a-z0-9_]+(?:\.[a-z0-9_]+)+\b"
)
PREFIX_LITERAL_RE = re.compile(
    r"^(?:" + "|".join(LAYERS) + r")\.(?:[a-z0-9_]+\.)+$"
)
WILDCARD_RE = re.compile(
    r"\b((?:" + "|".join(LAYERS) + r")\.[a-z0-9_]+(?:\.[a-z0-9_]+)*)\.\*"
)
PY_STRING_RE = re.compile(r"""(?P<q>["'])(?P<s>[^"'\n]*)(?P=q)""")

# Suffixes Registry::for_each_stat / to_json synthesize from a base name.
DERIVED_SUFFIXES = (".hwm", ".count", ".mean_ns", ".p50_ns", ".p95_ns", ".p99_ns", ".p999_ns")

REF_DOCS = ("DESIGN.md", "EXPERIMENTS.md")
REF_TOOLS = ("tools/run_benches.py",)


def _strip_derived(name: str) -> str:
    for suffix in DERIVED_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class MetricsXref:
    def __init__(self, project: Project, root: Path):
        self.project = project
        self.root = root
        # name -> first (rel, line) that defines it
        self.defs: dict[str, tuple[str, int]] = {}
        self.prefixes: dict[str, tuple[str, int]] = {}
        # name -> list of (rel, line) that reference it
        self.refs: dict[str, list[tuple[str, int]]] = {}
        self._doc_lines: dict[str, list[str]] = {}

    # ------------------------------------------------------------ collection

    def collect_defs(self) -> None:
        """Metric literals in C++ code (src/ defines; bench/examples literals
        are treated as references — they *read* the registry)."""
        for sf in self.project.files:
            if not sf.rel.startswith("src/"):
                continue
            for line_no, lit in sf.strings:
                if PREFIX_LITERAL_RE.fullmatch(lit):
                    self.prefixes.setdefault(lit, (sf.rel, line_no))
                elif METRIC_RE.fullmatch(lit):
                    self.defs.setdefault(lit, (sf.rel, line_no))

    def _add_ref(self, name: str, rel: str, line: int) -> None:
        self.refs.setdefault(name, []).append((rel, line))

    def collect_refs(self) -> None:
        # C++ references outside src/: bench, examples, tests.
        for sf in self.project.files:
            if sf.rel.startswith("src/"):
                continue
            for line_no, lit in sf.strings:
                for m in METRIC_RE.finditer(lit):
                    self._add_ref(m.group(0), sf.rel, line_no)
        # Markdown docs and the bench runner: scan text tokens (prose and
        # quoted strings alike — anything matching the grammar is a name).
        for rel in REF_DOCS + REF_TOOLS:
            path = self.root / rel
            if not path.exists():
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            lines = text.splitlines()
            self._doc_lines[rel] = lines
            for idx, line in enumerate(lines, start=1):
                for m in METRIC_RE.finditer(line):
                    self._add_ref(m.group(0), rel, idx)
                for m in WILDCARD_RE.finditer(line):
                    self._add_ref(m.group(1) + ".", rel, idx)

    # ------------------------------------------------------------ resolution

    def _resolves(self, ref: str) -> bool:
        if ref.endswith("."):  # wildcard reference -> needs a dynamic prefix
            return any(p.startswith(ref) or ref.startswith(p) for p in self.prefixes)
        base = _strip_derived(ref)
        if ref in self.defs or base in self.defs:
            return True
        # A name nested under a dynamic prefix resolves to it; so does the
        # bare family name itself (a `mc.fleet.shard.*` wildcard in docs
        # also yields the 3-segment `mc.fleet.shard` as a plain reference).
        return any(ref.startswith(p) or base.startswith(p) or p == ref + "." or
                   p == base + "." for p in self.prefixes)

    def _referenced(self, name: str) -> bool:
        if name.endswith("."):
            # A dynamic prefix is documented by a wildcard (`sim.pool.*`) or
            # by any concrete reference underneath it.
            return any(
                ref == name or (not ref.endswith(".") and ref.startswith(name))
                for ref in self.refs
            )
        if name in self.refs:
            return True
        # A derived form (name.count) in the refs also documents the base.
        for ref in self.refs:
            if not ref.endswith(".") and _strip_derived(ref) == name:
                return True
            if ref.endswith(".") and name.startswith(ref):
                return True
        return False

    def _doc_suppressed(self, rel: str, line: int) -> bool:
        """Markdown/Python reference files carry suppressions as
        `<!-- rmclint:allow(metrics-registry): why -->` (or a `#` comment)
        on the offending line or the line above."""
        lines = self._doc_lines.get(rel)
        if lines is None:
            return False
        for idx in (line - 1, line - 2):
            if 0 <= idx < len(lines) and re.search(
                r"rmclint:allow\(metrics-registry\):\s*\S{4,}", lines[idx]
            ):
                return True
        return False

    def run(self) -> list[Finding]:
        self.collect_defs()
        self.collect_refs()
        findings: list[Finding] = []
        for ref, sites in sorted(self.refs.items()):
            if self._resolves(ref):
                continue
            rel, line = sites[0]
            if self._doc_suppressed(rel, line):
                continue
            findings.append(
                Finding(
                    "metrics-registry",
                    rel,
                    line,
                    f"reference to metric `{ref}` with no matching "
                    "obs::registry() literal in src/ — renamed or deleted? "
                    "(docs, tests and the bench gate would silently read zeros)",
                )
            )
        for name, (rel, line) in sorted(self.defs.items()):
            if self._referenced(name):
                continue
            findings.append(
                Finding(
                    "metrics-registry",
                    rel,
                    line,
                    f"metric `{name}` is defined in code but never referenced "
                    "in DESIGN.md, EXPERIMENTS.md, tests/ or "
                    "tools/run_benches.py — add it to the DESIGN.md metrics "
                    "inventory (or delete it)",
                )
            )
        for prefix, (rel, line) in sorted(self.prefixes.items()):
            if not self._referenced(prefix):
                findings.append(
                    Finding(
                        "metrics-registry",
                        rel,
                        line,
                        f"dynamic metric prefix `{prefix}*` is never referenced "
                        "in DESIGN.md, EXPERIMENTS.md, tests/ or "
                        "tools/run_benches.py — document the family",
                    )
                )
        return findings


def check_metrics(project: Project, root: Path) -> list[Finding]:
    return MetricsXref(project, root).run()
