"""rmclint CLI.

Run from the repo root (or pass --root):

    python3 tools/rmclint                 # lint src/, bench/, examples/
    python3 tools/rmclint --list-rules
    python3 tools/rmclint path/to/file.cpp ...

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

When a compile_commands.json is present (CMAKE_EXPORT_COMPILE_COMMANDS=ON
is set top-level, so any configured build tree has one) the linter also
verifies every .cpp it scanned is actually part of the build — a source
that drops out of the build silently escapes both the compiler's warnings
and this linter's guarantees.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Invoked as `python3 tools/rmclint` (directory on sys.path): make the
    # sibling modules importable as a flat namespace.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from rmclint.engine import Finding, Project, apply_suppressions
    from rmclint.flow import check_coro_lifetime, check_seqlock_discipline
    from rmclint.metrics_xref import check_metrics
    from rmclint.rules import (
        ALL_RULES,
        CXX_SUFFIXES,
        check_determinism,
        check_io_hygiene,
        check_zeroalloc,
    )
else:
    from .engine import Finding, Project, apply_suppressions
    from .flow import check_coro_lifetime, check_seqlock_discipline
    from .metrics_xref import check_metrics
    from .rules import (
        ALL_RULES,
        CXX_SUFFIXES,
        check_determinism,
        check_io_hygiene,
        check_zeroalloc,
    )

SCAN_DIRS = ("src", "bench", "examples", "tests")


def gather_files(root: Path, explicit: list[str]) -> list[Path]:
    if explicit:
        out = []
        for arg in explicit:
            p = Path(arg)
            if not p.is_absolute():
                p = root / p
            if p.is_dir():
                out.extend(sorted(q for q in p.rglob("*") if q.suffix in CXX_SUFFIXES))
            elif p.exists():
                out.append(p)
            else:
                print(f"rmclint: no such file: {arg}", file=sys.stderr)
                raise SystemExit(2)
        return out
    files: list[Path] = []
    fixtures = root / "tests" / "rmclint"
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(
                sorted(
                    p
                    for p in base.rglob("*")
                    # The lint fixtures are mini-repos full of deliberate
                    # violations; they get their own --root in ctest.
                    if p.suffix in CXX_SUFFIXES and not p.is_relative_to(fixtures)
                )
            )
    return files


def check_compile_db(root: Path, db_path: Path, scanned: list[Path]) -> list[Finding]:
    try:
        entries = json.loads(db_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"rmclint: cannot read {db_path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    built = {str(Path(e["directory"], e["file"]).resolve()) for e in entries}
    findings = []
    for p in scanned:
        if p.suffix != ".cpp" or not p.is_relative_to(root / "src"):
            continue
        if str(p.resolve()) not in built:
            findings.append(
                Finding(
                    "untracked-source",
                    str(p.relative_to(root)),
                    1,
                    "translation unit under src/ is not in compile_commands.json "
                    "— dead code escapes every compiler warning and lint gate; "
                    "add it to the build or delete it",
                )
            )
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="rmclint",
        description="repo-specific static analysis: determinism, zero-alloc, "
        "metrics registry, IO hygiene",
    )
    ap.add_argument("paths", nargs="*", help="files or directories (default: src bench examples tests)")
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument(
        "--compile-commands",
        default=None,
        help="path to compile_commands.json (default: <root>/build/compile_commands.json if present)",
    )
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the metrics cross-check (for linting files outside the repo)",
    )
    args = ap.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in ALL_RULES)
        for rule, desc in ALL_RULES.items():
            print(f"{rule:<{width}}  {desc}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"rmclint: --root {args.root}: not a directory", file=sys.stderr)
        return 2

    project = Project(root)
    scanned = gather_files(root, args.paths)
    for path in scanned:
        project.add(path)

    findings: list[Finding] = []
    findings += check_determinism(project)
    findings += check_zeroalloc(project)
    findings += check_io_hygiene(project)
    findings += check_coro_lifetime(project)
    findings += check_seqlock_discipline(project)
    findings = apply_suppressions(project, findings)
    if not args.no_metrics:
        findings += check_metrics(project, root)

    db = Path(args.compile_commands) if args.compile_commands else root / "build/compile_commands.json"
    if db.exists() and not args.paths:
        findings += check_compile_db(root, db, scanned)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(f"{r}: {c}" for r, c in sorted(by_rule.items()))
        print(f"\nrmclint: {len(findings)} finding(s) ({summary})", file=sys.stderr)
        return 1
    print(f"rmclint: clean ({len(scanned)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
