"""Flow-aware rmclint passes: coro-lifetime and seqlock-discipline.

Unlike the per-line rules in rules.py, these two passes need a (still
lexical) notion of *function extent*: which lines belong to which function
body, where the first `co_await` suspension point sits, and which
function a given write statement lives in. The segmentation below is a
brace-matching scan over the code channel — no parsing, no type info —
tuned to this repo's style. It is deliberately conservative: a head it
cannot classify is treated as a plain block, never as a function.

coro-lifetime
  A coroutine's reference/pointer/`span`/`string_view` parameters alias
  caller-owned storage. After the first `co_await` the caller may have
  moved on and destroyed that storage, so any later read is a potential
  use-after-free (invisible to clang-tidy, which does not model
  coroutine suspension). A directly-awaited lazy Task is safe by
  construction: in `co_await f(args...)` every argument lives to the
  end of the full-expression, which completes only after the await
  resumes ([expr.await]) — so the pass scopes the parameter check to
  coroutines whose frames OUTLIVE the call expression: anything handed
  to `spawn()` (by name, project-wide, or a lambda spawned in place).
  Known gap: a Task stored in a variable and awaited after its
  arguments died is invisible here (documented in DESIGN.md §17).
  The same pass flags by-reference lambda captures escaping into
  registration sinks (AM handlers, scheduler callbacks): those fire
  after the enclosing frame is gone.

seqlock-discipline
  The one-sided index (onesided/layout.hpp) and the RFP ring frames
  (rfp/layout.hpp) are seqlock protocols: field write ORDER is the
  correctness argument. Every mutation of a guarded field (seq,
  seq_back, checksum, version pairs, index-entry fields, the server's
  expected_seq epochs) must go through the blessed helpers that encode
  the protocol; a direct write anywhere else is a finding. The pass is
  scoped to files that can see the guarded types (src/rfp/,
  src/onesided/, or anything including their layout headers).
"""

from __future__ import annotations

import dataclasses
import re

from .engine import Finding, Project, SourceFile
from .rules import CXX_SUFFIXES

# ------------------------------------------------------------ segmentation


@dataclasses.dataclass
class Function:
    name: str        # unqualified name; "<lambda>" when anonymous
    params: str      # raw parameter-list text (may be empty)
    is_lambda: bool
    spawned_inline: bool  # lambda passed to spawn() in its own head
    body_start: int  # 1-based line of the opening brace
    body_end: int    # 1-based line of the closing brace


_REJECT_LEADING = {
    "if", "for", "while", "switch", "catch", "do", "else", "case", "default",
    "return", "co_return", "co_yield", "co_await", "goto", "using", "typedef",
    "struct", "class", "enum", "union", "namespace", "try", "public",
    "private", "protected", "new", "delete", "throw", "break", "continue",
    "static_assert", "requires", "extern", "asm",
}

_NAME_BEFORE_PAREN_RE = re.compile(r"([A-Za-z_~][A-Za-z0-9_]*)\s*\(")
_LAMBDA_PARAMS_RE = re.compile(r"\]\s*\(")
_LAMBDA_BARE_RE = re.compile(r"\[[^\[\]]*\]\s*(?:mutable\s*)?(?:->[^{]*)?$")
_LAMBDA_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*\[")
_TEMPLATE_PREFIX_RE = re.compile(r"^\s*template\s*<[^<>]*>\s*")


def _trim_unbalanced(text: str) -> str:
    """Drop everything up to the last unmatched '(' or ')' so a head nested
    inside an unfinished call (`spawn([](...) -> Task<>`) parses as the
    inner construct; a fully-balanced head is returned unchanged."""
    stack: list[int] = []
    cut = -1
    for i, c in enumerate(text):
        if c == "(":
            stack.append(i)
        elif c == ")":
            if stack:
                stack.pop()
            else:
                cut = i
    if stack:
        cut = max(cut, stack[0])
    return text[cut + 1 :] if cut >= 0 else text


def _valid_function_tail(tail: str) -> bool:
    """Text after a function head's parameter group must look like qualifiers
    or a ctor init list — `f(g(x), Bar {` style brace-inits leave a stray
    `,`/`=` here and must not classify as functions."""
    tail = tail.strip()
    if not tail or tail.startswith(":"):
        return True
    prev = None
    while prev != tail:  # erase nested paren groups to a fixpoint
        prev = tail
        tail = re.sub(r"\([^()]*\)", "", tail)
    return re.search(r"[=,]", tail) is None


def _extract_group(text: str, open_idx: int) -> str | None:
    """Contents of the paren group opening at text[open_idx] ('('), or None."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1 : i]
    return None


def _parse_head(head: str) -> tuple[str, str, bool] | None:
    """Classify the text before a '{'. Returns (name, params, is_lambda)."""
    head = _TEMPLATE_PREFIX_RE.sub("", head.strip())
    head = _trim_unbalanced(head).strip()
    if not head or head[-1] in "=,&|+-<([":
        return None
    first = re.match(r"[A-Za-z_~][A-Za-z0-9_]*", head)
    if first and first.group(0) in _REJECT_LEADING:
        return None

    m = _LAMBDA_PARAMS_RE.search(head)
    if m is not None:
        params = _extract_group(head, head.index("(", m.start()))
        if params is None:
            return None
        nm = _LAMBDA_NAME_RE.search(head)
        return (nm.group(1) if nm else "<lambda>", params, True)
    if _LAMBDA_BARE_RE.search(head) and "[" in head:
        nm = _LAMBDA_NAME_RE.search(head)
        return (nm.group(1) if nm else "<lambda>", "", True)

    nm = _NAME_BEFORE_PAREN_RE.search(head)
    if nm is None:
        return None
    open_idx = head.index("(", nm.start())
    params = _extract_group(head, open_idx)
    if params is None:
        return None
    if not _valid_function_tail(head[open_idx + len(params) + 2 :]):
        return None
    name = nm.group(1).rsplit("::", 1)[-1]
    return (name, params, False)


def segment_functions(sf: SourceFile) -> list[Function]:
    """Brace-matched function bodies (including lambdas) in one file."""
    funcs: list[Function] = []
    stack: list[Function | None] = []
    head: list[str] = []
    line = 1
    for ch in "\n".join(sf.code_lines):
        if ch == "\n":
            line += 1
            head.append(" ")
        elif ch == "{":
            head_text = "".join(head)
            parsed = _parse_head(head_text)
            if parsed is not None:
                name, params, is_lambda = parsed
                spawned_inline = is_lambda and bool(
                    re.search(r"\bspawn\s*\(", head_text)
                )
                stack.append(
                    Function(name, params, is_lambda, spawned_inline, line, line)
                )
            else:
                stack.append(None)
            head = []
        elif ch == "}":
            if stack:
                top = stack.pop()
                if top is not None:
                    top.body_end = line
                    funcs.append(top)
            head = []
        elif ch == ";":
            head = []
        else:
            head.append(ch)
    return funcs


# ------------------------------------------------------------ coro-lifetime

_CO_AWAIT_RE = re.compile(r"\bco_await\b")
_RISKY_PARAM_RE = re.compile(r"[&*]|\bspan\b|\bstring_view\b")
_PARAM_KEYWORDS = {
    "const", "volatile", "unsigned", "signed", "struct", "class", "typename",
    "auto", "long", "short", "int", "char", "bool", "float", "double",
}
# Registration sinks: the callback outlives the registering frame, so a
# by-reference capture of locals is a use-after-free when it fires.
_SINK_RE = re.compile(
    r"\b(?:register_handler|on_endpoint_down|set_listener|call_at|call_in"
    r"|resume_at|on_complete|on_header)\b"
)
_REF_CAPTURE_RE = re.compile(r"\[\s*&|\[[^\]\n]*[(,\s]&")


def _split_params(params: str) -> list[str]:
    out: list[str] = []
    depth = 0
    buf: list[str] = []
    for c in params:
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        if c == "," and depth == 0:
            out.append("".join(buf))
            buf = []
        else:
            buf.append(c)
    out.append("".join(buf))
    return [p.strip() for p in out if p.strip()]


def _param_name(decl: str) -> str | None:
    decl = decl.split("=", 1)[0]
    prev = None
    while prev != decl:  # strip nested template argument lists to a fixpoint
        prev = decl
        decl = re.sub(r"<[^<>]*>", "", decl)
    idents = [i for i in re.findall(r"[A-Za-z_]\w*", decl) if i not in _PARAM_KEYWORDS]
    if len(idents) < 2:
        return None  # unnamed parameter (single token is the type)
    return idents[-1]


_SPAWN_BY_NAME_RE = re.compile(r"\bspawn\s*\(\s*(?:\w+(?:\.|->|::))*(\w+)\s*\(")


def _spawned_names(project: Project) -> set[str]:
    """Names of every coroutine handed to spawn() anywhere in src/ — the
    frames that outlive their call expression."""
    names: set[str] = set()
    for sf in project.files:
        if not sf.rel.startswith("src/") or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        joined = " ".join(line.strip() for line in sf.code_lines)
        for m in _SPAWN_BY_NAME_RE.finditer(joined):
            names.add(m.group(1))
    return names


def check_coro_lifetime(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    spawned = _spawned_names(project)
    for sf in project.files:
        if not sf.rel.startswith("src/") or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        funcs = segment_functions(sf)
        for fn in funcs:
            if fn.name not in spawned and not fn.spawned_inline:
                continue
            inner = [
                g
                for g in funcs
                if g is not fn
                and g.body_start >= fn.body_start
                and g.body_end <= fn.body_end
            ]

            def owned(lineno: int) -> bool:
                return not any(
                    g.body_start <= lineno <= g.body_end for g in inner
                )

            body = [
                ln
                for ln in range(fn.body_start, fn.body_end + 1)
                if owned(ln)
            ]
            suspends = any(
                _CO_AWAIT_RE.search(sf.code_lines[ln - 1]) for ln in body
            )
            if not suspends:
                continue
            # A spawned coroutine runs detached: every statement — including
            # ones lexically before the first co_await, and loop-carried
            # re-reads on the await line itself — executes after the
            # spawning call returned. Record the first read of each aliasing
            # parameter, then emit ONE finding per function (anchored at the
            # earliest use) so a single justified allow() covers the frame's
            # whole lifetime argument.
            hits: list[tuple[int, str]] = []
            for decl in _split_params(fn.params):
                if not _RISKY_PARAM_RE.search(decl):
                    continue
                name = _param_name(decl)
                if name is None:
                    continue
                use_re = re.compile(rf"\b{re.escape(name)}\b")
                for ln in body:
                    segment = sf.code_lines[ln - 1]
                    if ln == fn.body_start:
                        # Skip the signature text on the opening-brace line.
                        segment = segment.split("{", 1)[-1]
                    if use_re.search(segment):
                        hits.append((ln, name))
                        break  # first use per (function, parameter)
            if hits:
                hits.sort()
                names = ", ".join(f"`{n}`" for _, n in hits)
                findings.append(
                    Finding(
                        "coro-lifetime",
                        sf.rel,
                        hits[0][0],
                        f"spawned coroutine `{fn.name}` reads aliasing "
                        f"parameter(s) {names} — the frame is detached, so "
                        "every read races the arguments' destruction; copy "
                        "them into the frame up front or justify what owner "
                        "provably outlives this task",
                    )
                )
        # Stack addresses escaping into registered callbacks.
        for idx, line in enumerate(sf.code_lines, start=1):
            if not _REF_CAPTURE_RE.search(line):
                continue
            context = " ".join(sf.code_lines[max(0, idx - 3) : idx])
            if _SINK_RE.search(context):
                findings.append(
                    Finding(
                        "coro-lifetime",
                        sf.rel,
                        idx,
                        "by-reference lambda capture escapes into a "
                        "registered callback — the handler fires after the "
                        "registering frame is gone, so captured locals "
                        "dangle; capture by value or [this]",
                    )
                )
    return findings


# ------------------------------------------------------- seqlock-discipline

# Functions allowed to mutate seqlock-guarded state: they ARE the protocol.
BLESSED_WRITERS = {
    "seal_frame",     # rfp/layout.hpp: header + checksum + tail stamp
    "seal",           # onesided BucketEntry::seal
    "seal_response",  # RingServer response framing (calls seal_frame)
    "release",        # Channel slot epoch close
    "release_slot",   # RingServer request epoch advance
    "reclaim_lost",   # Channel lost-slot epoch close
    "publish",        # Publisher record + entry write protocol
    "retract",        # Publisher odd-epoch tombstone
}

_GUARDED_FIELDS = (
    "seq", "seq_back", "version", "version_front", "version_back",
    "checksum", "check", "tag", "arena_offset", "record_len",
)
_FIELD_WRITE_RE = re.compile(
    r"(?:\.|->)\s*(?:" + "|".join(_GUARDED_FIELDS) + r")\b\s*"
    r"(?:\+\+|--|(?:[+\-|&^*/%]|<<|>>)=|=(?!=))"
)
_EXPECTED_SEQ_RE = re.compile(
    r"(?:\.|->)\s*expected_seq\s*"
    r"(?:\[[^\]]*\]\s*(?:\+\+|--|(?:[+\-|&^*/%]|<<|>>)=|=(?!=))"
    r"|\.\s*(?:assign|clear|resize|push_back|emplace_back)\s*\()"
)
_MEMCPY_GUARDED_RE = re.compile(
    r"\bmemcpy\s*\(\s*(?:\w+(?:\.|->))*(?:entry_at|record_at)\s*\("
)
_LAYOUT_INCLUDE_RE = re.compile(r'#\s*include\s*"(?:rfp|onesided)/layout\.hpp"')


def _sees_guarded_types(sf: SourceFile) -> bool:
    if sf.rel.startswith(("src/rfp/", "src/onesided/")):
        return True
    return bool(_LAYOUT_INCLUDE_RE.search(sf.text))


def check_seqlock_discipline(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for sf in project.files:
        if not sf.rel.startswith("src/") or not sf.rel.endswith(CXX_SUFFIXES):
            continue
        if not _sees_guarded_types(sf):
            continue
        funcs = segment_functions(sf)

        def blessed(lineno: int) -> bool:
            return any(
                f.body_start <= lineno <= f.body_end and f.name in BLESSED_WRITERS
                for f in funcs
            )

        for idx, line in enumerate(sf.code_lines, start=1):
            hit = (
                _FIELD_WRITE_RE.search(line)
                or _EXPECTED_SEQ_RE.search(line)
                or _MEMCPY_GUARDED_RE.search(line)
            )
            if hit is None or blessed(idx):
                continue
            findings.append(
                Finding(
                    "seqlock-discipline",
                    sf.rel,
                    idx,
                    "write to seqlock-guarded state outside the blessed "
                    "helpers (" + ", ".join(sorted(BLESSED_WRITERS)) + ") — "
                    "the field-write ORDER is the correctness argument for "
                    "the one-sided index and RFP frames; route the mutation "
                    "through the protocol helper or justify why no "
                    "concurrent reader can observe it",
                )
            )
    return findings
