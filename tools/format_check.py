#!/usr/bin/env python3
"""Changed-files clang-format gate.

Formats (or checks) only the C++ files that differ from a base ref, so a
big formatting debt elsewhere never blocks an unrelated PR:

    python3 tools/format_check.py                # check files changed vs origin/main
    python3 tools/format_check.py --base HEAD~1  # ... vs another ref
    python3 tools/format_check.py --fix          # rewrite instead of checking
    python3 tools/format_check.py --all          # whole tree (CI weekly / cleanup)

Exits 0 when everything is formatted, 1 when files need formatting, and 0
with a notice when clang-format is not installed (local machines without
LLVM should not fail the build; CI installs it and the gate is real there).
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

CXX_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".hh")
SCAN_DIRS = ("src", "bench", "examples", "tests")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"], capture_output=True, text=True, check=True
    )
    return Path(out.stdout.strip())


def changed_files(root: Path, base: str) -> list[Path]:
    merge_base = subprocess.run(
        ["git", "merge-base", base, "HEAD"], cwd=root, capture_output=True, text=True
    )
    ref = merge_base.stdout.strip() if merge_base.returncode == 0 else base
    diff = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=ACMR", ref, "--"],
        cwd=root,
        capture_output=True,
        text=True,
        check=True,
    )
    files = []
    for rel in diff.stdout.splitlines():
        p = root / rel
        if p.suffix in CXX_SUFFIXES and rel.startswith(SCAN_DIRS) and p.exists():
            files.append(p)
    return files


def all_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(sorted(p for p in base.rglob("*") if p.suffix in CXX_SUFFIXES))
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description="clang-format gate over changed files")
    ap.add_argument("--base", default="origin/main", help="diff base ref (default origin/main)")
    ap.add_argument("--fix", action="store_true", help="reformat in place instead of checking")
    ap.add_argument("--all", action="store_true", help="run over the whole tree, not the diff")
    args = ap.parse_args()

    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("format_check: clang-format not installed; skipping (CI enforces this)")
        return 0

    root = repo_root()
    files = all_files(root) if args.all else changed_files(root, args.base)
    if not files:
        print("format_check: no changed C++ files")
        return 0

    # --dry-run --Werror makes unformatted files an error without rewriting.
    cmd = [clang_format, "-i"] if args.fix else [clang_format, "--dry-run", "--Werror"]
    bad = 0
    for f in files:
        proc = subprocess.run(cmd + [str(f)], capture_output=True, text=True)
        if proc.returncode != 0:
            bad += 1
            sys.stderr.write(proc.stderr)
    mode = "reformatted" if args.fix else "checked"
    print(f"format_check: {mode} {len(files)} file(s), {bad} needing changes")
    return 1 if (bad and not args.fix) else 0


if __name__ == "__main__":
    raise SystemExit(main())
