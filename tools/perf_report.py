#!/usr/bin/env python3
"""Where did the time go? — ranked reports over profiler dumps and bench
snapshots.

Three modes, detected from the input files' `schema` fields:

  perf_report.py PROF.json            attribution report for one rmc-prof/1
                                      dump: ranked self-time table, engine
                                      vs payload split, attribution ratio
  perf_report.py OLD.json NEW.json    diff two rmc-prof/1 dumps: ranked
                                      per-scope wall-time deltas
  perf_report.py OLD.json NEW.json    diff two rmc-bench-snapshot/1 files
                                      (run_benches.py --out): ranked
                                      benchmark + headline regressions

A profiler dump comes from any fig bench's `--profile <file>` flag or from
`micro_sim_components --profile <file>`; snapshots come from
`tools/run_benches.py --out <file>`. Exit code is always 0 — this is a
report, not a gate (tools/run_benches.py --check is the gate).
"""

from __future__ import annotations

import json
import os
import sys


def die(msg: str) -> None:
    print(f"perf_report: {msg}", file=sys.stderr)
    raise SystemExit(2)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
        raise AssertionError  # unreachable


def fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"


# --------------------------------------------------------------- prof mode


def prof_report(prof: dict) -> None:
    window = prof.get("window", {})
    attributed = prof.get("attributed", {})
    window_wall = window.get("wall_ns", 0)
    attr_wall = attributed.get("wall_ns", 0)
    nodes = prof.get("nodes", [])

    print("=== profiler attribution report ===")
    print(f"window:     {fmt_ns(window_wall)} wall, {prof.get('samples', 0)} samples"
          f" ({prof.get('dropped', 0)} dropped)")
    print(f"attributed: {fmt_ns(attr_wall)} wall ({pct(attr_wall, window_wall).strip()}"
          " of the window)")
    eng = prof.get("engine", {}).get("wall_ns", 0)
    pay = prof.get("payload", {}).get("wall_ns", 0)
    print(f"split:      engine {fmt_ns(eng)} ({pct(eng, attr_wall).strip()}) / "
          f"payload {fmt_ns(pay)} ({pct(pay, attr_wall).strip()})")
    print()

    # Rank by self wall time, aggregated per scope name (a scope can appear
    # in several stacks).
    by_name: dict[str, dict] = {}
    for n in nodes:
        agg = by_name.setdefault(
            n["name"], {"kind": n["kind"], "count": 0, "wall": 0, "sim": 0})
        agg["count"] += n["count"]
        agg["wall"] += n["wall_self_ns"]
        agg["sim"] += n["sim_self_ns"]

    print(f"{'scope':<32} {'kind':<8} {'count':>12} {'wall self':>10} "
          f"{'% attr':>7} {'sim self':>10}")
    for name, agg in sorted(by_name.items(), key=lambda kv: -kv[1]["wall"]):
        print(f"{name:<32} {agg['kind']:<8} {agg['count']:>12} "
              f"{fmt_ns(agg['wall']):>10} {pct(agg['wall'], attr_wall):>7} "
              f"{fmt_ns(agg['sim']):>10}")
    print()

    # Deepest-stack view: the top collapsed stacks by self time.
    ranked = sorted(nodes, key=lambda n: -n["wall_self_ns"])[:10]
    print("top stacks (self wall time):")
    for n in ranked:
        print(f"  {fmt_ns(n['wall_self_ns']):>10}  {n['stack']}")


def prof_diff(old: dict, new: dict, old_path: str, new_path: str) -> None:
    def per_name(prof: dict) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for n in prof.get("nodes", []):
            agg = out.setdefault(n["name"], {"count": 0, "wall": 0})
            agg["count"] += n["count"]
            agg["wall"] += n["wall_self_ns"]
        return out

    a, b = per_name(old), per_name(new)
    wa = old.get("window", {}).get("wall_ns", 0)
    wb = new.get("window", {}).get("wall_ns", 0)
    print("=== profiler diff ===")
    print(f"old: {old_path} ({fmt_ns(wa)} window)")
    print(f"new: {new_path} ({fmt_ns(wb)} window)")
    print()
    rows = []
    for name in sorted(set(a) | set(b)):
        ow = a.get(name, {}).get("wall", 0)
        nw = b.get(name, {}).get("wall", 0)
        oc = a.get(name, {}).get("count", 0)
        nc = b.get(name, {}).get("count", 0)
        rows.append((nw - ow, name, ow, nw, oc, nc))
    rows.sort(key=lambda r: -abs(r[0]))
    print(f"{'scope':<32} {'old wall':>10} {'new wall':>10} {'delta':>10} "
          f"{'old n':>10} {'new n':>10}")
    for delta, name, ow, nw, oc, nc in rows:
        sign = "+" if delta >= 0 else "-"
        print(f"{name:<32} {fmt_ns(ow):>10} {fmt_ns(nw):>10} "
              f"{sign}{fmt_ns(abs(delta)):>9} {oc:>10} {nc:>10}")


# ----------------------------------------------------------- snapshot mode


def snapshot_diff(old: dict, new: dict, old_path: str, new_path: str) -> None:
    def flatten(snap: dict) -> dict[str, float]:
        """One metric namespace: headline keys plus every benchmark's
        real_time_ns, taken from the snapshot's `current` half."""
        cur = snap.get("current", snap)
        out: dict[str, float] = {}
        for k, v in cur.get("headline", {}).items():
            out[f"headline.{k}"] = float(v)
        for suite, benches in cur.get("benchmarks", {}).items():
            for bench, fields in benches.items():
                rt = fields.get("real_time_ns")
                if rt is not None:
                    out[f"{suite}/{bench}"] = float(rt)
        return out

    a, b = flatten(old), flatten(new)
    print("=== bench snapshot diff (current vs current) ===")
    print(f"old: {old_path}")
    print(f"new: {new_path}")
    print()
    rows = []
    for name in sorted(set(a) & set(b)):
        ov, nv = a[name], b[name]
        if ov == 0:
            continue
        rows.append(((nv - ov) / ov, name, ov, nv))
    rows.sort(key=lambda r: -abs(r[0]))
    print(f"{'metric':<56} {'old':>14} {'new':>14} {'change':>8}")
    for rel, name, ov, nv in rows:
        print(f"{name:<56} {ov:>14.2f} {nv:>14.2f} {100 * rel:>+7.1f}%")
    only_old = sorted(set(a) - set(b))
    only_new = sorted(set(b) - set(a))
    if only_old:
        print(f"\nonly in old: {', '.join(only_old)}")
    if only_new:
        print(f"only in new: {', '.join(only_new)}")


# ----------------------------------------------------------------- driver


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    first = load(argv[1])
    schema = first.get("schema", "")
    if len(argv) == 2:
        if schema != "rmc-prof/1":
            die(f"{argv[1]}: expected a rmc-prof/1 dump, got schema={schema!r}")
        prof_report(first)
        return 0
    second = load(argv[2])
    if schema != second.get("schema", ""):
        die(f"schema mismatch: {argv[1]} is {schema!r}, "
            f"{argv[2]} is {second.get('schema')!r}")
    if schema == "rmc-prof/1":
        prof_diff(first, second, argv[1], argv[2])
    elif schema == "rmc-bench-snapshot/1":
        snapshot_diff(first, second, argv[1], argv[2])
    else:
        die(f"unrecognized schema {schema!r}")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main(sys.argv))
    except BrokenPipeError:
        # Piped into `head` and the reader closed early — not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
