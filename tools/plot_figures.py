#!/usr/bin/env python3
"""Regenerate the paper's figures as PNG plots.

Runs the fig* bench binaries in --csv mode and renders one panel per
CSV block. Requires matplotlib; without it, the CSVs are still written
to the output directory so any plotting tool can consume them.

Also collects the --metrics-json registry dump from the fig3 run and
renders the server-side stage breakdown (parse/queue/execute/format) as
a bar panel, plus a per-layer counter table on stdout.

    python3 tools/plot_figures.py [--build build] [--out figures]
"""
import argparse
import json
import pathlib
import subprocess
import sys

FIGS = [
    ("fig3_latency_cluster_a", "latency (us)", "log"),
    ("fig4_latency_cluster_b", "latency (us)", "log"),
    ("fig5_mixed_workload", "latency (us)", "log"),
    ("fig6_multi_client_tps", "KTPS", "linear"),
]


def parse_blocks(text):
    """Yield (title, header, rows) for each '# title' CSV block."""
    blocks, title, header, rows = [], None, None, []
    for line in text.splitlines():
        if line.startswith("# "):
            if title and rows:
                blocks.append((title, header, rows))
            title, header, rows = line[2:].strip(), None, []
        elif title and "," in line:
            cells = line.split(",")
            if header is None:
                header = cells
            else:
                rows.append([float(c) for c in cells])
        elif not line.strip() and title and rows:
            blocks.append((title, header, rows))
            title, header, rows = None, None, []
    if title and rows:
        blocks.append((title, header, rows))
    return blocks


def render_metrics(metrics_path, out, plt):
    """Summarize a --metrics-json registry dump: counter table on stdout,
    stage-latency bar panel as PNG when matplotlib is available."""
    metrics = json.loads(metrics_path.read_text())
    counters = metrics.get("counters", {})
    layers = {}
    for name, value in sorted(counters.items()):
        layers.setdefault(name.split(".")[0], []).append((name, value))
    print(f"\nmetrics from {metrics_path}:")
    for layer, entries in sorted(layers.items()):
        print(f"  [{layer}]")
        for name, value in entries:
            print(f"    {name:<32} {value}")

    stages = {
        name.rsplit(".", 1)[-1]: stats
        for name, stats in metrics.get("timers", {}).items()
        if name.startswith("mc.server.stage.")
    }
    if plt is None or not stages:
        return
    order = [s for s in ("parse", "queue", "execute", "format") if s in stages]
    fig, ax = plt.subplots(figsize=(6, 4))
    means = [stages[s]["mean_ns"] / 1e3 for s in order]
    p99s = [stages[s]["p99_ns"] / 1e3 for s in order]
    xs = range(len(order))
    ax.bar([x - 0.2 for x in xs], means, width=0.4, label="mean")
    ax.bar([x + 0.2 for x in xs], p99s, width=0.4, label="p99")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(order)
    ax.set_ylabel("latency (us)")
    ax.set_title("server request stages (from metrics JSON)", fontsize=9)
    ax.legend(fontsize=7)
    ax.grid(True, alpha=0.3, axis="y")
    fig.tight_layout()
    fig.savefig(out / "metrics_stages.png", dpi=120)
    print(f"wrote {out / 'metrics_stages.png'}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--out", default="figures")
    args = ap.parse_args()
    out = pathlib.Path(args.out)
    out.mkdir(exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available: writing CSVs only", file=sys.stderr)

    for binary, ylabel, yscale in FIGS:
        path = pathlib.Path(args.build) / "bench" / binary
        if not path.exists():
            print(f"missing {path}; build the benches first", file=sys.stderr)
            continue
        cmd = [str(path), "--csv"]
        metrics_path = None
        if binary == "fig3_latency_cluster_a":
            metrics_path = out / f"{binary}_metrics.json"
            cmd += ["--metrics-json", str(metrics_path)]
        text = subprocess.run(cmd, capture_output=True,
                              text=True, check=True).stdout
        (out / f"{binary}.csv").write_text(text)
        if metrics_path and metrics_path.exists():
            render_metrics(metrics_path, out, plt)
        if plt is None:
            continue
        blocks = parse_blocks(text)
        fig, axes = plt.subplots(1, len(blocks), figsize=(5 * len(blocks), 4))
        if len(blocks) == 1:
            axes = [axes]
        for ax, (title, header, rows) in zip(axes, blocks):
            xs = [r[0] for r in rows]
            for col in range(1, len(header)):
                ax.plot(xs, [r[col] for r in rows], marker="o", label=header[col])
            ax.set_title(title, fontsize=9)
            ax.set_xlabel(header[0])
            ax.set_ylabel(ylabel)
            ax.set_xscale("log" if yscale == "log" else "linear")
            ax.set_yscale(yscale)
            ax.legend(fontsize=7)
            ax.grid(True, alpha=0.3)
        fig.tight_layout()
        fig.savefig(out / f"{binary}.png", dpi=120)
        print(f"wrote {out / binary}.png")


if __name__ == "__main__":
    main()
