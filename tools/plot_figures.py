#!/usr/bin/env python3
"""Regenerate the paper's figures as PNG plots.

Runs the fig* bench binaries in --csv mode and renders one panel per
CSV block. Requires matplotlib; without it, the CSVs are still written
to the output directory so any plotting tool can consume them.

    python3 tools/plot_figures.py [--build build] [--out figures]
"""
import argparse
import pathlib
import subprocess
import sys

FIGS = [
    ("fig3_latency_cluster_a", "latency (us)", "log"),
    ("fig4_latency_cluster_b", "latency (us)", "log"),
    ("fig5_mixed_workload", "latency (us)", "log"),
    ("fig6_multi_client_tps", "KTPS", "linear"),
]


def parse_blocks(text):
    """Yield (title, header, rows) for each '# title' CSV block."""
    blocks, title, header, rows = [], None, None, []
    for line in text.splitlines():
        if line.startswith("# "):
            if title and rows:
                blocks.append((title, header, rows))
            title, header, rows = line[2:].strip(), None, []
        elif title and "," in line:
            cells = line.split(",")
            if header is None:
                header = cells
            else:
                rows.append([float(c) for c in cells])
        elif not line.strip() and title and rows:
            blocks.append((title, header, rows))
            title, header, rows = None, None, []
    if title and rows:
        blocks.append((title, header, rows))
    return blocks


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--out", default="figures")
    args = ap.parse_args()
    out = pathlib.Path(args.out)
    out.mkdir(exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib not available: writing CSVs only", file=sys.stderr)

    for binary, ylabel, yscale in FIGS:
        path = pathlib.Path(args.build) / "bench" / binary
        if not path.exists():
            print(f"missing {path}; build the benches first", file=sys.stderr)
            continue
        text = subprocess.run([str(path), "--csv"], capture_output=True,
                              text=True, check=True).stdout
        (out / f"{binary}.csv").write_text(text)
        if plt is None:
            continue
        blocks = parse_blocks(text)
        fig, axes = plt.subplots(1, len(blocks), figsize=(5 * len(blocks), 4))
        if len(blocks) == 1:
            axes = [axes]
        for ax, (title, header, rows) in zip(axes, blocks):
            xs = [r[0] for r in rows]
            for col in range(1, len(header)):
                ax.plot(xs, [r[col] for r in rows], marker="o", label=header[col])
            ax.set_title(title, fontsize=9)
            ax.set_xlabel(header[0])
            ax.set_ylabel(ylabel)
            ax.set_xscale("log" if yscale == "log" else "linear")
            ax.set_yscale(yscale)
            ax.legend(fontsize=7)
            ax.grid(True, alpha=0.3)
        fig.tight_layout()
        fig.savefig(out / f"{binary}.png", dpi=120)
        print(f"wrote {out / binary}.png")


if __name__ == "__main__":
    main()
