#!/usr/bin/env python3
"""Run the tracked benchmark suite and write a BENCH_<n>.json snapshot.

Measures (in a Release tree):
  * micro_sim_components  — scheduler/coroutine/counter micro-benchmarks
  * micro_kv_components   — parser/store/encode micro-benchmarks
  * fig_onesided_get      — RPC vs one-sided GET latency cells (sim-time,
                            deterministic, so also gateable in --quick)
  * fig_rfp               — RPC vs one-sided vs remote-fetch-ring latency
                            cells; headlines are the QDR 64 B GET and SET
  * abl_multiget          — batched multiget width sweep (sim-time,
                            deterministic; headline is the 64-key cell)
  * fleet                 — sharded-pool workload engine at the 10k-connection
                            shape (1250 clients x 8 shards); headline is the
                            saturation-phase sim-time TPS (deterministic)
  * fig3 / fig6 binaries  — end-to-end wall-clock (sanity, not a gate)

The snapshot keeps two sections:
  * "baseline" — the pre-change numbers. Preserved verbatim from an existing
    output file so the before/after pair lives in one tracked artifact.
  * "current"  — what this run measured.

Headline gauges (the ones CI gates on):
  * sim_events_per_sec         — BM_SchedulerEventDispatch items/sec (higher better)
  * end_to_end_sim_ops_per_sec — BM_EndToEndSimulatedOps items/sec   (higher better)
  * kv_parse_get_ns            — BM_ParseGetRequest real ns/op       (lower better)
  * onesided_get_us_qdr_64     — one-sided 64 B GET, QDR, sim µs     (lower better)
  * rpc_get_us_qdr_64          — RPC 64 B GET, QDR, sim µs           (lower better)
  * multiget_64key_us          — batched 64-key mget, QDR, sim µs    (lower better)
  * rfp_get_64b_us             — RFP-ring 64 B GET, QDR, sim µs      (lower better)
  * rfp_set_64b_us             — RFP-ring 64 B SET, QDR, sim µs      (lower better)
  * fleet_10k_ops_per_sec      — fleet saturation TPS, sim ops/s     (higher better)

Usage:
  tools/run_benches.py [--build-dir build-rel] [--out BENCH_8.json] [--quick]
  tools/run_benches.py --check BENCH_8.json [--build-dir ...] [--quick]

--check re-measures and fails (exit 1) if sim_events_per_sec or either GET
latency regressed more than --tolerance (default 20%) against the checked-in
snapshot's "current" section. Latency keys missing from an older snapshot
are skipped, so --check still works against BENCH_2.json. No files are
written in check mode.
"""

import argparse
import json
import os
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MICRO_TARGETS = ["micro_sim_components", "micro_kv_components"]
ONESIDED_TARGET = "fig_onesided_get"
RFP_TARGET = "fig_rfp"
MULTIGET_TARGET = "abl_multiget"
FLEET_TARGET = "fleet"
# The 10k-connection headline shape. Sim-time TPS, so the same shape runs
# in both quick and full mode — the headline is identical either way.
FLEET_ARGS = ["--clients", "1250", "--shards", "8", "--ops", "40"]
WALLCLOCK_TARGETS = {
    "fig3": "fig3_latency_cluster_a",
    "fig6": "fig6_multi_client_tps",
}
# Latency headlines gated in --check mode (lower is better). Sim-time, so
# deterministic across machines — the tolerance only absorbs intentional
# model changes that forgot to refresh the snapshot.
LATENCY_HEADLINES = ["onesided_get_us_qdr_64", "rpc_get_us_qdr_64",
                     "multiget_64key_us", "rfp_get_64b_us", "rfp_set_64b_us"]
# Throughput headlines gated in --check mode (higher is better). Keys
# missing from an older snapshot are skipped, like the latency ones.
THROUGHPUT_HEADLINES = ["sim_events_per_sec", "end_to_end_sim_ops_per_sec",
                        "fleet_10k_ops_per_sec"]


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kw)


def ensure_build(build_dir, targets):
    cache = os.path.join(build_dir, "CMakeCache.txt")
    if not os.path.exists(cache):
        run(["cmake", "-B", build_dir, "-S", REPO,
             "-DCMAKE_BUILD_TYPE=Release"])
    else:
        with open(cache) as f:
            if "CMAKE_BUILD_TYPE:STRING=Release" not in f.read():
                sys.exit(f"error: {build_dir} is not a Release tree; "
                         "benchmark numbers would be meaningless")
    run(["cmake", "--build", build_dir, "-j", str(os.cpu_count() or 2),
         "--target"] + targets)


def find_binary(build_dir, name):
    for sub in ("bench", "examples", "."):
        p = os.path.join(build_dir, sub, name)
        if os.path.exists(p):
            return p
    sys.exit(f"error: benchmark binary {name} not found under {build_dir}")


def run_micro(build_dir, target, quick):
    out = os.path.join(build_dir, f"{target}.json")
    cmd = [find_binary(build_dir, target),
           "--benchmark_format=json", f"--benchmark_out={out}"]
    if quick:
        # Plain seconds: the "0.05s" suffix form is only understood by
        # google-benchmark >= 1.8, a bare double works on both old and new.
        cmd.append("--benchmark_min_time=0.05")
    run(cmd, stdout=subprocess.DEVNULL)
    with open(out) as f:
        data = json.load(f)
    results = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"real_time_ns": b["real_time"]}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        if "bytes_per_second" in b:
            entry["bytes_per_second"] = b["bytes_per_second"]
        results[b["name"]] = entry
    return results


def run_onesided(build_dir):
    out = os.path.join(build_dir, "fig_onesided_get.json")
    run([find_binary(build_dir, ONESIDED_TARGET), "--json", out],
        stdout=subprocess.DEVNULL)
    with open(out) as f:
        return json.load(f)


def run_rfp(build_dir):
    out = os.path.join(build_dir, "fig_rfp.json")
    run([find_binary(build_dir, RFP_TARGET), "--json", out],
        stdout=subprocess.DEVNULL)
    with open(out) as f:
        return json.load(f)


def run_multiget(build_dir):
    out = os.path.join(build_dir, "abl_multiget.json")
    run([find_binary(build_dir, MULTIGET_TARGET), "--json", out],
        stdout=subprocess.DEVNULL)
    with open(out) as f:
        return json.load(f)


def run_fleet(build_dir):
    out = os.path.join(build_dir, "fleet.json")
    run([find_binary(build_dir, FLEET_TARGET)] + FLEET_ARGS + ["--json", out],
        stdout=subprocess.DEVNULL)
    with open(out) as f:
        return json.load(f)


def run_wallclock(build_dir):
    timings = {}
    for key, target in WALLCLOCK_TARGETS.items():
        binary = find_binary(build_dir, target)
        t0 = time.monotonic()
        run([binary], stdout=subprocess.DEVNULL)
        timings[key] = round(time.monotonic() - t0, 3)
    return timings


def measure(build_dir, quick):
    targets = MICRO_TARGETS + [ONESIDED_TARGET, RFP_TARGET, MULTIGET_TARGET,
                               FLEET_TARGET] + (
        [] if quick else list(WALLCLOCK_TARGETS.values()))
    ensure_build(build_dir, targets)
    current = {"quick": quick, "benchmarks": {}}
    for target in MICRO_TARGETS:
        current["benchmarks"][target] = run_micro(build_dir, target, quick)
    onesided = run_onesided(build_dir)
    current["onesided"] = {"ddr": onesided["ddr"], "qdr": onesided["qdr"]}
    rfp = run_rfp(build_dir)
    current["rfp"] = {"get_ddr": rfp["get_ddr"], "get_qdr": rfp["get_qdr"],
                      "set_ddr": rfp["set_ddr"], "set_qdr": rfp["set_qdr"]}
    multiget = run_multiget(build_dir)
    current["multiget"] = {"sweep": multiget["sweep"]}
    fleet = run_fleet(build_dir)
    current["fleet"] = {"connections": fleet["connections"],
                        "phases": fleet["phases"]}
    if not quick:
        current["wallclock_sec"] = run_wallclock(build_dir)
    sim = current["benchmarks"]["micro_sim_components"]
    kv = current["benchmarks"]["micro_kv_components"]
    current["headline"] = {
        "sim_events_per_sec": sim["BM_SchedulerEventDispatch"]["items_per_second"],
        "end_to_end_sim_ops_per_sec":
            sim["BM_EndToEndSimulatedOps"]["items_per_second"],
        "kv_parse_get_ns": kv["BM_ParseGetRequest"]["real_time_ns"],
    }
    current["headline"].update(onesided["headline"])
    current["headline"].update({k: rfp["headline"][k]
                                for k in ("rfp_get_64b_us", "rfp_set_64b_us")})
    current["headline"].update(multiget["headline"])
    current["headline"].update(fleet["headline"])
    return current


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build-rel"))
    ap.add_argument("--out", default=os.path.join(REPO, "BENCH_9.json"))
    ap.add_argument("--quick", action="store_true",
                    help="short benchmark repetitions, skip wall-clock figs")
    ap.add_argument("--check", metavar="SNAPSHOT",
                    help="compare against a checked-in snapshot instead of writing")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression in --check mode")
    args = ap.parse_args()

    current = measure(args.build_dir, args.quick)

    if args.check:
        # Leave a machine-readable record of what was measured (CI artifact).
        check_out = os.path.join(args.build_dir, "bench-check.json")
        with open(check_out, "w") as f:
            json.dump({"schema": "rmc-bench-snapshot/1", "current": current},
                      f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {check_out}")
        with open(args.check) as f:
            snapshot = json.load(f)
        ref_head = snapshot["current"]["headline"]
        failures = []

        for key in THROUGHPUT_HEADLINES:
            if key not in ref_head:
                print(f"{key}: not in snapshot, skipped")
                continue
            ref = ref_head[key]
            got = current["headline"][key]
            floor = ref * (1.0 - args.tolerance)
            print(f"{key}: reference {ref:,.0f}/s  measured {got:,.0f}/s  "
                  f"floor {floor:,.0f}/s")
            if got < floor:
                failures.append(f"{key} regressed beyond {args.tolerance:.0%}")

        for key in LATENCY_HEADLINES:
            if key not in ref_head:
                print(f"{key}: not in snapshot, skipped")
                continue
            ref = ref_head[key]
            got = current["headline"][key]
            ceiling = ref * (1.0 + args.tolerance)
            print(f"{key}: reference {ref:.3f}us  measured {got:.3f}us  "
                  f"ceiling {ceiling:.3f}us")
            if got > ceiling:
                failures.append(f"{key} regressed beyond {args.tolerance:.0%}")

        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        if failures:
            sys.exit(1)
        print("OK: within tolerance")
        return

    doc = {"schema": "rmc-bench-snapshot/1", "baseline": current}
    if os.path.exists(args.out):
        with open(args.out) as f:
            doc = json.load(f)
    doc["current"] = current
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    h = current["headline"]
    if "headline" in doc.get("baseline", {}):
        b = doc["baseline"]["headline"]
        ev = h["sim_events_per_sec"] / b["sim_events_per_sec"] - 1.0
        pg = b["kv_parse_get_ns"] / h["kv_parse_get_ns"] - 1.0
        line = f"vs baseline: scheduler dispatch {ev:+.1%}, GET parse {pg:+.1%}"
        if "end_to_end_sim_ops_per_sec" in b:
            e2e = (h["end_to_end_sim_ops_per_sec"]
                   / b["end_to_end_sim_ops_per_sec"] - 1.0)
            line += f", end-to-end sim ops {e2e:+.1%}"
        print(line)


if __name__ == "__main__":
    main()
