// Datagram memcached, Facebook-style (§III + §VII).
//
// Facebook moved memcached Gets to UDP to cut per-connection state and
// reported ~200K req/s at 173 us average latency [7]. The paper's future
// work proposes the InfiniBand equivalent: UCR over Unreliable Datagram.
// This example runs Gets over unreliable endpoints on a fabric with
// injected packet loss: lost operations surface as timeouts, the
// application treats them as cache misses, and the server keeps exactly
// one datagram QP no matter how many clients arrive.
//
//   $ ./examples/datagram_gets
#include <cstdio>
#include <string>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

}  // namespace

int main() {
  sim::Scheduler sched;
  auto link = sim::ib_qdr_link();
  link.drop_per_million = 5000;  // 0.5% loss: a stressed converged fabric
  sim::Fabric fabric{sched, link};

  sim::Host server_host{sched, 0, "mc-server", 8};
  sim::Host client_host{sched, 1, "web-tier", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};

  mc::Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);

  mc::ClientBehavior behavior;
  behavior.unreliable_ucr = true;  // datagram endpoints
  behavior.op_timeout = 100_us;    // fail fast; a miss is cheaper than a wait
  mc::Client client{sched, client_host, behavior};
  client.add_server_ucr(client_ucr, server_ucr.addr(), 11211);

  struct Stats {
    int hits = 0;
    int timeouts = 0;
    sim::Time total = 0;
  } stats;

  sched.spawn([](sim::Scheduler& sch, mc::Client& cli, Stats& stats2) -> sim::Task<> {
    auto st = co_await cli.connect_all();
    if (!st.ok()) {
      std::printf("handshake lost (that's UD life) — rerun with another seed\n");
      co_return;
    }
    // Seed the cache (retry sets that the fabric eats).
    for (int i = 0; i < 64; ++i) {
      const std::string key = "profile:" + std::to_string(i);
      while (!(co_await cli.set(key, val("user-profile-blob"))).ok()) {
      }
    }
    // The read-heavy phase: 2000 datagram Gets.
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "profile:" + std::to_string(i % 64);
      const sim::Time begin = sch.now();
      auto got = co_await cli.get(key);
      stats2.total += sch.now() - begin;
      if (got.ok()) {
        ++stats2.hits;
      } else {
        ++stats2.timeouts;  // treated as a miss; the DB would serve it
      }
    }
  }(sched, client, stats));
  sched.run();

  const double avg = to_us(stats.total) / (stats.hits + stats.timeouts);
  std::printf("datagram gets:  %d ok, %d lost-and-timed-out (%.2f%% loss-visible)\n",
              stats.hits, stats.timeouts,
              100.0 * stats.timeouts / (stats.hits + stats.timeouts));
  std::printf("avg latency:    %.1f us (timeouts included)\n", avg);
  std::printf("server QPs:     %zu (one datagram QP, any number of clients)\n",
              server_hca.qp_count());
  std::printf("\nno connection state, no retransmit machinery: a lost request is a\n"
              "cache miss, exactly the trade Facebook's UDP deployment made [7].\n");
  return 0;
}
