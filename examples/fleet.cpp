// Fleet-scale scenario: a sharded memcached pool under production-shape
// traffic. Eight (or more) shards serve a thousand-plus client
// connections packed onto a few load-generator hosts, and the workload
// engine walks through the traffic patterns a real cache fleet sees:
//
//   1. saturation  — closed-loop Zipfian mix (get/set/mget/del); the
//                    aggregate sim-time TPS is the `fleet_10k_ops_per_sec`
//                    headline when run at 1250 clients x 8 shards
//                    (10,000 connections: tools/run_benches.py).
//   2. flash crowd — 90% of ops hammer a 64-key hot set that jumps to a
//                    new spot mid-run (the "celebrity died" pattern).
//   3. TTL churn   — half the sets carry a 1-second TTL; the sim clock
//                    then jumps past expiry and a re-read phase shows the
//                    hit ratio crater.
//   4. eviction storm — uniform set-heavy traffic over a working set
//                    several times the slab budget; the LRU grinds,
//                    evictions climb, and every surviving hit still
//                    carries intact bytes (torn values = 0).
//   5. rfp smoke   — a second, small fleet with every connection in
//                    remote-fetch-ring mode (DESIGN.md §16): the mixed
//                    workload runs over server-bypass rings end to end,
//                    with ring traffic and fallback share reported.
//
// Deterministic: the same --seed reproduces the report byte for byte.
//
//   $ ./examples/fleet                      # 8 shards, 128 clients (1024 conns)
//   $ ./examples/fleet --clients 1250       # the 10k-connection headline shape
//   $ ./examples/fleet --json out.json      # headline for the bench runner
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/fleetbed.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::string arg_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

std::uint64_t arg_u64(int argc, char** argv, std::string_view flag, std::uint64_t dflt) {
  const std::string v = arg_value(argc, argv, flag);
  return v.empty() ? dflt : std::strtoull(v.c_str(), nullptr, 10);
}

void print_phase(const char* name, const core::FleetResult& r) {
  std::printf("%-14s %9llu ops  %10.0f ops/s  hit %5.1f%%  p50 %7.1fus  p99 %7.1fus",
              name, static_cast<unsigned long long>(r.total_ops), r.tps(),
              100.0 * r.hit_ratio(),
              static_cast<double>(r.all_latency.percentile(0.50)) / 1e3,
              static_cast<double>(r.all_latency.percentile(0.99)) / 1e3);
  if (r.errors != 0 || r.failed_clients != 0) {
    std::printf("  [errors %llu, failed clients %llu]",
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.failed_clients));
  }
  std::printf("\n");
}

void print_shards(const core::FleetResult& r) {
  std::printf("    shard:");
  for (std::size_t s = 0; s < r.shards.size(); ++s) {
    std::printf(" mc%zu=%llu", s, static_cast<unsigned long long>(r.shards[s].ops));
  }
  std::printf("\n");
}

std::uint64_t total_evictions(const core::FleetResult& r) {
  std::uint64_t n = 0;
  for (const auto& sh : r.shards) n += sh.evictions;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const auto shards = static_cast<unsigned>(arg_u64(argc, argv, "--shards", 8));
  const auto clients = static_cast<unsigned>(arg_u64(argc, argv, "--clients", 128));
  const auto gens = static_cast<unsigned>(
      arg_u64(argc, argv, "--gens", std::min(8u, std::max(1u, clients))));
  const std::uint64_t ops = arg_u64(argc, argv, "--ops", 100);
  const std::uint64_t seed = arg_u64(argc, argv, "--seed", 1);
  const std::string json_path = arg_value(argc, argv, "--json");
  const std::string profile_path = arg_value(argc, argv, "--profile");
  if (!profile_path.empty()) obs::profiler().enable();

  core::FleetBedConfig bed_config;
  bed_config.shards = shards;
  bed_config.clients = clients;
  bed_config.generators = gens;
  // Deliberately tight slab budget per shard: phases 1-3 fit their working
  // sets, the storm phase (several times this in set bytes) does not.
  bed_config.server.store.slabs.memory_limit = 2 * 1024 * 1024;
  core::FleetBed bed(bed_config);

  std::printf("fleet: %u shards x %u clients = %zu connections on %u generator hosts "
              "(seed %llu)\n\n",
              shards, clients, bed.connection_count(), gens,
              static_cast<unsigned long long>(seed));

  // ---- phase 1: saturation (the headline) ----
  core::FleetWorkloadConfig saturation;
  saturation.dist = core::KeyDist::zipfian;
  saturation.zipf_s = 0.99;
  saturation.key_space = 8192;
  saturation.value_size = 128;
  saturation.ops_per_client = ops;
  saturation.seed = seed;
  const auto sat = core::run_fleet(bed, saturation);
  print_phase("saturation", sat);
  print_shards(sat);

  // ---- phase 2: flash crowd (hot set shifts mid-run) ----
  core::FleetWorkloadConfig flash = saturation;
  flash.dist = core::KeyDist::hot_shift;
  flash.hot_fraction = 0.9;
  flash.hot_set_size = 64;
  flash.hot_shift_interval = 1_ms;
  flash.populate = false;  // the keyspace is already warm
  flash.seed = seed + 1;
  const auto crowd = core::run_fleet(bed, flash);
  print_phase("flash-crowd", crowd);

  // ---- phase 3: TTL churn — write short-lived items, outlive them ----
  // Concentrated on a small slice of the keyspace (uniform, so most of the
  // slice gets a TTL write) to make the expiry crater visible in the
  // re-read phase.
  core::FleetWorkloadConfig churn = saturation;
  churn.dist = core::KeyDist::uniform;
  churn.key_space = 512;
  churn.get_weight = 30;
  churn.set_weight = 65;
  churn.mget_weight = 4;
  churn.del_weight = 1;
  churn.ttl_set_fraction = 0.5;
  churn.ttl_seconds = 1;
  churn.populate = false;
  churn.seed = seed + 2;
  const auto ttl_write = core::run_fleet(bed, churn);
  print_phase("ttl-churn", ttl_write);

  // Jump the sim clock past every TTL (sim seconds are free), then
  // re-read: the expired half of the churned keys now miss.
  bed.scheduler().spawn([](sim::Scheduler& s) -> sim::Task<> {
    co_await s.delay(2 * kNsPerSec + 500_ms);
  }(bed.scheduler()));
  bed.scheduler().run();
  core::FleetWorkloadConfig reread = saturation;
  reread.dist = core::KeyDist::uniform;
  reread.key_space = 512;
  reread.get_weight = 100;
  reread.set_weight = 0;
  reread.mget_weight = 0;
  reread.del_weight = 0;
  reread.populate = false;
  reread.seed = seed + 3;
  const auto expired = core::run_fleet(bed, reread);
  print_phase("ttl-reread", expired);

  // ---- phase 4: eviction storm — working set >> slab budget ----
  core::FleetWorkloadConfig storm = saturation;
  storm.dist = core::KeyDist::uniform;
  storm.key_space = 32768;
  storm.value_size = 768;
  storm.get_weight = 15;
  storm.set_weight = 80;
  storm.mget_weight = 4;
  storm.del_weight = 1;
  storm.ops_per_client = std::max<std::uint64_t>(ops, 2 * ops);
  storm.populate = false;
  storm.seed = seed + 4;
  const auto evict = core::run_fleet(bed, storm);
  print_phase("evict-storm", evict);
  std::printf("    evictions: %llu across %zu shards  torn values: %llu\n",
              static_cast<unsigned long long>(total_evictions(evict)),
              evict.shards.size(), static_cast<unsigned long long>(evict.value_mismatches));

  // ---- phase 5: rfp smoke — a small fleet riding the server-bypass rings ----
  // A fixed small shape independent of --clients so the headline runs don't
  // double; the point is end-to-end coverage of the ring path under the
  // sharded mixed workload, not throughput.
  core::FleetBedConfig rfp_config;
  rfp_config.shards = 2;
  rfp_config.clients = 16;
  rfp_config.generators = 2;
  rfp_config.client.mode = mc::ClientBehavior::Mode::rfp;
  core::FleetBed rfp_bed(rfp_config);
  core::FleetWorkloadConfig rfp_mix = saturation;
  rfp_mix.key_space = 2048;
  rfp_mix.seed = seed + 5;
  const std::uint64_t rfp_ops_before =
      obs::registry().counter("mc.rfp.ops").value();
  const std::uint64_t rfp_fb_before =
      obs::registry().counter("mc.rfp.fallbacks").value();
  const auto rfp_smoke = core::run_fleet(rfp_bed, rfp_mix);
  const std::uint64_t rfp_ring_ops =
      obs::registry().counter("mc.rfp.ops").value() - rfp_ops_before;
  const std::uint64_t rfp_fallbacks =
      obs::registry().counter("mc.rfp.fallbacks").value() - rfp_fb_before;
  print_phase("rfp-smoke", rfp_smoke);
  std::printf("    ring ops: %llu  fallbacks: %llu  torn values: %llu\n",
              static_cast<unsigned long long>(rfp_ring_ops),
              static_cast<unsigned long long>(rfp_fallbacks),
              static_cast<unsigned long long>(rfp_smoke.value_mismatches));

  std::printf("\nheadline: fleet_10k_ops_per_sec = %.0f (saturation phase, sim time)\n",
              sat.tps());

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"connections\": %zu,\n  \"phases\": {\n"
                 "    \"saturation\": {\"ops\": %llu, \"tps\": %.1f, \"hit_ratio\": %.4f},\n"
                 "    \"flash_crowd\": {\"ops\": %llu, \"tps\": %.1f, \"hit_ratio\": %.4f},\n"
                 "    \"ttl_reread\": {\"ops\": %llu, \"hit_ratio\": %.4f},\n"
                 "    \"evict_storm\": {\"ops\": %llu, \"evictions\": %llu, "
                 "\"value_mismatches\": %llu},\n"
                 "    \"rfp_smoke\": {\"ops\": %llu, \"ring_ops\": %llu, "
                 "\"fallbacks\": %llu, \"hit_ratio\": %.4f, \"value_mismatches\": %llu}\n"
                 "  },\n  \"headline\": {\"fleet_10k_ops_per_sec\": %.1f}\n}\n",
                 bed.connection_count(),
                 static_cast<unsigned long long>(sat.total_ops), sat.tps(), sat.hit_ratio(),
                 static_cast<unsigned long long>(crowd.total_ops), crowd.tps(),
                 crowd.hit_ratio(),
                 static_cast<unsigned long long>(expired.total_ops), expired.hit_ratio(),
                 static_cast<unsigned long long>(evict.total_ops),
                 static_cast<unsigned long long>(total_evictions(evict)),
                 static_cast<unsigned long long>(evict.value_mismatches),
                 static_cast<unsigned long long>(rfp_smoke.total_ops),
                 static_cast<unsigned long long>(rfp_ring_ops),
                 static_cast<unsigned long long>(rfp_fallbacks), rfp_smoke.hit_ratio(),
                 static_cast<unsigned long long>(rfp_smoke.value_mismatches), sat.tps());
    std::fclose(f);
    std::fprintf(stderr, "json written to %s\n", json_path.c_str());
  }

  if (!profile_path.empty()) {
    obs::profiler().disable();
    const std::string json = obs::profiler().to_json();
    if (std::FILE* f = std::fopen(profile_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "profile written to %s\n", profile_path.c_str());
    }
  }

  const std::string metrics_path = arg_value(argc, argv, "--metrics-json");
  if (!metrics_path.empty()) {
    const std::string json = obs::registry().to_json();
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
    }
  }
  return 0;
}
