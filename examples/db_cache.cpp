// The workload that motivates the paper (§I): a web tier caching database
// query results in memcached. A simulated database answers queries in
// ~500 us (a fast indexed lookup on 2010 hardware); memcached over RDMA
// answers in ~10 us. The example runs a Zipf-ish request stream through a
// cache-aside loop and reports hit rate and average request latency with
// and without the cache.
//
//   $ ./examples/db_cache
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/testbed.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

/// The "database": a query costs CPU plus disk/index latency.
class SimulatedDatabase {
 public:
  explicit SimulatedDatabase(sim::Scheduler& sched) : sched_(&sched) {}

  sim::Task<std::string> query(const std::string& key) {
    ++queries_;
    co_await sched_->delay(500_us);  // index lookup + row fetch
    co_return "row-data-for-" + key;
  }

  std::uint64_t queries() const { return queries_; }

 private:
  sim::Scheduler* sched_;
  std::uint64_t queries_ = 0;
};

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

struct Stats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  sim::Time total_latency = 0;
};

/// Cache-aside read path: try memcached; on miss, query the DB and
/// populate the cache with a 60 s TTL.
sim::Task<> web_tier(core::TestBed& bed, SimulatedDatabase& db, bool use_cache,
                     Stats& stats) {
  mc::Client& client = bed.client(0);
  sim::Scheduler& sched = bed.scheduler();
  (void)co_await bed.connect_all();

  // Skewed access: 20% of rows get 80% of traffic (the "hot data" the
  // paper says memcached exists for).
  Rng rng(7);
  constexpr int kRows = 200;
  constexpr int kRequests = 2000;

  for (int i = 0; i < kRequests; ++i) {
    const bool hot = rng.chance(0.8);
    const int row = hot ? static_cast<int>(rng.below(kRows / 5))
                        : static_cast<int>(rng.below(kRows));
    const std::string key = "row:" + std::to_string(row);

    const sim::Time begin = sched.now();
    if (use_cache) {
      auto cached = co_await client.get(key);
      if (cached.ok()) {
        ++stats.hits;
      } else {
        const std::string value = co_await db.query(key);
        (void)co_await client.set(key, bytes(value), 0, /*exptime=*/60);
      }
    } else {
      (void)co_await db.query(key);
    }
    stats.total_latency += sched.now() - begin;
    ++stats.requests;
  }
}

Stats run(bool use_cache, std::uint64_t& db_queries) {
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  core::TestBed bed(config);
  SimulatedDatabase db(bed.scheduler());
  Stats stats;
  bed.scheduler().spawn(web_tier(bed, db, use_cache, stats));
  bed.scheduler().run();
  db_queries = db.queries();
  return stats;
}

}  // namespace

int main() {
  std::uint64_t db_without = 0, db_with = 0;
  const Stats without = run(false, db_without);
  const Stats with = run(true, db_with);

  const double avg_without = to_us(without.total_latency) / static_cast<double>(without.requests);
  const double avg_with = to_us(with.total_latency) / static_cast<double>(with.requests);

  std::printf("database-only:      %llu requests, %llu DB queries, avg %.1f us/request\n",
              static_cast<unsigned long long>(without.requests),
              static_cast<unsigned long long>(db_without), avg_without);
  std::printf("memcached (UCR):    %llu requests, %llu DB queries, avg %.1f us/request\n",
              static_cast<unsigned long long>(with.requests),
              static_cast<unsigned long long>(db_with), avg_with);
  std::printf("cache hit rate:     %.1f%%\n",
              100.0 * static_cast<double>(with.hits) / static_cast<double>(with.requests));
  std::printf("request speedup:    %.1fx\n", avg_without / avg_with);
  std::printf("DB load reduction:  %.1fx fewer queries\n",
              static_cast<double>(db_without) / static_cast<double>(db_with));
  return 0;
}
