// Quickstart: bring up a memcached server on a simulated InfiniBand QDR
// fabric, connect a client over UCR (the paper's RDMA design), and run a
// few operations.
//
// Observability artifacts (see DESIGN.md "Observability"):
//   $ ./examples/quickstart --trace trace.json --metrics-json metrics.json
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "core/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

sim::Task<> scenario(core::TestBed& bed) {
  mc::Client& client = bed.client(0);
  sim::Scheduler& sched = bed.scheduler();

  auto st = co_await bed.connect_all();
  if (!st.ok()) {
    std::printf("connect failed: %s\n", std::string(to_string(st.error())).c_str());
    co_return;
  }
  std::printf("connected to memcached over %s at t=%.1f us\n",
              std::string(core::transport_name(bed.config().transport)).c_str(),
              to_us(sched.now()));

  // SET: the value is shipped in the active message (eager, < 8 KB).
  sim::Time begin = sched.now();
  (void)co_await client.set("user:42:name", bytes("Ada Lovelace"), /*flags=*/1);
  std::printf("set  user:42:name          -> STORED      (%.2f us)\n",
              to_us(sched.now() - begin));

  // GET hit.
  begin = sched.now();
  auto got = co_await client.get("user:42:name");
  std::printf("get  user:42:name          -> \"%.*s\"  (%.2f us)\n",
              static_cast<int>(got->data.size()),
              reinterpret_cast<const char*>(got->data.data()), to_us(sched.now() - begin));

  // GET miss.
  begin = sched.now();
  auto miss = co_await client.get("user:43:name");
  std::printf("get  user:43:name          -> %s   (%.2f us)\n",
              std::string(to_string(miss.error())).c_str(), to_us(sched.now() - begin));

  // Counters.
  (void)co_await client.set("hits", bytes("0"));
  for (int i = 0; i < 3; ++i) (void)co_await client.incr("hits", 1);
  auto hits = co_await client.incr("hits", 7);
  std::printf("incr hits x3 then +7       -> %llu\n",
              static_cast<unsigned long long>(*hits));

  // A 64 KiB value: too big for the eager buffer, so the server pulls it
  // with an RDMA read straight into the item's slab chunk.
  std::vector<std::byte> big(64_KiB, std::byte{7});
  begin = sched.now();
  (void)co_await client.set("blob", big);
  std::printf("set  blob (64 KiB, RDMA)   -> STORED      (%.2f us)\n",
              to_us(sched.now() - begin));
  begin = sched.now();
  auto blob = co_await client.get("blob");
  std::printf("get  blob (64 KiB, RDMA)   -> %zu bytes  (%.2f us)\n", blob->data.size(),
              to_us(sched.now() - begin));

  std::printf("\nserver stats:\n%s", bed.server().render_stats().c_str());
}

std::string flag_value(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_file = flag_value(argc, argv, "--trace");
  const std::string metrics_file = flag_value(argc, argv, "--metrics-json");
  if (!trace_file.empty()) obs::tracer().enable();

  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;       // ConnectX QDR
  config.transport = core::TransportKind::ucr_verbs;   // the paper's design
  core::TestBed bed(config);

  bed.scheduler().spawn(scenario(bed));
  bed.scheduler().run();

  if (!trace_file.empty()) {
    if (obs::tracer().write(trace_file)) {
      std::printf("trace written to %s (%zu events)\n", trace_file.c_str(),
                  obs::tracer().event_count());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_file.c_str());
    }
  }
  if (!metrics_file.empty()) {
    const std::string json = obs::registry().to_json();
    if (std::FILE* f = std::fopen(metrics_file.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("metrics written to %s\n", metrics_file.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n", metrics_file.c_str());
    }
  }
  return 0;
}
