// A miniature of the paper's evaluation: the same memcached workload over
// every transport of Cluster A, printed side by side. Run the full bench
// binaries (bench/fig*) for the complete figures.
//
//   $ ./examples/transport_comparison
#include <cstdio>

#include "core/workload.hpp"

using namespace rmc;

int main() {
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = 4096;  // the paper's headline point: 4 KB Get
  workload.ops_per_client = 500;

  std::printf("memcached 4 KB Get latency, Cluster A (single client)\n");
  std::printf("%-12s %12s %10s\n", "transport", "latency(us)", "vs UCR");
  double ucr_latency = 0;
  for (auto transport :
       {core::TransportKind::ucr_verbs, core::TransportKind::toe_10ge,
        core::TransportKind::sdp, core::TransportKind::ipoib, core::TransportKind::tcp_1ge}) {
    core::TestBedConfig config;
    config.cluster = core::ClusterKind::cluster_a;
    config.transport = transport;
    core::TestBed bed(config);
    const auto result = core::run_workload(bed, workload);
    const double latency = result.mean_latency_us();
    if (transport == core::TransportKind::ucr_verbs) ucr_latency = latency;
    std::printf("%-12s %12.1f %9.1fx\n",
                std::string(core::transport_name(transport)).c_str(), latency,
                latency / ucr_latency);
  }
  std::printf("\n(the paper reports ~20 us for UCR on DDR and >= 4x for every\n"
              " sockets transport; see bench/ and EXPERIMENTS.md for the full set)\n");
  return 0;
}
