// Multi-server pool + fault isolation (§II-C, §IV-A): a client shards keys
// across four memcached servers by key hash — no central directory — and
// when one server stops answering, operations against it time out while
// the remaining servers keep serving. This is the data-center fault model
// that distinguishes UCR endpoints from MPI ranks.
//
//   $ ./examples/server_pool
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

struct Pool {
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<mc::Server>> servers;

  sim::Host client_host{sched, 100, "webserver", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  std::unique_ptr<mc::Client> client;

  explicit Pool(int n) {
    mc::ClientBehavior behavior;
    behavior.op_timeout = 300_us;  // fail fast when a server is dead
    client = std::make_unique<mc::Client>(sched, client_host, behavior);
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc" + std::to_string(i), 8));
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      servers.push_back(std::make_unique<mc::Server>(sched, *hosts.back(), mc::ServerConfig{}));
      servers.back()->attach_ucr_frontend(*runtimes.back());
      client->add_server_ucr(client_ucr, runtimes.back()->addr(), 11211);
    }
  }
};

sim::Task<> scenario(Pool& pool) {
  mc::Client& client = *pool.client;
  (void)co_await client.connect_all();

  // Shard 200 session objects across the pool.
  std::vector<int> per_server(pool.servers.size(), 0);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "session:" + std::to_string(i);
    per_server[client.server_index(key)]++;
    (void)co_await client.set(key, bytes("state-" + std::to_string(i)));
  }
  std::printf("key distribution across %zu servers:", pool.servers.size());
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    std::printf("  mc%zu=%d", s, per_server[s]);
  }
  std::printf("\n");

  // Server 2 crashes: its runtime stops answering requests.
  std::printf("\n*** killing server mc2 ***\n\n");
  pool.runtimes[2]->register_handler(mc::ucrp::kMsgRequest, {});

  int ok = 0, dead = 0;
  sim::Time dead_latency = 0, ok_latency = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "session:" + std::to_string(i);
    const sim::Time begin = pool.sched.now();
    auto got = co_await client.get(key);
    const sim::Time lat = pool.sched.now() - begin;
    if (got.ok()) {
      ++ok;
      ok_latency += lat;
    } else {
      ++dead;
      dead_latency += lat;
      if (dead == 1) {
        std::printf("first failed get: key=%s routed to mc%zu -> %s after %.0f us\n",
                    key.c_str(), client.server_index(key),
                    std::string(to_string(got.error())).c_str(), to_us(lat));
      }
    }
  }
  std::printf("after failure: %d gets served (avg %.1f us), %d timed out (avg %.0f us)\n",
              ok, to_us(ok_latency) / ok, dead, to_us(dead_latency) / dead);
  std::printf("surviving servers were never disturbed: fault isolation holds.\n");
}

}  // namespace

int main() {
  Pool pool(4);
  pool.sched.spawn(scenario(pool));
  pool.sched.run();
  return 0;
}
