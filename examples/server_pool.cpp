// Multi-server pool + scripted fault injection (§II-C, §IV-A): a client
// shards keys across three memcached servers with a ketama continuum — no
// central directory — and a FaultPlan crashes one server's NIC mid-run.
//
// The failure path exercises the whole recovery stack:
//   * keepalive probes notice the silence and fail the endpoint, waking
//     every in-flight operation with an error instead of a silent hang,
//   * the client retries with backoff, ejects the dead host after
//     consecutive failures, and re-routes its keyspace share onto the
//     survivors (ketama: only ~1/n of keys remap),
//   * a rejoin probe reconnects once the FaultPlan revives the NIC, and
//     the host takes its keys back — with its store intact.
//
// Surviving servers never miss a beat, and every operation resolves
// within its timeout budget: endpoint failure is an event, not a hang.
//
//   $ ./examples/server_pool
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "simnet/faults.hpp"
#include "simnet/netparams.hpp"

using namespace rmc;
using namespace rmc::literals;

namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

struct Pool {
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<mc::Server>> servers;

  sim::Host client_host{sched, 100, "webserver", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  std::unique_ptr<ucr::Runtime> client_ucr;
  std::unique_ptr<mc::Client> client;

  explicit Pool(int n) {
    // Keepalive on the client runtime: a dead server is detected even
    // when no request happens to be in flight.
    ucr::UcrConfig ucr_config;
    ucr_config.keepalive_interval = 100_us;
    client_ucr = std::make_unique<ucr::Runtime>(client_hca, ucr_config);

    mc::ClientBehavior behavior;
    behavior.distribution = mc::Distribution::ketama;
    behavior.op_timeout = 300_us;  // fail fast when a server is dead
    behavior.max_retries = 2;
    behavior.retry_backoff = 20_us;
    behavior.eject_after_failures = 2;
    behavior.rejoin_interval = 200_us;
    behavior.rejoin_attempts = 40;
    client = std::make_unique<mc::Client>(sched, client_host, behavior);

    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc" + std::to_string(i), 8));
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      servers.push_back(std::make_unique<mc::Server>(sched, *hosts.back(), mc::ServerConfig{}));
      servers.back()->attach_ucr_frontend(*runtimes.back());
      client->add_server_ucr(*client_ucr, runtimes.back()->addr(), 11211);
    }
  }
};

constexpr int kKeys = 300;
constexpr std::size_t kVictim = 1;

std::string key_of(int i) { return "session:" + std::to_string(i); }

sim::Task<> scenario(Pool& pool) {
  mc::Client& client = *pool.client;
  obs::Registry& reg = obs::registry();
  (void)co_await client.connect_all();

  // ---- act 1: shard the working set across the pool ----
  std::vector<int> per_server(pool.servers.size(), 0);
  std::vector<std::size_t> owner(kKeys);  // pre-crash ownership
  for (int i = 0; i < kKeys; ++i) {
    owner[i] = client.server_index(key_of(i));
    per_server[owner[i]]++;
    (void)co_await client.set(key_of(i), bytes("state-" + std::to_string(i)));
  }
  std::printf("key distribution across %zu servers:", pool.servers.size());
  for (std::size_t s = 0; s < per_server.size(); ++s) {
    std::printf("  mc%zu=%d", s, per_server[s]);
  }
  std::printf("\n");
  const int victim_keys = per_server[kVictim];

  // ---- act 2: script the outage — crash mc1's NIC, revive it later ----
  const sim::Time crash_at = pool.sched.now() + 200_us;
  const sim::Time revive_at = crash_at + 4_ms;
  const sim::NicAddr victim_nic = pool.runtimes[kVictim]->addr();
  pool.fabric.faults().schedule({
      {crash_at, {.kind = sim::Fault::Kind::node_down, .a = victim_nic}},
      {revive_at, {.kind = sim::Fault::Kind::node_up, .a = victim_nic}},
  });
  std::printf("\n*** fault plan: mc%zu crashes at t+200us, revives at t+4.2ms ***\n\n",
              kVictim);

  const std::uint64_t retries_before = reg.counter("mc.client.retries").value();
  const std::uint64_t ejected_before = reg.counter("mc.pool.ejected").value();

  // ---- act 3: read through the outage ----
  int hits = 0, misses = 0, errors = 0;
  sim::Time slowest = 0;
  for (int i = 0; i < kKeys; ++i) {
    const sim::Time begin = pool.sched.now();
    auto got = co_await client.get(key_of(i));
    slowest = std::max(slowest, pool.sched.now() - begin);
    if (got.ok()) {
      ++hits;
    } else if (got.error() == Errc::not_found) {
      ++misses;  // re-routed to a survivor that never saw the key
    } else {
      ++errors;
      if (errors == 1) {
        std::printf("first failed get: key=%s -> %s after %.0f us\n", key_of(i).c_str(),
                    std::string(to_string(got.error())).c_str(),
                    to_us(pool.sched.now() - begin));
      }
    }
  }
  std::printf("reads through the outage: %d hits, %d re-routed misses, %d errors\n", hits,
              misses, errors);
  std::printf("slowest operation: %.0f us — every op resolved within its retry budget\n",
              to_us(slowest));
  std::printf("client ejected mc%zu (pool ejections: %llu, op retries: %llu)\n", kVictim,
              static_cast<unsigned long long>(reg.counter("mc.pool.ejected").value() -
                                              ejected_before),
              static_cast<unsigned long long>(reg.counter("mc.client.retries").value() -
                                              retries_before));

  // ---- act 4: survivors were never disturbed ----
  int survivor_hits = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (owner[i] == kVictim) continue;
    auto got = co_await client.get(key_of(i));
    if (got.ok()) ++survivor_hits;
  }
  std::printf("survivor re-read: %d/%d keys still served without interruption\n",
              survivor_hits, kKeys - victim_keys);

  // ---- act 5: wait out the revival; the rejoin probe reconnects ----
  while (client.server_ejected(kVictim) && pool.sched.now() < revive_at + 20_ms) {
    co_await pool.sched.delay(500_us);
  }
  int healed_hits = 0;
  for (int i = 0; i < kKeys; ++i) {
    auto got = co_await client.get(key_of(i));
    if (got.ok()) ++healed_hits;
  }
  std::printf("after rejoin: %d/%d keys hit again (mc%zu kept its store: the NIC died, "
              "not the data)\n",
              healed_hits, kKeys, kVictim);

  std::printf("\nfailure accounting:\n");
  for (const char* name : {"ucr.ep.failures", "ucr.keepalive.timeouts",
                           "mc.client.disconnects", "mc.client.retries", "mc.pool.ejected",
                           "mc.pool.rejoined", "sim.fault.drops"}) {
    std::printf("  %-24s %llu\n", name,
                static_cast<unsigned long long>(reg.counter(name).value()));
  }
}

}  // namespace

int main() {
  Pool pool(3);
  pool.sched.spawn(scenario(pool));
  // Keepalive probing is a perpetual task: drive the sim to a horizon
  // instead of draining the queue.
  pool.sched.run_until(100_ms);
  return 0;
}
