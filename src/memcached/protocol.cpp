#include "memcached/protocol.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

namespace rmc::mc::proto {

namespace {

std::string_view view_of(const std::vector<std::byte>& buf, std::size_t from, std::size_t len) {
  return {reinterpret_cast<const char*>(buf.data()) + from, len};
}

/// Split a protocol line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

void append_str(std::vector<std::byte>& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

void append_crlf(std::vector<std::byte>& out) { append_str(out, "\r\n"); }

bool storage_command(Command c) {
  switch (c) {
    case Command::set:
    case Command::add:
    case Command::replace:
    case Command::append:
    case Command::prepend:
    case Command::cas:
      return true;
    default:
      return false;
  }
}

const char* command_name(Command c) {
  switch (c) {
    case Command::get: return "get";
    case Command::gets: return "gets";
    case Command::set: return "set";
    case Command::add: return "add";
    case Command::replace: return "replace";
    case Command::append: return "append";
    case Command::prepend: return "prepend";
    case Command::cas: return "cas";
    case Command::del: return "delete";
    case Command::incr: return "incr";
    case Command::decr: return "decr";
    case Command::touch: return "touch";
    case Command::flush_all: return "flush_all";
    case Command::stats: return "stats";
    case Command::version: return "version";
    case Command::quit: return "quit";
  }
  return "?";
}

std::optional<Command> command_from(std::string_view name) {
  static constexpr std::pair<std::string_view, Command> kTable[] = {
      {"get", Command::get},       {"gets", Command::gets},
      {"set", Command::set},       {"add", Command::add},
      {"replace", Command::replace}, {"append", Command::append},
      {"prepend", Command::prepend}, {"cas", Command::cas},
      {"delete", Command::del},    {"incr", Command::incr},
      {"decr", Command::decr},     {"touch", Command::touch},
      {"flush_all", Command::flush_all}, {"stats", Command::stats},
      {"version", Command::version}, {"quit", Command::quit},
  };
  for (const auto& [n, c] : kTable) {
    if (n == name) return c;
  }
  return std::nullopt;
}

}  // namespace

// ------------------------------------------------------- RequestParser

std::optional<std::size_t> RequestParser::find_crlf(std::size_t from) const {
  if (buffer_.size() < 2) return std::nullopt;
  for (std::size_t i = from; i + 1 < buffer_.size(); ++i) {
    if (buffer_[i] == std::byte{'\r'} && buffer_[i + 1] == std::byte{'\n'}) return i;
  }
  return std::nullopt;
}

Result<std::optional<Request>> RequestParser::next() {
  const auto line_end = find_crlf(0);
  if (!line_end) {
    if (buffer_.size() > 8192) return Errc::protocol_error;  // unbounded line
    return std::optional<Request>{};
  }

  const std::string_view line = view_of(buffer_, 0, *line_end);
  const auto tokens = tokenize(line);
  if (tokens.empty()) return Errc::protocol_error;
  const auto command = command_from(tokens[0]);
  if (!command) return Errc::protocol_error;

  Request req;
  req.command = *command;
  std::size_t consumed = *line_end + 2;

  if (storage_command(req.command)) {
    // <cmd> <key> <flags> <exptime> <bytes> [cas] [noreply]\r\n<data>\r\n
    const bool is_cas = req.command == Command::cas;
    const std::size_t expected = is_cas ? 6 : 5;
    if (tokens.size() < expected) return Errc::protocol_error;
    req.key = std::string(tokens[1]);
    std::uint32_t bytes = 0;
    if (!parse_number(tokens[2], req.flags) || !parse_number(tokens[3], req.exptime) ||
        !parse_number(tokens[4], bytes)) {
      return Errc::protocol_error;
    }
    std::size_t next_token = 5;
    if (is_cas) {
      if (!parse_number(tokens[5], req.cas_unique)) return Errc::protocol_error;
      next_token = 6;
    }
    if (tokens.size() > next_token && tokens[next_token] == "noreply") req.noreply = true;

    // The data block plus trailing CRLF must be fully buffered.
    if (buffer_.size() < consumed + bytes + 2) return std::optional<Request>{};
    if (buffer_[consumed + bytes] != std::byte{'\r'} ||
        buffer_[consumed + bytes + 1] != std::byte{'\n'}) {
      return Errc::protocol_error;  // bad data chunk
    }
    req.data.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(consumed + bytes));
    consumed += bytes + 2;
  } else {
    switch (req.command) {
      case Command::get:
      case Command::gets:
        if (tokens.size() < 2) return Errc::protocol_error;
        for (std::size_t i = 1; i < tokens.size(); ++i) req.keys.emplace_back(tokens[i]);
        break;
      case Command::del:
        if (tokens.size() < 2) return Errc::protocol_error;
        req.key = std::string(tokens[1]);
        if (tokens.size() > 2 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::incr:
      case Command::decr:
        if (tokens.size() < 3 || !parse_number(tokens[2], req.delta)) {
          return Errc::protocol_error;
        }
        req.key = std::string(tokens[1]);
        if (tokens.size() > 3 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::touch:
        if (tokens.size() < 3 || !parse_number(tokens[2], req.exptime)) {
          return Errc::protocol_error;
        }
        req.key = std::string(tokens[1]);
        if (tokens.size() > 3 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::flush_all:
        if (tokens.size() > 1) {
          if (!parse_number(tokens[1], req.exptime)) {
            if (tokens[1] == "noreply") {
              req.noreply = true;
            } else {
              return Errc::protocol_error;
            }
          }
        }
        if (tokens.size() > 2 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::stats:
      case Command::version:
      case Command::quit:
        break;
      default:
        return Errc::protocol_error;
    }
  }

  req.wire_bytes = consumed;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
  return std::optional<Request>(std::move(req));
}

// ------------------------------------------------------------ encoding

std::vector<std::byte> encode_request(const Request& request) {
  std::vector<std::byte> out;
  out.reserve(64 + request.data.size());
  append_str(out, command_name(request.command));

  if (storage_command(request.command)) {
    append_str(out, " " + request.key + " " + std::to_string(request.flags) + " " +
                        std::to_string(request.exptime) + " " +
                        std::to_string(request.data.size()));
    if (request.command == Command::cas) {
      append_str(out, " " + std::to_string(request.cas_unique));
    }
    if (request.noreply) append_str(out, " noreply");
    append_crlf(out);
    out.insert(out.end(), request.data.begin(), request.data.end());
    append_crlf(out);
    return out;
  }

  switch (request.command) {
    case Command::get:
    case Command::gets:
      for (const auto& key : request.keys) append_str(out, " " + key);
      break;
    case Command::del:
      append_str(out, " " + request.key);
      break;
    case Command::incr:
    case Command::decr:
      append_str(out, " " + request.key + " " + std::to_string(request.delta));
      break;
    case Command::touch:
      append_str(out, " " + request.key + " " + std::to_string(request.exptime));
      break;
    case Command::flush_all:
      if (request.exptime) append_str(out, " " + std::to_string(request.exptime));
      break;
    default:
      break;
  }
  if (request.noreply) append_str(out, " noreply");
  append_crlf(out);
  return out;
}

std::vector<std::byte> encode_response(const Response& response, bool with_cas) {
  std::vector<std::byte> out;
  using Type = Response::Type;
  switch (response.type) {
    case Type::stored: append_str(out, "STORED"); break;
    case Type::not_stored: append_str(out, "NOT_STORED"); break;
    case Type::exists: append_str(out, "EXISTS"); break;
    case Type::not_found: append_str(out, "NOT_FOUND"); break;
    case Type::deleted: append_str(out, "DELETED"); break;
    case Type::touched: append_str(out, "TOUCHED"); break;
    case Type::ok: append_str(out, "OK"); break;
    case Type::number: append_str(out, std::to_string(response.number)); break;
    case Type::error: append_str(out, "ERROR"); break;
    case Type::client_error: append_str(out, "CLIENT_ERROR " + response.message); break;
    case Type::server_error: append_str(out, "SERVER_ERROR " + response.message); break;
    case Type::version: append_str(out, "VERSION " + response.message); break;
    case Type::stats:
      append_str(out, response.message);  // pre-rendered STAT lines
      append_str(out, "END");
      break;
    case Type::values:
      for (const auto& v : response.values) {
        append_str(out, "VALUE " + v.key + " " + std::to_string(v.flags) + " " +
                            std::to_string(v.data.size()));
        if (with_cas) append_str(out, " " + std::to_string(v.cas));
        append_crlf(out);
        out.insert(out.end(), v.data.begin(), v.data.end());
        append_crlf(out);
      }
      append_str(out, "END");
      break;
  }
  append_crlf(out);
  return out;
}

// ------------------------------------------------------ ResponseParser

std::optional<std::size_t> ResponseParser::find_crlf(std::size_t from) const {
  for (std::size_t i = from; i + 1 < buffer_.size(); ++i) {
    if (buffer_[i] == std::byte{'\r'} && buffer_[i + 1] == std::byte{'\n'}) return i;
  }
  return std::nullopt;
}

Result<std::optional<Response>> ResponseParser::next(Expect expect) {
  Response resp;

  if (expect == Expect::values) {
    // Parse VALUE blocks until END, all of which must be buffered.
    std::size_t cursor = 0;
    std::vector<Value> values;
    while (true) {
      const auto line_end = find_crlf(cursor);
      if (!line_end) return std::optional<Response>{};
      const std::string_view line = view_of(buffer_, cursor, *line_end - cursor);
      if (line == "END") {
        resp.type = Response::Type::values;
        resp.values = std::move(values);
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(*line_end + 2));
        return std::optional<Response>(std::move(resp));
      }
      const auto tokens = tokenize(line);
      if (tokens.size() < 4 || tokens[0] != "VALUE") return Errc::protocol_error;
      Value v;
      v.key = std::string(tokens[1]);
      std::uint32_t bytes = 0;
      if (!parse_number(tokens[2], v.flags) || !parse_number(tokens[3], bytes)) {
        return Errc::protocol_error;
      }
      if (tokens.size() > 4 && !parse_number(tokens[4], v.cas)) return Errc::protocol_error;
      const std::size_t data_start = *line_end + 2;
      if (buffer_.size() < data_start + bytes + 2) return std::optional<Response>{};
      v.data.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(data_start),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(data_start + bytes));
      values.push_back(std::move(v));
      cursor = data_start + bytes + 2;
    }
  }

  const auto line_end = find_crlf(0);
  if (!line_end) return std::optional<Response>{};
  const std::string_view line = view_of(buffer_, 0, *line_end);

  using Type = Response::Type;
  if (line == "STORED") {
    resp.type = Type::stored;
  } else if (line == "NOT_STORED") {
    resp.type = Type::not_stored;
  } else if (line == "EXISTS") {
    resp.type = Type::exists;
  } else if (line == "NOT_FOUND") {
    resp.type = Type::not_found;
  } else if (line == "DELETED") {
    resp.type = Type::deleted;
  } else if (line == "TOUCHED") {
    resp.type = Type::touched;
  } else if (line == "OK") {
    resp.type = Type::ok;
  } else if (line == "ERROR") {
    resp.type = Type::error;
  } else if (line.starts_with("CLIENT_ERROR ")) {
    resp.type = Type::client_error;
    resp.message = std::string(line.substr(13));
  } else if (line.starts_with("SERVER_ERROR ")) {
    resp.type = Type::server_error;
    resp.message = std::string(line.substr(13));
  } else if (line.starts_with("VERSION ")) {
    resp.type = Type::version;
    resp.message = std::string(line.substr(8));
  } else if (expect == Expect::number) {
    resp.type = Type::number;
    if (!parse_number(line, resp.number)) return Errc::protocol_error;
  } else {
    return Errc::protocol_error;
  }

  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(*line_end + 2));
  return std::optional<Response>(std::move(resp));
}

}  // namespace rmc::mc::proto
