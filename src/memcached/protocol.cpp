// rmclint:hotpath — request fast path; zero-alloc rule enforced here
#include "memcached/protocol.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "obs/metrics.hpp"

namespace rmc::mc::proto {

void note_key_spill() { obs::registry().counter("mc.alloc.key_spills").inc(); }

namespace {

/// Hard cap on tokens per protocol line: enough for the largest sane
/// multiget (the ablations use 64 keys) with room to spare, small enough
/// that a hostile line cannot make the tokenizer allocate.
constexpr std::size_t kMaxTokens = 128;

/// Split a protocol line into whitespace-separated tokens, writing into
/// the caller's fixed-size array. Returns the token count, or
/// kMaxTokens + 1 if the line has more tokens than fit (callers treat
/// that as a protocol error).
std::size_t tokenize(std::string_view line, std::span<std::string_view> out) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) {
      if (count == out.size()) return kMaxTokens + 1;
      out[count++] = line.substr(pos, end - pos);
    }
    pos = end;
  }
  return count;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

void append_str(std::vector<std::byte>& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  // rmclint:allow(zeroalloc): socket-transport codec — the measured-overhead baseline, off the PR 2 UCR budget
  out.insert(out.end(), p, p + s.size());
}

void append_number(std::vector<std::byte>& out, std::uint64_t v) {
  char buf[20];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  append_str(out, {buf, static_cast<std::size_t>(ptr - buf)});
}

void append_crlf(std::vector<std::byte>& out) { append_str(out, "\r\n"); }

bool storage_command(Command c) {
  switch (c) {
    case Command::set:
    case Command::add:
    case Command::replace:
    case Command::append:
    case Command::prepend:
    case Command::cas:
      return true;
    default:
      return false;
  }
}

const char* command_name(Command c) {
  switch (c) {
    case Command::get: return "get";
    case Command::gets: return "gets";
    case Command::set: return "set";
    case Command::add: return "add";
    case Command::replace: return "replace";
    case Command::append: return "append";
    case Command::prepend: return "prepend";
    case Command::cas: return "cas";
    case Command::del: return "delete";
    case Command::incr: return "incr";
    case Command::decr: return "decr";
    case Command::touch: return "touch";
    case Command::flush_all: return "flush_all";
    case Command::stats: return "stats";
    case Command::version: return "version";
    case Command::quit: return "quit";
  }
  return "?";
}

std::optional<Command> command_from(std::string_view name) {
  static constexpr std::pair<std::string_view, Command> kTable[] = {
      {"get", Command::get},       {"gets", Command::gets},
      {"set", Command::set},       {"add", Command::add},
      {"replace", Command::replace}, {"append", Command::append},
      {"prepend", Command::prepend}, {"cas", Command::cas},
      {"delete", Command::del},    {"incr", Command::incr},
      {"decr", Command::decr},     {"touch", Command::touch},
      {"flush_all", Command::flush_all}, {"stats", Command::stats},
      {"version", Command::version}, {"quit", Command::quit},
  };
  for (const auto& [n, c] : kTable) {
    if (n == name) return c;
  }
  return std::nullopt;
}

/// Find "\r\n" in `hay` starting at `from`; index into `hay`.
std::optional<std::size_t> find_crlf(std::string_view hay, std::size_t from) {
  if (hay.size() < 2) return std::nullopt;
  for (std::size_t i = from; i + 1 < hay.size(); ++i) {
    if (hay[i] == '\r' && hay[i + 1] == '\n') return i;
  }
  return std::nullopt;
}

}  // namespace

// ------------------------------------------------------- RequestParser

Result<std::optional<Request>> RequestParser::next() {
  const char* base = reinterpret_cast<const char*>(buffer_.data()) + consumed_;
  const std::size_t avail = buffer_.size() - consumed_;
  const std::string_view window{base, avail};

  const auto line_end = find_crlf(window, scan_from_);
  if (!line_end) {
    scan_from_ = avail > 0 ? avail - 1 : 0;  // the tail byte may be a lone '\r'
    if (avail > 8192) return Errc::protocol_error;  // unbounded line
    return std::optional<Request>{};
  }

  const std::string_view line = window.substr(0, *line_end);
  // static: string_view's default ctor is non-trivial, so an automatic
  // array would zero 2 KB per request. Constant-initialized (no guard),
  // and the simulator is single-threaded; only [0, token_count) is read.
  static std::array<std::string_view, kMaxTokens> token_storage;
  const std::size_t token_count = tokenize(line, token_storage);
  if (token_count == 0 || token_count > kMaxTokens) return Errc::protocol_error;
  const std::span<const std::string_view> tokens{token_storage.data(), token_count};
  const auto command = command_from(tokens[0]);
  if (!command) return Errc::protocol_error;

  Request req;
  req.command = *command;
  std::size_t consumed = *line_end + 2;

  if (storage_command(req.command)) {
    // <cmd> <key> <flags> <exptime> <bytes> [cas] [noreply]\r\n<data>\r\n
    const bool is_cas = req.command == Command::cas;
    const std::size_t expected = is_cas ? 6 : 5;
    if (tokens.size() < expected) return Errc::protocol_error;
    if (!req.add_key(tokens[1])) return Errc::protocol_error;  // key too long
    std::uint32_t bytes = 0;
    if (!parse_number(tokens[2], req.flags) || !parse_number(tokens[3], req.exptime) ||
        !parse_number(tokens[4], bytes)) {
      return Errc::protocol_error;
    }
    std::size_t next_token = 5;
    if (is_cas) {
      if (!parse_number(tokens[5], req.cas_unique)) return Errc::protocol_error;
      next_token = 6;
    }
    if (tokens.size() > next_token && tokens[next_token] == "noreply") req.noreply = true;

    // The data block plus trailing CRLF must be fully buffered.
    if (avail < consumed + bytes + 2) return std::optional<Request>{};
    if (window[consumed + bytes] != '\r' || window[consumed + bytes + 1] != '\n') {
      return Errc::protocol_error;  // bad data chunk
    }
    const auto* data = buffer_.data() + consumed_ + consumed;
    req.data.assign(data, data + bytes);
    consumed += bytes + 2;
  } else {
    switch (req.command) {
      case Command::get:
      case Command::gets:
        if (tokens.size() < 2) return Errc::protocol_error;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          if (!req.add_key(tokens[i])) return Errc::protocol_error;
        }
        break;
      case Command::del:
        if (tokens.size() < 2) return Errc::protocol_error;
        if (!req.add_key(tokens[1])) return Errc::protocol_error;
        if (tokens.size() > 2 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::incr:
      case Command::decr:
        if (tokens.size() < 3 || !parse_number(tokens[2], req.delta)) {
          return Errc::protocol_error;
        }
        if (!req.add_key(tokens[1])) return Errc::protocol_error;
        if (tokens.size() > 3 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::touch:
        if (tokens.size() < 3 || !parse_number(tokens[2], req.exptime)) {
          return Errc::protocol_error;
        }
        if (!req.add_key(tokens[1])) return Errc::protocol_error;
        if (tokens.size() > 3 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::flush_all:
        if (tokens.size() > 1) {
          if (!parse_number(tokens[1], req.exptime)) {
            if (tokens[1] == "noreply") {
              req.noreply = true;
            } else {
              return Errc::protocol_error;
            }
          }
        }
        if (tokens.size() > 2 && tokens.back() == "noreply") req.noreply = true;
        break;
      case Command::stats:
      case Command::version:
      case Command::quit:
        break;
      default:
        return Errc::protocol_error;
    }
  }

  req.wire_bytes = consumed;
  consumed_ += consumed;
  scan_from_ = 0;
  return std::optional<Request>(std::move(req));
}

// ------------------------------------------------------------ encoding

std::vector<std::byte> encode_request(const Request& request) {
  std::vector<std::byte> out;
  // rmclint:allow(zeroalloc): socket-transport codec — the measured-overhead baseline, off the PR 2 UCR budget
  out.reserve(64 + request.data.size());
  append_str(out, command_name(request.command));

  if (storage_command(request.command)) {
    append_str(out, " ");
    append_str(out, request.key());
    append_str(out, " ");
    append_number(out, request.flags);
    append_str(out, " ");
    append_number(out, request.exptime);
    append_str(out, " ");
    append_number(out, request.data.size());
    if (request.command == Command::cas) {
      append_str(out, " ");
      append_number(out, request.cas_unique);
    }
    if (request.noreply) append_str(out, " noreply");
    append_crlf(out);
    // rmclint:allow(zeroalloc): socket-transport codec — the measured-overhead baseline, off the PR 2 UCR budget
    out.insert(out.end(), request.data.begin(), request.data.end());
    append_crlf(out);
    return out;
  }

  switch (request.command) {
    case Command::get:
    case Command::gets:
      for (std::size_t i = 0; i < request.key_count(); ++i) {
        append_str(out, " ");
        append_str(out, request.key_at(i));
      }
      break;
    case Command::del:
      append_str(out, " ");
      append_str(out, request.key());
      break;
    case Command::incr:
    case Command::decr:
      append_str(out, " ");
      append_str(out, request.key());
      append_str(out, " ");
      append_number(out, request.delta);
      break;
    case Command::touch:
      append_str(out, " ");
      append_str(out, request.key());
      append_str(out, " ");
      append_number(out, request.exptime);
      break;
    case Command::flush_all:
      if (request.exptime) {
        append_str(out, " ");
        append_number(out, request.exptime);
      }
      break;
    default:
      break;
  }
  if (request.noreply) append_str(out, " noreply");
  append_crlf(out);
  return out;
}

void append_bytes(std::vector<std::byte>& out, std::string_view s) { append_str(out, s); }

void append_u64(std::vector<std::byte>& out, std::uint64_t v) { append_number(out, v); }

void encode_response_into(const Response& response, bool with_cas,
                          std::vector<std::byte>& out) {
  using Type = Response::Type;
  switch (response.type) {
    case Type::stored: append_str(out, "STORED"); break;
    case Type::not_stored: append_str(out, "NOT_STORED"); break;
    case Type::exists: append_str(out, "EXISTS"); break;
    case Type::not_found: append_str(out, "NOT_FOUND"); break;
    case Type::deleted: append_str(out, "DELETED"); break;
    case Type::touched: append_str(out, "TOUCHED"); break;
    case Type::ok: append_str(out, "OK"); break;
    case Type::number: append_number(out, response.number); break;
    case Type::error: append_str(out, "ERROR"); break;
    case Type::client_error:
      append_str(out, "CLIENT_ERROR ");
      append_str(out, response.message);
      break;
    case Type::server_error:
      append_str(out, "SERVER_ERROR ");
      append_str(out, response.message);
      break;
    case Type::version:
      append_str(out, "VERSION ");
      append_str(out, response.message);
      break;
    case Type::stats:
      append_str(out, response.message);  // pre-rendered STAT lines
      append_str(out, "END");
      break;
    case Type::values:
      for (const auto& v : response.values) {
        append_str(out, "VALUE ");
        append_str(out, v.key);
        append_str(out, " ");
        append_number(out, v.flags);
        append_str(out, " ");
        append_number(out, v.data.size());
        if (with_cas) {
          append_str(out, " ");
          append_number(out, v.cas);
        }
        append_crlf(out);
        // rmclint:allow(zeroalloc): socket-transport codec — the measured-overhead baseline, off the PR 2 UCR budget
        out.insert(out.end(), v.data.begin(), v.data.end());
        append_crlf(out);
      }
      append_str(out, "END");
      break;
  }
  append_crlf(out);
}

std::vector<std::byte> encode_response(const Response& response, bool with_cas) {
  std::vector<std::byte> out;
  encode_response_into(response, with_cas, out);
  return out;
}

// ------------------------------------------------------ ResponseParser

Result<std::optional<Response>> ResponseParser::next(Expect expect) {
  Response resp;
  const char* base = reinterpret_cast<const char*>(buffer_.data()) + consumed_;
  const std::size_t avail = buffer_.size() - consumed_;
  const std::string_view window{base, avail};

  if (expect == Expect::values) {
    // Parse VALUE blocks until END, all of which must be buffered.
    std::size_t cursor = 0;
    std::vector<Value> values;
    while (true) {
      const auto line_end = find_crlf(window, cursor);
      if (!line_end) return std::optional<Response>{};
      const std::string_view line = window.substr(cursor, *line_end - cursor);
      if (line == "END") {
        resp.type = Response::Type::values;
        resp.values = std::move(values);
        consumed_ += *line_end + 2;
        return std::optional<Response>(std::move(resp));
      }
      std::array<std::string_view, kMaxTokens> token_storage;
      const std::size_t token_count = tokenize(line, token_storage);
      if (token_count < 4 || token_count > kMaxTokens || token_storage[0] != "VALUE") {
        return Errc::protocol_error;
      }
      Value v;
      v.key = std::string(token_storage[1]);
      std::uint32_t bytes = 0;
      if (!parse_number(token_storage[2], v.flags) || !parse_number(token_storage[3], bytes)) {
        return Errc::protocol_error;
      }
      if (token_count > 4 && !parse_number(token_storage[4], v.cas)) {
        return Errc::protocol_error;
      }
      const std::size_t data_start = *line_end + 2;
      if (avail < data_start + bytes + 2) return std::optional<Response>{};
      const auto* data = buffer_.data() + consumed_ + data_start;
      v.data.assign(data, data + bytes);
      // rmclint:allow(zeroalloc): socket-transport response parse (client side) — baseline path, off the PR 2 UCR budget
      values.push_back(std::move(v));
      cursor = data_start + bytes + 2;
    }
  }

  const auto line_end = find_crlf(window, 0);
  if (!line_end) return std::optional<Response>{};
  const std::string_view line = window.substr(0, *line_end);

  using Type = Response::Type;
  if (line == "STORED") {
    resp.type = Type::stored;
  } else if (line == "NOT_STORED") {
    resp.type = Type::not_stored;
  } else if (line == "EXISTS") {
    resp.type = Type::exists;
  } else if (line == "NOT_FOUND") {
    resp.type = Type::not_found;
  } else if (line == "DELETED") {
    resp.type = Type::deleted;
  } else if (line == "TOUCHED") {
    resp.type = Type::touched;
  } else if (line == "OK") {
    resp.type = Type::ok;
  } else if (line == "ERROR") {
    resp.type = Type::error;
  } else if (line.starts_with("CLIENT_ERROR ")) {
    resp.type = Type::client_error;
    resp.message = std::string(line.substr(13));
  } else if (line.starts_with("SERVER_ERROR ")) {
    resp.type = Type::server_error;
    resp.message = std::string(line.substr(13));
  } else if (line.starts_with("VERSION ")) {
    resp.type = Type::version;
    resp.message = std::string(line.substr(8));
  } else if (expect == Expect::number) {
    resp.type = Type::number;
    if (!parse_number(line, resp.number)) return Errc::protocol_error;
  } else {
    return Errc::protocol_error;
  }

  consumed_ += *line_end + 2;
  return std::optional<Response>(std::move(resp));
}

}  // namespace rmc::mc::proto
