// The memcached client library (libmemcached 0.45 equivalent).
//
// A Client owns a pool of server connections; each key is routed by a hash
// of the key modulo the pool size (the client-side server selection of
// §II-C — no central directory). Two connection types implement the same
// interface:
//
//  * TextConn — the classic sockets path: memcached ASCII protocol over a
//    byte stream (works over 1GigE TCP, IPoIB, SDP, TOE — whatever
//    NetStack it is given), TCP_NODELAY semantics.
//  * UcrConn — §V: operations as active messages; the reply names the
//    client's counter C as target counter; GET allocates the destination
//    buffer only once the response header reveals the item length.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "memcached/ketama.hpp"
#include "memcached/protocol.hpp"
#include "memcached/store.hpp"
#include "memcached/ucr_proto.hpp"
#include "rfp/channel.hpp"
#include "sockets/stack.hpp"
#include "ucr/runtime.hpp"

namespace rmc::mc {

/// Key->server mapping strategy (libmemcached distributions).
enum class Distribution : std::uint8_t {
  modulo,  ///< hash(key) % server_count — the classic default
  ketama,  ///< MD5 continuum; minimal remapping when the pool changes
};

struct ClientBehavior {
  /// UCR transport mode for server connections:
  ///  * rpc          — classic active-message request/response (§V).
  ///  * onesided_get — reads served by RDMA Reads against the published
  ///                   index (PR 4); writes stay RPC.
  ///  * rfp          — server-bypass rings for the whole command set:
  ///                   requests RDMA-written into a server-polled ring,
  ///                   responses RDMA-written back and polled locally
  ///                   (DESIGN.md §16). Every mode falls back to RPC per
  ///                   op when its bypass cannot serve it.
  enum class Mode : std::uint8_t { rpc, onesided_get, rfp };

  HashKind key_hash = HashKind::default_jenkins;
  Distribution distribution = Distribution::modulo;
  sim::Time op_timeout = 1 * kNsPerSec;  ///< UCR wait-with-timeout (§IV-A)
  sim::Time format_ns = 600;             ///< client-side request marshalling
  double result_copy_ns_per_byte = 0.08; ///< copying values into results
  /// Use unreliable (UD) endpoints for UCR servers: §VII future work —
  /// no per-client server state, but small values only and operations
  /// may time out under packet loss (the Facebook-UDP operating mode).
  bool unreliable_ucr = false;
  /// Speak the memcached binary protocol on socket servers (auto-detected
  /// server side, like memcached 1.4).
  bool binary_protocol = false;
  /// UCR transport mode (see Mode). rpc by default: the RPC-only request
  /// stream is byte-identical to every pre-mode build.
  Mode mode = Mode::rpc;
  /// Deprecated shim for Mode::onesided_get — still honored (promotes
  /// `mode` when that is rpc) so existing examples/tests compile; prefer
  /// `mode`. Do not set both to different non-rpc answers.
  bool onesided_get = false;
  /// The mode after the deprecated bool shim is applied.
  Mode effective_mode() const {
    if (mode != Mode::rpc) return mode;
    return onesided_get ? Mode::onesided_get : Mode::rpc;
  }
  /// Torn-observation re-reads before a one-sided GET falls back to RPC.
  std::uint32_t onesided_torn_retries = 2;
  /// RFP ring geometry/poll knobs (Mode::rfp connections only).
  rfp::ChannelConfig rfp{};
  /// Per-UCR-connection landing arena for GET/mget values. The default
  /// matches the historical fixed size; fleet-scale pools (thousands of
  /// connections) shrink it — overflow falls back to a side buffer, so a
  /// small arena is safe, just metered (mc.alloc.arena_overflows).
  std::size_t arena_bytes = 8 * 1024 * 1024;

  // ---- failure recovery (all off by default: a client with the default
  // behavior is byte-identical to the pre-fault-tolerance one) ----

  /// Retry an operation this many times after a transport failure
  /// (disconnected / timed_out), reconnecting and re-routing through the
  /// current pool view between attempts. 0 = single attempt.
  std::uint32_t max_retries = 0;
  /// Delay before the first retry; doubles per attempt (capped at 64x).
  sim::Time retry_backoff = 20'000;  // 20 us
  /// Eject a server from key routing after this many consecutive
  /// transport failures (0 = never eject; pools of one never eject).
  std::uint32_t eject_after_failures = 2;
  /// Probe ejected servers for rejoin this often (0 = no probing; a
  /// successful operation on an ejected server also rejoins it).
  sim::Time rejoin_interval = 0;
  std::uint32_t rejoin_attempts = 8;
};

/// get_into result: the value bytes landed in the caller's buffer.
struct GetIntoResult {
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
};

/// Per-key slot of a batched multiget (mget_into). The caller may provide
/// a destination buffer per key in `dest`; on return, `value` points at
/// where the bytes actually landed — `dest` when provided and big enough,
/// otherwise transport-internal storage that stays valid until the next
/// operation on the same client. A miss leaves hit == false.
struct MgetSlot {
  std::span<std::byte> dest{};          ///< optional caller buffer (in)
  std::span<const std::byte> value{};   ///< where the value landed (out)
  std::uint32_t value_len = 0;          ///< full value length (out)
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  bool hit = false;
};

/// One server connection (transport-specific).
class ServerConn {
 public:
  virtual ~ServerConn() = default;
  virtual sim::Task<Status> connect() = 0;
  virtual sim::Task<Result<proto::Value>> get(std::string_view key, bool with_cas) = 0;
  /// Zero-allocation GET: the value is written into `dest` (too_large if it
  /// does not fit). Transports without a direct-landing path fall back to
  /// get() and copy.
  virtual sim::Task<Result<GetIntoResult>> get_into(std::string_view key,
                                                    std::span<std::byte> dest,
                                                    bool with_cas);
  virtual sim::Task<Result<std::vector<std::optional<proto::Value>>>> mget(
      std::span<const std::string> keys, bool with_cas) = 0;
  /// Batched multiget into caller-provided slots (slots.size() >=
  /// keys.size(); slots[i] answers keys[i]). UCR overrides this with the
  /// true server-side multiget — one request AM per key-block chunk, one
  /// scatter-gather reply — and is allocation-free in steady state. The
  /// base implementation loops get() per key (socket transports): correct
  /// but allocating, and values land only when `dest` is provided and
  /// large enough.
  virtual sim::Task<Status> mget_into(std::span<const std::string_view> keys,
                                      std::span<MgetSlot> slots, bool with_cas);
  virtual sim::Task<Status> store(SetMode mode, std::string_view key,
                                  std::span<const std::byte> value, std::uint32_t flags,
                                  std::uint32_t exptime, std::uint64_t cas) = 0;
  virtual sim::Task<Status> del(std::string_view key) = 0;
  virtual sim::Task<Result<std::uint64_t>> arith(std::string_view key, std::uint64_t delta,
                                                 bool decrement) = 0;
  virtual sim::Task<Status> touch(std::string_view key, std::uint32_t exptime) = 0;
  virtual sim::Task<Status> flush_all() = 0;
  virtual bool alive() const = 0;
};

class Client {
 public:
  Client(sim::Scheduler& sched, sim::Host& host, ClientBehavior behavior = {});
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// memcached_server_add: register a server reachable over a byte-stream
  /// stack (the Sockets transports of the evaluation).
  void add_server_socket(sock::NetStack& stack, sim::NicAddr addr, std::uint16_t port);

  /// Register a server reachable over UCR (the paper's design).
  void add_server_ucr(ucr::Runtime& runtime, sim::NicAddr addr, std::uint16_t port);

  /// Establish every registered connection.
  sim::Task<Status> connect_all();

  std::size_t server_count() const { return conns_.size(); }
  /// Which server a key routes to (exposed for tests). Ejected servers
  /// are routed around: ketama re-hashes over the surviving pool, modulo
  /// probes forward to the next live server.
  std::size_t server_index(std::string_view key) const;
  /// Pool-health view: has this server been ejected from routing?
  bool server_ejected(std::size_t index) const {
    return index < health_.size() && health_[index].ejected;
  }

  // ------------------------------------------------------- operations
  sim::Task<Status> set(std::string_view key, std::span<const std::byte> value,
                        std::uint32_t flags = 0, std::uint32_t exptime = 0);
  sim::Task<Status> add(std::string_view key, std::span<const std::byte> value,
                        std::uint32_t flags = 0, std::uint32_t exptime = 0);
  sim::Task<Status> replace(std::string_view key, std::span<const std::byte> value,
                            std::uint32_t flags = 0, std::uint32_t exptime = 0);
  sim::Task<Status> append(std::string_view key, std::span<const std::byte> value);
  sim::Task<Status> prepend(std::string_view key, std::span<const std::byte> value);
  sim::Task<Status> cas(std::string_view key, std::span<const std::byte> value,
                        std::uint64_t cas_unique, std::uint32_t flags = 0,
                        std::uint32_t exptime = 0);
  sim::Task<Result<proto::Value>> get(std::string_view key);
  /// Zero-allocation GET: value bytes land in `dest` (steady-state UCR GETs
  /// through this path perform no heap allocation).
  sim::Task<Result<GetIntoResult>> get_into(std::string_view key, std::span<std::byte> dest);
  /// Like memcached_gets: the returned Value carries the CAS id.
  sim::Task<Result<proto::Value>> gets(std::string_view key);
  /// Multi-get: results positionally match `keys`; miss = nullopt.
  sim::Task<Result<std::vector<std::optional<proto::Value>>>> mget(
      std::span<const std::string> keys);
  /// Batched multiget into caller-provided slots (slots[i] answers
  /// keys[i]). With a single-server pool this is a zero-alloc pass-through
  /// to the connection's batched path; multi-server pools group keys per
  /// server first (which allocates).
  sim::Task<Status> mget_into(std::span<const std::string_view> keys,
                              std::span<MgetSlot> slots);
  sim::Task<Status> del(std::string_view key);
  sim::Task<Result<std::uint64_t>> incr(std::string_view key, std::uint64_t delta);
  sim::Task<Result<std::uint64_t>> decr(std::string_view key, std::uint64_t delta);
  sim::Task<Status> touch(std::string_view key, std::uint32_t exptime);
  /// flush_all fan-out to every server.
  sim::Task<Status> flush_all();

 private:
  /// Per-server failure tracking (drives ejection / rejoin).
  struct ServerHealth {
    bool ejected = false;
    bool probing = false;  ///< a rejoin_probe task is running
    std::uint32_t consecutive_failures = 0;
  };

  ServerConn& conn_for(std::string_view key) { return *conns_[server_index(key)]; }
  void register_server(std::string name);

  static bool transport_error(Errc e) {
    return e == Errc::disconnected || e == Errc::timed_out;
  }

  /// Run `op` against the server the key routes to, retrying transport
  /// failures per ClientBehavior (reconnect, backoff, re-route). Defined
  /// in client.cpp — all instantiations live there.
  template <typename Op>
  std::invoke_result_t<Op&, ServerConn&> with_retries(std::string_view key, Op op);

  sim::Task<Status> ensure_conn(std::size_t index);
  void note_failure(std::size_t index);
  void note_success(std::size_t index);
  void rebuild_routing();
  sim::Task<> rejoin_probe(std::size_t index);

  sim::Scheduler* sched_;
  sim::Host* host_;
  ClientBehavior behavior_;
  std::vector<std::unique_ptr<ServerConn>> conns_;
  std::vector<std::string> server_names_;
  std::vector<ServerHealth> health_;
  KetamaContinuum continuum_;
  /// Ketama over the surviving pool: continuum index -> conns_ index.
  /// Empty while nobody is ejected (the continuum then spans all servers).
  std::vector<std::size_t> alive_to_conn_;
};

}  // namespace rmc::mc
