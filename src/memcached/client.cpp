#include "memcached/client.hpp"

#include "memcached/binary.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "ucr/wire.hpp"
#include "common/slotmap.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "onesided/remote_getter.hpp"

namespace rmc::mc {

namespace {

/// Request assembly on the client is payload work (header encode, key
/// pack, send_message staging) as opposed to simulator engine overhead.
const std::uint16_t kProfClientBuild =
    obs::profiler().register_scope("prof.mc.client.build", obs::ScopeKind::payload);

proto::Command storage_command(SetMode mode) {
  switch (mode) {
    case SetMode::set: return proto::Command::set;
    case SetMode::add: return proto::Command::add;
    case SetMode::replace: return proto::Command::replace;
    case SetMode::append: return proto::Command::append;
    case SetMode::prepend: return proto::Command::prepend;
    case SetMode::cas: return proto::Command::cas;
  }
  return proto::Command::set;
}

ucrp::Op storage_op(SetMode mode) {
  switch (mode) {
    case SetMode::set: return ucrp::Op::set;
    case SetMode::add: return ucrp::Op::add;
    case SetMode::replace: return ucrp::Op::replace;
    case SetMode::append: return ucrp::Op::append;
    case SetMode::prepend: return ucrp::Op::prepend;
    case SetMode::cas: return ucrp::Op::cas;
  }
  return ucrp::Op::set;
}

Status status_from(proto::Response::Type type) {
  using Type = proto::Response::Type;
  switch (type) {
    case Type::stored:
    case Type::deleted:
    case Type::touched:
    case Type::ok:
      return {};
    case Type::not_stored: return Errc::not_stored;
    case Type::exists: return Errc::exists;
    case Type::not_found: return Errc::not_found;
    case Type::client_error: return Errc::invalid_argument;
    default: return Errc::protocol_error;
  }
}

/// Sim-time spans decomposing one client operation into the paper's
/// stages: build (request format + issue), wait (fabric + server turn-
/// around), complete (reply decode + result copy). Stamps are adjacent,
/// so build + wait + complete == total exactly. Recorded on completed
/// RPC round trips; the one-sided GET path keeps its own metrics.
/// Always on: recording is two array writes, sim behavior is untouched.
struct LatencySpans {
  obs::Timer* build;
  obs::Timer* wait;
  obs::Timer* complete;
  obs::Timer* total;
};

const LatencySpans& get_spans() {
  static const LatencySpans s{&obs::registry().timer("mc.latency.get.build"),
                              &obs::registry().timer("mc.latency.get.wait"),
                              &obs::registry().timer("mc.latency.get.complete"),
                              &obs::registry().timer("mc.latency.get.total")};
  return s;
}

const LatencySpans& set_spans() {
  static const LatencySpans s{&obs::registry().timer("mc.latency.set.build"),
                              &obs::registry().timer("mc.latency.set.wait"),
                              &obs::registry().timer("mc.latency.set.complete"),
                              &obs::registry().timer("mc.latency.set.total")};
  return s;
}

const LatencySpans& mget_spans() {
  static const LatencySpans s{&obs::registry().timer("mc.latency.mget.build"),
                              &obs::registry().timer("mc.latency.mget.wait"),
                              &obs::registry().timer("mc.latency.mget.complete"),
                              &obs::registry().timer("mc.latency.mget.total")};
  return s;
}

Status status_from(ucrp::RStatus status) {
  switch (status) {
    case ucrp::RStatus::ok:
    case ucrp::RStatus::stored:
    case ucrp::RStatus::deleted:
    case ucrp::RStatus::touched:
    case ucrp::RStatus::value:
    case ucrp::RStatus::number:
      return {};
    case ucrp::RStatus::not_stored: return Errc::not_stored;
    case ucrp::RStatus::exists: return Errc::exists;
    case ucrp::RStatus::not_found: return Errc::not_found;
    case ucrp::RStatus::client_error: return Errc::invalid_argument;
    case ucrp::RStatus::server_error: return Errc::no_resources;
  }
  return Errc::protocol_error;
}

}  // namespace

sim::Task<Result<GetIntoResult>> ServerConn::get_into(std::string_view key,
                                                      std::span<std::byte> dest,
                                                      bool with_cas) {
  // Generic fallback: fetch a Value and copy it into the caller's buffer.
  auto r = co_await get(key, with_cas);
  if (!r.ok()) co_return r.error();
  if (r->data.size() > dest.size()) co_return Errc::too_large;
  std::memcpy(dest.data(), r->data.data(), r->data.size());
  GetIntoResult out;
  out.value_len = static_cast<std::uint32_t>(r->data.size());
  out.flags = r->flags;
  out.cas = r->cas;
  co_return out;
}

sim::Task<Status> ServerConn::mget_into(std::span<const std::string_view> keys,
                                        std::span<MgetSlot> slots, bool with_cas) {
  // Generic fallback: one get() per key. Values land only when the caller
  // provided a `dest` large enough — this transport has no stable internal
  // storage to point `value` at once the per-key Value dies.
  if (keys.size() > slots.size()) co_return Errc::invalid_argument;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    MgetSlot& slot = slots[i];
    slot.hit = false;
    slot.value = {};
    auto r = co_await get(keys[i], with_cas);
    if (!r.ok()) {
      if (r.error() == Errc::not_found) continue;
      co_return r.error();
    }
    slot.value_len = static_cast<std::uint32_t>(r->data.size());
    slot.flags = r->flags;
    slot.cas = r->cas;
    slot.hit = true;
    if (r->data.size() <= slot.dest.size()) {
      std::memcpy(slot.dest.data(), r->data.data(), r->data.size());
      slot.value = std::span<const std::byte>(slot.dest.data(), r->data.size());
    }
  }
  co_return Status{};
}

// ---------------------------------------------------------------- text --

class TextConn final : public ServerConn {
 public:
  TextConn(sim::Scheduler& sched, sim::Host& host, const ClientBehavior& behavior,
           sock::NetStack& stack, sim::NicAddr addr, std::uint16_t port)
      : sched_(&sched), host_(&host), behavior_(behavior), stack_(&stack), addr_(addr),
        port_(port) {}

  sim::Task<Status> connect() override {
    auto r = co_await stack_->connect(addr_, port_);
    if (!r.ok()) co_return r.error();
    socket_ = *r;
    co_return Status{};
  }

  bool alive() const override {
    return socket_ && socket_->state() == sock::SockState::established;
  }

  sim::Task<Result<proto::Value>> get(std::string_view key, bool with_cas) override {
    // Stream conns have no build/wait boundary (one buffered round trip),
    // so only the end-to-end span is recorded.
    const sim::Time t0 = sched_->now();
    std::vector<std::string> keys{std::string(key)};
    auto r = co_await mget(keys, with_cas);
    if (!r.ok()) co_return r.error();
    if (!(*r)[0].has_value()) co_return Errc::not_found;
    get_spans().total->record(sched_->now() - t0);
    co_return std::move(*(*r)[0]);
  }

  sim::Task<Result<std::vector<std::optional<proto::Value>>>> mget(
      std::span<const std::string> keys, bool with_cas) override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = with_cas ? proto::Command::gets : proto::Command::get;
    for (const auto& k : keys) {
      if (!req.add_key(k)) co_return Errc::invalid_argument;
    }
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::values);
    if (!resp.ok()) co_return resp.error();

    std::vector<std::optional<proto::Value>> out(keys.size());
    std::size_t copied_bytes = 0;
    for (auto& value : resp->values) {
      copied_bytes += value.data.size();
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == value.key && !out[i]) {
          out[i] = std::move(value);
          break;
        }
      }
    }
    co_await host_->cpu().consume(static_cast<sim::Time>(
        static_cast<double>(copied_bytes) * behavior_.result_copy_ns_per_byte));
    co_return out;
  }

  sim::Task<Status> store(SetMode mode, std::string_view key,
                          std::span<const std::byte> value, std::uint32_t flags,
                          std::uint32_t exptime, std::uint64_t cas) override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = storage_command(mode);
    req.set_key(key);
    req.flags = flags;
    req.exptime = exptime;
    req.cas_unique = cas;
    req.data.assign(value.begin(), value.end());
    const sim::Time t0 = sched_->now();
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::simple);
    if (!resp.ok()) co_return resp.error();
    set_spans().total->record(sched_->now() - t0);
    co_return status_from(resp->type);
  }

  sim::Task<Status> del(std::string_view key) override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = proto::Command::del;
    req.set_key(key);
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::simple);
    if (!resp.ok()) co_return resp.error();
    co_return status_from(resp->type);
  }

  sim::Task<Result<std::uint64_t>> arith(std::string_view key, std::uint64_t delta,
                                         bool decrement) override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = decrement ? proto::Command::decr : proto::Command::incr;
    req.set_key(key);
    req.delta = delta;
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::number);
    if (!resp.ok()) co_return resp.error();
    if (resp->type == proto::Response::Type::number) co_return resp->number;
    const Status st = status_from(resp->type);
    co_return st.ok() ? Errc::protocol_error : st.error();
  }

  sim::Task<Status> touch(std::string_view key, std::uint32_t exptime) override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = proto::Command::touch;
    req.set_key(key);
    req.exptime = exptime;
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::simple);
    if (!resp.ok()) co_return resp.error();
    co_return status_from(resp->type);
  }

  sim::Task<Status> flush_all() override {
    if (!alive()) co_return Errc::disconnected;
    proto::Request req;
    req.command = proto::Command::flush_all;
    auto resp = co_await round_trip(req, proto::ResponseParser::Expect::simple);
    if (!resp.ok()) co_return resp.error();
    co_return status_from(resp->type);
  }

 private:
  sim::Task<Result<proto::Response>> round_trip(const proto::Request& request,
                                                proto::ResponseParser::Expect expect) {
    co_await host_->cpu().consume(behavior_.format_ns);
    const auto bytes = proto::encode_request(request);
    auto sent = co_await socket_->send(bytes);
    if (!sent.ok()) co_return sent.error();

    std::vector<std::byte> chunk(16 * 1024);
    while (true) {
      auto parsed = parser_.next(expect);
      if (!parsed.ok()) co_return parsed.error();
      if (parsed->has_value()) co_return std::move(**parsed);
      auto n = co_await socket_->recv(chunk);
      if (!n.ok()) co_return n.error();
      if (*n == 0) co_return Errc::disconnected;
      parser_.feed(std::span<const std::byte>(chunk.data(), *n));
    }
  }

  sim::Scheduler* sched_;
  sim::Host* host_;
  ClientBehavior behavior_;
  sock::NetStack* stack_;
  sim::NicAddr addr_;
  std::uint16_t port_;
  sock::Socket* socket_ = nullptr;
  proto::ResponseParser parser_;
};

// -------------------------------------------------------------- binary --

/// ServerConn speaking the memcached binary protocol over a byte stream
/// (ClientBehavior::binary_protocol). Multi-get uses the pipelined
/// getkq...noop pattern real binary clients use.
class BinaryConn final : public ServerConn {
 public:
  BinaryConn(sim::Scheduler& sched, sim::Host& host, const ClientBehavior& behavior,
             sock::NetStack& stack, sim::NicAddr addr, std::uint16_t port)
      : sched_(&sched), host_(&host), behavior_(behavior), stack_(&stack), addr_(addr),
        port_(port) {}

  sim::Task<Status> connect() override {
    auto r = co_await stack_->connect(addr_, port_);
    if (!r.ok()) co_return r.error();
    socket_ = *r;
    co_return Status{};
  }

  bool alive() const override {
    return socket_ && socket_->state() == sock::SockState::established;
  }

  sim::Task<Result<proto::Value>> get(std::string_view key, bool /*with_cas*/) override {
    if (!alive()) co_return Errc::disconnected;
    const sim::Time t0 = sched_->now();
    bproto::Request req;
    req.opcode = bproto::Opcode::get;
    req.key = std::string(key);
    auto resp = co_await round_trip(req);
    if (!resp.ok()) co_return resp.error();
    if (resp->status != bproto::BStatus::ok) co_return status_of(resp->status).error();
    proto::Value value;
    value.key = std::string(key);
    value.flags = resp->flags;
    value.cas = resp->cas;
    value.data = std::move(resp->value);
    co_await host_->cpu().consume(static_cast<sim::Time>(
        static_cast<double>(value.data.size()) * behavior_.result_copy_ns_per_byte));
    get_spans().total->record(sched_->now() - t0);
    co_return value;
  }

  sim::Task<Result<std::vector<std::optional<proto::Value>>>> mget(
      std::span<const std::string> keys, bool /*with_cas*/) override {
    if (!alive()) co_return Errc::disconnected;
    co_await host_->cpu().consume(behavior_.format_ns);
    // Pipeline: one quiet getkq per key, then a noop fence. Misses stay
    // silent; hits come back tagged with opaque and key.
    std::vector<std::byte> wire;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      bproto::Request req;
      req.opcode = bproto::Opcode::getkq;
      req.key = keys[i];
      req.opaque = static_cast<std::uint32_t>(i);
      const auto bytes = bproto::encode_request(req);
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    bproto::Request fence;
    fence.opcode = bproto::Opcode::noop;
    fence.opaque = 0xffffffff;
    const auto fence_bytes = bproto::encode_request(fence);
    wire.insert(wire.end(), fence_bytes.begin(), fence_bytes.end());
    auto sent = co_await socket_->send(wire);
    if (!sent.ok()) co_return sent.error();

    std::vector<std::optional<proto::Value>> out(keys.size());
    std::vector<std::byte> chunk(16 * 1024);
    while (true) {
      auto parsed = parser_.next();
      if (!parsed.ok()) co_return parsed.error();
      if (parsed->has_value()) {
        bproto::Response& resp = **parsed;
        if (resp.opcode == bproto::Opcode::noop) co_return out;
        if (resp.opcode == bproto::Opcode::getkq && resp.opaque < out.size()) {
          proto::Value value;
          value.key = resp.key;
          value.flags = resp.flags;
          value.cas = resp.cas;
          value.data = std::move(resp.value);
          out[resp.opaque] = std::move(value);
        }
        continue;
      }
      auto n = co_await socket_->recv(chunk);
      if (!n.ok()) co_return n.error();
      if (*n == 0) co_return Errc::disconnected;
      parser_.feed(std::span<const std::byte>(chunk.data(), *n));
    }
  }

  sim::Task<Status> store(SetMode mode, std::string_view key,
                          std::span<const std::byte> value, std::uint32_t flags,
                          std::uint32_t exptime, std::uint64_t cas) override {
    if (!alive()) co_return Errc::disconnected;
    bproto::Request req;
    switch (mode) {
      case SetMode::set: req.opcode = bproto::Opcode::set; break;
      case SetMode::add: req.opcode = bproto::Opcode::add; break;
      case SetMode::replace: req.opcode = bproto::Opcode::replace; break;
      case SetMode::append: req.opcode = bproto::Opcode::append; break;
      case SetMode::prepend: req.opcode = bproto::Opcode::prepend; break;
      case SetMode::cas:
        req.opcode = bproto::Opcode::set;  // binary CAS = set with cas field
        req.cas = cas;
        break;
    }
    req.key = std::string(key);
    req.flags = flags;
    req.exptime = exptime;
    req.value.assign(value.begin(), value.end());
    const sim::Time t0 = sched_->now();
    auto resp = co_await round_trip(req);
    if (!resp.ok()) co_return resp.error();
    if (resp->status == bproto::BStatus::ok) {
      set_spans().total->record(sched_->now() - t0);
      co_return Status{};
    }
    // Map the binary statuses back onto the text-protocol error space so
    // both transports look identical to callers.
    if (mode == SetMode::add && resp->status == bproto::BStatus::key_exists) {
      co_return Errc::not_stored;
    }
    if (mode == SetMode::replace && resp->status == bproto::BStatus::key_not_found) {
      co_return Errc::not_stored;
    }
    co_return status_of(resp->status);
  }

  sim::Task<Status> del(std::string_view key) override {
    bproto::Request req;
    req.opcode = bproto::Opcode::del;
    req.key = std::string(key);
    co_return co_await simple(req);
  }

  sim::Task<Result<std::uint64_t>> arith(std::string_view key, std::uint64_t delta,
                                         bool decrement) override {
    if (!alive()) co_return Errc::disconnected;
    bproto::Request req;
    req.opcode = decrement ? bproto::Opcode::decrement : bproto::Opcode::increment;
    req.key = std::string(key);
    req.delta = delta;
    req.arith_exptime = 0xffffffffu;  // fail on miss, like the text protocol
    auto resp = co_await round_trip(req);
    if (!resp.ok()) co_return resp.error();
    if (resp->status == bproto::BStatus::ok) co_return resp->number;
    if (resp->status == bproto::BStatus::delta_badval) co_return Errc::invalid_argument;
    co_return status_of(resp->status).error();
  }

  sim::Task<Status> touch(std::string_view key, std::uint32_t exptime) override {
    bproto::Request req;
    req.opcode = bproto::Opcode::touch;
    req.key = std::string(key);
    req.exptime = exptime;
    co_return co_await simple(req);
  }

  sim::Task<Status> flush_all() override {
    bproto::Request req;
    req.opcode = bproto::Opcode::flush;
    co_return co_await simple(req);
  }

 private:
  static Status status_of(bproto::BStatus status) {
    switch (status) {
      case bproto::BStatus::ok: return {};
      case bproto::BStatus::key_not_found: return Errc::not_found;
      case bproto::BStatus::key_exists: return Errc::exists;
      case bproto::BStatus::value_too_large: return Errc::too_large;
      case bproto::BStatus::not_stored: return Errc::not_stored;
      case bproto::BStatus::delta_badval: return Errc::invalid_argument;
      case bproto::BStatus::invalid_arguments: return Errc::invalid_argument;
      case bproto::BStatus::out_of_memory: return Errc::no_resources;
      case bproto::BStatus::unknown_command: return Errc::protocol_error;
    }
    return Errc::protocol_error;
  }

  sim::Task<Status> simple(bproto::Request& req) {
    if (!alive()) co_return Errc::disconnected;
    auto resp = co_await round_trip(req);
    if (!resp.ok()) co_return resp.error();
    co_return status_of(resp->status);
  }

  sim::Task<Result<bproto::Response>> round_trip(const bproto::Request& request) {
    co_await host_->cpu().consume(behavior_.format_ns);
    const auto bytes = bproto::encode_request(request);
    auto sent = co_await socket_->send(bytes);
    if (!sent.ok()) co_return sent.error();
    std::vector<std::byte> chunk(16 * 1024);
    while (true) {
      auto parsed = parser_.next();
      if (!parsed.ok()) co_return parsed.error();
      if (parsed->has_value()) co_return std::move(**parsed);
      auto n = co_await socket_->recv(chunk);
      if (!n.ok()) co_return n.error();
      if (*n == 0) co_return Errc::disconnected;
      parser_.feed(std::span<const std::byte>(chunk.data(), *n));
    }
  }

  sim::Scheduler* sched_;
  sim::Host* host_;
  ClientBehavior behavior_;
  sock::NetStack* stack_;
  sim::NicAddr addr_;
  std::uint16_t port_;
  sock::Socket* socket_ = nullptr;
  bproto::ResponseParser parser_;
};

// ----------------------------------------------------------------- ucr --

class UcrConn final : public ServerConn {
 public:
  UcrConn(sim::Scheduler& sched, sim::Host& host, const ClientBehavior& behavior,
          ucr::Runtime& runtime, sim::NicAddr addr, std::uint16_t port)
      : sched_(&sched), host_(&host), behavior_(behavior), runtime_(&runtime), addr_(addr),
        port_(port) {
    ensure_handler(runtime);
    arena_.resize(std::max<std::size_t>(behavior.arena_bytes, 1024));
    // Endpoint death must not leave in-flight operations to ride out their
    // timeouts: fail every pending request the moment the runtime reports
    // the endpoint down, so callers see Errc::disconnected immediately.
    down_handler_ = runtime.on_endpoint_down([this](ucr::Endpoint& ep, Errc) {
      if (&ep != ep_) return;
      ep_ = nullptr;
      obs::registry().counter("mc.client.disconnects").inc();
      pending_.for_each([](std::uint64_t, Pending& p) {
        p.failed = true;
        if (p.counter) p.counter->fail_waiters();
      });
    });
  }

  ~UcrConn() override { runtime_->remove_endpoint_handler(down_handler_); }

  sim::Task<Status> connect() override {
    const auto type =
        behavior_.unreliable_ucr ? ucr::EpType::unreliable : ucr::EpType::reliable;
    auto r = co_await runtime_->connect(addr_, port_, type, behavior_.op_timeout);
    if (!r.ok()) co_return r.error();
    ep_ = *r;
    ep_->set_user_data(this);
    runtime_->register_region(arena_);
    const auto mode = behavior_.effective_mode();
    if (mode == ClientBehavior::Mode::onesided_get && !behavior_.unreliable_ucr) {
      // Bootstrap the one-sided index descriptor (one RPC). Failure only
      // degrades this connection to RPC GETs; the connect itself succeeded.
      if (!getter_) {
        getter_ = std::make_unique<onesided::RemoteGetter>(
            *runtime_, onesided::GetterConfig{.max_torn_retries = behavior_.onesided_torn_retries,
                                              .read_timeout = behavior_.op_timeout});
      }
      (void)co_await getter_->bootstrap(*ep_, behavior_.op_timeout);
    } else if (mode == ClientBehavior::Mode::rfp && !behavior_.unreliable_ucr) {
      // Bootstrap the RFP ring pair (one RPC, DESIGN.md §16). Failure only
      // degrades this connection to classic RPC; the connect succeeded.
      if (!rfp_) {
        rfp_ = std::make_unique<rfp::Channel>(*runtime_, *host_, behavior_.rfp);
      }
      (void)co_await rfp_->bootstrap(*ep_, behavior_.op_timeout);
    }
    co_return Status{};
  }

  bool alive() const override { return ep_ && ep_->state() == ucr::EpState::ready; }

  sim::Task<Result<proto::Value>> get(std::string_view key, bool with_cas) override {
    if (!alive()) co_return Errc::disconnected;
    const sim::Time t0 = sched_->now();
    co_await host_->cpu().consume(behavior_.format_ns);
    if (getter_ && getter_->ready()) {
      auto hit = co_await getter_->try_get(*ep_, key);
      if (hit.ok()) {
        proto::Value value;
        value.key.assign(key.data(), key.size());
        value.flags = hit->flags;
        value.cas = hit->cas;
        value.data.assign(hit->value.begin(), hit->value.end());
        co_await host_->cpu().consume(static_cast<sim::Time>(
            static_cast<double>(value.data.size()) * behavior_.result_copy_ns_per_byte));
        co_return value;
      }
      // Fallback ladder: anything short of a verified hit goes to RPC.
      if (!alive()) co_return Errc::disconnected;
    }
    if (rfp_ && rfp_->ready()) {
      auto hit = co_await rfp_try(with_cas ? ucrp::Op::gets : ucrp::Op::get,
                                  key_bytes(key), {}, {});
      if (hit.ok()) {
        const ucrp::ResponseHeader resp = hit->header;
        if (resp.status == ucrp::RStatus::value) {
          proto::Value value;
          value.key.assign(key.data(), key.size());
          value.flags = resp.flags;
          value.cas = resp.cas;
          value.data.assign(hit->body.begin(), hit->body.end());
          rfp_->release(hit->slot);
          co_await host_->cpu().consume(static_cast<sim::Time>(
              static_cast<double>(value.data.size()) * behavior_.result_copy_ns_per_byte));
          co_return value;
        }
        rfp_->release(hit->slot);
        const Status st = status_from(resp.status);
        co_return st.ok() ? Errc::not_found : st.error();
      }
      // Non-ok = fallback ladder: the ring could not serve it; use RPC.
      if (!alive()) co_return Errc::disconnected;
    }
    auto issued = issue(with_cas ? ucrp::Op::gets : ucrp::Op::get, key, {}, {});
    if (!issued.ok()) co_return issued.error();
    const sim::Time t1 = sched_->now();
    sim::Time t2 = t1;
    auto value = co_await finish_get(*issued, key, &t2);
    if (!value.ok()) co_return value.error();
    const sim::Time t3 = sched_->now();
    const LatencySpans& spans = get_spans();
    spans.build->record(t1 - t0);
    spans.wait->record(t2 - t1);
    spans.complete->record(t3 - t2);
    spans.total->record(t3 - t0);
    co_return std::move(*value);
  }

  sim::Task<Result<std::vector<std::optional<proto::Value>>>> mget(
      std::span<const std::string> keys, bool with_cas) override {
    // Thin wrapper over the batched path: the server answers the whole key
    // list in one pass (§V: mget built from the same principles as get).
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<MgetSlot> slots(keys.size());
    auto st = co_await mget_into(views, slots, with_cas);
    if (!st.ok()) co_return st.error();
    std::vector<std::optional<proto::Value>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (!slots[i].hit) continue;
      proto::Value value;
      value.key = keys[i];
      value.flags = slots[i].flags;
      value.cas = slots[i].cas;
      value.data.assign(slots[i].value.begin(), slots[i].value.end());
      out[i] = std::move(value);
    }
    co_return out;
  }

  sim::Task<Status> mget_into(std::span<const std::string_view> keys,
                              std::span<MgetSlot> slots, bool with_cas) override {
    // True server-side multiget (the tentpole of the batching design): the
    // key list packs into as few request AMs as fit the eager frame, each
    // sub-request issued under one doorbell (begin/end_send_batch), and
    // the server scatters all answers back in chunked scatter-gather
    // replies. Steady state allocates nothing: key block and wave state
    // live on this frame, reply values land in the arena.
    (void)with_cas;  // records always carry the CAS id
    if (!alive()) co_return Errc::disconnected;
    if (keys.size() > slots.size()) co_return Errc::invalid_argument;
    for (const auto& key : keys) {
      if (key.size() > proto::Request::kMaxKeyLen) co_return Errc::invalid_argument;
    }
    if (keys.empty()) co_return Status{};
    // Reset the arena up front (values of the *previous* op die at the next
    // op, per the MgetSlot contract) so back-to-back mgets reuse it instead
    // of marching the bump pointer to the overflow path.
    maybe_reset_arena();
    const sim::Time t0 = sched_->now();
    co_await host_->cpu().consume(behavior_.format_ns);

    if (rfp_ && rfp_->ready()) {
      // Single-frame RFP attempt: the whole key block in one ring slot,
      // the whole chunked reply in the matching response slot. Anything
      // that does not fit — oversized block, reply overflow (the server
      // answers server_error), malformed chunk — falls through to the
      // chunked RPC waves below.
      std::size_t block = 0;
      bool fits = true;
      for (const auto& key : keys) {
        block += ucrp::mget_entry_size(key);
        if (block > ucrp::kMaxMgetKeyBlock) {
          fits = false;
          break;
        }
      }
      if (fits && ucrp::RequestHeader::kSize + block <= rfp_->max_body()) {
        std::byte packed[ucrp::kMaxMgetKeyBlock];
        std::size_t off = 0;
        for (const auto& key : keys) off += ucrp::pack_mget_key(packed + off, key);
        ucrp::RequestHeader header;
        header.delta = keys.size();
        auto reply = co_await rfp_try(
            ucrp::Op::mget, std::span<const std::byte>(packed, block), {}, header);
        if (reply.ok()) {
          bool parsed = false;
          std::uint64_t copied = 0;
          const std::span<const std::byte> body = reply->body;
          if (reply->header.status == ucrp::RStatus::value &&
              body.size() >= ucrp::MgetChunkHeader::kSize) {
            const auto chunk = ucrp::MgetChunkHeader::decode(body.data());
            const std::size_t values_at =
                ucrp::MgetChunkHeader::kSize +
                static_cast<std::size_t>(chunk.record_count) * ucrp::MgetRecord::kSize;
            if (chunk.total_chunks == 1 && chunk.start_index == 0 &&
                chunk.record_count == keys.size() && values_at <= body.size()) {
              parsed = true;
              std::size_t voff = values_at;
              for (std::size_t i = 0; i < keys.size(); ++i) {
                const auto rec = ucrp::MgetRecord::decode(
                    body.data() + ucrp::MgetChunkHeader::kSize +
                    i * ucrp::MgetRecord::kSize);
                MgetSlot& slot = slots[i];
                if (rec.status != ucrp::RStatus::value) {
                  slot.hit = false;
                  slot.value = {};
                  continue;
                }
                if (voff + rec.value_len > body.size()) {
                  parsed = false;  // malformed chunk: let RPC redo it all
                  break;
                }
                slot.hit = true;
                slot.flags = rec.flags;
                slot.cas = rec.cas;
                slot.value_len = rec.value_len;
                // The body span dies at release(): land the bytes in the
                // caller's buffer or the arena so the MgetSlot contract
                // (valid until the next op) holds.
                std::span<std::byte> land = rec.value_len <= slot.dest.size()
                                                ? slot.dest.first(rec.value_len)
                                                : arena_alloc(rec.value_len);
                std::memcpy(land.data(), body.data() + voff, rec.value_len);
                slot.value = {land.data(), land.size()};
                voff += rec.value_len;
                copied += rec.value_len;
              }
            }
          }
          rfp_->release(reply->slot);
          if (parsed) {
            co_await host_->cpu().consume(static_cast<sim::Time>(
                static_cast<double>(copied) * behavior_.result_copy_ns_per_byte));
            co_return Status{};
          }
        }
        if (!alive()) co_return Errc::disconnected;
      }
    }

    // Key-block budget per sub-request: one eager frame (UD: one MTU)
    // minus AM wire + request header overhead.
    std::size_t frame = runtime_->config().eager_limit;
    if (behavior_.unreliable_ucr) {
      frame = std::min<std::size_t>(frame, runtime_->hca().costs().ud_mtu);
    }
    const std::size_t budget =
        std::min(ucrp::kMaxMgetKeyBlock,
                 frame - ucr::wire::AmWire::kSize - ucrp::RequestHeader::kSize);

    struct Sub {
      MgetPending ctx;
      std::uint64_t req_id = 0;
    };
    static constexpr std::size_t kWave = 16;  // < credits_per_ep: no backlog
    std::array<Sub, kWave> subs;
    sim::Time t1 = t0;
    sim::Time t2 = t0;
    std::size_t next = 0;
    bool first_wave = true;
    while (next < keys.size()) {
      // Issue a wave of sub-requests under a single doorbell.
      std::size_t nsubs = 0;
      runtime_->begin_send_batch();
      while (next < keys.size() && nsubs < kWave) {
        const std::size_t start = next;
        std::size_t bytes = 0;
        while (next < keys.size()) {
          const std::size_t need = ucrp::mget_entry_size(keys[next]);
          if (bytes != 0 && bytes + need > budget) break;
          bytes += need;
          ++next;
        }
        Sub& sub = subs[nsubs];
        sub.ctx = MgetPending{};
        sub.ctx.slots = slots.subspan(start, next - start);
        auto issued = issue_mget(keys.subspan(start, next - start), sub.ctx);
        if (!issued.ok()) {
          runtime_->end_send_batch();
          for (std::size_t i = 0; i < nsubs; ++i) drop_mget(subs[i].req_id);
          co_return issued.error();
        }
        sub.req_id = *issued;
        ++nsubs;
      }
      runtime_->end_send_batch();
      if (first_wave) {
        t1 = sched_->now();
        first_wave = false;
      }
      for (std::size_t i = 0; i < nsubs; ++i) {
        auto st = co_await await_mget(subs[i].req_id, subs[i].ctx);
        if (!st.ok()) {
          // Sibling sub-requests still reference this frame's MgetPending
          // contexts through their Pendings: drop them before unwinding so
          // a late chunk cannot dereference a dead frame.
          for (std::size_t j = i + 1; j < nsubs; ++j) drop_mget(subs[j].req_id);
          co_return st;
        }
      }
      t2 = sched_->now();
    }

    std::uint64_t copied = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (slots[i].hit) copied += slots[i].value.size();
    }
    co_await host_->cpu().consume(static_cast<sim::Time>(
        static_cast<double>(copied) * behavior_.result_copy_ns_per_byte));
    const sim::Time t3 = sched_->now();
    const LatencySpans& spans = mget_spans();
    spans.build->record(t1 - t0);
    spans.wait->record(t2 - t1);
    spans.complete->record(t3 - t2);
    spans.total->record(t3 - t0);
    co_return Status{};
  }

  sim::Task<Result<GetIntoResult>> get_into(std::string_view key, std::span<std::byte> dest,
                                            bool with_cas) override {
    // The zero-allocation GET: the reply header handler lands the value
    // bytes directly in `dest`, so no arena slot, no Value, no copy-out.
    if (!alive()) co_return Errc::disconnected;
    const sim::Time t0 = sched_->now();
    co_await host_->cpu().consume(behavior_.format_ns);
    if (getter_ && getter_->ready()) {
      auto hit = co_await getter_->try_get(*ep_, key);
      if (hit.ok()) {
        if (hit->value.size() > dest.size()) co_return Errc::too_large;
        std::memcpy(dest.data(), hit->value.data(), hit->value.size());
        co_await host_->cpu().consume(static_cast<sim::Time>(
            static_cast<double>(hit->value.size()) * behavior_.result_copy_ns_per_byte));
        GetIntoResult out;
        out.value_len = static_cast<std::uint32_t>(hit->value.size());
        out.flags = hit->flags;
        out.cas = hit->cas;
        co_return out;
      }
      if (!alive()) co_return Errc::disconnected;
    }
    if (rfp_ && rfp_->ready()) {
      auto hit = co_await rfp_try(with_cas ? ucrp::Op::gets : ucrp::Op::get,
                                  key_bytes(key), {}, {});
      if (hit.ok()) {
        const ucrp::ResponseHeader resp = hit->header;
        if (resp.status == ucrp::RStatus::value) {
          if (hit->body.size() > dest.size()) {
            rfp_->release(hit->slot);
            co_return Errc::too_large;
          }
          std::memcpy(dest.data(), hit->body.data(), hit->body.size());
          GetIntoResult out;
          out.value_len = static_cast<std::uint32_t>(hit->body.size());
          out.flags = resp.flags;
          out.cas = resp.cas;
          rfp_->release(hit->slot);
          co_await host_->cpu().consume(static_cast<sim::Time>(
              static_cast<double>(out.value_len) * behavior_.result_copy_ns_per_byte));
          co_return out;
        }
        rfp_->release(hit->slot);
        const Status st = status_from(resp.status);
        co_return st.ok() ? Errc::not_found : st.error();
      }
      if (!alive()) co_return Errc::disconnected;
    }
    auto issued = issue(with_cas ? ucrp::Op::gets : ucrp::Op::get, key, {}, {}, dest);
    if (!issued.ok()) co_return issued.error();
    const sim::Time t1 = sched_->now();
    auto pending = co_await await_reply(*issued);
    const sim::Time t2 = sched_->now();
    if (!pending.ok()) co_return pending.error();
    maybe_reset_arena();
    if (pending->response.status != ucrp::RStatus::value) {
      const Status st = status_from(pending->response.status);
      co_return st.ok() ? Errc::not_found : st.error();
    }
    if (pending->value_len > dest.size()) co_return Errc::too_large;
    GetIntoResult out;
    out.value_len = pending->value_len;
    out.flags = pending->response.flags;
    out.cas = pending->response.cas;
    const sim::Time t3 = sched_->now();
    const LatencySpans& spans = get_spans();
    spans.build->record(t1 - t0);
    spans.wait->record(t2 - t1);
    spans.complete->record(t3 - t2);
    spans.total->record(t3 - t0);
    co_return out;
  }

  sim::Task<Status> store(SetMode mode, std::string_view key,
                          std::span<const std::byte> value, std::uint32_t flags,
                          std::uint32_t exptime, std::uint64_t cas) override {
    if (!alive()) co_return Errc::disconnected;
    const sim::Time t0 = sched_->now();
    co_await host_->cpu().consume(behavior_.format_ns);
    ucrp::RequestHeader extra;
    extra.flags = flags;
    extra.exptime = exptime;
    extra.cas = cas;
    if (rfp_ && rfp_->ready()) {
      auto done = co_await rfp_try(storage_op(mode), key_bytes(key), value, extra);
      if (done.ok()) {
        const Status st = status_from(done->header.status);
        rfp_->release(done->slot);
        co_return st;
      }
      if (!alive()) co_return Errc::disconnected;
    }
    auto issued = issue(storage_op(mode), key, value, extra);
    if (!issued.ok()) co_return issued.error();
    const sim::Time t1 = sched_->now();
    sim::Time t2 = t1;
    auto resp = co_await finish(*issued, &t2);
    if (!resp.ok()) co_return resp.error();
    const sim::Time t3 = sched_->now();
    const LatencySpans& spans = set_spans();
    spans.build->record(t1 - t0);
    spans.wait->record(t2 - t1);
    spans.complete->record(t3 - t2);
    spans.total->record(t3 - t0);
    co_return status_from(resp->status);
  }

  sim::Task<Status> del(std::string_view key) override {
    co_return co_await simple_op(ucrp::Op::del, key, {});
  }

  sim::Task<Result<std::uint64_t>> arith(std::string_view key, std::uint64_t delta,
                                         bool decrement) override {
    if (!alive()) co_return Errc::disconnected;
    co_await host_->cpu().consume(behavior_.format_ns);
    ucrp::RequestHeader extra;
    extra.delta = delta;
    if (rfp_ && rfp_->ready()) {
      auto done = co_await rfp_try(decrement ? ucrp::Op::decr : ucrp::Op::incr,
                                   key_bytes(key), {}, extra);
      if (done.ok()) {
        const ucrp::ResponseHeader resp = done->header;
        rfp_->release(done->slot);
        if (resp.status == ucrp::RStatus::number) co_return resp.number;
        const Status st = status_from(resp.status);
        co_return st.ok() ? Errc::protocol_error : st.error();
      }
      if (!alive()) co_return Errc::disconnected;
    }
    auto issued = issue(decrement ? ucrp::Op::decr : ucrp::Op::incr, key, {}, extra);
    if (!issued.ok()) co_return issued.error();
    auto resp = co_await finish(*issued);
    if (!resp.ok()) co_return resp.error();
    if (resp->status == ucrp::RStatus::number) co_return resp->number;
    const Status st = status_from(resp->status);
    co_return st.ok() ? Errc::protocol_error : st.error();
  }

  sim::Task<Status> touch(std::string_view key, std::uint32_t exptime) override {
    ucrp::RequestHeader extra;
    extra.exptime = exptime;
    co_return co_await simple_op(ucrp::Op::touch, key, extra);
  }

  sim::Task<Status> flush_all() override {
    co_return co_await simple_op(ucrp::Op::flush_all, "-", {});
  }

 private:
  /// Shared state of one multiget sub-request, owned by the mget_into
  /// coroutine frame; response chunks scatter into it as they land. A
  /// sub-request abandoned early (sibling failure) must be drop_mget()ed
  /// so late chunks cannot chase this pointer into a dead frame.
  struct MgetPending {
    std::span<MgetSlot> slots{};     ///< answers keys[start..start+n) of the request
    std::uint32_t total_chunks = 0;  ///< learned from the first chunk to land
    std::uint32_t chunks_seen = 0;
    bool error = false;  ///< server answered with a bare error header
  };

  struct Pending {
    ucrp::ResponseHeader response{};
    std::span<std::byte> dest{};
    std::span<std::byte> user_dest{};  ///< get_into: land the value here
    MgetPending* mget = nullptr;       ///< multiget: scatter target
    std::uint32_t value_len = 0;
    bool done = false;
    bool failed = false;  ///< endpoint died while this op was in flight
    sim::Counter* counter = nullptr;
    std::uint64_t wait_target = 0;
    std::size_t counter_slot = 0;
  };

  /// One response handler per runtime, shared by all UcrConns on it; it
  /// dispatches through the endpoint's user_data.
  static void ensure_handler(ucr::Runtime& runtime);

  /// One op through the RFP rings (caller checked rfp_ && rfp_->ready()).
  /// An ok result is the server's definitive answer — the caller reads
  /// header/body and must release(slot). Any error means "run this op
  /// over classic RPC"; that includes RStatus::server_error replies (the
  /// answer did not fit one response slot), which this helper converts to
  /// an error after releasing the slot (DESIGN.md §16 fallback matrix).
  sim::Task<Result<rfp::OpResult>> rfp_try(ucrp::Op op, std::span<const std::byte> head,
                                           std::span<const std::byte> tail,
                                           ucrp::RequestHeader extra) {
    extra.op = op;
    extra.key_len = static_cast<std::uint16_t>(head.size());
    auto out = co_await rfp_->execute(*ep_, extra, head, tail, behavior_.op_timeout);
    if (!out.ok()) co_return out.error();
    if (out->header.status == ucrp::RStatus::server_error) {
      rfp_->release(out->slot);
      rfp_fallbacks_->inc();
      co_return Errc::no_resources;
    }
    co_return *out;
  }

  static std::span<const std::byte> key_bytes(std::string_view key) {
    return std::as_bytes(std::span<const char>(key.data(), key.size()));
  }

  Result<std::uint64_t> issue(ucrp::Op op, std::string_view key,
                              std::span<const std::byte> value,
                              const ucrp::RequestHeader& extra,
                              std::span<std::byte> user_dest = {}) {
    if (key.size() > proto::Request::kMaxKeyLen) return Errc::invalid_argument;
    obs::ProfScope prof{kProfClientBuild};
    auto [counter, ref, slot] = acquire_counter();

    Pending pending;
    pending.counter = counter;
    pending.wait_target = counter->value() + 1;
    pending.counter_slot = slot;
    pending.user_dest = user_dest;
    // The slot-map key doubles as the wire req_id (opaque, echoed back).
    const std::uint64_t req_id = pending_.emplace(pending);

    ucrp::RequestHeader header = extra;
    header.op = op;
    header.key_len = static_cast<std::uint16_t>(key.size());
    header.req_id = req_id;
    header.reply_counter = ref.id;

    // Keys are bounded, so the AM packs on the stack; send_message copies
    // it out (slot or backlog) before returning.
    std::byte packed[ucrp::RequestHeader::kSize + proto::Request::kMaxKeyLen];
    header.encode(packed);
    std::memcpy(packed + ucrp::RequestHeader::kSize, key.data(), key.size());

    const Status sent = runtime_->send_message(
        *ep_, ucrp::kMsgRequest,
        std::span<const std::byte>(packed, ucrp::RequestHeader::kSize + key.size()), value,
        nullptr, {}, nullptr);
    if (!sent.ok()) {
      release_counter(slot);
      pending_.erase(req_id);
      return sent.error();
    }
    return req_id;
  }

  /// Issue one multiget sub-request carrying all of `keys` as a packed key
  /// block. The caller guarantees the block fits the eager frame.
  Result<std::uint64_t> issue_mget(std::span<const std::string_view> keys, MgetPending& ctx) {
    obs::ProfScope prof{kProfClientBuild};
    auto [counter, ref, slot] = acquire_counter();

    Pending pending;
    pending.counter = counter;
    pending.wait_target = counter->value() + 1;
    pending.counter_slot = slot;
    pending.mget = &ctx;
    const std::uint64_t req_id = pending_.emplace(pending);

    std::byte packed[ucrp::RequestHeader::kSize + ucrp::kMaxMgetKeyBlock];
    std::size_t block = 0;
    for (const auto& key : keys) {
      block += ucrp::pack_mget_key(packed + ucrp::RequestHeader::kSize + block, key);
    }
    ucrp::RequestHeader header;
    header.op = ucrp::Op::mget;
    header.key_len = static_cast<std::uint16_t>(block);
    header.delta = keys.size();
    header.req_id = req_id;
    header.reply_counter = ref.id;
    header.encode(packed);

    const Status sent = runtime_->send_message(
        *ep_, ucrp::kMsgRequest,
        std::span<const std::byte>(packed, ucrp::RequestHeader::kSize + block), {}, nullptr,
        {}, nullptr);
    if (!sent.ok()) {
      release_counter(slot);
      pending_.erase(req_id);
      return sent.error();
    }
    return req_id;
  }

  /// Wait out all response chunks of one multiget sub-request. At most two
  /// suspensions regardless of chunk count: one until the first chunk
  /// reveals total_chunks, one until the counter reaches the full target
  /// (a batch-drained reply coalesces both into a single wake-up).
  sim::Task<Status> await_mget(std::uint64_t req_id, MgetPending& ctx) {
    Pending* p = pending_.get(req_id);
    assert(p != nullptr);
    bool ok = true;
    sim::Counter* counter = p->counter;
    const std::uint64_t base = p->wait_target;
    if (!p->failed) {
      ok = co_await counter->wait_geq(base, behavior_.op_timeout);
      p = pending_.get(req_id);  // slots may have moved while suspended
      if (p == nullptr) co_return Errc::protocol_error;
    }
    if (ok && !p->failed && !p->done && !ctx.error && ctx.total_chunks > 1) {
      ok = co_await counter->wait_geq(base - 1 + ctx.total_chunks, behavior_.op_timeout);
      p = pending_.get(req_id);
      if (p == nullptr) co_return Errc::protocol_error;
    }
    const bool failed = p->failed;
    const bool done = p->done;
    const ucrp::RStatus status = p->response.status;
    const std::size_t counter_slot = p->counter_slot;
    pending_.erase(req_id);
    release_counter(counter_slot);
    if (failed) co_return Errc::disconnected;
    if (!ok) {
      obs::registry().counter("mc.client.timeouts").inc();
      co_return Errc::timed_out;
    }
    if (ctx.error) {
      const Status st = status_from(status);
      co_return st.ok() ? Errc::protocol_error : st;
    }
    if (!done) co_return Errc::protocol_error;
    co_return Status{};
  }

  /// Abandon an issued multiget sub-request: unlink its Pending (late
  /// chunks then drop on the floor in on_response_header) and recycle the
  /// counter. Monotonic counters make the recycle safe.
  void drop_mget(std::uint64_t req_id) {
    Pending* p = pending_.get(req_id);
    if (p == nullptr) return;
    release_counter(p->counter_slot);
    pending_.erase(req_id);
  }

  /// Wait out the reply for `req_id` and pop its Pending. Error means the
  /// operation failed wholesale (timeout / stale id).
  sim::Task<Result<Pending>> await_reply(std::uint64_t req_id) {
    Pending* p = pending_.get(req_id);
    assert(p != nullptr);
    bool ok = true;
    if (!p->failed) {  // a dead endpoint never delivers; don't wait for it
      sim::Counter* counter = p->counter;
      const std::uint64_t target = p->wait_target;
      ok = co_await counter->wait_geq(target, behavior_.op_timeout);
      p = pending_.get(req_id);  // slots may have moved while suspended
      if (p == nullptr) co_return Errc::protocol_error;
    }
    const Pending pending = *p;
    pending_.erase(req_id);
    release_counter(pending.counter_slot);
    if (pending.failed) co_return Errc::disconnected;
    if (!ok) {
      obs::registry().counter("mc.client.timeouts").inc();
      co_return Errc::timed_out;
    }
    co_return pending;
  }

  sim::Task<Result<ucrp::ResponseHeader>> finish(std::uint64_t req_id,
                                                 sim::Time* wait_end = nullptr) {
    auto pending = co_await await_reply(req_id);
    if (wait_end != nullptr) *wait_end = sched_->now();
    if (!pending.ok()) co_return pending.error();
    maybe_reset_arena();
    co_return pending->response;
  }

  sim::Task<Result<proto::Value>> finish_get(std::uint64_t req_id, std::string_view key,
                                             sim::Time* wait_end = nullptr) {
    auto pending = co_await await_reply(req_id);
    if (wait_end != nullptr) *wait_end = sched_->now();
    if (!pending.ok()) co_return pending.error();

    if (pending->response.status != ucrp::RStatus::value) {
      maybe_reset_arena();
      const Status st = status_from(pending->response.status);
      co_return st.ok() ? Errc::not_found : st.error();
    }
    proto::Value value;
    value.key.assign(key.data(), key.size());
    value.flags = pending->response.flags;
    value.cas = pending->response.cas;
    value.data.assign(pending->dest.begin(), pending->dest.begin() + pending->value_len);
    co_await host_->cpu().consume(static_cast<sim::Time>(
        static_cast<double>(pending->value_len) * behavior_.result_copy_ns_per_byte));
    maybe_reset_arena();
    co_return value;
  }

  sim::Task<Status> simple_op(ucrp::Op op, std::string_view key,
                              const ucrp::RequestHeader& extra) {
    if (!alive()) co_return Errc::disconnected;
    co_await host_->cpu().consume(behavior_.format_ns);
    if (rfp_ && rfp_->ready() && op != ucrp::Op::flush_all) {
      // del/touch ride the rings; flush_all (and version) stay RPC-only.
      auto done = co_await rfp_try(op, key_bytes(key), {}, extra);
      if (done.ok()) {
        const Status st = status_from(done->header.status);
        rfp_->release(done->slot);
        co_return st;
      }
      if (!alive()) co_return Errc::disconnected;
    }
    auto issued = issue(op, key, {}, extra);
    if (!issued.ok()) co_return issued.error();
    auto resp = co_await finish(*issued);
    if (!resp.ok()) co_return resp.error();
    co_return status_from(resp->status);
  }

  // ---- response arrival (called from the shared runtime handler) ----
  std::span<std::byte> on_response_header(std::span<const std::byte> header,
                                          std::uint32_t data_len) {
    const auto resp = ucrp::ResponseHeader::decode(header.data());
    Pending* p = pending_.get(resp.req_id);
    if (p == nullptr) return {};
    if (p->mget != nullptr) {
      // Multiget chunk: the gathered hit values land in the arena and the
      // slots keep pointing there (valid until the next op, per contract).
      return arena_alloc(data_len);
    }
    // The item length is known only now (§V-C): land directly in the
    // caller's get_into buffer when it fits, else allocate from the pool.
    if (!p->user_dest.empty() && data_len <= p->user_dest.size()) {
      p->dest = p->user_dest.first(data_len);
    } else {
      p->dest = arena_alloc(data_len);
    }
    p->value_len = data_len;
    return p->dest;
  }

  void on_response_complete(std::span<const std::byte> header, std::span<std::byte> data) {
    const auto resp = ucrp::ResponseHeader::decode(header.data());
    Pending* p = pending_.get(resp.req_id);
    if (p == nullptr) return;
    if (p->mget != nullptr) {
      on_mget_chunk(*p, resp, header, data);
      return;
    }
    p->response = resp;
    p->done = true;
    // The UCR target counter (counter C) fires right after this handler.
  }

  /// Scatter one multiget response chunk into the sub-request's slots.
  void on_mget_chunk(Pending& p, const ucrp::ResponseHeader& resp,
                     std::span<const std::byte> header, std::span<std::byte> data) {
    MgetPending& ctx = *p.mget;
    if (header.size() < ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize) {
      // Bare ResponseHeader: the server failed the whole sub-request.
      p.response = resp;
      ctx.error = true;
      p.done = true;
      return;
    }
    const auto chunk =
        ucrp::MgetChunkHeader::decode(header.data() + ucrp::ResponseHeader::kSize);
    ctx.total_chunks = chunk.total_chunks;
    const std::byte* rec_at =
        header.data() + ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize;
    std::size_t off = 0;
    for (std::uint32_t i = 0; i < chunk.record_count; ++i) {
      const auto rec = ucrp::MgetRecord::decode(rec_at + i * ucrp::MgetRecord::kSize);
      const std::size_t index = chunk.start_index + i;
      if (index >= ctx.slots.size()) break;  // malformed chunk; drop the tail
      MgetSlot& slot = ctx.slots[index];
      if (rec.status != ucrp::RStatus::value) {
        slot.hit = false;
        slot.value = {};
        continue;
      }
      slot.hit = true;
      slot.flags = rec.flags;
      slot.cas = rec.cas;
      slot.value_len = rec.value_len;
      if (off + rec.value_len > data.size()) break;  // malformed chunk
      std::span<std::byte> bytes = data.subspan(off, rec.value_len);
      off += rec.value_len;
      if (rec.value_len <= slot.dest.size()) {
        std::memcpy(slot.dest.data(), bytes.data(), bytes.size());
        slot.value = std::span<const std::byte>(slot.dest.data(), bytes.size());
      } else {
        slot.value = bytes;
      }
    }
    ++ctx.chunks_seen;
    if (ctx.chunks_seen >= ctx.total_chunks) p.done = true;
  }

  // ---- local buffer pool (bump arena, reset when quiescent) ----
  std::span<std::byte> arena_alloc(std::size_t len) {
    if (arena_offset_ + len > arena_.size()) {
      // Overflow: fall back to a side buffer (registered on demand).
      obs::registry().counter("mc.alloc.arena_overflows").inc();
      overflow_.push_back(std::vector<std::byte>(len));
      return overflow_.back();
    }
    auto out = std::span<std::byte>(arena_.data() + arena_offset_, len);
    arena_offset_ += len;
    return out;
  }

  void maybe_reset_arena() {
    if (pending_.empty()) {
      arena_offset_ = 0;
      overflow_.clear();
    }
  }

  // ---- reusable reply counters (monotonic, so reuse is safe) ----
  std::tuple<sim::Counter*, ucr::CounterRef, std::size_t> acquire_counter() {
    if (free_counters_.empty()) {
      counters_.push_back(runtime_->make_counter());
      counter_refs_.push_back(runtime_->export_counter(*counters_.back()));
      free_counters_.push_back(counters_.size() - 1);
    }
    const std::size_t slot = free_counters_.back();
    free_counters_.pop_back();
    return {counters_[slot].get(), counter_refs_[slot], slot};
  }
  void release_counter(std::size_t slot) { free_counters_.push_back(slot); }

  sim::Scheduler* sched_;
  sim::Host* host_;
  ClientBehavior behavior_;
  ucr::Runtime* runtime_;
  sim::NicAddr addr_;
  std::uint16_t port_;
  ucr::Endpoint* ep_ = nullptr;
  std::uint64_t down_handler_ = 0;
  std::unique_ptr<onesided::RemoteGetter> getter_;  ///< non-null iff Mode::onesided_get
  std::unique_ptr<rfp::Channel> rfp_;               ///< non-null iff Mode::rfp
  obs::Counter* rfp_fallbacks_ = &obs::registry().counter("mc.rfp.fallbacks");

  SlotMap<Pending> pending_;

  std::vector<std::byte> arena_;
  std::size_t arena_offset_ = 0;
  std::vector<std::vector<std::byte>> overflow_;

  std::vector<std::unique_ptr<sim::Counter>> counters_;
  std::vector<ucr::CounterRef> counter_refs_;
  std::vector<std::size_t> free_counters_;
};

void UcrConn::ensure_handler(ucr::Runtime& runtime) {
  // Registering is idempotent per runtime (same handler object semantics).
  runtime.register_handler(
      ucrp::kMsgResponse,
      {.on_header =
           [](ucr::Endpoint& ep, std::span<const std::byte> header, std::uint32_t data_len) {
             auto* conn = static_cast<UcrConn*>(ep.user_data());
             if (!conn) return std::span<std::byte>{};
             return conn->on_response_header(header, data_len);
           },
       .on_complete =
           [](ucr::Endpoint& ep, std::span<const std::byte> header, std::span<std::byte> data) {
             auto* conn = static_cast<UcrConn*>(ep.user_data());
             if (conn) conn->on_response_complete(header, data);
           }});
}

// -------------------------------------------------------------- Client --

Client::Client(sim::Scheduler& sched, sim::Host& host, ClientBehavior behavior)
    : sched_(&sched), host_(&host), behavior_(behavior) {}

Client::~Client() = default;

void Client::register_server(std::string name) {
  server_names_.push_back(std::move(name));
  health_.emplace_back();
  if (behavior_.distribution == Distribution::ketama) continuum_.rebuild(server_names_);
}

void Client::add_server_socket(sock::NetStack& stack, sim::NicAddr addr, std::uint16_t port) {
  if (behavior_.binary_protocol) {
    conns_.push_back(
        std::make_unique<BinaryConn>(*sched_, *host_, behavior_, stack, addr, port));
  } else {
    conns_.push_back(
        std::make_unique<TextConn>(*sched_, *host_, behavior_, stack, addr, port));
  }
  register_server("host" + std::to_string(addr) + ":" + std::to_string(port));
}

void Client::add_server_ucr(ucr::Runtime& runtime, sim::NicAddr addr, std::uint16_t port) {
  conns_.push_back(std::make_unique<UcrConn>(*sched_, *host_, behavior_, runtime, addr, port));
  register_server("host" + std::to_string(addr) + ":" + std::to_string(port));
}

sim::Task<Status> Client::connect_all() {
  for (auto& conn : conns_) {
    auto st = co_await conn->connect();
    if (!st.ok()) co_return st;
  }
  co_return Status{};
}

std::size_t Client::server_index(std::string_view key) const {
  assert(!conns_.empty());
  if (behavior_.distribution == Distribution::ketama) {
    const std::size_t index = continuum_.lookup(key);
    return alive_to_conn_.empty() ? index : alive_to_conn_[index];
  }
  const std::size_t start = hash_key(behavior_.key_hash, key) % conns_.size();
  for (std::size_t probe = 0; probe < conns_.size(); ++probe) {
    const std::size_t index = (start + probe) % conns_.size();
    if (index >= health_.size() || !health_[index].ejected) return index;
  }
  return start;  // whole pool ejected: fall back to the natural owner
}

// ------------------------------------------------ failure recovery --

sim::Task<Status> Client::ensure_conn(std::size_t index) {
  ServerConn& conn = *conns_[index];
  if (conn.alive()) co_return Status{};
  obs::registry().counter("mc.client.reconnects").inc();
  co_return co_await conn.connect();
}

void Client::note_failure(std::size_t index) {
  if (index >= health_.size()) return;
  ServerHealth& h = health_[index];
  ++h.consecutive_failures;
  if (h.ejected || behavior_.eject_after_failures == 0 || conns_.size() < 2) return;
  if (h.consecutive_failures < behavior_.eject_after_failures) return;
  h.ejected = true;
  obs::registry().counter("mc.pool.ejected").inc();
  rebuild_routing();
  if (behavior_.rejoin_interval != 0 && !h.probing) {
    h.probing = true;
    sched_->spawn(rejoin_probe(index));
  }
}

void Client::note_success(std::size_t index) {
  if (index >= health_.size()) return;
  ServerHealth& h = health_[index];
  h.consecutive_failures = 0;
  if (!h.ejected) return;
  h.ejected = false;
  obs::registry().counter("mc.pool.rejoined").inc();
  rebuild_routing();
}

void Client::rebuild_routing() {
  if (behavior_.distribution != Distribution::ketama) return;
  // Re-hash the continuum over the surviving pool: ketama's whole point
  // is that this remaps only the dead server's share of the keyspace.
  std::vector<std::string> alive;
  alive_to_conn_.clear();
  for (std::size_t i = 0; i < server_names_.size(); ++i) {
    if (i < health_.size() && health_[i].ejected) continue;
    alive.push_back(server_names_[i]);
    alive_to_conn_.push_back(i);
  }
  if (alive.empty()) {  // nobody left: keep routing to natural owners
    alive_to_conn_.clear();
    continuum_.rebuild(server_names_);
    return;
  }
  continuum_.rebuild(alive);
}

sim::Task<> Client::rejoin_probe(std::size_t index) {
  for (std::uint32_t i = 0; i < behavior_.rejoin_attempts && health_[index].ejected; ++i) {
    co_await sched_->delay(behavior_.rejoin_interval);
    if (!health_[index].ejected) break;
    ServerConn& conn = *conns_[index];
    if (!conn.alive()) {
      auto st = co_await conn.connect();
      if (!st.ok()) continue;
    }
    // Any reply — even a miss — proves the server is back.
    auto probe = co_await conn.get("rejoin-probe", false);
    if (probe.ok() || !transport_error(probe.error())) note_success(index);
  }
  health_[index].probing = false;
}

template <typename Op>
std::invoke_result_t<Op&, ServerConn&> Client::with_retries(std::string_view key, Op op) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    // Route per attempt: an ejection between attempts re-routes the key.
    const std::size_t index = server_index(key);
    Errc failure = Errc::ok;
    if (!conns_[index]->alive()) {
      auto reconnected = co_await ensure_conn(index);
      if (!reconnected.ok()) {
        if (!transport_error(reconnected.error())) co_return reconnected.error();
        failure = reconnected.error();
      }
    }
    if (failure == Errc::ok) {
      auto result = co_await op(*conns_[index]);
      if (result.ok() || !transport_error(result.error())) {
        note_success(index);
        co_return std::move(result);
      }
      failure = result.error();
    }
    note_failure(index);
    if (attempt >= behavior_.max_retries) co_return failure;
    obs::registry().counter("mc.client.retries").inc();
    co_await sched_->delay(behavior_.retry_backoff << std::min(attempt, 6u));
  }
}

sim::Task<Status> Client::set(std::string_view key, std::span<const std::byte> value,
                              std::uint32_t flags, std::uint32_t exptime) {
  obs::registry().counter("mc.client.sets").inc();
  co_return co_await with_retries(key, [&](ServerConn& c) {
    return c.store(SetMode::set, key, value, flags, exptime, 0);
  });
}
sim::Task<Status> Client::add(std::string_view key, std::span<const std::byte> value,
                              std::uint32_t flags, std::uint32_t exptime) {
  co_return co_await with_retries(key, [&](ServerConn& c) {
    return c.store(SetMode::add, key, value, flags, exptime, 0);
  });
}
sim::Task<Status> Client::replace(std::string_view key, std::span<const std::byte> value,
                                  std::uint32_t flags, std::uint32_t exptime) {
  co_return co_await with_retries(key, [&](ServerConn& c) {
    return c.store(SetMode::replace, key, value, flags, exptime, 0);
  });
}
sim::Task<Status> Client::append(std::string_view key, std::span<const std::byte> value) {
  co_return co_await with_retries(
      key, [&](ServerConn& c) { return c.store(SetMode::append, key, value, 0, 0, 0); });
}
sim::Task<Status> Client::prepend(std::string_view key, std::span<const std::byte> value) {
  co_return co_await with_retries(
      key, [&](ServerConn& c) { return c.store(SetMode::prepend, key, value, 0, 0, 0); });
}
sim::Task<Status> Client::cas(std::string_view key, std::span<const std::byte> value,
                              std::uint64_t cas_unique, std::uint32_t flags,
                              std::uint32_t exptime) {
  co_return co_await with_retries(key, [&](ServerConn& c) {
    return c.store(SetMode::cas, key, value, flags, exptime, cas_unique);
  });
}

sim::Task<Result<proto::Value>> Client::get(std::string_view key) {
  obs::registry().counter("mc.client.gets").inc();
  co_return co_await with_retries(key, [&](ServerConn& c) { return c.get(key, false); });
}
sim::Task<Result<proto::Value>> Client::gets(std::string_view key) {
  co_return co_await with_retries(key, [&](ServerConn& c) { return c.get(key, true); });
}
sim::Task<Result<GetIntoResult>> Client::get_into(std::string_view key,
                                                  std::span<std::byte> dest) {
  obs::registry().counter("mc.client.gets").inc();
  co_return co_await with_retries(
      key, [&](ServerConn& c) { return c.get_into(key, dest, false); });
}

sim::Task<Result<std::vector<std::optional<proto::Value>>>> Client::mget(
    std::span<const std::string> keys) {
  // Group keys per server and issue all per-server mgets concurrently
  // (libmemcached pipelines across the pool), then reassemble
  // positionally.
  std::vector<std::vector<std::string>> grouped(conns_.size());
  std::vector<std::vector<std::size_t>> positions(conns_.size());
  std::size_t groups = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t server = server_index(keys[i]);
    if (grouped[server].empty()) ++groups;
    grouped[server].push_back(keys[i]);
    positions[server].push_back(i);
  }

  std::vector<std::optional<proto::Value>> out(keys.size());
  Errc first_error = Errc::ok;
  sim::Counter finished(*sched_);
  for (std::size_t server = 0; server < conns_.size(); ++server) {
    if (grouped[server].empty()) continue;
    // The spawned tasks only reference this frame's locals, and this
    // coroutine stays suspended on `finished` until all of them are done.
    sched_->spawn([](ServerConn& conn, const std::vector<std::string>& group,
                     const std::vector<std::size_t>& pos,
                     std::vector<std::optional<proto::Value>>& results, Errc& err,
                     sim::Counter& done) -> sim::Task<> {
      // rmclint:allow(coro-lifetime): all arguments live in mget's frame, which
      // stays suspended on `finished` until every per-server task calls done.add().
      auto r = co_await conn.mget(group, false);
      if (r.ok()) {
        for (std::size_t j = 0; j < pos.size(); ++j) results[pos[j]] = std::move((*r)[j]);
      } else if (err == Errc::ok) {
        err = r.error();
      }
      done.add();
    }(*conns_[server], grouped[server], positions[server], out, first_error, finished));
  }
  co_await finished.wait_geq(groups);
  if (first_error != Errc::ok) co_return first_error;
  co_return out;
}

sim::Task<Status> Client::mget_into(std::span<const std::string_view> keys,
                                    std::span<MgetSlot> slots) {
  if (keys.size() > slots.size()) co_return Errc::invalid_argument;
  if (keys.empty()) co_return Status{};
  // Single-server pool: zero-alloc pass-through to the batched transport
  // path (the common benchmark/zero-alloc configuration).
  if (conns_.size() == 1) co_return co_await conns_[0]->mget_into(keys, slots, false);

  // Multi-server pool: group per server first (allocates), run the
  // per-server batches sequentially, and copy the answers back into the
  // caller's positional slots.
  std::vector<std::vector<std::string_view>> grouped(conns_.size());
  std::vector<std::vector<std::size_t>> positions(conns_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t server = server_index(keys[i]);
    grouped[server].push_back(keys[i]);
    positions[server].push_back(i);
  }
  std::vector<MgetSlot> scratch;
  for (std::size_t server = 0; server < conns_.size(); ++server) {
    if (grouped[server].empty()) continue;
    scratch.assign(grouped[server].size(), MgetSlot{});
    for (std::size_t j = 0; j < positions[server].size(); ++j) {
      scratch[j].dest = slots[positions[server][j]].dest;
    }
    auto st = co_await conns_[server]->mget_into(grouped[server], scratch, false);
    if (!st.ok()) co_return st;
    for (std::size_t j = 0; j < positions[server].size(); ++j) {
      slots[positions[server][j]] = scratch[j];
    }
  }
  co_return Status{};
}

sim::Task<Status> Client::del(std::string_view key) {
  co_return co_await with_retries(key, [&](ServerConn& c) { return c.del(key); });
}
sim::Task<Result<std::uint64_t>> Client::incr(std::string_view key, std::uint64_t delta) {
  co_return co_await with_retries(key,
                                  [&](ServerConn& c) { return c.arith(key, delta, false); });
}
sim::Task<Result<std::uint64_t>> Client::decr(std::string_view key, std::uint64_t delta) {
  co_return co_await with_retries(key,
                                  [&](ServerConn& c) { return c.arith(key, delta, true); });
}
sim::Task<Status> Client::touch(std::string_view key, std::uint32_t exptime) {
  co_return co_await with_retries(key,
                                  [&](ServerConn& c) { return c.touch(key, exptime); });
}

sim::Task<Status> Client::flush_all() {
  for (auto& conn : conns_) {
    auto st = co_await conn->flush_all();
    if (!st.ok()) co_return st;
  }
  co_return Status{};
}

}  // namespace rmc::mc
