// Slab allocator, following memcached 1.4.x.
//
// Memory is divided into size classes growing by a configurable factor
// (memcached's -f, default 1.25). Each class allocates 1 MB pages from a
// global budget and chops them into equal chunks; freed chunks go to a
// per-class freelist. The design exists to avoid fragmentation under
// mixed item sizes — and, as §III notes, it is exactly why clients cannot
// cache item addresses: the server is free to reuse chunk memory at any
// time without telling anyone.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace rmc::mc {

struct SlabConfig {
  std::size_t memory_limit = 64 * 1024 * 1024;  ///< memcached -m (bytes)
  std::size_t page_size = 1024 * 1024;          ///< per-class allocation unit
  std::size_t chunk_min = 96;                   ///< smallest chunk
  std::size_t chunk_max = 1024 * 1024;          ///< largest item (1 MB default)
  double growth_factor = 1.25;                  ///< memcached -f
};

class SlabAllocator {
 public:
  explicit SlabAllocator(SlabConfig config = {});
  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Smallest class whose chunk size fits `size` bytes; no_resources when
  /// size exceeds chunk_max.
  Result<std::uint8_t> class_for(std::size_t size) const;

  std::size_t chunk_size(std::uint8_t cls) const { return classes_[cls].chunk_size; }
  std::size_t class_count() const { return classes_.size(); }

  /// Allocate one chunk in `cls`. Fails with no_resources when the class
  /// freelist is empty and the memory budget is exhausted (the store then
  /// evicts from that class's LRU and retries).
  Result<std::byte*> allocate(std::uint8_t cls);

  /// Return a chunk to its class freelist.
  void free(std::uint8_t cls, std::byte* chunk);

  /// All pages ever allocated (so the server can register them for RDMA).
  /// Pages are stable for the allocator's lifetime.
  std::span<const std::pair<std::byte*, std::size_t>> pages() const { return pages_; }

  /// Newly added pages since the last call (incremental registration).
  std::vector<std::pair<std::byte*, std::size_t>> take_new_pages();

  std::size_t memory_allocated() const { return memory_allocated_; }
  std::uint64_t chunks_in_use(std::uint8_t cls) const { return classes_[cls].in_use; }

 private:
  struct SizeClass {
    std::size_t chunk_size = 0;
    std::vector<std::byte*> freelist;
    std::uint64_t in_use = 0;
  };

  SlabConfig config_;
  std::vector<SizeClass> classes_;
  std::vector<std::unique_ptr<std::byte[]>> storage_;
  std::vector<std::pair<std::byte*, std::size_t>> pages_;
  std::size_t new_pages_mark_ = 0;
  std::size_t memory_allocated_ = 0;
};

}  // namespace rmc::mc
