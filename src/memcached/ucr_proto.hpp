// Memcached-over-UCR message formats (§V), shared by server and client.
//
// One AM id for requests, one for responses. Request values (SET family)
// travel as AM data: eager for small items, RDMA-read by the server for
// large ones — directly into the item's final slab location. Response
// values (GET) travel as AM data the other way: the client's header
// handler learns the length (unknown beforehand, §V-C), names a buffer
// from its local pool, and UCR places the value into it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace rmc::mc::ucrp {

inline constexpr std::uint16_t kMsgRequest = 0x6d01;
inline constexpr std::uint16_t kMsgResponse = 0x6d02;

enum class Op : std::uint8_t {
  get,
  gets,
  set,
  add,
  replace,
  append,
  prepend,
  cas,
  del,
  incr,
  decr,
  touch,
  flush_all,
  version,
  /// True server-side multiget: the request carries a packed key block
  /// (see pack_mget_key), the server answers with one or more chunked
  /// responses (MgetChunkHeader + MgetRecords + gathered values). Records
  /// always carry the CAS id, so there is no separate mgets variant.
  mget,
};

inline bool is_storage(Op op) {
  switch (op) {
    case Op::set:
    case Op::add:
    case Op::replace:
    case Op::append:
    case Op::prepend:
    case Op::cas:
      return true;
    default:
      return false;
  }
}

/// Fixed part of a request AM header; the key follows immediately.
struct RequestHeader {
  Op op = Op::get;
  std::uint16_t key_len = 0;
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::uint64_t cas = 0;
  std::uint64_t delta = 0;         ///< incr/decr amount; flush_all delay
  std::uint64_t req_id = 0;        ///< client-side correlation
  std::uint64_t reply_counter = 0; ///< CounterRef at the client (counter C, §V)

  static constexpr std::size_t kSize = 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(op);
    put(key_len);
    put(flags);
    put(exptime);
    put(cas);
    put(delta);
    put(req_id);
    put(reply_counter);
  }
  static RequestHeader decode(const std::byte* in) {
    RequestHeader h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.op);
    get(h.key_len);
    get(h.flags);
    get(h.exptime);
    get(h.cas);
    get(h.delta);
    get(h.req_id);
    get(h.reply_counter);
    return h;
  }
};

/// Response status (a compact mirror of the text protocol's reply lines).
enum class RStatus : std::uint8_t {
  ok,          ///< generic success (flush_all, version)
  stored,
  not_stored,
  exists,
  not_found,
  deleted,
  touched,
  number,      ///< incr/decr result in `number`
  value,       ///< GET hit: flags/cas set, value in AM data
  client_error,
  server_error,
};

struct ResponseHeader {
  RStatus status = RStatus::ok;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::uint64_t number = 0;
  std::uint64_t req_id = 0;

  static constexpr std::size_t kSize = 1 + 4 + 8 + 8 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(status);
    put(flags);
    put(cas);
    put(number);
    put(req_id);
  }
  static ResponseHeader decode(const std::byte* in) {
    ResponseHeader h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.status);
    get(h.flags);
    get(h.cas);
    get(h.number);
    get(h.req_id);
    return h;
  }
};

// ------------------------------------------------------------- multiget
//
// Request wire form (Op::mget): RequestHeader with
//   key_len = byte length of the packed key block that follows,
//   delta   = number of keys in the block
// (both fields are otherwise unused by mget), then the key block itself:
// repeated [u16 len][len key bytes], packed back to back. The whole
// request must fit one eager AM frame; clients split longer key lists
// into several sub-requests.
//
// Response wire form: one or more chunks, each a separate AM carrying
//   ResponseHeader (status=value, req_id echoed)
//   MgetChunkHeader
//   record_count x MgetRecord
// in the AM header region, with the hit values concatenated in record
// order as AM data. Every chunk bumps the request's reply counter by
// one; chunks carry start_index/total_chunks so scatter is order- and
// loss-retry-independent. A bare ResponseHeader (no chunk header) is a
// whole-request error.

/// Largest mget key block a request can carry: the default 8 KiB eager
/// frame minus the AM wire header (48 B, ucr::wire::AmWire::kSize) and
/// the RequestHeader (43 B). Also sizes the server's inline per-request
/// key carrier, so requests never allocate.
inline constexpr std::size_t kMaxMgetKeyBlock = 8192 - 48 - RequestHeader::kSize;

/// Bytes pack_mget_key will write for `key`.
inline constexpr std::size_t mget_entry_size(std::string_view key) {
  return sizeof(std::uint16_t) + key.size();
}

/// Append one [u16 len][bytes] entry at `out`; returns bytes written.
inline std::size_t pack_mget_key(std::byte* out, std::string_view key) {
  const auto len = static_cast<std::uint16_t>(key.size());
  std::memcpy(out, &len, sizeof(len));
  std::memcpy(out + sizeof(len), key.data(), key.size());
  return sizeof(len) + key.size();
}

/// Forward iterator over a packed key block (no allocation, no copies:
/// the yielded views alias the block).
struct MgetKeyReader {
  const std::byte* cur = nullptr;
  const std::byte* end = nullptr;

  MgetKeyReader(const std::byte* block, std::size_t len)
      : cur(block), end(block + len) {}

  bool next(std::string_view& out) {
    if (end - cur < static_cast<std::ptrdiff_t>(sizeof(std::uint16_t))) return false;
    std::uint16_t len = 0;
    std::memcpy(&len, cur, sizeof(len));
    cur += sizeof(len);
    if (end - cur < static_cast<std::ptrdiff_t>(len)) return false;
    out = std::string_view{reinterpret_cast<const char*>(cur), len};
    cur += len;
    return true;
  }
};

/// Follows the ResponseHeader in each multiget response chunk.
struct MgetChunkHeader {
  std::uint32_t start_index = 0;   ///< request-order index of the first record
  std::uint32_t record_count = 0;  ///< MgetRecords in this chunk
  std::uint32_t total_chunks = 0;  ///< chunks the whole reply comprises
  std::uint32_t total_keys = 0;    ///< keys in the request (sanity check)

  static constexpr std::size_t kSize = 4 + 4 + 4 + 4;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(start_index);
    put(record_count);
    put(total_chunks);
    put(total_keys);
  }
  static MgetChunkHeader decode(const std::byte* in) {
    MgetChunkHeader h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.start_index);
    get(h.record_count);
    get(h.total_chunks);
    get(h.total_keys);
    return h;
  }
};

/// Per-key result inside a multiget response chunk. Hits (status==value)
/// own value_len bytes of the chunk's AM data, in record order; misses
/// own none.
struct MgetRecord {
  RStatus status = RStatus::not_found;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::uint32_t value_len = 0;

  static constexpr std::size_t kSize = 1 + 4 + 8 + 4;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(status);
    put(flags);
    put(cas);
    put(value_len);
  }
  static MgetRecord decode(const std::byte* in) {
    MgetRecord h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.status);
    get(h.flags);
    get(h.cas);
    get(h.value_len);
    return h;
  }
};

}  // namespace rmc::mc::ucrp
