// Memcached-over-UCR message formats (§V), shared by server and client.
//
// One AM id for requests, one for responses. Request values (SET family)
// travel as AM data: eager for small items, RDMA-read by the server for
// large ones — directly into the item's final slab location. Response
// values (GET) travel as AM data the other way: the client's header
// handler learns the length (unknown beforehand, §V-C), names a buffer
// from its local pool, and UCR places the value into it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rmc::mc::ucrp {

inline constexpr std::uint16_t kMsgRequest = 0x6d01;
inline constexpr std::uint16_t kMsgResponse = 0x6d02;

enum class Op : std::uint8_t {
  get,
  gets,
  set,
  add,
  replace,
  append,
  prepend,
  cas,
  del,
  incr,
  decr,
  touch,
  flush_all,
  version,
};

inline bool is_storage(Op op) {
  switch (op) {
    case Op::set:
    case Op::add:
    case Op::replace:
    case Op::append:
    case Op::prepend:
    case Op::cas:
      return true;
    default:
      return false;
  }
}

/// Fixed part of a request AM header; the key follows immediately.
struct RequestHeader {
  Op op = Op::get;
  std::uint16_t key_len = 0;
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::uint64_t cas = 0;
  std::uint64_t delta = 0;         ///< incr/decr amount; flush_all delay
  std::uint64_t req_id = 0;        ///< client-side correlation
  std::uint64_t reply_counter = 0; ///< CounterRef at the client (counter C, §V)

  static constexpr std::size_t kSize = 1 + 2 + 4 + 4 + 8 + 8 + 8 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(op);
    put(key_len);
    put(flags);
    put(exptime);
    put(cas);
    put(delta);
    put(req_id);
    put(reply_counter);
  }
  static RequestHeader decode(const std::byte* in) {
    RequestHeader h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.op);
    get(h.key_len);
    get(h.flags);
    get(h.exptime);
    get(h.cas);
    get(h.delta);
    get(h.req_id);
    get(h.reply_counter);
    return h;
  }
};

/// Response status (a compact mirror of the text protocol's reply lines).
enum class RStatus : std::uint8_t {
  ok,          ///< generic success (flush_all, version)
  stored,
  not_stored,
  exists,
  not_found,
  deleted,
  touched,
  number,      ///< incr/decr result in `number`
  value,       ///< GET hit: flags/cas set, value in AM data
  client_error,
  server_error,
};

struct ResponseHeader {
  RStatus status = RStatus::ok;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::uint64_t number = 0;
  std::uint64_t req_id = 0;

  static constexpr std::size_t kSize = 1 + 4 + 8 + 8 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(status);
    put(flags);
    put(cas);
    put(number);
    put(req_id);
  }
  static ResponseHeader decode(const std::byte* in) {
    ResponseHeader h;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(h.status);
    get(h.flags);
    get(h.cas);
    get(h.number);
    get(h.req_id);
    return h;
  }
};

}  // namespace rmc::mc::ucrp
