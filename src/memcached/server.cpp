// rmclint:hotpath — request fast path; zero-alloc rule enforced here
#include "memcached/server.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "ucr/wire.hpp"

namespace rmc::mc {

namespace {
/// Payload-stage scopes: wall-clock spent doing the cache's actual work
/// (parsing requests, store operations, formatting replies), as opposed
/// to the engine overhead charged to the prof.sim.* / prof.ucr.* scopes.
/// Each wraps only the straight-line section between cpu() awaits — a
/// ProfScope must never span a co_await.
const std::uint16_t kProfParse =
    obs::profiler().register_scope("prof.mc.server.parse", obs::ScopeKind::payload);
const std::uint16_t kProfExecute =
    obs::profiler().register_scope("prof.mc.server.execute", obs::ScopeKind::payload);
const std::uint16_t kProfFormat =
    obs::profiler().register_scope("prof.mc.server.format", obs::ScopeKind::payload);
}  // namespace

/// Per-UCR-connection state hung off the endpoint's user_data: items
/// allocated by SET header handlers, waiting for their value to arrive.
/// Ordered map: teardown iterates it to release the items, and release
/// order feeds the slab free list (sim-visible); req_ids are monotonic,
/// so iteration equals arrival order.
struct Server::UcrConnState {
  std::map<std::uint64_t, ItemHeader*> pending_sets;  // req_id -> item
  std::size_t worker = 0;  ///< round-robin worker owning this connection
};

Server::Server(sim::Scheduler& sched, sim::Host& host, ServerConfig config)
    : sched_(&sched),
      host_(&host),
      config_(config),
      store_(config.store),
      stage_parse_(&obs::registry().timer("mc.server.stage.parse")),
      stage_queue_(&obs::registry().timer("mc.server.stage.queue")),
      stage_execute_(&obs::registry().timer("mc.server.stage.execute")),
      stage_format_(&obs::registry().timer("mc.server.stage.format")),
      queue_depth_(&obs::registry().gauge("mc.worker.queue_depth")),
      mget_batch_(&obs::registry().timer("mc.mget.batch_size")) {
  config_.workers = std::max(1u, config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    // rmclint:allow(zeroalloc): server construction — worker channels exist for the process lifetime
    worker_queues_.push_back(std::make_unique<sim::Channel<Work>>(sched));
    sched.spawn(worker_loop(i));
  }
}

Server::~Server() {
  if (ucr_runtime_ != nullptr && ucr_down_handler_ != 0) {
    ucr_runtime_->remove_endpoint_handler(ucr_down_handler_);
  }
}

void Server::schedule_flush(std::uint32_t exptime_s) {
  // Every flush — immediate or delayed — starts a new generation, so any
  // still-pending timer from an earlier flush_all is superseded (memcached
  // semantics: the newest flush wins).
  const std::uint64_t gen = ++flush_gen_;
  if (exptime_s == 0) {
    store_.flush_all();
    return;
  }
  std::weak_ptr<bool> alive = flush_alive_;
  sched_->call_in(static_cast<sim::Time>(exptime_s) * kNsPerSec, [this, alive, gen] {
    // The token expires with the Server: a timer outliving the server (or
    // superseded by a newer flush) must not touch freed state.
    if (alive.expired() || gen != flush_gen_) return;
    store_.flush_all();
  });
}

void Server::advance_clock() {
  store_.set_clock(static_cast<std::uint32_t>(1 + sched_->now() / kNsPerSec));
}

void Server::enqueue_work(std::size_t index, Work work) {
  work.enqueued_at = sched_->now();
  worker_queues_[index]->send(std::move(work));
  queue_depth_->set(static_cast<std::int64_t>(worker_queues_[index]->size()));
}

// ------------------------------------------------------ socket frontend

void Server::attach_socket_frontend(sock::NetStack& stack) {
  sock::Listener& listener = stack.listen(config_.port);
  sched_->spawn(accept_loop(stack, listener));
}

sim::Task<> Server::accept_loop(sock::NetStack& stack, sock::Listener& listener) {
  // rmclint:allow(coro-lifetime): the NetStack (and the Listener it owns) is a
  // bed-scoped fixture that outlives the scheduler run this loop lives in.
  (void)stack;
  while (true) {
    sock::Socket* socket = co_await listener.accept();
    if (!socket) co_return;
    ++total_connections_;
    obs::registry().counter("mc.server.connections").inc();
    // Round-robin: all requests of this connection go to one worker, as
    // §V-A describes for the thread assignment.
    const std::size_t worker = next_worker_++ % worker_queues_.size();
    sched_->spawn(connection_loop(*socket, worker));
  }
}

sim::Task<> Server::connection_loop(sock::Socket& socket, std::size_t worker) {
  // Protocol auto-detection, as memcached 1.4 does on a shared port: a
  // first byte of 0x80 means the binary protocol.
  std::vector<std::byte> first(16 * 1024);
  // rmclint:allow(coro-lifetime): sockets are pool-owned by the NetStack; close()
  // only marks state, so the reference stays valid until stack teardown.
  auto n = co_await socket.recv(first);
  if (!n.ok() || *n == 0) {
    socket.close();
    co_return;
  }
  bytes_read_ += *n;
  const std::span<const std::byte> initial(first.data(), *n);
  if (first[0] == std::byte{bproto::kMagicRequest}) {
    co_await binary_loop(socket, worker, initial);
  } else {
    co_await text_loop(socket, worker, initial);
  }
}

sim::Task<> Server::text_loop(sock::Socket& socket, std::size_t worker,
                              std::span<const std::byte> initial) {
  proto::RequestParser parser;
  parser.feed(initial);
  bool first_pass = true;
  std::vector<std::byte> chunk(16 * 1024);
  while (true) {
    if (!first_pass) {
      auto n = co_await socket.recv(chunk);
      if (!n.ok() || *n == 0) {
        socket.close();
        co_return;
      }
      bytes_read_ += *n;
      parser.feed(std::span<const std::byte>(chunk.data(), *n));
    }
    first_pass = false;
    // libevent fired for this connection: dispatch cost.
    co_await host_->cpu().consume(config_.costs.event_dispatch_ns);
    while (true) {
      auto parsed = [&] {
        obs::ProfScope prof{kProfParse};
        return parser.next();
      }();
      if (!parsed.ok()) {
        // Garbage on the stream: memcached answers ERROR and closes.
        proto::Response error_resp;
        error_resp.type = proto::Response::Type::error;
        const auto bytes = proto::encode_response(error_resp, false);
        (void)co_await socket.send(bytes);
        socket.close();
        co_return;
      }
      if (!parsed->has_value()) break;
      proto::Request& request = **parsed;
      const sim::Time parse_start = sched_->now();
      co_await host_->cpu().consume(
          config_.costs.parse_base_ns +
          static_cast<sim::Time>(static_cast<double>(request.wire_bytes - request.data.size()) *
                                 config_.costs.parse_ns_per_byte));
      stage_parse_->record(sched_->now() - parse_start);
      const bool quit = request.command == proto::Command::quit;
      Work work;
      work.request = std::move(request);
      work.socket = &socket;
      enqueue_work(worker, std::move(work));
      if (quit) co_return;  // stop reading; worker closes after draining
    }
  }
}

sim::Task<> Server::binary_loop(sock::Socket& socket, std::size_t worker,
                                std::span<const std::byte> initial) {
  bproto::RequestParser parser;
  parser.feed(initial);
  bool first_pass = true;
  std::vector<std::byte> chunk(16 * 1024);
  while (true) {
    if (!first_pass) {
      auto n = co_await socket.recv(chunk);
      if (!n.ok() || *n == 0) {
        socket.close();
        co_return;
      }
      bytes_read_ += *n;
      parser.feed(std::span<const std::byte>(chunk.data(), *n));
    }
    first_pass = false;
    co_await host_->cpu().consume(config_.costs.event_dispatch_ns);
    while (true) {
      auto parsed = [&] {
        obs::ProfScope prof{kProfParse};
        return parser.next();
      }();
      if (!parsed.ok()) {
        socket.close();  // framing is broken; nothing sane to answer
        co_return;
      }
      if (!parsed->has_value()) break;
      // Binary framing needs no line scanning: flat parse cost.
      const sim::Time parse_start = sched_->now();
      co_await host_->cpu().consume(config_.costs.parse_base_ns / 2);
      stage_parse_->record(sched_->now() - parse_start);
      const bool quit = (*parsed)->opcode == bproto::Opcode::quit;
      Work work;
      work.is_binary = true;
      work.bin_request = std::move(**parsed);
      work.socket = &socket;
      enqueue_work(worker, std::move(work));
      if (quit) co_return;
    }
  }
}

sim::Task<> Server::worker_loop(std::size_t index) {
  sim::Channel<Work>& queue = *worker_queues_[index];
  WorkerScratch scratch;
  obs::Counter& ucr_requests = obs::registry().counter("mc.requests.ucr");
  obs::Counter& binary_requests = obs::registry().counter("mc.requests.binary");
  obs::Counter& text_requests = obs::registry().counter("mc.requests.text");
  while (true) {
    auto work = co_await queue.recv();
    if (!work) co_return;
    queue_depth_->set(static_cast<std::int64_t>(queue.size()));
    ++requests_served_;
    const sim::Time dequeued_at = sched_->now();
    stage_queue_->record(dequeued_at - work->enqueued_at);
    const char* kind;
    if (work->is_ucr) {
      kind = "ucr";
      ucr_requests.inc();
      co_await process_ucr(*work, scratch);
    } else if (work->is_binary) {
      kind = "binary";
      binary_requests.inc();
      co_await process_binary(*work);
    } else {
      kind = "text";
      text_requests.inc();
      co_await process_socket(*work, scratch);
    }
    if (obs::tracer().enabled()) {
      obs::tracer().complete(dequeued_at, sched_->now() - dequeued_at,
                             // rmclint:allow(zeroalloc): tracing-only label, gated by tracer().enabled() above
                             "mc:" + host_->name() + "/w" + std::to_string(index), kind,
                             "mc");
    }
  }
}

proto::Response Server::execute(const proto::Request& request) {
  advance_clock();
  using Type = proto::Response::Type;
  proto::Response resp;

  switch (request.command) {
    case proto::Command::get:
    case proto::Command::gets: {
      resp.type = Type::values;
      for (std::size_t i = 0; i < request.key_count(); ++i) {
        const std::string_view key = request.key_at(i);
        ItemHeader* item = store_.get(key);
        if (!item) continue;
        proto::Value v;
        v.key.assign(key.data(), key.size());
        v.flags = item->flags;
        v.cas = item->cas;
        v.data.assign(item->value().begin(), item->value().end());
        // rmclint:allow(zeroalloc): socket-transport response assembly — the measured-overhead baseline, off the PR 2 UCR budget
        resp.values.push_back(std::move(v));
      }
      return resp;
    }
    case proto::Command::set:
    case proto::Command::add:
    case proto::Command::replace:
    case proto::Command::append:
    case proto::Command::prepend:
    case proto::Command::cas: {
      SetMode mode = SetMode::set;
      switch (request.command) {
        case proto::Command::add: mode = SetMode::add; break;
        case proto::Command::replace: mode = SetMode::replace; break;
        case proto::Command::append: mode = SetMode::append; break;
        case proto::Command::prepend: mode = SetMode::prepend; break;
        case proto::Command::cas: mode = SetMode::cas; break;
        default: break;
      }
      auto stored = store_.store(mode, request.key(), request.data, request.flags,
                                 request.exptime, request.cas_unique);
      if (stored.ok()) {
        resp.type = Type::stored;
      } else {
        switch (stored.error()) {
          case Errc::not_stored: resp.type = Type::not_stored; break;
          case Errc::exists: resp.type = Type::exists; break;
          case Errc::not_found: resp.type = Type::not_found; break;
          case Errc::too_large:
            resp.type = Type::server_error;
            resp.message = "object too large for cache";
            break;
          case Errc::invalid_argument:
            resp.type = Type::client_error;
            resp.message = "bad command line format";
            break;
          default:
            resp.type = Type::server_error;
            resp.message = "out of memory storing object";
            break;
        }
      }
      return resp;
    }
    case proto::Command::del:
      resp.type = store_.del(request.key()) ? Type::deleted : Type::not_found;
      return resp;
    case proto::Command::incr:
    case proto::Command::decr: {
      auto result =
          store_.arith(request.key(), request.delta, request.command == proto::Command::decr);
      if (result.ok()) {
        resp.type = Type::number;
        resp.number = *result;
      } else if (result.error() == Errc::not_found) {
        resp.type = Type::not_found;
      } else {
        resp.type = Type::client_error;
        resp.message = "cannot increment or decrement non-numeric value";
      }
      return resp;
    }
    case proto::Command::touch:
      resp.type = store_.touch(request.key(), request.exptime) ? Type::touched : Type::not_found;
      return resp;
    case proto::Command::flush_all:
      schedule_flush(request.exptime);
      resp.type = Type::ok;
      return resp;
    case proto::Command::stats:
      resp.type = Type::stats;
      resp.message = render_stats();
      return resp;
    case proto::Command::version:
      resp.type = Type::version;
      resp.message = "1.4.5-rmc";
      return resp;
    case proto::Command::quit:
      resp.type = Type::ok;
      return resp;
  }
  resp.type = Type::error;
  return resp;
}

sim::Task<> Server::process_socket(Work& work, WorkerScratch& scratch) {
  const proto::Request& request = work.request;

  if (request.command == proto::Command::get || request.command == proto::Command::gets) {
    // GET fast path: pin matching items, render VALUE lines straight from
    // the slab into the worker's reusable scratch buffer — no Response, no
    // per-request value copies on the heap. Charged costs and emitted
    // bytes are identical to the generic path.
    const sim::Time exec_start = sched_->now();
    co_await host_->cpu().consume(config_.costs.op_base_ns);
    advance_clock();
    std::size_t value_bytes = 0;
    {
      obs::ProfScope prof{kProfExecute};
      scratch.items.clear();
      for (std::size_t i = 0; i < request.key_count(); ++i) {
        ItemHeader* item = store_.get_pinned(request.key_at(i));
        if (!item) continue;
        // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
        scratch.items.push_back(item);
        value_bytes += item->value().size();
      }
    }
    stage_execute_->record(sched_->now() - exec_start);

    const sim::Time format_start = sched_->now();
    co_await host_->cpu().consume(
        config_.costs.format_base_ns +
        static_cast<sim::Time>(static_cast<double>(value_bytes) *
                               config_.costs.value_copy_ns_per_byte));
    const bool with_cas = request.command == proto::Command::gets;
    {
      obs::ProfScope prof{kProfFormat};
      scratch.out.clear();
      for (ItemHeader* item : scratch.items) {
        proto::append_bytes(scratch.out, "VALUE ");
        proto::append_bytes(scratch.out, item->key());
        proto::append_bytes(scratch.out, " ");
        proto::append_u64(scratch.out, item->flags);
        proto::append_bytes(scratch.out, " ");
        proto::append_u64(scratch.out, item->value().size());
        if (with_cas) {
          proto::append_bytes(scratch.out, " ");
          proto::append_u64(scratch.out, item->cas);
        }
        proto::append_bytes(scratch.out, "\r\n");
        // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
        scratch.out.insert(scratch.out.end(), item->value().begin(), item->value().end());
        proto::append_bytes(scratch.out, "\r\n");
      }
      proto::append_bytes(scratch.out, "END\r\n");
      for (ItemHeader* item : scratch.items) store_.release(item);
      scratch.items.clear();
    }
    stage_format_->record(sched_->now() - format_start);
    bytes_written_ += scratch.out.size();
    (void)co_await work.socket->send(scratch.out);
    co_return;
  }

  const sim::Time exec_start = sched_->now();
  co_await host_->cpu().consume(
      config_.costs.op_base_ns +
      static_cast<sim::Time>(static_cast<double>(request.data.size()) *
                             config_.costs.value_copy_ns_per_byte));
  proto::Response resp;
  {
    obs::ProfScope prof{kProfExecute};
    resp = execute(request);
  }
  stage_execute_->record(sched_->now() - exec_start);

  if (request.command == proto::Command::quit) {
    work.socket->close();
    co_return;
  }
  if (request.noreply) co_return;

  std::size_t value_bytes = 0;
  for (const auto& v : resp.values) value_bytes += v.data.size();
  const sim::Time format_start = sched_->now();
  co_await host_->cpu().consume(
      config_.costs.format_base_ns +
      static_cast<sim::Time>(static_cast<double>(value_bytes) *
                             config_.costs.value_copy_ns_per_byte));

  const bool with_cas = request.command == proto::Command::gets;
  {
    obs::ProfScope prof{kProfFormat};
    scratch.out.clear();
    proto::encode_response_into(resp, with_cas, scratch.out);
  }
  stage_format_->record(sched_->now() - format_start);
  bytes_written_ += scratch.out.size();
  (void)co_await work.socket->send(scratch.out);
}


sim::Task<> Server::process_binary(Work& work) {
  using bproto::BStatus;
  using bproto::Opcode;
  const bproto::Request& req = work.bin_request;
  const sim::Time exec_start = sched_->now();
  co_await host_->cpu().consume(
      config_.costs.op_base_ns +
      static_cast<sim::Time>(static_cast<double>(req.value.size()) *
                             config_.costs.value_copy_ns_per_byte));
  advance_clock();

  bproto::Response resp;
  resp.opcode = req.opcode;
  resp.opaque = req.opaque;
  bool reply = true;

  {
  obs::ProfScope exec_prof{kProfExecute};
  switch (req.opcode) {
    case Opcode::get:
    case Opcode::getq:
    case Opcode::getk:
    case Opcode::getkq: {
      ItemHeader* item = store_.get(req.key);
      if (!item) {
        if (bproto::is_quiet(req.opcode)) {
          reply = false;  // quiet miss: say nothing (pipelined multiget)
        } else {
          resp.status = BStatus::key_not_found;
        }
        break;
      }
      resp.status = BStatus::ok;
      resp.flags = item->flags;
      resp.cas = item->cas;
      resp.value.assign(item->value().begin(), item->value().end());
      if (req.opcode == Opcode::getk || req.opcode == Opcode::getkq) resp.key = req.key;
      break;
    }
    case Opcode::set:
    case Opcode::add:
    case Opcode::replace: {
      SetMode mode = SetMode::set;
      if (req.opcode == Opcode::add) mode = SetMode::add;
      if (req.opcode == Opcode::replace) mode = SetMode::replace;
      // A non-zero CAS on a binary set means compare-and-swap.
      if (req.cas != 0) mode = SetMode::cas;
      auto stored = store_.store(mode, req.key, req.value, req.flags, req.exptime, req.cas);
      if (stored.ok()) {
        resp.status = BStatus::ok;
        resp.cas = (*stored)->cas;
      } else {
        switch (stored.error()) {
          case Errc::not_stored:
            // Binary protocol distinguishes add-exists from replace-miss.
            resp.status = req.opcode == Opcode::add ? BStatus::key_exists
                                                    : BStatus::key_not_found;
            break;
          case Errc::exists: resp.status = BStatus::key_exists; break;
          case Errc::not_found: resp.status = BStatus::key_not_found; break;
          case Errc::too_large: resp.status = BStatus::value_too_large; break;
          case Errc::invalid_argument: resp.status = BStatus::invalid_arguments; break;
          default: resp.status = BStatus::out_of_memory; break;
        }
      }
      break;
    }
    case Opcode::append:
    case Opcode::prepend: {
      const SetMode mode = req.opcode == Opcode::append ? SetMode::append : SetMode::prepend;
      auto stored = store_.store(mode, req.key, req.value, 0, 0);
      if (stored.ok()) {
        resp.status = BStatus::ok;
        resp.cas = (*stored)->cas;
      } else {
        resp.status = BStatus::not_stored;
      }
      break;
    }
    case Opcode::del:
      resp.status = store_.del(req.key) ? BStatus::ok : BStatus::key_not_found;
      break;
    case Opcode::increment:
    case Opcode::decrement: {
      auto result = store_.arith(req.key, req.delta, req.opcode == Opcode::decrement);
      if (result.ok()) {
        resp.status = BStatus::ok;
        resp.number = *result;
      } else if (result.error() == Errc::not_found) {
        if (req.arith_exptime != 0xffffffffu) {
          // Binary-only semantics: seed the counter with `initial`.
          // rmclint:allow(zeroalloc): binary incr-miss seeding path (rare); not the steady-state GET path
          const std::string text = std::to_string(req.initial);
          (void)store_.store(SetMode::set, req.key,
                             {reinterpret_cast<const std::byte*>(text.data()), text.size()},
                             0, req.arith_exptime);
          resp.status = BStatus::ok;
          resp.number = req.initial;
        } else {
          resp.status = BStatus::key_not_found;
        }
      } else {
        resp.status = BStatus::delta_badval;
      }
      break;
    }
    case Opcode::touch:
      resp.status =
          store_.touch(req.key, req.exptime) ? BStatus::ok : BStatus::key_not_found;
      break;
    case Opcode::flush:
      schedule_flush(req.exptime);
      resp.status = BStatus::ok;
      break;
    case Opcode::noop:
      resp.status = BStatus::ok;
      break;
    case Opcode::version: {
      static constexpr char kVersion[] = "1.4.5-rmc";
      resp.status = BStatus::ok;
      resp.value.assign(reinterpret_cast<const std::byte*>(kVersion),
                        reinterpret_cast<const std::byte*>(kVersion) + sizeof(kVersion) - 1);
      break;
    }
    case Opcode::stat:
      // Minimal stat support: the empty-key terminator packet.
      resp.status = BStatus::ok;
      break;
    case Opcode::quit:
      work.socket->close();
      co_return;
    default:
      resp.status = BStatus::unknown_command;
      break;
  }
  }

  stage_execute_->record(sched_->now() - exec_start);
  if (!reply) co_return;
  const sim::Time format_start = sched_->now();
  co_await host_->cpu().consume(config_.costs.format_base_ns / 2);
  const auto bytes = [&] {
    obs::ProfScope prof{kProfFormat};
    return bproto::encode_response(resp);
  }();
  stage_format_->record(sched_->now() - format_start);
  bytes_written_ += bytes.size();
  (void)co_await work.socket->send(bytes);
}

// --------------------------------------------------------- UCR frontend

void Server::attach_ucr_frontend(ucr::Runtime& runtime) {
  ucr_runtime_ = &runtime;
  register_new_slab_pages();

  runtime.register_handler(
      ucrp::kMsgRequest,
      {.on_header =
           [this](ucr::Endpoint& ep, std::span<const std::byte> header,
                  std::uint32_t data_len) -> std::span<std::byte> {
             // SET-family values get their destination named here: the
             // final slab location of the item (§V-B).
             const auto req = ucrp::RequestHeader::decode(header.data());
             if (!ucrp::is_storage(req.op) || data_len == 0) return {};
             advance_clock();
             const std::string_view key{
                 reinterpret_cast<const char*>(header.data() + ucrp::RequestHeader::kSize),
                 req.key_len};
             auto* state = static_cast<UcrConnState*>(ep.user_data());
             if (state == nullptr) return {};  // connection already reaped
             auto item = store_.allocate_item(key, data_len, req.flags, req.exptime);
             if (!item.ok()) {
               // Remember the failure so the completion path can answer
               // with an error instead of the client timing out.
               state->pending_sets[req.req_id] = nullptr;
               return {};
             }
             register_new_slab_pages();
             state->pending_sets[req.req_id] = *item;
             return (*item)->value_mut();
           },
       .on_complete =
           [this](ucr::Endpoint& ep, std::span<const std::byte> header,
                  std::span<std::byte> data) {
             bytes_read_ += header.size() + data.size();
             const auto req = ucrp::RequestHeader::decode(header.data());
             Work work;
             work.is_ucr = true;
             work.ep = &ep;
             work.ucr_header = req;
             if (req.op == ucrp::Op::mget) {
               // Multiget: key_len is the packed key-block length. Copy it
               // into the Work's inline carrier — the receive slot is
               // reposted before the worker runs, so it must not alias.
               const std::size_t block = std::min<std::size_t>(
                   std::min<std::size_t>(req.key_len,
                                         header.size() - ucrp::RequestHeader::kSize),
                   work.mget_keys.size());
               std::memcpy(work.mget_keys.data(),
                           header.data() + ucrp::RequestHeader::kSize, block);
               work.mget_keys_len = static_cast<std::uint16_t>(block);
               work.mget_key_count = static_cast<std::uint32_t>(req.delta);
             } else {
               work.set_key(std::string_view{
                   reinterpret_cast<const char*>(header.data() + ucrp::RequestHeader::kSize),
                   req.key_len});
             }
             auto* state = static_cast<UcrConnState*>(ep.user_data());
             if (state == nullptr) return;  // connection already reaped
             auto it = state->pending_sets.find(req.req_id);
             if (it != state->pending_sets.end()) {
               work.prepared_item = it->second;
               work.alloc_failed = it->second == nullptr;
               state->pending_sets.erase(it);
             }
             // Same worker for all requests of this endpoint (§V-A).
             enqueue_work(state->worker, std::move(work));
           }});

  runtime.listen(config_.port, [this](ucr::Endpoint& ep) {
    ++total_connections_;
    obs::registry().counter("mc.server.connections").inc();
    // rmclint:allow(zeroalloc): connection setup, once per accepted endpoint
    auto state = std::make_unique<UcrConnState>();
    state->worker = next_worker_++ % worker_queues_.size();
    ep.set_user_data(state.get());
    // rmclint:allow(zeroalloc): connection setup, once per accepted endpoint
    ucr_conns_.push_back(std::move(state));
  });

  // Reap per-connection state when a client endpoint dies: abandon
  // half-arrived SET values (their slab chunks go back to the free lists)
  // and drop the UcrConnState before the endpoint storage is reclaimed.
  ucr_down_handler_ = runtime.on_endpoint_down([this](ucr::Endpoint& ep, Errc) {
    auto* state = static_cast<UcrConnState*>(ep.user_data());
    if (state == nullptr) return;
    for (auto& [req_id, item] : state->pending_sets) {
      if (item != nullptr) store_.abandon_item(item);
    }
    state->pending_sets.clear();
    ep.set_user_data(nullptr);
    std::erase_if(ucr_conns_, [state](const std::unique_ptr<UcrConnState>& p) {
      return p.get() == state;
    });
    obs::registry().counter("mc.server.conns_reaped").inc();
  });
}

void Server::register_new_slab_pages() {
  if (!ucr_runtime_) return;
  for (auto [base, len] : store_.slabs().take_new_pages()) {
    ucr_runtime_->register_region({base, len});
  }
}

void Server::ucr_reply(ucr::Endpoint& ep, const ucrp::ResponseHeader& header,
                       ItemHeader* pinned_item, std::uint64_t reply_counter) {
  std::byte hdr[ucrp::ResponseHeader::kSize];
  header.encode(hdr);
  std::span<const std::byte> data{};
  if (pinned_item) data = pinned_item->value();
  bytes_written_ += sizeof(hdr) + data.size();

  // The origin counter tells us when the value memory may be unpinned —
  // immediately for eager responses, after the client's RDMA read for
  // rendezvous ones.
  if (pinned_item) {
    if (ucr::wire::AmWire::kSize + sizeof(hdr) + data.size() <=
        ucr_runtime_->config().eager_limit) {
      // Eager responses copy the value out synchronously inside
      // send_message (into a staging slot or the backlog), so the item can
      // be unpinned right away — no completion counter, no tracking task.
      const Status sent = ucr_runtime_->send_message(
          ep, ucrp::kMsgResponse, hdr, data, nullptr, ucr::CounterRef{reply_counter},
          nullptr);
      store_.release(pinned_item);
      if (!sent.ok()) {
        ucrp::ResponseHeader err = header;
        err.status = ucrp::RStatus::server_error;
        std::byte err_hdr[ucrp::ResponseHeader::kSize];
        err.encode(err_hdr);
        (void)ucr_runtime_->send_message(ep, ucrp::kMsgResponse, err_hdr, {}, nullptr,
                                         ucr::CounterRef{reply_counter}, nullptr);
      }
      return;
    }
    // rmclint:allow(zeroalloc): rendezvous response path (value > eager_limit); the eager GET budget never reaches here
    auto counter = std::make_unique<sim::Counter>(*sched_);
    const Status sent =
        ucr_runtime_->send_message(ep, ucrp::kMsgResponse, hdr, data, counter.get(),
                                   ucr::CounterRef{reply_counter}, nullptr);
    if (!sent.ok()) {
      // Unreliable (UD) endpoint and a value too large for a datagram:
      // answer with an error header instead of leaving the client to time
      // out (§VII UD mode serves small items only).
      store_.release(pinned_item);
      ucrp::ResponseHeader err = header;
      err.status = ucrp::RStatus::server_error;
      std::byte err_hdr[ucrp::ResponseHeader::kSize];
      err.encode(err_hdr);
      (void)ucr_runtime_->send_message(ep, ucrp::kMsgResponse, err_hdr, {}, nullptr,
                                       ucr::CounterRef{reply_counter}, nullptr);
      return;
    }
    sched_->spawn([](ItemStore& store, ItemHeader* item,
                     std::unique_ptr<sim::Counter> done) -> sim::Task<> {
      co_await done->wait_geq(1);
      // rmclint:allow(coro-lifetime): store_ is a Server member and `item` is
      // refcount-pinned until this release; both outlive the send completion.
      store.release(item);
    }(store_, pinned_item, std::move(counter)));
  } else {
    (void)ucr_runtime_->send_message(ep, ucrp::kMsgResponse, hdr, data, nullptr,
                                     ucr::CounterRef{reply_counter}, nullptr);
  }
}

sim::Task<> Server::process_ucr_mget(Work& work, WorkerScratch& scratch) {
  const ucrp::RequestHeader& req = work.ucr_header;
  ucr::Endpoint& ep = *work.ep;

  // Parse: AM decode plus one scan of the packed key block.
  const sim::Time parse_start = sched_->now();
  co_await host_->cpu().consume(
      config_.costs.ucr_request_ns +
      static_cast<sim::Time>(static_cast<double>(work.mget_keys_len) *
                             config_.costs.parse_ns_per_byte));
  stage_parse_->record(sched_->now() - parse_start);

  // Execute: ONE pass over the hashtable pinning every hit — the batch
  // pays op_base_ns once, exactly like the socket path's multi-key GET.
  const sim::Time exec_start = sched_->now();
  co_await host_->cpu().consume(config_.costs.op_base_ns);
  advance_clock();
  {
    obs::ProfScope prof{kProfExecute};
    scratch.mget_items.clear();
    ucrp::MgetKeyReader reader{work.mget_keys.data(), work.mget_keys_len};
    std::string_view key;
    while (reader.next(key)) {
      // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
      scratch.mget_items.push_back(store_.get_pinned(key));
    }
  }
  const auto n = static_cast<std::uint32_t>(scratch.mget_items.size());
  mget_batch_->record(n);
  stage_execute_->record(sched_->now() - exec_start);

  // Format: plan the chunking, then emit one scatter-gather AM per chunk.
  // Every chunk bumps the client's reply counter by one; the chunk header
  // carries total_chunks so the client knows when the reply is whole.
  std::size_t frame = ucr_runtime_->config().eager_limit;
  if (ep.type() == ucr::EpType::unreliable) {
    // UD datagrams cannot exceed the MTU and cannot rendezvous (§VII).
    frame = std::min<std::size_t>(frame, ucr_runtime_->hca().costs().ud_mtu);
  }
  constexpr std::size_t kMaxRecordsPerChunk = 256;
  const std::size_t fixed = ucr::wire::AmWire::kSize + ucrp::ResponseHeader::kSize +
                            ucrp::MgetChunkHeader::kSize;
  const std::size_t budget = frame > fixed ? frame - fixed : 0;

  const sim::Time format_start = sched_->now();
  std::size_t eager_bytes = 0;  // gathered (copied) value bytes, for the CPU charge
  {
    obs::ProfScope prof{kProfFormat};
    scratch.mget_chunks.clear();
    std::uint32_t start = 0;
    while (start < n) {
      std::size_t used = 0;
      std::uint32_t count = 0;
      while (start + count < n && count < kMaxRecordsPerChunk) {
        ItemHeader* item = scratch.mget_items[start + count];
        const std::size_t need =
            ucrp::MgetRecord::kSize + (item ? item->value().size() : 0);
        if (count > 0 && used + need > budget) break;
        used += need;
        ++count;
        // A value too large for an empty eager chunk becomes its own
        // single-record chunk, answered rendezvous (zero-copy slab read).
        if (used > budget) break;
      }
      if (used <= budget) {
        eager_bytes += used - count * ucrp::MgetRecord::kSize;
      }
      // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
      scratch.mget_chunks.push_back({start, count});
      start += count;
    }
    if (scratch.mget_chunks.empty()) {
      // Empty key list: still answer one (empty) chunk so the client's
      // reply counter fires.
      // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
      scratch.mget_chunks.push_back({0, 0});
    }
  }
  co_await host_->cpu().consume(
      config_.costs.format_base_ns +
      static_cast<sim::Time>(static_cast<double>(eager_bytes) *
                             config_.costs.value_copy_ns_per_byte));
  {
    obs::ProfScope prof{kProfFormat};
    const auto total = static_cast<std::uint32_t>(scratch.mget_chunks.size());
    std::byte hdr[ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize +
                  kMaxRecordsPerChunk * ucrp::MgetRecord::kSize];
    bool failed = false;
    // All chunks of one reply ride a single doorbell.
    ucr_runtime_->begin_send_batch();
    for (std::uint32_t ci = 0; ci < total; ++ci) {
      const auto [start, count] = scratch.mget_chunks[ci];
      if (failed) {
        // A previous chunk could not be sent; just unpin the rest.
        for (std::uint32_t i = 0; i < count; ++i) {
          if (ItemHeader* item = scratch.mget_items[start + i]) store_.release(item);
        }
        continue;
      }
      ucrp::ResponseHeader resp;
      resp.status = ucrp::RStatus::value;
      resp.req_id = req.req_id;
      resp.encode(hdr);
      const ucrp::MgetChunkHeader chunk{start, count, total, n};
      chunk.encode(hdr + ucrp::ResponseHeader::kSize);
      std::size_t ho = ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize;
      std::size_t data_bytes = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        ItemHeader* item = scratch.mget_items[start + i];
        ucrp::MgetRecord rec;
        if (item) {
          rec.status = ucrp::RStatus::value;
          rec.flags = item->flags;
          rec.cas = item->cas;
          rec.value_len = static_cast<std::uint32_t>(item->value().size());
          data_bytes += item->value().size();
        }
        rec.encode(hdr + ho);
        ho += ucrp::MgetRecord::kSize;
      }
      ItemHeader* single = count == 1 ? scratch.mget_items[start] : nullptr;
      if (ucr::wire::AmWire::kSize + ho + data_bytes > frame && single != nullptr &&
          ep.type() != ucr::EpType::unreliable) {
        // Oversized single value: rendezvous straight out of the slab —
        // the client RDMA-reads it, the origin counter unpins it.
        // rmclint:allow(zeroalloc): rendezvous chunk (value > eager frame); the eager mget budget never reaches here
        auto counter = std::make_unique<sim::Counter>(*sched_);
        const Status sent = ucr_runtime_->send_message(
            ep, ucrp::kMsgResponse, std::span<const std::byte>{hdr, ho},
            single->value(), counter.get(), ucr::CounterRef{req.reply_counter},
            nullptr);
        bytes_written_ += ho + single->value().size();
        if (!sent.ok()) {
          store_.release(single);
          failed = true;
          continue;
        }
        sched_->spawn([](ItemStore& store, ItemHeader* item,
                         std::unique_ptr<sim::Counter> done) -> sim::Task<> {
          co_await done->wait_geq(1);
          // rmclint:allow(coro-lifetime): store_ is a Server member and `item` is
          // refcount-pinned until this release; both outlive the send completion.
          store.release(item);
        }(store_, single, std::move(counter)));
        continue;
      }
      if (ucr::wire::AmWire::kSize + ho + data_bytes > frame && single != nullptr) {
        // UD endpoint, value larger than a datagram: answer the record as
        // a server error instead of leaving the client to time out.
        ucrp::MgetRecord rec;
        rec.status = ucrp::RStatus::server_error;
        rec.encode(hdr + ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize);
        data_bytes = 0;
        store_.release(single);
        scratch.mget_items[start] = nullptr;
      }
      // Eager chunk: gather the hit values into the worker's scratch and
      // let send_message copy them out synchronously — the items can be
      // unpinned as soon as it returns.
      scratch.out.clear();
      for (std::uint32_t i = 0; i < count && data_bytes > 0; ++i) {
        ItemHeader* item = scratch.mget_items[start + i];
        if (!item) continue;
        // rmclint:allow(zeroalloc): reusable per-worker scratch; capacity reaches its high-water mark at warmup
        scratch.out.insert(scratch.out.end(), item->value().begin(), item->value().end());
      }
      const Status sent = ucr_runtime_->send_message(
          ep, ucrp::kMsgResponse, std::span<const std::byte>{hdr, ho}, scratch.out,
          nullptr, ucr::CounterRef{req.reply_counter}, nullptr);
      bytes_written_ += ho + scratch.out.size();
      for (std::uint32_t i = 0; i < count; ++i) {
        if (ItemHeader* item = scratch.mget_items[start + i]) store_.release(item);
      }
      if (!sent.ok()) failed = true;
    }
    ucr_runtime_->end_send_batch();
    if (failed) {
      // Chunks went missing; answer a bare error header (no chunk header)
      // so the client fails the whole request fast instead of timing out.
      ucrp::ResponseHeader err;
      err.status = ucrp::RStatus::server_error;
      err.req_id = req.req_id;
      std::byte err_hdr[ucrp::ResponseHeader::kSize];
      err.encode(err_hdr);
      (void)ucr_runtime_->send_message(ep, ucrp::kMsgResponse, err_hdr, {}, nullptr,
                                       ucr::CounterRef{req.reply_counter}, nullptr);
    }
    scratch.mget_items.clear();
  }
  stage_format_->record(sched_->now() - format_start);
  co_return;
}

sim::Task<> Server::process_ucr(Work& work, WorkerScratch& scratch) {
  if (work.ucr_header.op == ucrp::Op::mget) {
    co_await process_ucr_mget(work, scratch);
    co_return;
  }
  // Stage split: the AM-header decode is the UCR path's "parse", the store
  // operation is its "execute".
  const sim::Time parse_start = sched_->now();
  co_await host_->cpu().consume(config_.costs.ucr_request_ns);
  stage_parse_->record(sched_->now() - parse_start);
  const sim::Time exec_start = sched_->now();
  co_await host_->cpu().consume(config_.costs.op_base_ns);
  advance_clock();

  const ucrp::RequestHeader& req = work.ucr_header;
  ucrp::ResponseHeader resp;
  resp.req_id = req.req_id;
  ItemHeader* pinned = nullptr;

  {
  obs::ProfScope exec_prof{kProfExecute};
  switch (req.op) {
    case ucrp::Op::get:
    case ucrp::Op::gets: {
      pinned = store_.get_pinned(work.key());
      if (pinned) {
        resp.status = ucrp::RStatus::value;
        resp.flags = pinned->flags;
        resp.cas = pinned->cas;
      } else {
        resp.status = ucrp::RStatus::not_found;
      }
      break;
    }
    case ucrp::Op::set:
    case ucrp::Op::add:
    case ucrp::Op::replace:
    case ucrp::Op::append:
    case ucrp::Op::prepend:
    case ucrp::Op::cas: {
      if (work.alloc_failed) {
        // The value never had a home (too large / out of memory).
        resp.status = ucrp::RStatus::server_error;
        break;
      }
      if (work.prepared_item && req.op == ucrp::Op::set) {
        // Fast path: the value already sits in its slab chunk; link it.
        store_.commit_item(work.prepared_item);
        resp.status = ucrp::RStatus::stored;
        break;
      }
      SetMode mode = SetMode::set;
      switch (req.op) {
        case ucrp::Op::add: mode = SetMode::add; break;
        case ucrp::Op::replace: mode = SetMode::replace; break;
        case ucrp::Op::append: mode = SetMode::append; break;
        case ucrp::Op::prepend: mode = SetMode::prepend; break;
        case ucrp::Op::cas: mode = SetMode::cas; break;
        default: break;
      }
      std::span<const std::byte> value{};
      if (work.prepared_item) value = work.prepared_item->value();
      auto stored = store_.store(mode, work.key(), value, req.flags, req.exptime, req.cas);
      if (work.prepared_item) store_.abandon_item(work.prepared_item);
      if (stored.ok()) {
        resp.status = ucrp::RStatus::stored;
      } else {
        switch (stored.error()) {
          case Errc::not_stored: resp.status = ucrp::RStatus::not_stored; break;
          case Errc::exists: resp.status = ucrp::RStatus::exists; break;
          case Errc::not_found: resp.status = ucrp::RStatus::not_found; break;
          default: resp.status = ucrp::RStatus::server_error; break;
        }
      }
      break;
    }
    case ucrp::Op::del:
      resp.status = store_.del(work.key()) ? ucrp::RStatus::deleted : ucrp::RStatus::not_found;
      break;
    case ucrp::Op::incr:
    case ucrp::Op::decr: {
      auto result = store_.arith(work.key(), req.delta, req.op == ucrp::Op::decr);
      if (result.ok()) {
        resp.status = ucrp::RStatus::number;
        resp.number = *result;
      } else if (result.error() == Errc::not_found) {
        resp.status = ucrp::RStatus::not_found;
      } else {
        resp.status = ucrp::RStatus::client_error;
      }
      break;
    }
    case ucrp::Op::touch:
      resp.status =
          store_.touch(work.key(), req.exptime) ? ucrp::RStatus::touched : ucrp::RStatus::not_found;
      break;
    case ucrp::Op::flush_all:
      schedule_flush(static_cast<std::uint32_t>(req.delta));
      resp.status = ucrp::RStatus::ok;
      break;
    case ucrp::Op::version:
      resp.status = ucrp::RStatus::ok;
      break;
    case ucrp::Op::mget:
      // Handled by process_ucr_mget before this switch is reached.
      resp.status = ucrp::RStatus::client_error;
      break;
  }
  }

  stage_execute_->record(sched_->now() - exec_start);
  const sim::Time format_start = sched_->now();
  {
    obs::ProfScope prof{kProfFormat};
    ucr_reply(*work.ep, resp, pinned, req.reply_counter);
  }
  stage_format_->record(sched_->now() - format_start);
  co_return;
}

std::string Server::render_stats() const {
  const StoreStats& s = store_.stats();
  std::vector<std::pair<std::string, std::string>> stats;
  auto stat = [&](std::string name, std::uint64_t value) {
    // rmclint:allow(zeroalloc): STATS command assembly — an admin query, not the request fast path
    stats.emplace_back(std::move(name), std::to_string(value));
  };
  stat("uptime", sched_->now() / kNsPerSec);
  stat("total_connections", total_connections_);
  stat("bytes_read", bytes_read_);
  stat("bytes_written", bytes_written_);
  stat("cmd_get", s.cmd_get);
  stat("cmd_set", s.cmd_set);
  stat("get_hits", s.get_hits);
  stat("get_misses", s.get_misses);
  stat("delete_hits", s.delete_hits);
  stat("delete_misses", s.delete_misses);
  stat("incr_hits", s.incr_hits);
  stat("incr_misses", s.incr_misses);
  stat("cas_hits", s.cas_hits);
  stat("cas_misses", s.cas_misses);
  stat("cas_badval", s.cas_badval);
  stat("evictions", s.evictions);
  stat("expired_unfetched", s.expired_unfetched);
  stat("total_items", s.total_items);
  stat("curr_items", s.curr_items);
  stat("bytes", s.bytes);
  stat("limit_maxbytes", config_.store.slabs.memory_limit);
  stat("threads", config_.workers);
  // Surface the cross-layer metrics registry over the same protocol, as
  // real memcached does with its internal counters.
  obs::registry().for_each_stat([&](const std::string& name, std::string value) {
    // rmclint:allow(zeroalloc): STATS command assembly — an admin query, not the request fast path
    stats.emplace_back(name, std::move(value));
  });
  // Stable sort: fixed stats and registry entries interleave in a
  // deterministic, name-ordered stream.
  std::stable_sort(stats.begin(), stats.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ostringstream out;
  for (const auto& [name, value] : stats) {
    out << "STAT " << name << " " << value << "\r\n";
  }
  return out.str();
}

}  // namespace rmc::mc
