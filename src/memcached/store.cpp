#include "memcached/store.hpp"

#include <cassert>
#include <charconv>
#include <cstring>
#include <new>
#include <string>

#include "obs/metrics.hpp"

namespace rmc::mc {

namespace {
constexpr std::uint32_t kThirtyDays = 30 * 86400;
constexpr int kEvictionSearchDepth = 50;
}  // namespace

ItemStore::ItemStore(StoreConfig config)
    : config_(config), slabs_(config.slabs), table_(config.hash_power) {
  lru_.resize(slabs_.class_count());
}

std::uint32_t ItemStore::absolute_exptime(std::uint32_t exptime) const {
  if (exptime == 0) return 0;
  if (exptime > kThirtyDays) return exptime;  // already absolute (epoch style)
  return now_ + exptime;
}

bool ItemStore::is_expired(const ItemHeader* item) const {
  if (item->stored_seq < flush_seq_) return true;
  return item->exptime != 0 && item->exptime <= now_;
}

ItemHeader* ItemStore::peek(std::string_view key) {
  return table_.find(key, hash_of(key));
}

// ------------------------------------------------------------ LRU lists

void ItemStore::lru_insert(ItemHeader* item) {
  LruList& list = lru_[item->slab_class];
  item->lru_prev = nullptr;
  item->lru_next = list.head;
  if (list.head) list.head->lru_prev = item;
  list.head = item;
  if (!list.tail) list.tail = item;
}

void ItemStore::lru_remove(ItemHeader* item) {
  LruList& list = lru_[item->slab_class];
  if (item->lru_prev) {
    item->lru_prev->lru_next = item->lru_next;
  } else if (list.head == item) {
    list.head = item->lru_next;
  }
  if (item->lru_next) {
    item->lru_next->lru_prev = item->lru_prev;
  } else if (list.tail == item) {
    list.tail = item->lru_prev;
  }
  item->lru_prev = item->lru_next = nullptr;
}

void ItemStore::lru_bump(ItemHeader* item) {
  item->last_access = now_;
  if (lru_[item->slab_class].head == item) return;
  lru_remove(item);
  lru_insert(item);
}

// ------------------------------------------------------- alloc and free

Result<ItemHeader*> ItemStore::allocate_raw(std::string_view key, std::uint32_t value_len) {
  if (key.empty() || key.size() > config_.max_key_len) return Errc::invalid_argument;
  const std::size_t need = ItemHeader::wire_size(key.size(), value_len);
  auto cls = slabs_.class_for(need);
  if (!cls.ok()) return Errc::too_large;

  auto chunk = slabs_.allocate(*cls);
  while (!chunk.ok()) {
    if (!config_.evict_to_free || !evict_one(*cls)) return Errc::no_resources;
    chunk = slabs_.allocate(*cls);
  }

  auto* item = new (*chunk) ItemHeader();
  item->key_len = static_cast<std::uint16_t>(key.size());
  item->value_len = value_len;
  item->slab_class = *cls;
  item->last_access = now_;
  std::memcpy(item->key_data(), key.data(), key.size());
  return item;
}

void ItemStore::unlink(ItemHeader* item) {
  if (!item->linked) return;
  if (listener_) listener_->on_item_unlinked(item);
  table_.remove(item, hash_of(item->key()));
  item->linked = false;
  lru_remove(item);
  --stats_.curr_items;
  stats_.bytes -= ItemHeader::wire_size(item->key_len, item->value_len);
}

void ItemStore::free_item(ItemHeader* item) {
  assert(!item->linked);
  if (item->refcount > 0) return;  // deferred until release()
  slabs_.free(item->slab_class, reinterpret_cast<std::byte*>(item));
}

bool ItemStore::evict_one(std::uint8_t cls) {
  ItemHeader* victim = lru_[cls].tail;
  for (int depth = 0; victim && depth < kEvictionSearchDepth; ++depth) {
    ItemHeader* prev = victim->lru_prev;
    if (victim->refcount == 0) {
      if (is_expired(victim)) {
        ++stats_.expired_unfetched;
      } else {
        ++stats_.evictions;
        obs::registry().counter("mc.store.evictions").inc();
      }
      unlink(victim);
      free_item(victim);
      return true;
    }
    victim = prev;
  }
  return false;
}

// ------------------------------------------------------------ full ops

Result<ItemHeader*> ItemStore::store(SetMode mode, std::string_view key,
                                     std::span<const std::byte> value, std::uint32_t flags,
                                     std::uint32_t exptime, std::uint64_t cas_unique) {
  ++stats_.cmd_set;
  ItemHeader* existing = peek(key);
  if (existing && is_expired(existing)) {
    unlink(existing);
    free_item(existing);
    existing = nullptr;
  }

  switch (mode) {
    case SetMode::set:
      break;
    case SetMode::add:
      if (existing) return Errc::not_stored;
      break;
    case SetMode::replace:
      if (!existing) return Errc::not_stored;
      break;
    case SetMode::cas:
      if (!existing) {
        ++stats_.cas_misses;
        return Errc::not_found;
      }
      if (existing->cas != cas_unique) {
        ++stats_.cas_badval;
        return Errc::exists;
      }
      ++stats_.cas_hits;
      break;
    case SetMode::append:
    case SetMode::prepend:
      if (!existing) return Errc::not_stored;
      break;
  }

  // Build the new value (append/prepend combine with the existing one).
  std::uint32_t new_len = static_cast<std::uint32_t>(value.size());
  if (mode == SetMode::append || mode == SetMode::prepend) {
    new_len += existing->value_len;
    flags = existing->flags;          // storage verbs keep the old flags
    exptime = existing->exptime;      // and the old expiry (already absolute)
  } else {
    exptime = absolute_exptime(exptime);
  }

  // Pin the existing item: allocation may evict from the same LRU, and
  // append/prepend still read from it below.
  if (existing) ++existing->refcount;
  auto allocated = allocate_item(key, new_len, flags, exptime);
  if (!allocated.ok()) {
    if (existing) release(existing);
    return allocated.error();
  }
  ItemHeader* item = *allocated;
  // allocate_item already normalized exptime; append/prepend must keep the
  // absolute one captured above.
  item->exptime = exptime;

  if (mode == SetMode::append) {
    std::memcpy(item->value_data(), existing->value_data(), existing->value_len);
    std::memcpy(item->value_data() + existing->value_len, value.data(), value.size());
  } else if (mode == SetMode::prepend) {
    std::memcpy(item->value_data(), value.data(), value.size());
    std::memcpy(item->value_data() + value.size(), existing->value_data(),
                existing->value_len);
  } else if (!value.empty()) {
    std::memcpy(item->value_data(), value.data(), value.size());
  }

  if (existing) release(existing);
  commit_item(item);
  return item;
}

ItemHeader* ItemStore::get(std::string_view key) {
  ++stats_.cmd_get;
  ItemHeader* item = peek(key);
  if (!item) {
    ++stats_.get_misses;
    return nullptr;
  }
  if (is_expired(item)) {
    ++stats_.expired_unfetched;
    ++stats_.get_misses;
    unlink(item);
    free_item(item);
    return nullptr;
  }
  ++stats_.get_hits;
  lru_bump(item);
  return item;
}

ItemHeader* ItemStore::get_pinned(std::string_view key) {
  ItemHeader* item = get(key);
  if (item) ++item->refcount;
  return item;
}

void ItemStore::release(ItemHeader* item) {
  assert(item->refcount > 0);
  --item->refcount;
  if (item->refcount == 0 && !item->linked) free_item(item);
}

bool ItemStore::del(std::string_view key) {
  ItemHeader* item = peek(key);
  if (!item || is_expired(item)) {
    if (item) {
      unlink(item);
      free_item(item);
    }
    ++stats_.delete_misses;
    return false;
  }
  ++stats_.delete_hits;
  unlink(item);
  free_item(item);
  return true;
}

Result<std::uint64_t> ItemStore::arith(std::string_view key, std::uint64_t delta,
                                       bool decrement) {
  ItemHeader* item = get(key);
  if (!item) {
    ++stats_.incr_misses;
    return Errc::not_found;
  }

  // Parse the current ASCII value.
  const auto* begin = reinterpret_cast<const char*>(item->value_data());
  std::uint64_t current = 0;
  auto [ptr, ec] = std::from_chars(begin, begin + item->value_len, current);
  if (ec != std::errc{} || ptr != begin + item->value_len) {
    ++stats_.incr_misses;
    return Errc::invalid_argument;  // CLIENT_ERROR: not a number
  }

  std::uint64_t result;
  if (decrement) {
    result = current >= delta ? current - delta : 0;  // clamps at zero
  } else {
    result = current + delta;  // wraps on overflow, like memcached
  }
  ++stats_.incr_hits;

  const std::string text = std::to_string(result);
  const std::size_t capacity =
      slabs_.chunk_size(item->slab_class) - sizeof(ItemHeader) - item->key_len;
  if (text.size() <= capacity) {
    stats_.bytes -= ItemHeader::wire_size(item->key_len, item->value_len);
    std::memcpy(item->value_data(), text.data(), text.size());
    item->value_len = static_cast<std::uint32_t>(text.size());
    item->cas = next_cas_++;
    stats_.bytes += ItemHeader::wire_size(item->key_len, item->value_len);
    if (listener_) listener_->on_item_linked(item);  // in-place rewrite
  } else {
    // The textual value no longer fits this chunk: replace the item. The
    // old exptime is already absolute, so set it directly afterwards
    // rather than letting store() renormalize it.
    const std::uint32_t old_exptime = item->exptime;
    auto replaced = store(SetMode::set, key,
                          std::span<const std::byte>(
                              reinterpret_cast<const std::byte*>(text.data()), text.size()),
                          item->flags, 0);
    if (!replaced.ok()) return replaced.error();
    (*replaced)->exptime = old_exptime;
    --stats_.cmd_set;  // internal reallocation, not a client command
  }
  return result;
}

bool ItemStore::touch(std::string_view key, std::uint32_t exptime) {
  ItemHeader* item = get(key);
  if (!item) return false;
  item->exptime = absolute_exptime(exptime);
  if (listener_) listener_->on_item_linked(item);  // republish new expiry
  return true;
}

void ItemStore::flush_all() {
  flush_seq_ = next_seq_;
  if (listener_) listener_->on_store_flushed();
}

// ---------------------------------------------------- two-phase (§V-B)

Result<ItemHeader*> ItemStore::allocate_item(std::string_view key, std::uint32_t value_len,
                                             std::uint32_t flags, std::uint32_t exptime) {
  auto allocated = allocate_raw(key, value_len);
  if (!allocated.ok()) return allocated.error();
  ItemHeader* item = *allocated;
  item->flags = flags;
  item->exptime = absolute_exptime(exptime);
  item->refcount = 1;  // allocation pin, dropped by commit/abandon
  return item;
}

void ItemStore::commit_item(ItemHeader* item) {
  ItemHeader* existing = peek(item->key());
  if (existing) {
    unlink(existing);
    free_item(existing);
  }
  item->cas = next_cas_++;
  item->stored_seq = next_seq_++;
  table_.insert(item, hash_of(item->key()));
  lru_insert(item);
  if (listener_) listener_->on_item_linked(item);
  ++stats_.total_items;
  ++stats_.curr_items;
  stats_.bytes += ItemHeader::wire_size(item->key_len, item->value_len);
  assert(item->refcount > 0);
  --item->refcount;
}

void ItemStore::abandon_item(ItemHeader* item) {
  assert(!item->linked);
  assert(item->refcount > 0);
  --item->refcount;
  free_item(item);
}

}  // namespace rmc::mc
