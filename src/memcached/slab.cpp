#include "memcached/slab.hpp"

#include <cassert>
#include <memory>

namespace rmc::mc {

SlabAllocator::SlabAllocator(SlabConfig config) : config_(config) {
  // Build the class table: chunk_min, then *= growth_factor (rounded up to
  // 8-byte alignment), capped by chunk_max — the memcached -f ladder.
  double size = static_cast<double>(config_.chunk_min);
  while (true) {
    auto chunk = static_cast<std::size_t>(size);
    chunk = (chunk + 7) & ~std::size_t{7};
    if (chunk >= config_.chunk_max) {
      classes_.push_back({config_.chunk_max, {}, 0});
      break;
    }
    classes_.push_back({chunk, {}, 0});
    size *= config_.growth_factor;
  }
  assert(classes_.size() < 256);
}

Result<std::uint8_t> SlabAllocator::class_for(std::size_t size) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].chunk_size >= size) return static_cast<std::uint8_t>(i);
  }
  return Errc::too_large;
}

Result<std::byte*> SlabAllocator::allocate(std::uint8_t cls) {
  SizeClass& sc = classes_[cls];
  if (sc.freelist.empty()) {
    // Grow the class by one page if the global budget allows.
    const std::size_t page = std::max(config_.page_size, sc.chunk_size);
    if (memory_allocated_ + page > config_.memory_limit) return Errc::no_resources;
    storage_.push_back(std::make_unique<std::byte[]>(page));
    std::byte* base = storage_.back().get();
    pages_.emplace_back(base, page);
    memory_allocated_ += page;
    const std::size_t chunks = page / sc.chunk_size;
    sc.freelist.reserve(sc.freelist.size() + chunks);
    // Push in reverse so chunks hand out in address order.
    for (std::size_t i = chunks; i-- > 0;) {
      sc.freelist.push_back(base + i * sc.chunk_size);
    }
  }
  std::byte* chunk = sc.freelist.back();
  sc.freelist.pop_back();
  ++sc.in_use;
  return chunk;
}

void SlabAllocator::free(std::uint8_t cls, std::byte* chunk) {
  SizeClass& sc = classes_[cls];
  assert(sc.in_use > 0);
  --sc.in_use;
  sc.freelist.push_back(chunk);
}

std::vector<std::pair<std::byte*, std::size_t>> SlabAllocator::take_new_pages() {
  std::vector<std::pair<std::byte*, std::size_t>> out(pages_.begin() + new_pages_mark_,
                                                      pages_.end());
  new_pages_mark_ = pages_.size();
  return out;
}

}  // namespace rmc::mc
