// The memcached server.
//
// One ItemStore behind two interchangeable frontends, exactly as §V-A
// describes ("maintain compatibility of the existing Memcached server to
// work with both Sockets based clients and UCR based clients"):
//
//  * Socket frontend — classic memcached: libevent-style accept loop,
//    per-connection text-protocol parsing, worker threads assigned
//    round-robin per connection.
//  * UCR frontend — §V-B/C: requests arrive as active messages; SET values
//    are RDMA-read straight into their slab location; GET responses are
//    served zero-copy out of the slab with the client's counter C as the
//    target counter.
//
// Worker threads are simulated as coroutines feeding from per-worker
// queues; their count is the runtime parameter the paper mentions.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "memcached/binary.hpp"
#include "memcached/protocol.hpp"
#include "memcached/store.hpp"
#include "memcached/ucr_proto.hpp"
#include "obs/metrics.hpp"
#include "simnet/channel.hpp"
#include "sockets/stack.hpp"
#include "ucr/runtime.hpp"

namespace rmc::mc {

/// Host-side CPU costs of the memcached request path itself (transport
/// costs live in the sockets/verbs layers).
struct McCosts {
  sim::Time event_dispatch_ns = 1500;     ///< libevent callback + conn state machine
  sim::Time parse_base_ns = 700;          ///< command-line tokenize
  double parse_ns_per_byte = 0.40;        ///< request line scanning
  sim::Time op_base_ns = 900;             ///< hash lookup + slab bookkeeping
  double value_copy_ns_per_byte = 0.08;   ///< item<->message copies (socket path)
  sim::Time ucr_request_ns = 800;         ///< decode AM header + worker handoff
  sim::Time format_base_ns = 600;         ///< response rendering
};

struct ServerConfig {
  std::uint16_t port = 11211;
  unsigned workers = 4;  ///< memcached -t (the paper's runtime parameter)
  StoreConfig store{};
  McCosts costs{};
};

class Server {
 public:
  Server(sim::Scheduler& sched, sim::Host& host, ServerConfig config = {});
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Serve the memcached text protocol on `stack` (config.port).
  void attach_socket_frontend(sock::NetStack& stack);

  /// Serve UCR active-message clients on `runtime` (config.port). Slab
  /// pages are registered with the runtime for zero-copy RDMA.
  void attach_ucr_frontend(ucr::Runtime& runtime);

  ItemStore& store() { return store_; }
  const ServerConfig& config() const { return config_; }

  std::uint64_t requests_served() const { return requests_served_; }
  /// Render "stats" output (STAT lines).
  std::string render_stats() const;

  /// flush_all with memcached's optional delay: exptime_s == 0 flushes
  /// immediately, otherwise the flush fires exptime_s seconds from now.
  /// Per memcached semantics the newest flush wins — a later call
  /// (immediate or delayed) supersedes any still-pending timer — and the
  /// timer is cancel-safe: it no-ops if the server is destroyed first.
  /// Public for the protocol frontends and tests.
  void schedule_flush(std::uint32_t exptime_s);

 private:
  struct UcrConnState;

  /// A unit of work bound for a worker thread.
  struct Work {
    // Socket path (text protocol).
    proto::Request request;
    sock::Socket* socket = nullptr;
    // Socket path (binary protocol, auto-detected per connection).
    bproto::Request bin_request;
    bool is_binary = false;
    // UCR path. Keys are bounded (proto::Request::kMaxKeyLen), so the key
    // lives inline — a Work never allocates on the steady-state GET path.
    ucr::Endpoint* ep = nullptr;
    ucrp::RequestHeader ucr_header{};
    std::array<char, proto::Request::kMaxKeyLen> key_buf{};
    std::uint16_t key_len = 0;
    ItemHeader* prepared_item = nullptr;  ///< SET: already filled by RDMA/eager
    bool alloc_failed = false;            ///< SET: header handler could not allocate
    bool is_ucr = false;
    sim::Time enqueued_at = 0;  ///< worker-queue wait start (stage.queue timer)
    // Multiget (Op::mget): the packed key block, copied out of the AM
    // header before the receive slot is reposted. Inline and bounded by
    // the eager frame, so mget requests never allocate either.
    std::array<std::byte, ucrp::kMaxMgetKeyBlock> mget_keys{};
    std::uint16_t mget_keys_len = 0;
    std::uint32_t mget_key_count = 0;

    std::string_view key() const { return {key_buf.data(), key_len}; }
    void set_key(std::string_view k) {
      key_len = static_cast<std::uint16_t>(std::min(k.size(), key_buf.size()));
      std::memcpy(key_buf.data(), k.data(), key_len);
    }
  };

  /// Per-worker reusable buffers: responses are encoded into `out` and
  /// pinned GET items staged in `items`, so the socket hot path reuses the
  /// same storage across requests instead of allocating per response.
  struct WorkerScratch {
    std::vector<std::byte> out;
    std::vector<ItemHeader*> items;
    // Multiget staging: per-key pinned item (nullptr = miss) from the
    // single hashtable pass, and the chunk plan {start, record_count}
    // produced before encoding. Warm after the first wide mget.
    std::vector<ItemHeader*> mget_items;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> mget_chunks;
  };

  /// Push `work` onto worker `index`'s queue, stamping the queue-wait
  /// start and updating the depth gauge.
  void enqueue_work(std::size_t index, Work work);

  sim::Task<> accept_loop(sock::NetStack& stack, sock::Listener& listener);
  sim::Task<> connection_loop(sock::Socket& socket, std::size_t worker);
  sim::Task<> text_loop(sock::Socket& socket, std::size_t worker,
                        std::span<const std::byte> initial);
  sim::Task<> binary_loop(sock::Socket& socket, std::size_t worker,
                          std::span<const std::byte> initial);
  sim::Task<> worker_loop(std::size_t index);

  sim::Task<> process_socket(Work& work, WorkerScratch& scratch);
  sim::Task<> process_binary(Work& work);
  sim::Task<> process_ucr(Work& work, WorkerScratch& scratch);
  /// True server-side multiget (Op::mget): one hashtable pass pinning
  /// every hit, then a chunked scatter-gather reply built in `scratch`.
  sim::Task<> process_ucr_mget(Work& work, WorkerScratch& scratch);
  proto::Response execute(const proto::Request& request);
  void advance_clock();
  void register_new_slab_pages();

  /// Send a UCR response; pins `item` (may be null) until the value has
  /// left the building.
  void ucr_reply(ucr::Endpoint& ep, const ucrp::ResponseHeader& header,
                 ItemHeader* pinned_item, std::uint64_t reply_counter);

  sim::Scheduler* sched_;
  sim::Host* host_;
  ServerConfig config_;
  ItemStore store_;

  std::vector<std::unique_ptr<sim::Channel<Work>>> worker_queues_;
  std::size_t next_worker_ = 0;  ///< round-robin connection assignment

  ucr::Runtime* ucr_runtime_ = nullptr;
  std::uint64_t ucr_down_handler_ = 0;  ///< on_endpoint_down registration
  std::vector<std::unique_ptr<UcrConnState>> ucr_conns_;

  /// Delayed-flush bookkeeping: the generation a pending timer belongs to
  /// (stale generations no-op, making repeated flushes last-write-wins)
  /// and a liveness token whose expiry tells a timer the server is gone.
  std::uint64_t flush_gen_ = 0;
  std::shared_ptr<bool> flush_alive_ = std::make_shared<bool>(true);

  std::uint64_t requests_served_ = 0;
  std::uint64_t total_connections_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;

  // Per-stage server latency (§V request path: parse -> queue -> execute
  // -> format), cached registry handles.
  obs::Timer* stage_parse_;    ///< mc.server.stage.parse
  obs::Timer* stage_queue_;    ///< mc.server.stage.queue
  obs::Timer* stage_execute_;  ///< mc.server.stage.execute
  obs::Timer* stage_format_;   ///< mc.server.stage.format
  obs::Gauge* queue_depth_;    ///< mc.worker.queue_depth
  obs::Timer* mget_batch_;     ///< mc.mget.batch_size (keys per mget request)
};

}  // namespace rmc::mc
