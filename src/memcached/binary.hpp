// The memcached binary protocol (memcached 1.4.x, protocol_binary.h).
//
// 24-byte fixed header (network byte order) followed by extras, key and
// value. Compared to the ASCII protocol it parses in O(1) instead of
// scanning for "\r\n", supports quiet (pipelined) operations, and carries
// CAS in every response. memcached 1.4 auto-detects it per connection by
// the first byte (0x80), and so does our server.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rmc::mc::bproto {

inline constexpr std::uint8_t kMagicRequest = 0x80;
inline constexpr std::uint8_t kMagicResponse = 0x81;
inline constexpr std::size_t kHeaderSize = 24;

enum class Opcode : std::uint8_t {
  get = 0x00,
  set = 0x01,
  add = 0x02,
  replace = 0x03,
  del = 0x04,
  increment = 0x05,
  decrement = 0x06,
  quit = 0x07,
  flush = 0x08,
  getq = 0x09,
  noop = 0x0a,
  version = 0x0b,
  getk = 0x0c,
  getkq = 0x0d,
  append = 0x0e,
  prepend = 0x0f,
  stat = 0x10,
  touch = 0x1c,
};

/// True for the quiet variants that suppress "uninteresting" responses
/// (miss for getq/getkq) so requests can be pipelined without replies.
inline bool is_quiet(Opcode op) { return op == Opcode::getq || op == Opcode::getkq; }

enum class BStatus : std::uint16_t {
  ok = 0x0000,
  key_not_found = 0x0001,
  key_exists = 0x0002,
  value_too_large = 0x0003,
  invalid_arguments = 0x0004,
  not_stored = 0x0005,
  delta_badval = 0x0006,
  unknown_command = 0x0081,
  out_of_memory = 0x0082,
};

struct Request {
  Opcode opcode = Opcode::get;
  std::string key;
  std::vector<std::byte> value;
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::uint64_t delta = 0;    ///< incr/decr amount
  std::uint64_t initial = 0;  ///< incr/decr: value created on miss
  /// incr/decr: 0xffffffff means "fail on miss" (like the text protocol).
  std::uint32_t arith_exptime = 0xffffffff;
  std::uint64_t cas = 0;
  std::uint32_t opaque = 0;  ///< echoed verbatim in the response
  std::size_t wire_bytes = 0;
};

struct Response {
  Opcode opcode = Opcode::get;
  BStatus status = BStatus::ok;
  std::string key;                ///< getk/getkq responses
  std::vector<std::byte> value;   ///< get value / error text / version
  std::uint32_t flags = 0;        ///< get extras
  std::uint64_t number = 0;       ///< incr/decr result
  std::uint64_t cas = 0;
  std::uint32_t opaque = 0;
};

std::vector<std::byte> encode_request(const Request& request);
std::vector<std::byte> encode_response(const Response& response);

/// Incremental request parser (server side).
class RequestParser {
 public:
  void feed(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }
  /// Empty optional: need more bytes. protocol_error: malformed frame.
  Result<std::optional<Request>> next();
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Incremental response parser (client side).
class ResponseParser {
 public:
  void feed(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }
  Result<std::optional<Response>> next();
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

}  // namespace rmc::mc::bproto
