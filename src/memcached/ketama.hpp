// Ketama consistent hashing, after libmemcached's
// MEMCACHED_DISTRIBUTION_CONSISTENT_KETAMA.
//
// Each server contributes 40 MD5-derived anchors x 4 points per digest to
// a continuum of 160 points; a key hashes to the first point clockwise.
// Compared to modulo distribution, adding or removing one server remaps
// only ~1/n of the keyspace — the property that matters when a pool member
// dies (the fault model of §IV-A).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/md5.hpp"

namespace rmc::mc {

class KetamaContinuum {
 public:
  /// Rebuild the continuum for `servers` (order defines the index space).
  /// Hosts are named like libmemcached: "<name>-<replica>".
  void rebuild(const std::vector<std::string>& servers) {
    points_.clear();
    points_.reserve(servers.size() * kPointsPerServer);
    for (std::size_t index = 0; index < servers.size(); ++index) {
      for (unsigned replica = 0; replica < kPointsPerServer / 4; ++replica) {
        const std::string anchor = servers[index] + "-" + std::to_string(replica);
        const Md5Digest digest = md5(anchor);
        for (unsigned chunk = 0; chunk < 4; ++chunk) {
          std::uint32_t value = 0;
          for (unsigned b = 0; b < 4; ++b) {
            value |= static_cast<std::uint32_t>(digest.bytes[chunk * 4 + b]) << (8 * b);
          }
          points_.push_back({value, index});
        }
      }
    }
    std::sort(points_.begin(), points_.end());
  }

  bool empty() const { return points_.empty(); }
  std::size_t point_count() const { return points_.size(); }

  /// Server index for `key` (continuum must be non-empty).
  std::size_t lookup(std::string_view key) const {
    const Md5Digest digest = md5(key);
    std::uint32_t value = 0;
    for (unsigned b = 0; b < 4; ++b) {
      value |= static_cast<std::uint32_t>(digest.bytes[b]) << (8 * b);
    }
    auto it = std::lower_bound(points_.begin(), points_.end(), Point{value, 0});
    if (it == points_.end()) it = points_.begin();  // wrap around the ring
    return it->server;
  }

 private:
  static constexpr unsigned kPointsPerServer = 160;

  struct Point {
    std::uint32_t hash;
    std::size_t server;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : server < o.server;
    }
  };

  std::vector<Point> points_;
};

}  // namespace rmc::mc
