// Intrusive chained hash table with incremental expansion, after
// memcached's assoc.c: buckets double when the item count exceeds 1.5x the
// bucket count, and migration proceeds a few buckets per operation so no
// single request ever pays the full rehash.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "memcached/item.hpp"

namespace rmc::mc {

class HashTable {
 public:
  explicit HashTable(std::size_t initial_power = 16)
      : buckets_(std::size_t{1} << initial_power, nullptr) {}

  std::size_t size() const { return count_; }
  std::size_t bucket_count() const { return buckets_.size(); }
  bool expanding() const { return expanding_; }

  ItemHeader* find(std::string_view key, std::uint32_t hash) {
    step_migration();
    ItemHeader* it = *bucket_for(hash);
    while (it) {
      if (it->key() == key) return it;
      it = it->hash_next;
    }
    return nullptr;
  }

  /// Insert an item whose key is not present (caller ensures uniqueness).
  void insert(ItemHeader* item, std::uint32_t hash) {
    step_migration();
    ItemHeader** head = bucket_for(hash);
    item->hash_next = *head;
    *head = item;
    item->linked = true;
    ++count_;
    maybe_start_expansion();
  }

  /// Unlink `item` (found under `hash`); returns false if absent.
  bool remove(const ItemHeader* item, std::uint32_t hash) {
    step_migration();
    ItemHeader** cursor = bucket_for(hash);
    while (*cursor) {
      if (*cursor == item) {
        *cursor = item->hash_next;
        --count_;
        return true;
      }
      cursor = &(*cursor)->hash_next;
    }
    return false;
  }

 private:
  ItemHeader** bucket_for(std::uint32_t hash) {
    if (expanding_) {
      const std::size_t old_index = hash & (old_buckets_.size() - 1);
      if (old_index >= migrated_) {
        return &old_buckets_[old_index];
      }
    }
    return &buckets_[hash & (buckets_.size() - 1)];
  }

  void maybe_start_expansion() {
    if (expanding_ || count_ < buckets_.size() * 3 / 2) return;
    expanding_ = true;
    migrated_ = 0;
    old_buckets_ = std::move(buckets_);
    buckets_.assign(old_buckets_.size() * 2, nullptr);
  }

  void step_migration() {
    if (!expanding_) return;
    // Move two buckets per operation; bounded latency per request.
    for (int step = 0; step < 2 && migrated_ < old_buckets_.size(); ++step) {
      ItemHeader* it = old_buckets_[migrated_];
      while (it) {
        ItemHeader* next = it->hash_next;
        const std::uint32_t hash = rehash(it->key());
        ItemHeader** head = &buckets_[hash & (buckets_.size() - 1)];
        it->hash_next = *head;
        *head = it;
        it = next;
      }
      old_buckets_[migrated_] = nullptr;
      ++migrated_;
    }
    if (migrated_ == old_buckets_.size()) {
      expanding_ = false;
      old_buckets_.clear();
    }
  }

  static std::uint32_t rehash(std::string_view key) { return hash_one_at_a_time(key); }

  std::vector<ItemHeader*> buckets_;
  std::vector<ItemHeader*> old_buckets_;
  std::size_t migrated_ = 0;
  std::size_t count_ = 0;
  bool expanding_ = false;
};

}  // namespace rmc::mc
