#include "memcached/binary.hpp"

#include <array>
#include <cstring>

namespace rmc::mc::bproto {

namespace {

// Big-endian (network order) scalar packing.
void put_u16(std::byte* out, std::uint16_t v) {
  out[0] = static_cast<std::byte>(v >> 8);
  out[1] = static_cast<std::byte>(v);
}
void put_u32(std::byte* out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out + 2, static_cast<std::uint16_t>(v));
}
void put_u64(std::byte* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out + 4, static_cast<std::uint32_t>(v));
}
std::uint16_t get_u16(const std::byte* in) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[0]) << 8 |
                                    static_cast<std::uint16_t>(in[1]));
}
std::uint32_t get_u32(const std::byte* in) {
  return static_cast<std::uint32_t>(get_u16(in)) << 16 | get_u16(in + 2);
}
std::uint64_t get_u64(const std::byte* in) {
  return static_cast<std::uint64_t>(get_u32(in)) << 32 | get_u32(in + 4);
}

struct Header {
  std::uint8_t magic;
  Opcode opcode;
  std::uint16_t key_len;
  std::uint8_t extras_len;
  std::uint16_t status_or_vbucket;
  std::uint32_t body_len;
  std::uint32_t opaque;
  std::uint64_t cas;
};

void encode_header(std::byte* out, const Header& h) {
  // Build in a fixed-size stack buffer, then copy: writing through the raw
  // vector pointer makes GCC 12 hallucinate a zero-length destination for
  // the memset once this inlines into encode_request/encode_response.
  std::array<std::byte, kHeaderSize> buf{};
  buf[0] = static_cast<std::byte>(h.magic);
  buf[1] = static_cast<std::byte>(h.opcode);
  put_u16(buf.data() + 2, h.key_len);
  buf[4] = static_cast<std::byte>(h.extras_len);
  buf[5] = std::byte{0};  // data type: raw
  put_u16(buf.data() + 6, h.status_or_vbucket);
  put_u32(buf.data() + 8, h.body_len);
  put_u32(buf.data() + 12, h.opaque);
  put_u64(buf.data() + 16, h.cas);
  std::memcpy(out, buf.data(), kHeaderSize);
}

Header decode_header(const std::byte* in) {
  Header h;
  h.magic = static_cast<std::uint8_t>(in[0]);
  h.opcode = static_cast<Opcode>(in[1]);
  h.key_len = get_u16(in + 2);
  h.extras_len = static_cast<std::uint8_t>(in[4]);
  h.status_or_vbucket = get_u16(in + 6);
  h.body_len = get_u32(in + 8);
  h.opaque = get_u32(in + 12);
  h.cas = get_u64(in + 16);
  return h;
}

bool storage_op(Opcode op) {
  return op == Opcode::set || op == Opcode::add || op == Opcode::replace;
}

}  // namespace

std::vector<std::byte> encode_request(const Request& request) {
  std::uint8_t extras_len = 0;
  if (storage_op(request.opcode)) {
    extras_len = 8;  // flags + exptime
  } else if (request.opcode == Opcode::increment || request.opcode == Opcode::decrement) {
    extras_len = 20;  // delta + initial + exptime
  } else if (request.opcode == Opcode::flush || request.opcode == Opcode::touch) {
    extras_len = 4;  // exptime
  }

  const std::size_t body =
      extras_len + request.key.size() + request.value.size();
  std::vector<std::byte> out(kHeaderSize + body);
  encode_header(out.data(), {kMagicRequest, request.opcode,
                             static_cast<std::uint16_t>(request.key.size()), extras_len, 0,
                             static_cast<std::uint32_t>(body), request.opaque, request.cas});
  std::byte* cursor = out.data() + kHeaderSize;
  if (storage_op(request.opcode)) {
    put_u32(cursor, request.flags);
    put_u32(cursor + 4, request.exptime);
  } else if (request.opcode == Opcode::increment || request.opcode == Opcode::decrement) {
    put_u64(cursor, request.delta);
    put_u64(cursor + 8, request.initial);
    put_u32(cursor + 16, request.arith_exptime);
  } else if (extras_len == 4) {
    put_u32(cursor, request.exptime);
  }
  cursor += extras_len;
  std::memcpy(cursor, request.key.data(), request.key.size());
  cursor += request.key.size();
  if (!request.value.empty()) {
    std::memcpy(cursor, request.value.data(), request.value.size());
  }
  return out;
}

std::vector<std::byte> encode_response(const Response& response) {
  std::uint8_t extras_len = 0;
  std::vector<std::byte> body_value = response.value;
  if ((response.opcode == Opcode::get || response.opcode == Opcode::getq ||
       response.opcode == Opcode::getk || response.opcode == Opcode::getkq) &&
      response.status == BStatus::ok) {
    extras_len = 4;  // flags
  }
  if ((response.opcode == Opcode::increment || response.opcode == Opcode::decrement) &&
      response.status == BStatus::ok) {
    body_value.resize(8);
    put_u64(body_value.data(), response.number);
  }

  const std::size_t body = extras_len + response.key.size() + body_value.size();
  std::vector<std::byte> out(kHeaderSize + body);
  encode_header(out.data(),
                {kMagicResponse, response.opcode,
                 static_cast<std::uint16_t>(response.key.size()), extras_len,
                 static_cast<std::uint16_t>(response.status),
                 static_cast<std::uint32_t>(body), response.opaque, response.cas});
  std::byte* cursor = out.data() + kHeaderSize;
  if (extras_len == 4) {
    put_u32(cursor, response.flags);
    cursor += 4;
  }
  std::memcpy(cursor, response.key.data(), response.key.size());
  cursor += response.key.size();
  if (!body_value.empty()) std::memcpy(cursor, body_value.data(), body_value.size());
  return out;
}

Result<std::optional<Request>> RequestParser::next() {
  if (buffer_.size() < kHeaderSize) return std::optional<Request>{};
  const Header h = decode_header(buffer_.data());
  if (h.magic != kMagicRequest) return Errc::protocol_error;
  if (h.key_len + h.extras_len > h.body_len) return Errc::protocol_error;
  if (h.body_len > 8 * 1024 * 1024) return Errc::protocol_error;
  if (buffer_.size() < kHeaderSize + h.body_len) return std::optional<Request>{};

  Request req;
  req.opcode = h.opcode;
  req.cas = h.cas;
  req.opaque = h.opaque;
  req.wire_bytes = kHeaderSize + h.body_len;

  const std::byte* extras = buffer_.data() + kHeaderSize;
  if (storage_op(h.opcode)) {
    if (h.extras_len != 8) return Errc::protocol_error;
    req.flags = get_u32(extras);
    req.exptime = get_u32(extras + 4);
  } else if (h.opcode == Opcode::increment || h.opcode == Opcode::decrement) {
    if (h.extras_len != 20) return Errc::protocol_error;
    req.delta = get_u64(extras);
    req.initial = get_u64(extras + 8);
    req.arith_exptime = get_u32(extras + 16);
  } else if (h.opcode == Opcode::flush || h.opcode == Opcode::touch) {
    if (h.extras_len == 4) {
      req.exptime = get_u32(extras);
    } else if (h.extras_len != 0) {
      return Errc::protocol_error;
    }
  } else if (h.extras_len != 0) {
    return Errc::protocol_error;
  }

  const std::byte* key = extras + h.extras_len;
  req.key.assign(reinterpret_cast<const char*>(key), h.key_len);
  const std::byte* value = key + h.key_len;
  const std::size_t value_len = h.body_len - h.extras_len - h.key_len;
  req.value.assign(value, value + value_len);

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + h.body_len));
  return std::optional<Request>(std::move(req));
}

Result<std::optional<Response>> ResponseParser::next() {
  if (buffer_.size() < kHeaderSize) return std::optional<Response>{};
  const Header h = decode_header(buffer_.data());
  if (h.magic != kMagicResponse) return Errc::protocol_error;
  if (h.key_len + h.extras_len > h.body_len) return Errc::protocol_error;
  if (buffer_.size() < kHeaderSize + h.body_len) return std::optional<Response>{};

  Response resp;
  resp.opcode = h.opcode;
  resp.status = static_cast<BStatus>(h.status_or_vbucket);
  resp.cas = h.cas;
  resp.opaque = h.opaque;

  const std::byte* extras = buffer_.data() + kHeaderSize;
  if (h.extras_len == 4) resp.flags = get_u32(extras);
  const std::byte* key = extras + h.extras_len;
  resp.key.assign(reinterpret_cast<const char*>(key), h.key_len);
  const std::byte* value = key + h.key_len;
  const std::size_t value_len = h.body_len - h.extras_len - h.key_len;
  resp.value.assign(value, value + value_len);
  if ((h.opcode == Opcode::increment || h.opcode == Opcode::decrement) &&
      resp.status == BStatus::ok && value_len == 8) {
    resp.number = get_u64(value);
  }

  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + h.body_len));
  return std::optional<Response>(std::move(resp));
}

}  // namespace rmc::mc::bproto
