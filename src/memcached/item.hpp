// Item layout, memcached-style.
//
// An item lives entirely inside a slab chunk: a fixed header followed by
// the key bytes and the value bytes. Keeping the value inside the slab
// arena is what lets the UCR server RDMA-read incoming SET payloads
// directly into their final location and serve GET responses zero-copy
// out of the cache (§V-B/C) — the arenas are registered with the HCA once
// at startup.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace rmc::mc {

struct ItemHeader {
  ItemHeader* hash_next = nullptr;  ///< hash-bucket chain
  ItemHeader* lru_prev = nullptr;   ///< per-class LRU list
  ItemHeader* lru_next = nullptr;
  std::uint64_t cas = 0;
  std::uint64_t stored_seq = 0;  ///< store-order sequence (flush_all cutoff)
  std::uint32_t exptime = 0;     ///< absolute expiry in cache seconds; 0 = never
  std::uint32_t last_access = 0; ///< cache seconds, for LRU bookkeeping
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;       ///< opaque client flags
  std::uint16_t key_len = 0;
  std::uint8_t slab_class = 0;
  std::uint8_t refcount = 0;     ///< pins item memory during in-flight RDMA
  bool linked = false;           ///< currently in the hash table

  std::byte* key_data() { return reinterpret_cast<std::byte*>(this + 1); }
  const std::byte* key_data() const { return reinterpret_cast<const std::byte*>(this + 1); }
  std::byte* value_data() { return key_data() + key_len; }
  const std::byte* value_data() const { return key_data() + key_len; }

  std::string_view key() const {
    return {reinterpret_cast<const char*>(key_data()), key_len};
  }
  std::span<const std::byte> value() const { return {value_data(), value_len}; }
  std::span<std::byte> value_mut() { return {value_data(), value_len}; }

  /// Total bytes an item with this key/value needs inside a chunk.
  static std::size_t wire_size(std::size_t key_len, std::size_t value_len) {
    return sizeof(ItemHeader) + key_len + value_len;
  }
};

static_assert(alignof(ItemHeader) <= 16, "items must fit slab alignment");

}  // namespace rmc::mc
