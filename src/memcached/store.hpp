// The storage engine: slab allocator + hash table + per-class LRU +
// expiration + CAS, the server side of memcached 1.4.x semantics.
//
// Besides the classic one-shot store(), the engine exposes a two-phase
// allocate/commit pair for the UCR SET path (§V-B): the header handler
// allocates the item (reserving its final slab location), UCR RDMA-reads
// the value straight into it, and commit links it into the hash table.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/error.hpp"
#include "memcached/hashtable.hpp"
#include "memcached/item.hpp"
#include "memcached/slab.hpp"

namespace rmc::mc {

struct StoreConfig {
  SlabConfig slabs{};
  std::size_t hash_power = 16;
  bool evict_to_free = true;  ///< memcached -M disables eviction
  std::size_t max_key_len = 250;
};

struct StoreStats {
  std::uint64_t cmd_get = 0;
  std::uint64_t cmd_set = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t delete_hits = 0;
  std::uint64_t delete_misses = 0;
  std::uint64_t incr_hits = 0;
  std::uint64_t incr_misses = 0;
  std::uint64_t cas_hits = 0;
  std::uint64_t cas_misses = 0;
  std::uint64_t cas_badval = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired_unfetched = 0;
  std::uint64_t total_items = 0;
  std::uint64_t curr_items = 0;
  std::uint64_t bytes = 0;
};

/// Storage verbs of the text protocol.
enum class SetMode : std::uint8_t { set, add, replace, append, prepend, cas };

/// Observer of item lifetime transitions, invoked synchronously from the
/// mutation paths. This is the publish/retract hook the one-sided remote
/// index builds on: linked covers both fresh links and in-place rewrites
/// (arith, touch), unlinked covers delete/evict/expiry/replace, flushed
/// covers the lazy flush_all epoch bump (items stay linked but are dead).
class StoreListener {
 public:
  virtual ~StoreListener() = default;
  virtual void on_item_linked(const ItemHeader* item) = 0;
  virtual void on_item_unlinked(const ItemHeader* item) = 0;
  virtual void on_store_flushed() = 0;
};

class ItemStore {
 public:
  explicit ItemStore(StoreConfig config = {});
  ItemStore(const ItemStore&) = delete;
  ItemStore& operator=(const ItemStore&) = delete;

  // ------------------------------------------------------------- clock
  /// The cache clock in seconds; the server advances it from sim time.
  void set_clock(std::uint32_t seconds) { now_ = seconds; }
  std::uint32_t now() const { return now_; }

  // ---------------------------------------------------------- full ops
  /// Execute a storage command; returns the stored item, or the protocol
  /// error (not_stored / exists / not_found / too_large / no_resources).
  Result<ItemHeader*> store(SetMode mode, std::string_view key,
                            std::span<const std::byte> value, std::uint32_t flags,
                            std::uint32_t exptime, std::uint64_t cas_unique = 0);

  /// Lookup; bumps LRU and handles lazy expiry. Returned pointer is valid
  /// until the next store/evict — pin it (get_pinned) across suspension.
  ItemHeader* get(std::string_view key);

  /// Lookup and pin: refcount keeps the chunk alive while a response is in
  /// flight (e.g. a client RDMA-reading the value). Must be release()d.
  ItemHeader* get_pinned(std::string_view key);
  void release(ItemHeader* item);

  bool del(std::string_view key);

  /// incr/decr (ASCII decimal values). decrement clamps at zero.
  Result<std::uint64_t> arith(std::string_view key, std::uint64_t delta, bool decrement);

  bool touch(std::string_view key, std::uint32_t exptime);

  /// Invalidate everything stored so far (the protocol's optional delay is
  /// implemented by the server scheduling this call).
  void flush_all();

  // ------------------------------------- two-phase path (UCR SET, §V-B)
  /// Allocate an unlinked, pinned item whose value region is uninitialized
  /// (the RDMA destination). flags/exptime recorded now, linked on commit.
  Result<ItemHeader*> allocate_item(std::string_view key, std::uint32_t value_len,
                                    std::uint32_t flags, std::uint32_t exptime);
  /// Link a previously allocated item, replacing any existing entry, and
  /// drop the allocation pin.
  void commit_item(ItemHeader* item);
  /// Free an allocated item that will not be committed.
  void abandon_item(ItemHeader* item);

  // -------------------------------------------------------------- misc
  /// Install (or clear, with nullptr) the mutation observer. At most one;
  /// the default nullptr keeps every mutation path branch-identical to a
  /// listener-free store.
  void set_listener(StoreListener* listener) { listener_ = listener; }

  const StoreStats& stats() const { return stats_; }
  const SlabAllocator& slabs() const { return slabs_; }
  SlabAllocator& slabs() { return slabs_; }
  std::size_t item_count() const { return table_.size(); }

  /// Normalize a protocol exptime: memcached treats values greater than 30
  /// days as absolute epoch seconds, everything else as relative.
  std::uint32_t absolute_exptime(std::uint32_t exptime) const;

 private:
  struct LruList {
    ItemHeader* head = nullptr;
    ItemHeader* tail = nullptr;
  };

  static std::uint32_t hash_of(std::string_view key) { return hash_one_at_a_time(key); }

  bool is_expired(const ItemHeader* item) const;
  Result<ItemHeader*> allocate_raw(std::string_view key, std::uint32_t value_len);
  void unlink(ItemHeader* item);
  void free_item(ItemHeader* item);
  void lru_insert(ItemHeader* item);
  void lru_remove(ItemHeader* item);
  void lru_bump(ItemHeader* item);
  bool evict_one(std::uint8_t cls);
  /// Lookup without stats or LRU side effects (internal).
  ItemHeader* peek(std::string_view key);

  StoreConfig config_;
  StoreListener* listener_ = nullptr;
  SlabAllocator slabs_;
  HashTable table_;
  std::vector<LruList> lru_;
  StoreStats stats_;
  std::uint32_t now_ = 1;         ///< cache clock, seconds (starts at 1)
  std::uint64_t flush_seq_ = 0;   ///< items with stored_seq < this are dead
  std::uint64_t next_seq_ = 1;    ///< store-order sequence source
  std::uint64_t next_cas_ = 1;
};

}  // namespace rmc::mc
