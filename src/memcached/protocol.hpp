// The memcached ASCII protocol (the wire format memcached 1.4.x and
// libmemcached 0.45 speak over sockets).
//
// This is the byte-stream side of the paper's comparison: requests and
// responses must be framed, scanned for "\r\n", and parsed token by token
// — the semantic conversion overhead §I attributes to Sockets transports.
// The parser is incremental: feed() arbitrary stream chunks, pop complete
// requests with next().
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rmc::mc::proto {

enum class Command : std::uint8_t {
  get,
  gets,  ///< get returning CAS ids
  set,
  add,
  replace,
  append,
  prepend,
  cas,
  del,
  incr,
  decr,
  touch,
  flush_all,
  stats,
  version,
  quit,
};

struct Request {
  Command command = Command::get;
  std::vector<std::string> keys;  ///< get/gets: one or more keys
  std::string key;                ///< storage / single-key commands
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::uint64_t cas_unique = 0;
  std::uint64_t delta = 0;  ///< incr/decr
  bool noreply = false;
  std::vector<std::byte> data;  ///< storage payload

  /// Bytes this request occupied on the wire (for cost accounting).
  std::size_t wire_bytes = 0;
};

/// Incremental request parser (server side).
class RequestParser {
 public:
  void feed(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Pop the next complete request. Empty optional: need more bytes.
  /// protocol_error: stream is garbage (connection should be dropped).
  Result<std::optional<Request>> next();

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::optional<std::size_t> find_crlf(std::size_t from) const;

  std::vector<std::byte> buffer_;
  std::size_t scan_from_ = 0;
};

// --------------------------------------------------------- encoding ----

/// Client side: render a request into stream bytes.
std::vector<std::byte> encode_request(const Request& request);

/// One value in a retrieval response.
struct Value {
  std::string key;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::vector<std::byte> data;
};

/// Server reply, decoded (client side) or pre-encoding (server side).
struct Response {
  enum class Type : std::uint8_t {
    stored,
    not_stored,
    exists,
    not_found,
    deleted,
    touched,
    ok,
    values,  ///< VALUE...END block (possibly zero values = all misses)
    number,  ///< incr/decr result
    error,
    client_error,
    server_error,
    version,
    stats,
  };
  Type type = Type::ok;
  std::vector<Value> values;
  std::uint64_t number = 0;
  std::string message;  ///< error text / version / stats blob
};

/// Server side: render a response into stream bytes. `with_cas` emits the
/// CAS id on VALUE lines (gets).
std::vector<std::byte> encode_response(const Response& response, bool with_cas);

/// Incremental response parser (client side). The caller says what kind of
/// reply it expects next (the text protocol is not self-describing enough
/// to parse without that context — libmemcached does the same).
class ResponseParser {
 public:
  enum class Expect : std::uint8_t { simple, values, number };

  void feed(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Pop the next complete response of the expected shape.
  Result<std::optional<Response>> next(Expect expect);

  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::optional<std::size_t> find_crlf(std::size_t from) const;
  std::vector<std::byte> buffer_;
};

}  // namespace rmc::mc::proto
