// The memcached ASCII protocol (the wire format memcached 1.4.x and
// libmemcached 0.45 speak over sockets).
//
// This is the byte-stream side of the paper's comparison: requests and
// responses must be framed, scanned for "\r\n", and parsed token by token
// — the semantic conversion overhead §I attributes to Sockets transports.
// The parser is incremental: feed() arbitrary stream chunks, pop complete
// requests with next().
//
// Hot-path note: a parsed Request owns its key bytes in a small inline
// arena (no per-key std::string), and the parsers consume their buffers by
// offset instead of erasing the front per request, so the steady-state GET
// path performs no heap allocation inside the codec.
// rmclint:hotpath — request fast path; zero-alloc rule enforced here
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace rmc::mc::proto {

enum class Command : std::uint8_t {
  get,
  gets,  ///< get returning CAS ids
  set,
  add,
  replace,
  append,
  prepend,
  cas,
  del,
  incr,
  decr,
  touch,
  flush_all,
  stats,
  version,
  quit,
};

/// Counts a key burst that overflowed a Request's inline arena onto the
/// heap (mc.alloc.key_spills).
void note_key_spill();

struct Request {
  /// memcached's protocol limit: keys longer than this are rejected by the
  /// parser before any byte is copied.
  static constexpr std::size_t kMaxKeyLen = 250;

  Command command = Command::get;
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::uint64_t cas_unique = 0;
  std::uint64_t delta = 0;  ///< incr/decr
  bool noreply = false;
  std::vector<std::byte> data;  ///< storage payload

  /// Bytes this request occupied on the wire (for cost accounting).
  std::size_t wire_bytes = 0;

  Request() = default;
  Request(const Request& o) { assign_from(o); }
  Request(Request&& o) noexcept { assign_from(std::move(o)); }
  Request& operator=(const Request& o) {
    if (this != &o) assign_from(o);
    return *this;
  }
  Request& operator=(Request&& o) noexcept {
    if (this != &o) assign_from(std::move(o));
    return *this;
  }

  // ---- keys: owned by the request, inline for the common case ----
  // A single key of any legal length, and multigets of up to kInlineKeys
  // keys totalling kArenaSize bytes, live entirely inside the struct; only
  // larger bursts spill to the heap (counted by mc.alloc.key_spills).

  std::size_t key_count() const { return key_count_; }

  std::string_view key_at(std::size_t i) const {
    const KeySpan& s = i < kInlineKeys ? spans_[i] : spill_spans_[i - kInlineKeys];
    const char* base = s.spilled ? spill_.data() : arena_.data();
    return {base + s.off, s.len};
  }

  /// First key, or empty (single-key commands store exactly one).
  std::string_view key() const { return key_count_ ? key_at(0) : std::string_view{}; }

  /// Append a key. Returns false (leaving the request untouched) when the
  /// key exceeds kMaxKeyLen — the reject happens before any copy.
  bool add_key(std::string_view k) {
    if (k.size() > kMaxKeyLen) return false;
    KeySpan span;
    span.len = static_cast<std::uint16_t>(k.size());
    if (arena_used_ + k.size() <= kArenaSize) {
      span.off = arena_used_;
      span.spilled = false;
      std::memcpy(arena_.data() + arena_used_, k.data(), k.size());
      arena_used_ += static_cast<std::uint32_t>(k.size());
    } else {
      span.off = static_cast<std::uint32_t>(spill_.size());
      span.spilled = true;
      if (spill_.empty()) note_key_spill();
      spill_.append(k.data(), k.size());
    }
    if (key_count_ < kInlineKeys) {
      spans_[key_count_] = span;
    } else {
      // rmclint:allow(zeroalloc): spill beyond the inline key arena; metered via mc.alloc.key_spills
      spill_spans_.push_back(span);
    }
    ++key_count_;
    return true;
  }

  void set_key(std::string_view k) {
    clear_keys();
    (void)add_key(k);
  }

  void clear_keys() {
    key_count_ = 0;
    arena_used_ = 0;
    spill_.clear();
    spill_spans_.clear();
  }

 private:
  struct KeySpan {
    std::uint32_t off = 0;
    std::uint16_t len = 0;
    bool spilled = false;  ///< bytes live in spill_, not arena_
  };
  static constexpr std::size_t kInlineKeys = 8;
  static constexpr std::size_t kArenaSize = 256;  // fits one max-length key

  // Copy/move only the used arena prefix — a Request travels by value
  // through parser results and worker queues, and blind array copies would
  // dwarf the parse cost itself.
  template <typename R>
  void assign_from(R&& o) {
    command = o.command;
    flags = o.flags;
    exptime = o.exptime;
    cas_unique = o.cas_unique;
    delta = o.delta;
    noreply = o.noreply;
    wire_bytes = o.wire_bytes;
    key_count_ = o.key_count_;
    arena_used_ = o.arena_used_;
    if (arena_used_) std::memcpy(arena_.data(), o.arena_.data(), arena_used_);
    const std::size_t n = key_count_ < kInlineKeys ? key_count_ : kInlineKeys;
    for (std::size_t i = 0; i < n; ++i) spans_[i] = o.spans_[i];
    if constexpr (std::is_rvalue_reference_v<R&&>) {
      data = std::move(o.data);
      spill_ = std::move(o.spill_);
      spill_spans_ = std::move(o.spill_spans_);
    } else {
      data = o.data;
      spill_ = o.spill_;
      spill_spans_ = o.spill_spans_;
    }
  }

  std::array<char, kArenaSize> arena_;
  std::array<KeySpan, kInlineKeys> spans_;
  std::uint32_t key_count_ = 0;
  std::uint32_t arena_used_ = 0;
  std::string spill_;                  ///< overflow key bytes (large multigets)
  std::vector<KeySpan> spill_spans_;   ///< spans beyond kInlineKeys
};

/// Growable byte buffer with inline storage for the first 128 bytes: a
/// parser for a fresh connection (or a bench loop) handling short requests
/// never touches the heap. Spills to a doubling heap block past that.
class RxBuf {
 public:
  RxBuf() = default;
  RxBuf(const RxBuf&) = delete;
  RxBuf& operator=(const RxBuf&) = delete;
  ~RxBuf() {
    if (data_ != inline_) ::operator delete(data_);
  }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  void clear() { size_ = 0; }

  void append(std::span<const std::byte> bytes) {
    if (size_ + bytes.size() > cap_) grow(size_ + bytes.size());
    if (!bytes.empty()) std::memcpy(data_ + size_, bytes.data(), bytes.size());
    size_ += bytes.size();
  }

  void drop_front(std::size_t n) {
    std::memmove(data_, data_ + n, size_ - n);
    size_ -= n;
  }

 private:
  void grow(std::size_t need) {
    std::size_t cap = cap_ * 2;
    if (cap < need) cap = need;
    auto* p = static_cast<std::byte*>(::operator new(cap));
    std::memcpy(p, data_, size_);
    if (data_ != inline_) ::operator delete(data_);
    data_ = p;
    cap_ = cap;
  }

  static constexpr std::size_t kInline = 128;
  std::byte inline_[kInline];
  std::byte* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInline;
};

/// Incremental request parser (server side). Consumes its buffer by
/// offset; the front is compacted only between requests (in feed()), so a
/// just-returned Request never dangles into moved memory.
class RequestParser {
 public:
  void feed(std::span<const std::byte> bytes) {
    compact();
    buffer_.append(bytes);
  }

  /// Pop the next complete request. Empty optional: need more bytes.
  /// protocol_error: stream is garbage (connection should be dropped).
  Result<std::optional<Request>> next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void compact() {
    if (consumed_ == 0) return;
    if (consumed_ == buffer_.size()) {
      buffer_.clear();
    } else if (consumed_ >= kCompactAt) {
      buffer_.drop_front(consumed_);
    } else {
      return;
    }
    consumed_ = 0;
  }

  static constexpr std::size_t kCompactAt = 32 * 1024;

  RxBuf buffer_;
  std::size_t consumed_ = 0;   ///< bytes of buffer_ already parsed away
  std::size_t scan_from_ = 0;  ///< CRLF scan resume point (within unconsumed)
};

// --------------------------------------------------------- encoding ----

/// Client side: render a request into stream bytes.
std::vector<std::byte> encode_request(const Request& request);

/// One value in a retrieval response.
struct Value {
  std::string key;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::vector<std::byte> data;
};

/// Server reply, decoded (client side) or pre-encoding (server side).
struct Response {
  enum class Type : std::uint8_t {
    stored,
    not_stored,
    exists,
    not_found,
    deleted,
    touched,
    ok,
    values,  ///< VALUE...END block (possibly zero values = all misses)
    number,  ///< incr/decr result
    error,
    client_error,
    server_error,
    version,
    stats,
  };
  Type type = Type::ok;
  std::vector<Value> values;
  std::uint64_t number = 0;
  std::string message;  ///< error text / version / stats blob
};

/// Server side: render a response, appending to `out` (a reusable
/// per-connection scratch buffer). `with_cas` emits the CAS id on VALUE
/// lines (gets).
void encode_response_into(const Response& response, bool with_cas,
                          std::vector<std::byte>& out);

/// Convenience wrapper returning a fresh buffer.
std::vector<std::byte> encode_response(const Response& response, bool with_cas);

// Low-level appenders for callers that render VALUE lines straight from
// store items into a scratch buffer (no intermediate Response).
void append_bytes(std::vector<std::byte>& out, std::string_view s);
void append_u64(std::vector<std::byte>& out, std::uint64_t v);

/// Incremental response parser (client side). The caller says what kind of
/// reply it expects next (the text protocol is not self-describing enough
/// to parse without that context — libmemcached does the same).
class ResponseParser {
 public:
  enum class Expect : std::uint8_t { simple, values, number };

  void feed(std::span<const std::byte> bytes) {
    compact();
    buffer_.append(bytes);
  }

  /// Pop the next complete response of the expected shape.
  Result<std::optional<Response>> next(Expect expect);

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void compact() {
    if (consumed_ == 0) return;
    if (consumed_ == buffer_.size()) {
      buffer_.clear();
    } else if (consumed_ >= kCompactAt) {
      buffer_.drop_front(consumed_);
    } else {
      return;
    }
    consumed_ = 0;
  }

  static constexpr std::size_t kCompactAt = 32 * 1024;

  RxBuf buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace rmc::mc::proto
