// Wire formats of the software verbs layer (internal).
//
// One packet == one fabric message. RC reliability is modeled with explicit
// acknowledgement packets: a SEND or RDMA WRITE completes at the origin
// when the ack returns, an RDMA READ when the response data lands. This
// matches InfiniBand RC observable behaviour (and charges the wire for
// acks, which matters at high message rates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "simnet/fabric.hpp"
#include "simnet/pool.hpp"
#include "verbs/types.hpp"

namespace rmc::verbs::wire {

enum class Kind : std::uint8_t {
  send_data,       ///< two-sided SEND payload (RC, acknowledged)
  ud_data,         ///< unacknowledged UD datagram
  rdma_write,      ///< one-sided write: payload + remote addr/rkey
  rdma_read_req,   ///< one-sided read request (no payload)
  rdma_read_resp,  ///< read response carrying the data
  ack,             ///< RC acknowledgement (completes sends/writes)
  cm_connect_req,  ///< connection manager: active side hello
  cm_connect_resp, ///< connection manager: passive side reply
  cm_disconnect,   ///< either side tearing the connection down
};

struct IbPacket final : sim::Packet {
  // One IbPacket per simulated message: object and payload storage both
  // recycle through the simulator pool (sim.pool.packet / sim.pool.buffer)
  // so steady-state traffic never touches malloc. `final` keeps the sized
  // operator delete exact.
  static void* operator new(std::size_t n) {
    return sim::pooled_alloc(n, sim::PoolTag::kPacket);
  }
  static void operator delete(void* p, std::size_t n) {
    sim::pooled_free(p, n, sim::PoolTag::kPacket);
  }

  Kind kind = Kind::send_data;
  std::uint32_t src_qpn = 0;
  std::uint32_t dst_qpn = 0;

  /// Token correlating requests with their ack / response at the origin.
  std::uint64_t token = 0;

  /// Packet sequence number (RC send_data only, 0 = unnumbered). Lets the
  /// responder detect and absorb duplicates created by requester
  /// retransmission, like the PSN in a real BTH.
  std::uint32_t psn = 0;

  /// send_data / rdma_write / rdma_read_resp payload (real bytes).
  sim::PooledBytes payload;

  /// One-sided target (rdma_write, rdma_read_req).
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;

  /// Immediate data (send_data).
  std::uint32_t imm_data = 0;

  /// Ack status back-propagated to the origin's completion.
  WcStatus status = WcStatus::success;

  /// Connection management fields.
  std::uint16_t cm_port = 0;
  bool cm_ud = false;           ///< handshake for a UD (unreliable) endpoint
  std::uint64_t cm_ep_id = 0;   ///< UCR endpoint id exchanged at CM time
};

}  // namespace rmc::verbs::wire
