// Completion queue.
//
// The HCA pushes WorkCompletions; the application drains them either by
// polling (poll(), next() with CqMode::polling — the paper's low-latency
// choice) or in event-driven mode, where every wake-up pays the interrupt
// and context-switch cost like ibv_req_notify_cq + epoll would.
#pragma once

#include <optional>

#include "obs/metrics.hpp"
#include "simnet/channel.hpp"
#include "simnet/cpu.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/task.hpp"
#include "verbs/types.hpp"

namespace rmc::verbs {

class CompletionQueue {
 public:
  CompletionQueue(sim::Scheduler& sched, sim::CpuResource& cpu, CqMode mode,
                  const VerbsCosts& costs)
      : sched_(&sched),
        cpu_(&cpu),
        mode_(mode),
        costs_(costs),
        entries_(sched),
        polls_metric_(&obs::registry().counter("verbs.cq.polls")),
        completions_metric_(&obs::registry().counter("verbs.cq.completions")) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  CqMode mode() const { return mode_; }

  /// Non-blocking poll; charges the per-completion poll cost on a hit.
  std::optional<WorkCompletion> poll() {
    polls_metric_->inc();
    auto wc = entries_.try_recv();
    if (wc) cpu_->reserve(costs_.poll_cq_ns);
    return wc;
  }

  /// Await the next completion. In polling mode the waiter wakes the
  /// instant the completion is generated (busy-poll, burning a core is not
  /// modeled as added latency); in event mode the interrupt cost is added.
  sim::Task<WorkCompletion> next() {
    polls_metric_->inc();
    auto wc = co_await entries_.recv();
    // The channel is never closed while the CQ lives.
    if (mode_ == CqMode::event_driven) {
      co_await sched_->delay(costs_.interrupt_ns);
    }
    cpu_->reserve(costs_.poll_cq_ns);
    co_return *wc;
  }

  /// Polling-mode batch path for progress loops: drain a completion that
  /// has already been delivered, without going through the awaitable
  /// machinery. Charges exactly the cost sequence next() would (one poll
  /// count, one poll_cq reservation), so draining N queued completions via
  /// one next() + N-1 of these is sim-time-identical to N next() calls.
  /// Returns nullopt in event-driven mode: the interrupt cost must be paid
  /// per completion, so callers fall back to next().
  std::optional<WorkCompletion> try_next_ready() {
    if (mode_ != CqMode::polling) return std::nullopt;
    auto wc = entries_.try_recv();
    if (!wc) return std::nullopt;
    polls_metric_->inc();
    cpu_->reserve(costs_.poll_cq_ns);
    return wc;
  }

  /// HCA side: deliver a completion.
  void push(WorkCompletion wc) {
    completions_metric_->inc();
    entries_.send(wc);
  }

  std::size_t depth() const { return entries_.size(); }

 private:
  sim::Scheduler* sched_;
  sim::CpuResource* cpu_;
  CqMode mode_;
  VerbsCosts costs_;
  sim::Channel<WorkCompletion> entries_;
  obs::Counter* polls_metric_;        ///< verbs.cq.polls
  obs::Counter* completions_metric_;  ///< verbs.cq.completions
};

}  // namespace rmc::verbs
