// The Host Channel Adapter: the device that executes work requests.
//
// One Hca per (host, fabric) pair. It owns a NIC on the fabric, a
// protection domain, the QP table, and the RC protocol engine (a dispatch
// coroutine draining the NIC inbox). It also implements the connection
// manager (rdma_cm-style listen/connect), which the paper's endpoint model
// (§IV-A) builds on.
//
// The crucial modeling property: one-sided RDMA operations are executed
// entirely by this dispatch engine at adapter cost — they never charge the
// remote *host's* CPU. That is the OS-bypass the paper measures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/slotmap.hpp"
#include "simnet/event.hpp"
#include "simnet/fabric.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/task.hpp"
#include "verbs/memory.hpp"
#include "verbs/packets.hpp"
#include "verbs/qp.hpp"

namespace rmc::verbs {

class Hca {
 public:
  Hca(sim::Scheduler& sched, sim::Fabric& fabric, sim::Host& host, VerbsCosts costs = {});
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;

  sim::NicAddr addr() const { return nic_->addr(); }
  sim::Host& host() { return *host_; }
  sim::Scheduler& scheduler() { return *sched_; }
  ProtectionDomain& pd() { return pd_; }
  const VerbsCosts& costs() const { return costs_; }

  /// Register memory (pins pages; charges the registration CPU cost).
  MemoryRegion& reg_mr(std::span<std::byte> memory);
  void dereg_mr(MemoryRegion& mr) { pd_.deregister_mr(mr); }

  std::unique_ptr<CompletionQueue> create_cq(CqMode mode = CqMode::polling);

  /// Create an RC QP; it must be connect()ed (manually or via CM) before
  /// posting sends.
  QueuePair& create_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                       SharedReceiveQueue* srq = nullptr);

  /// Create a UD QP (§VII future work): connectionless datagrams addressed
  /// per-WR, no acknowledgements, silent drop when no receive is posted.
  QueuePair& create_ud_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq,
                          SharedReceiveQueue* srq = nullptr);
  void destroy_qp(QueuePair& qp);

  // ----------------------------------------------------- connection mgmt
  struct ListenerConfig {
    /// Called per incoming connection to create the passive-side QP (with
    /// whatever CQs/SRQ the application chooses — e.g. a round-robin
    /// worker's CQ, as the memcached server does).
    std::function<QueuePair*()> make_qp;
    /// Called once the QP is wired to the peer.
    std::function<void(QueuePair&)> on_established;
    /// UD sideband (§VII future work): called when a datagram endpoint
    /// asks to attach. Receives the peer's (nic, UD qpn, endpoint id);
    /// returns the local (UD qpn, endpoint id) to answer with, or nullopt
    /// to refuse.
    std::function<std::optional<std::pair<std::uint32_t, std::uint64_t>>(
        sim::NicAddr, std::uint32_t, std::uint64_t)>
        on_ud_connect;
  };

  void listen(std::uint16_t port, ListenerConfig config) {
    listeners_[port] = std::move(config);
  }
  void stop_listen(std::uint16_t port) { listeners_.erase(port); }

  /// Active-side connect: creates a QP, performs the CM handshake, and
  /// resolves to the ready QP (or refused / timed_out).
  sim::Task<Result<QueuePair*>> connect(sim::NicAddr dst, std::uint16_t port,
                                        CompletionQueue& send_cq, CompletionQueue& recv_cq,
                                        SharedReceiveQueue* srq = nullptr,
                                        sim::Time timeout = 1 * kNsPerSec);

  /// UD sideband handshake: announce our (UD qpn, endpoint id) to the
  /// listener on `port`; resolves to the peer's (UD qpn, endpoint id).
  sim::Task<Result<std::pair<std::uint32_t, std::uint64_t>>> connect_ud(
      sim::NicAddr dst, std::uint16_t port, std::uint32_t local_ud_qpn,
      std::uint64_t local_ep_id, sim::Time timeout = 1 * kNsPerSec);

  /// Tear a connection down: notifies the peer, errors the QP, flushes
  /// outstanding WRs with WcStatus::flushed.
  void disconnect(QueuePair& qp);

  // ------------------------------------------------------------- stats
  std::uint64_t messages_handled() const { return messages_handled_; }
  std::size_t qp_count() const { return qps_.size(); }
  sim::Nic& nic() { return *nic_; }

 private:
  friend class QueuePair;

  struct PendingSend {
    std::uint32_t qpn;
    std::uint64_t wr_id;
    Opcode opcode;
    std::uint32_t byte_len;
    sim::Time posted_at = 0;  ///< requester-side span start (tracing)
    // Retransmission state (RC only; deadline == 0 means "never resend").
    // `local` stays valid per the verbs contract: the application owns the
    // buffer until the completion is delivered.
    std::span<std::byte> local{};
    std::uint64_t remote_addr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t imm_data = 0;
    std::uint32_t psn = 0;
    sim::Time deadline = 0;
    std::uint32_t retries_left = 0;
  };
  struct PendingRead {
    std::uint32_t qpn;
    std::uint64_t wr_id;
    std::span<std::byte> dest;
    sim::Time posted_at = 0;  ///< requester-side span start (tracing)
    std::uint64_t remote_addr = 0;
    std::uint32_t rkey = 0;
    sim::Time deadline = 0;
    std::uint32_t retries_left = 0;
  };
  struct PendingConnect {
    bool done = false;
    Errc err = Errc::ok;
    QueuePair* qp = nullptr;       ///< RC connect: QP being wired
    sim::NicAddr dst = 0;
    std::uint32_t ud_qpn = 0;      ///< UD connect: peer's answers
    std::uint64_t ud_ep_id = 0;
    std::unique_ptr<sim::Counter> resolved;
  };

  /// Charge the full post cost (WQE build + doorbell) and inject a packet
  /// into the fabric.
  void post_packet(std::unique_ptr<wire::IbPacket> packet);
  /// Same, but with an explicit host-CPU charge — the doorbell-batching
  /// path charges the WQE-build share per WR and the doorbell share once.
  void post_packet_charged(std::unique_ptr<wire::IbPacket> packet, sim::Time post_charge);

  /// Emit an ack for `token` back to `dst` with the given status.
  void send_ack(sim::NicAddr dst, std::uint32_t dst_qpn, std::uint64_t token, WcStatus status);

  sim::Task<> dispatch();
  void handle(std::unique_ptr<wire::IbPacket> packet);
  void handle_send_data(wire::IbPacket& p);
  void handle_ud_data(wire::IbPacket& p);
  void handle_rdma_write(wire::IbPacket& p);
  void handle_rdma_read_req(wire::IbPacket& p);
  void handle_rdma_read_resp(wire::IbPacket& p);
  void handle_ack(wire::IbPacket& p);
  void handle_cm(std::unique_ptr<wire::IbPacket> p);

  void flush_qp(QueuePair& qp);

  // RC retransmission: one periodic sweeper per HCA, armed only while
  // unacked WRs exist (so an idle or retransmit-disabled HCA schedules
  // nothing and run() still terminates).
  void arm_retransmit_timer();
  void sweep_retransmits();
  void retransmit_send(std::uint64_t token, PendingSend& ps);
  void retransmit_read(std::uint64_t token, PendingRead& pr);
  void retry_exhausted(QueuePair& qp);

  sim::Scheduler* sched_;
  sim::Fabric* fabric_;
  sim::Host* host_;
  sim::Nic* nic_;
  VerbsCosts costs_;
  ProtectionDomain pd_;

  std::unordered_map<std::uint32_t, QueuePair*> qps_;
  std::vector<std::unique_ptr<QueuePair>> qp_storage_;
  std::uint32_t next_qpn_ = 1;
  std::uint64_t next_token_ = 1;

  // In-flight operations keyed by the token that crosses the wire: the
  // SlotMap key (slot | generation) *is* the token, so per-message
  // bookkeeping recycles slots instead of churning unordered_map nodes.
  // Sends and reads are separate key spaces; the packet kind (ack vs
  // read_resp) selects the map, so overlapping keys cannot collide.
  SlotMap<PendingSend> pending_sends_;
  SlotMap<PendingRead> pending_reads_;
  std::unordered_map<std::uint64_t, std::shared_ptr<PendingConnect>> pending_connects_;
  std::unordered_map<std::uint16_t, ListenerConfig> listeners_;

  bool rto_armed_ = false;
  std::vector<std::uint64_t> rto_scratch_;  ///< expired tokens, reused per sweep

  std::uint64_t messages_handled_ = 0;
};

}  // namespace rmc::verbs
