// Public types of the software verbs layer.
//
// This mirrors the OpenFabrics verbs surface the paper builds UCR on
// (§II-A1): queue pairs with send/receive work requests, RDMA READ/WRITE,
// completion queues drained by polling, and registered memory with
// lkey/rkey protection. Names follow ibverbs conventions (WR, WC, QP, CQ,
// MR) so the UCR code above reads like real verbs code.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "simnet/time.hpp"

namespace rmc::verbs {

/// Work-request opcodes (the subset UCR and the tests need).
enum class Opcode : std::uint8_t {
  send,        ///< two-sided SEND, consumes a posted RECV at the target
  recv,        ///< receive completion (never posted as a send WR)
  rdma_write,  ///< one-sided write into a remote MR; no remote CPU involved
  rdma_read,   ///< one-sided read from a remote MR; no remote CPU involved
};

/// Completion status, modeled on ibv_wc_status.
enum class WcStatus : std::uint8_t {
  success,
  local_protection_error,   ///< bad lkey / out-of-bounds local access
  remote_access_error,      ///< bad rkey / out-of-bounds remote access
  receiver_not_ready,       ///< SEND arrived with no RECV posted (RNR)
  flushed,                  ///< QP went to error state with WRs outstanding
  retry_exceeded,           ///< RC retransmission gave up (peer dead / link cut)
};

/// Queue-pair transport type. RC is what the paper evaluates; UD is its
/// §VII future work ("leverage the Unreliable Datagram transport to scale
/// up the total number of clients").
enum class QpType : std::uint8_t { rc, ud };

/// One entry of a completion queue (ibv_wc).
struct WorkCompletion {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::send;
  WcStatus status = WcStatus::success;
  std::uint32_t byte_len = 0;   ///< bytes received / transferred
  std::uint32_t imm_data = 0;   ///< immediate data carried by SEND
  std::uint32_t qp_num = 0;     ///< QP this completion belongs to
  std::uint32_t src_qp = 0;     ///< UD receives: sender's QP number
  std::uint32_t src_nic = 0;    ///< UD receives: sender's fabric address
};

/// Memory-region access key pair. lkey authorizes local use in WRs; rkey is
/// handed to remote peers for one-sided access.
struct MrKeys {
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
};

/// Send-queue work request (ibv_send_wr, flattened to a single SGE — UCR
/// never needs gather lists because headers and eager data are packed).
struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::send;
  /// Local buffer: source for send/rdma_write, destination for rdma_read.
  std::span<std::byte> local{};
  std::uint32_t lkey = 0;
  /// Remote target for one-sided ops (ignored for send).
  std::uint64_t remote_addr = 0;
  std::uint32_t rkey = 0;
  /// Immediate data delivered with SEND.
  std::uint32_t imm_data = 0;
  /// UD only: datagram destination (the address-handle equivalent).
  std::uint32_t ud_remote_nic = 0;
  std::uint32_t ud_remote_qpn = 0;
};

/// Receive-queue work request.
struct RecvWr {
  std::uint64_t wr_id = 0;
  std::span<std::byte> buffer{};
  std::uint32_t lkey = 0;
};

/// Completion detection mode (§II-A1: "Polling often results in the lowest
/// latency"). Event mode adds the interrupt + wake-up cost to every
/// completion, like ibv_req_notify_cq + epoll.
enum class CqMode : std::uint8_t { polling, event_driven };

/// Host-side and adapter-side cost model for verbs operations. These are
/// the OS-bypass numbers that make verbs fast: posting a WR is a doorbell
/// write, not a syscall.
struct VerbsCosts {
  sim::Time post_wr_ns = 120;        ///< build WQE + doorbell (user space)
  /// Of post_wr_ns, the share attributable to ringing the NIC doorbell
  /// (the MMIO write that tells the adapter "descriptors are ready").
  /// QueuePair::post_send_batch charges this once per chain instead of
  /// once per WR; a single post still costs exactly post_wr_ns, so
  /// non-batched timings are unchanged. Clamped to post_wr_ns.
  sim::Time doorbell_ns = 40;
  sim::Time poll_cq_ns = 60;         ///< per-completion poll cost
  sim::Time hca_process_ns = 250;    ///< adapter packet processing, per message
  /// In-bound RDMA Write processing, per message. Real adapters place an
  /// incoming write cheaper than a SEND (no WQE consumed, no CQE raised at
  /// the target), so profiles may split the two. Disengaged (the default)
  /// inherits the symmetric hca_process_ns charge for every packet kind,
  /// so existing figures are byte-identical; an engaged value is charged
  /// as-is — including 0 for a genuinely free in-bound engine pass.
  std::optional<sim::Time> hca_inbound_write_ns = std::nullopt;
  sim::Time interrupt_ns = 4000;     ///< event-mode completion wake-up
  sim::Time reg_mr_base_ns = 900;    ///< memory registration: pin + table setup
  sim::Time reg_mr_per_page_ns = 90; ///< per 4 KiB page
  std::uint32_t ack_bytes = 30;      ///< RC acknowledgement wire size
  std::uint32_t read_req_bytes = 48; ///< RDMA read request wire size
  std::uint32_t ud_mtu = 2048;       ///< max UD datagram payload (path MTU)
  /// RC retransmission timeout: an unacked RC WR is resent after this long
  /// (ibv qp_attr.timeout equivalent; the interval doubles per retry). 0
  /// disables retransmission and restores fire-and-forget behaviour. Must
  /// comfortably exceed serialization + receiver queueing of the largest
  /// message under fan-in congestion, so lossless runs never retransmit —
  /// real HCAs default far higher (~67 ms) for the same reason.
  sim::Time rc_retransmit_ns = 10'000'000;
  /// Retries before the WR completes with retry_exceeded and the QP is
  /// moved to error (ibv qp_attr.retry_cnt equivalent).
  std::uint32_t rc_retry_count = 7;
};

}  // namespace rmc::verbs
