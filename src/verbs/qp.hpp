// Queue pairs and the shared receive queue.
//
// A QueuePair is the RC communication endpoint of §II-A1: the application
// posts work requests; the HCA executes them and reports completions. The
// SharedReceiveQueue implements the SRQ scalability design the paper
// inherits from MVAPICH ([11] Sur et al., IPDPS'06): many QPs draw receive
// buffers from one pool instead of pre-posting per connection.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/ring_deque.hpp"
#include "verbs/cq.hpp"
#include "verbs/types.hpp"

namespace rmc::verbs {

class Hca;

/// Receive-buffer pool shared across QPs (ibv_srq).
class SharedReceiveQueue {
 public:
  void post(const RecvWr& wr) { queue_.push_back(wr); }
  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

  RecvWr take() {
    RecvWr wr = queue_.front();
    queue_.pop_front();
    return wr;
  }

 private:
  RingDeque<RecvWr> queue_;  // breathes in place; no chunk churn per recv
};

enum class QpState : std::uint8_t { reset, ready, error };

class QueuePair {
 public:
  QueuePair(Hca& hca, std::uint32_t qp_num, QpType type, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, SharedReceiveQueue* srq)
      : hca_(&hca), qp_num_(qp_num), type_(type), send_cq_(&send_cq), recv_cq_(&recv_cq),
        srq_(srq) {
    // UD QPs are connectionless: usable as soon as they exist.
    if (type_ == QpType::ud) state_ = QpState::ready;
  }

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  std::uint32_t qp_num() const { return qp_num_; }
  QpType type() const { return type_; }
  QpState state() const { return state_; }
  CompletionQueue& send_cq() { return *send_cq_; }
  CompletionQueue& recv_cq() { return *recv_cq_; }

  /// Wire this QP to its peer (the modify_qp INIT->RTR->RTS dance, done
  /// either manually in tests or by the connection manager).
  void connect(std::uint32_t remote_nic, std::uint32_t remote_qpn) {
    remote_nic_ = remote_nic;
    remote_qpn_ = remote_qpn;
    state_ = QpState::ready;
  }

  std::uint32_t remote_nic() const { return remote_nic_; }
  std::uint32_t remote_qpn() const { return remote_qpn_; }

  /// Post a send-queue WR (send / rdma_read / rdma_write). Validates local
  /// keys synchronously (like a doorbell would fault); transfer results
  /// arrive on send_cq.
  Status post_send(const SendWr& wr);

  /// Post a chain of send-queue WRs with ONE doorbell (ibv_post_send with
  /// a linked wr list): every WR pays the WQE-build share of post_wr_ns,
  /// the doorbell share is charged once, on the last WR of the chain.
  /// Stops at the first invalid WR and returns its error — earlier WRs in
  /// the chain are already posted, matching the bad_wr semantics of real
  /// verbs. A WR deferred by the PSN window pays a fresh full doorbell
  /// when the backlog later drains (it genuinely needs its own ring then).
  Status post_send_batch(std::span<const SendWr> wrs);

  /// Post a receive buffer. With an SRQ attached, recvs must be posted to
  /// the SRQ instead (matching ibverbs, which errors ENOTSUP).
  Status post_recv(const RecvWr& wr);

  /// Move to error state: flush pending receives (the HCA flushes pending
  /// sends). Further posts fail with disconnected.
  void to_error();

  /// Invoked exactly once when the QP transitions to error — from either
  /// side's disconnect, a peer's cm_disconnect, or retransmission giving
  /// up. This is how the layer above (UCR) learns a connection died
  /// without polling the CQ (the async-event channel of real verbs).
  void set_on_error(std::function<void(QueuePair&)> fn) { on_error_ = std::move(fn); }

 private:
  friend class Hca;

  /// PSN window depth, shared by both sides of the protocol. The
  /// requester never lets more than this many numbered SENDs run unacked
  /// (excess WRs wait in tx_backlog_), which is exactly what makes the
  /// responder's "more than kPsnWindow behind the head = ancient
  /// duplicate" classification sound: by the time PSN H arrives, every
  /// PSN <= H - kPsnWindow has been acked, i.e. delivered. Without the
  /// requester-side bound, a retransmit of a genuinely lost packet could
  /// fall behind the window and be swallowed as a duplicate — a silent
  /// loss on a reliable QP.
  static constexpr std::uint32_t kPsnWindow = 64;

  /// Responder-side duplicate detection over the PSN window. rx_is_dup
  /// peeks (so an RNR'd packet isn't marked delivered); rx_mark records a
  /// successful delivery.
  bool rx_is_dup(std::uint32_t psn) const {
    if (!rx_any_ || psn > rx_highest_psn_) return false;
    const std::uint32_t back = rx_highest_psn_ - psn;
    if (back >= kPsnWindow) return true;  // ancient: long since delivered
    return (rx_seen_ >> back) & 1;
  }
  void rx_mark(std::uint32_t psn) {
    if (!rx_any_) {
      rx_any_ = true;
      rx_highest_psn_ = psn;
      rx_seen_ = 1;
      return;
    }
    if (psn > rx_highest_psn_) {
      const std::uint32_t shift = psn - rx_highest_psn_;
      rx_seen_ = (shift >= kPsnWindow ? 0 : rx_seen_ << shift) | 1;
      rx_highest_psn_ = psn;
      return;
    }
    const std::uint32_t back = rx_highest_psn_ - psn;
    if (back < kPsnWindow) rx_seen_ |= std::uint64_t{1} << back;
  }

  /// Requester-side sliding window. The window is on the PSN *range*
  /// [tx_base_, tx_base_ + kPsnWindow), not a count of in-flight WRs: one
  /// lost packet must stall the sender before the PSN space runs more
  /// than a window ahead of it, even while newer sends keep being acked.
  bool tx_window_full() const { return next_psn_ - tx_base_ >= kPsnWindow; }
  void ack_psn(std::uint32_t psn) {
    if (psn < tx_base_ || psn >= next_psn_) return;  // stale or never issued
    tx_acked_ |= std::uint64_t{1} << (psn - tx_base_);
    while (tx_acked_ & 1) {  // slide past the contiguous acked prefix
      tx_acked_ >>= 1;
      ++tx_base_;
    }
  }

  /// Shared body of post_send / post_send_batch: validate, window-check,
  /// and transmit one WR, charging `post_charge` host-CPU ns for the post
  /// (post_wr_ns for a solo post; the WQE-build share for batched WRs).
  Status post_send_charged(const SendWr& wr, sim::Time post_charge);

  /// Build and transmit one numbered SEND (registers the pending-ack
  /// entry and advances next_psn_), charging `post_charge` for the post.
  void transmit_send(const SendWr& wr, sim::Time post_charge);
  /// Transmit backlogged SENDs while the window has room.
  void drain_tx_backlog();

  /// HCA side: take the next receive buffer (SRQ first if attached).
  Result<RecvWr> take_recv() {
    if (srq_) {
      if (srq_->empty()) return Errc::no_resources;
      return srq_->take();
    }
    if (recv_queue_.empty()) return Errc::no_resources;
    RecvWr wr = recv_queue_.front();
    recv_queue_.pop_front();
    return wr;
  }

  Hca* hca_;
  std::uint32_t qp_num_;
  QpType type_ = QpType::rc;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  SharedReceiveQueue* srq_;
  RingDeque<RecvWr> recv_queue_;
  QpState state_ = QpState::reset;
  std::uint32_t remote_nic_ = 0;
  std::uint32_t remote_qpn_ = 0;
  std::function<void(QueuePair&)> on_error_;
  std::uint32_t next_psn_ = 1;        ///< requester: next send_data PSN
  std::uint32_t tx_base_ = 1;         ///< requester: lowest unacked PSN
  std::uint64_t tx_acked_ = 0;        ///< requester: acked bitmap above tx_base_
  RingDeque<SendWr> tx_backlog_;      ///< requester: SENDs awaiting window room
  std::uint32_t rx_highest_psn_ = 0;  ///< responder: dedup window head
  std::uint64_t rx_seen_ = 0;         ///< responder: bitmap below the head
  bool rx_any_ = false;
};

}  // namespace rmc::verbs
