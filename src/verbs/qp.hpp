// Queue pairs and the shared receive queue.
//
// A QueuePair is the RC communication endpoint of §II-A1: the application
// posts work requests; the HCA executes them and reports completions. The
// SharedReceiveQueue implements the SRQ scalability design the paper
// inherits from MVAPICH ([11] Sur et al., IPDPS'06): many QPs draw receive
// buffers from one pool instead of pre-posting per connection.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/ring_deque.hpp"
#include "verbs/cq.hpp"
#include "verbs/types.hpp"

namespace rmc::verbs {

class Hca;

/// Receive-buffer pool shared across QPs (ibv_srq).
class SharedReceiveQueue {
 public:
  void post(const RecvWr& wr) { queue_.push_back(wr); }
  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

  RecvWr take() {
    RecvWr wr = queue_.front();
    queue_.pop_front();
    return wr;
  }

 private:
  RingDeque<RecvWr> queue_;  // breathes in place; no chunk churn per recv
};

enum class QpState : std::uint8_t { reset, ready, error };

class QueuePair {
 public:
  QueuePair(Hca& hca, std::uint32_t qp_num, QpType type, CompletionQueue& send_cq,
            CompletionQueue& recv_cq, SharedReceiveQueue* srq)
      : hca_(&hca), qp_num_(qp_num), type_(type), send_cq_(&send_cq), recv_cq_(&recv_cq),
        srq_(srq) {
    // UD QPs are connectionless: usable as soon as they exist.
    if (type_ == QpType::ud) state_ = QpState::ready;
  }

  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  std::uint32_t qp_num() const { return qp_num_; }
  QpType type() const { return type_; }
  QpState state() const { return state_; }
  CompletionQueue& send_cq() { return *send_cq_; }
  CompletionQueue& recv_cq() { return *recv_cq_; }

  /// Wire this QP to its peer (the modify_qp INIT->RTR->RTS dance, done
  /// either manually in tests or by the connection manager).
  void connect(std::uint32_t remote_nic, std::uint32_t remote_qpn) {
    remote_nic_ = remote_nic;
    remote_qpn_ = remote_qpn;
    state_ = QpState::ready;
  }

  std::uint32_t remote_nic() const { return remote_nic_; }
  std::uint32_t remote_qpn() const { return remote_qpn_; }

  /// Post a send-queue WR (send / rdma_read / rdma_write). Validates local
  /// keys synchronously (like a doorbell would fault); transfer results
  /// arrive on send_cq.
  Status post_send(const SendWr& wr);

  /// Post a receive buffer. With an SRQ attached, recvs must be posted to
  /// the SRQ instead (matching ibverbs, which errors ENOTSUP).
  Status post_recv(const RecvWr& wr);

  /// Move to error state: flush pending receives (the HCA flushes pending
  /// sends). Further posts fail with disconnected.
  void to_error();

 private:
  friend class Hca;

  /// HCA side: take the next receive buffer (SRQ first if attached).
  Result<RecvWr> take_recv() {
    if (srq_) {
      if (srq_->empty()) return Errc::no_resources;
      return srq_->take();
    }
    if (recv_queue_.empty()) return Errc::no_resources;
    RecvWr wr = recv_queue_.front();
    recv_queue_.pop_front();
    return wr;
  }

  Hca* hca_;
  std::uint32_t qp_num_;
  QpType type_ = QpType::rc;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  SharedReceiveQueue* srq_;
  RingDeque<RecvWr> recv_queue_;
  QpState state_ = QpState::reset;
  std::uint32_t remote_nic_ = 0;
  std::uint32_t remote_qpn_ = 0;
};

}  // namespace rmc::verbs
