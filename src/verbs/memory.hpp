// Protection domain and memory regions.
//
// A MemoryRegion pins a span of the application's real memory and assigns
// it an (lkey, rkey) pair. One-sided operations in this layer move real
// bytes between registered regions — RDMA semantics are implemented, not
// approximated; only their *timing* comes from the fabric model.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/error.hpp"
#include "verbs/types.hpp"

namespace rmc::verbs {

class ProtectionDomain;

/// A registered region of application memory.
class MemoryRegion {
 public:
  MemoryRegion(ProtectionDomain& pd, std::span<std::byte> memory, MrKeys keys)
      : pd_(&pd), memory_(memory), keys_(keys) {}

  std::span<std::byte> memory() const { return memory_; }
  std::uint64_t addr() const { return reinterpret_cast<std::uint64_t>(memory_.data()); }
  std::size_t length() const { return memory_.size(); }
  std::uint32_t lkey() const { return keys_.lkey; }
  std::uint32_t rkey() const { return keys_.rkey; }

  /// True if [addr, addr+len) lies inside this region.
  bool contains(std::uint64_t a, std::size_t len) const {
    const std::uint64_t base = addr();
    return a >= base && len <= memory_.size() && a - base <= memory_.size() - len;
  }

 private:
  ProtectionDomain* pd_;
  std::span<std::byte> memory_;
  MrKeys keys_;
};

/// Groups memory regions under one HCA; validates keys for local and
/// remote access. Key values are never reused within a PD.
class ProtectionDomain {
 public:
  ProtectionDomain() = default;
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  /// Register `memory`; the region stays valid until deregister_mr.
  /// (The time cost of registration is charged by Hca::reg_mr, which calls
  /// this — see hca.hpp.)
  MemoryRegion& register_mr(std::span<std::byte> memory) {
    const MrKeys keys{next_key_, next_key_ + 1};
    next_key_ += 2;
    auto mr = std::make_unique<MemoryRegion>(*this, memory, keys);
    MemoryRegion& ref = *mr;
    by_lkey_.emplace(keys.lkey, mr.get());
    by_rkey_.emplace(keys.rkey, mr.get());
    regions_.emplace(keys.lkey, std::move(mr));
    return ref;
  }

  void deregister_mr(MemoryRegion& mr) {
    by_lkey_.erase(mr.lkey());
    by_rkey_.erase(mr.rkey());
    regions_.erase(mr.lkey());
  }

  /// Validate a local buffer against an lkey. Returns the MR or an error.
  Result<MemoryRegion*> check_local(std::uint32_t lkey, std::span<const std::byte> buf) const {
    auto it = by_lkey_.find(lkey);
    if (it == by_lkey_.end()) return Errc::invalid_argument;
    if (!it->second->contains(reinterpret_cast<std::uint64_t>(buf.data()), buf.size()))
      return Errc::invalid_argument;
    return it->second;
  }

  /// Validate remote access (addr, len) under an rkey.
  Result<MemoryRegion*> check_remote(std::uint32_t rkey, std::uint64_t addr,
                                     std::size_t len) const {
    auto it = by_rkey_.find(rkey);
    if (it == by_rkey_.end()) return Errc::invalid_argument;
    if (!it->second->contains(addr, len)) return Errc::invalid_argument;
    return it->second;
  }

  std::size_t region_count() const { return regions_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> regions_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_lkey_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_rkey_;
  std::uint32_t next_key_ = 0x1000;
};

}  // namespace rmc::verbs
