#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/table.hpp"

namespace rmc::obs {

namespace {

/// Dotted metric names are plain ASCII, but escape defensively so the dump
/// is always valid JSON.
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Timer& Registry::timer(std::string_view name) {
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

const Timer* Registry::find_timer(std::string_view name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? nullptr : it->second.get();
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
}

std::string Registry::to_json() const {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"value\":";
    append_i64(out, g->value());
    out += ",\"hwm\":";
    append_i64(out, g->hwm());
    out += '}';
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) out += ',';
    first = false;
    const LatencyHistogram& h = t->hist();
    append_json_string(out, name);
    out += ":{\"count\":";
    append_u64(out, h.count());
    out += ",\"mean_ns\":";
    append_u64(out, static_cast<std::uint64_t>(h.mean()));
    out += ",\"min_ns\":";
    append_u64(out, h.min());
    out += ",\"max_ns\":";
    append_u64(out, h.max());
    out += ",\"p50_ns\":";
    append_u64(out, h.percentile(0.50));
    out += ",\"p95_ns\":";
    append_u64(out, h.percentile(0.95));
    out += ",\"p99_ns\":";
    append_u64(out, h.percentile(0.99));
    out += ",\"p999_ns\":";
    append_u64(out, h.percentile(0.999));
    out += '}';
  }
  out += "}}";
  return out;
}

void Registry::print_table() const {
  if (!counters_.empty()) {
    Table table("metrics: counters", {"name", "value"});
    for (const auto& [name, c] : counters_) {
      table.add_row({name, Table::num(c->value())});
    }
    table.print();
    // rmclint:allow(io-hygiene): print_table is the designated end-of-run stdout dump sink
    std::printf("\n");
  }
  if (!gauges_.empty()) {
    Table table("metrics: gauges", {"name", "value", "hwm"});
    for (const auto& [name, g] : gauges_) {
      table.add_row({name, std::to_string(g->value()), std::to_string(g->hwm())});
    }
    table.print();
    // rmclint:allow(io-hygiene): print_table is the designated end-of-run stdout dump sink
    std::printf("\n");
  }
  if (!timers_.empty()) {
    Table table("metrics: timers (ns)", {"name", "count", "mean", "p50", "p99", "max"});
    for (const auto& [name, t] : timers_) {
      const LatencyHistogram& h = t->hist();
      table.add_row({name, Table::num(h.count()), Table::num(h.mean(), 0),
                     Table::num(h.percentile(0.50)), Table::num(h.percentile(0.99)),
                     Table::num(h.max())});
    }
    table.print();
    // rmclint:allow(io-hygiene): print_table is the designated end-of-run stdout dump sink
    std::printf("\n");
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace rmc::obs
