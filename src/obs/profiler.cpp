#include "obs/profiler.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace rmc::obs {

namespace {

/// The one sanctioned wall-time read in src/: profiler samples measure real
/// elapsed time by design and never feed back into simulated behavior.
std::uint64_t real_monotonic_ns(void*) {
  // rmclint:allow(determinism-clock): the profiler measures host wall time by design; samples never influence sim results
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch).count());
}

std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::uint16_t Profiler::register_scope(const char* name, ScopeKind kind) {
  for (std::size_t i = 0; i < scope_count_; ++i) {
    if (std::strcmp(scopes_[i].name, name) == 0) return static_cast<std::uint16_t>(i);
  }
  if (scope_count_ == kMaxScopes) {
    ++dropped_;
    return kNone;
  }
  scopes_[scope_count_] = Scope{name, kind};
  return static_cast<std::uint16_t>(scope_count_++);
}

void Profiler::enable() {
  if (enabled_) return;
  enabled_ = true;
  window_start_wall_ = wall_now();
  window_start_sim_ = sim_now();
  mark_wall_ = window_start_wall_;
  mark_sim_ = window_start_sim_;
}

void Profiler::disable() {
  if (!enabled_) return;
  window_wall_ += saturating_sub(wall_now(), window_start_wall_);
  window_sim_ += saturating_sub(sim_now(), window_start_sim_);
  enabled_ = false;
  depth_ = 0;  // open scopes at disable are abandoned (their dtors no-op via pop guard)
}

void Profiler::reset() {
  const bool was_enabled = enabled_;
  enabled_ = false;
  node_count_ = 0;
  depth_ = 0;
  samples_ = 0;
  dropped_ = 0;
  window_wall_ = 0;
  window_sim_ = 0;
  top_level_ = kNone;
  nodes_.fill(Node{});
  if (was_enabled) enable();
}

void Profiler::set_wall_clock(ClockFn fn, void* ctx) {
  wall_fn_ = fn;
  wall_ctx_ = ctx;
}

void Profiler::set_sim_clock(ClockFn fn, void* ctx) {
  sim_fn_ = fn;
  sim_ctx_ = ctx;
}

std::uint64_t Profiler::wall_now() const {
  return wall_fn_ ? wall_fn_(wall_ctx_) : real_monotonic_ns(nullptr);
}

std::uint64_t Profiler::sim_now() const { return sim_fn_ ? sim_fn_(sim_ctx_) : 0; }

void Profiler::charge(std::uint64_t wall, std::uint64_t sim) {
  if (depth_ > 0) {
    Node& n = nodes_[stack_[depth_ - 1]];
    n.wall_self_ns += saturating_sub(wall, mark_wall_);
    n.sim_self_ns += saturating_sub(sim, mark_sim_);
  }
  mark_wall_ = wall;
  mark_sim_ = sim;
}

std::uint16_t Profiler::find_or_make(std::uint16_t parent, std::uint16_t scope_id) {
  std::uint16_t* head = parent == kNone ? &top_level_ : &nodes_[parent].first_child;
  for (std::uint16_t n = *head; n != kNone; n = nodes_[n].next_sibling) {
    if (nodes_[n].scope == scope_id) return n;
  }
  if (node_count_ == kMaxNodes) return kNone;
  const auto idx = static_cast<std::uint16_t>(node_count_++);
  Node& n = nodes_[idx];
  n.scope = scope_id;
  n.parent = parent;
  // Append at the tail so sibling order is deterministic first-seen order.
  while (*head != kNone) head = &nodes_[*head].next_sibling;
  *head = idx;
  return idx;
}

bool Profiler::push(std::uint16_t scope_id) {
  if (depth_ == kMaxDepth || scope_id >= scope_count_) {
    ++dropped_;
    return false;
  }
  const std::uint64_t wall = wall_now();
  const std::uint64_t sim = sim_now();
  charge(wall, sim);
  const std::uint16_t parent = depth_ > 0 ? stack_[depth_ - 1] : kNone;
  const std::uint16_t node = find_or_make(parent, scope_id);
  if (node == kNone) {
    ++dropped_;
    return false;
  }
  ++nodes_[node].count;
  ++samples_;
  stack_[depth_++] = node;
  return true;
}

void Profiler::pop() {
  if (depth_ == 0) return;  // scope outlived a disable(); nothing to charge
  charge(wall_now(), sim_now());
  --depth_;
}

std::uint64_t Profiler::window_wall_ns() const {
  std::uint64_t total = window_wall_;
  if (enabled_) total += saturating_sub(wall_now(), window_start_wall_);
  return total;
}

std::uint64_t Profiler::attributed_wall_ns() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < node_count_; ++i) total += nodes_[i].wall_self_ns;
  return total;
}

std::uint64_t Profiler::attributed_sim_ns() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < node_count_; ++i) total += nodes_[i].sim_self_ns;
  return total;
}

void Profiler::append_stack(std::string& out, std::uint16_t node) const {
  if (nodes_[node].parent != kNone) {
    append_stack(out, nodes_[node].parent);
    out += ';';
  }
  out += scopes_[nodes_[node].scope].name;
}

void Profiler::emit_nodes_dfs(std::string& out, std::uint16_t node, bool& first) const {
  for (std::uint16_t n = node; n != kNone; n = nodes_[n].next_sibling) {
    const Node& nd = nodes_[n];
    if (!first) out += ',';
    first = false;
    out += "{\"stack\":\"";
    append_stack(out, n);
    out += "\",\"name\":\"";
    out += scopes_[nd.scope].name;
    out += "\",\"kind\":\"";
    out += scopes_[nd.scope].kind == ScopeKind::engine ? "engine" : "payload";
    out += "\",\"count\":";
    append_u64(out, nd.count);
    out += ",\"wall_self_ns\":";
    append_u64(out, nd.wall_self_ns);
    out += ",\"sim_self_ns\":";
    append_u64(out, nd.sim_self_ns);
    out += '}';
    if (nd.first_child != kNone) emit_nodes_dfs(out, nd.first_child, first);
  }
}

std::string Profiler::to_json() const {
  std::uint64_t engine_wall = 0, engine_sim = 0, payload_wall = 0, payload_sim = 0;
  for (std::size_t i = 0; i < node_count_; ++i) {
    const Node& n = nodes_[i];
    if (scopes_[n.scope].kind == ScopeKind::engine) {
      engine_wall += n.wall_self_ns;
      engine_sim += n.sim_self_ns;
    } else {
      payload_wall += n.wall_self_ns;
      payload_sim += n.sim_self_ns;
    }
  }
  std::uint64_t window_sim = window_sim_;
  if (enabled_) window_sim += saturating_sub(sim_now(), window_start_sim_);

  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"rmc-prof/1\",\"window\":{\"wall_ns\":";
  append_u64(out, window_wall_ns());
  out += ",\"sim_ns\":";
  append_u64(out, window_sim);
  out += "},\"attributed\":{\"wall_ns\":";
  append_u64(out, attributed_wall_ns());
  out += ",\"sim_ns\":";
  append_u64(out, attributed_sim_ns());
  out += "},\"engine\":{\"wall_ns\":";
  append_u64(out, engine_wall);
  out += ",\"sim_ns\":";
  append_u64(out, engine_sim);
  out += "},\"payload\":{\"wall_ns\":";
  append_u64(out, payload_wall);
  out += ",\"sim_ns\":";
  append_u64(out, payload_sim);
  out += "},\"samples\":";
  append_u64(out, samples_);
  out += ",\"dropped\":";
  append_u64(out, dropped_);
  out += ",\"nodes\":[";
  bool first = true;
  if (top_level_ != kNone) emit_nodes_dfs(out, top_level_, first);
  out += "]}";
  return out;
}

std::string Profiler::to_collapsed() const {
  std::string out;
  out.reserve(2048);
  for (std::size_t i = 0; i < node_count_; ++i) {
    if (nodes_[i].count == 0) continue;
    append_stack(out, static_cast<std::uint16_t>(i));
    out += ' ';
    append_u64(out, nodes_[i].wall_self_ns);
    out += '\n';
  }
  return out;
}

Profiler& profiler() {
  static Profiler instance;
  return instance;
}

}  // namespace rmc::obs
