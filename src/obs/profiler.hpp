// Zero-allocation attribution profiler: scoped annotations charge wall-clock
// and sim-time to a static registry of named scopes, nested into a fixed-size
// path trie so output renders as collapsed stacks (flamegraph-compatible) or
// JSON. Complements the always-on metrics registry (counts and sim-time
// distributions) by answering the question metrics cannot: where does the
// *wall* time of a simulation run go — engine overhead (scheduler heap, pool
// churn, CQ drains) versus payload work (parse/execute/format)?
//
// Design rules:
//  * Disabled by default; a disabled ProfScope is one branch. Enabling never
//    changes simulation behavior — clocks are only read, so figure tables
//    stay byte-identical with profiling on.
//  * No allocation after construction: scopes, trie nodes and the scope
//    stack are fixed arrays; overflow is counted, never grown.
//  * A ProfScope must NOT span a co_await: the profiler tracks one
//    synchronous call stack, and a suspension would interleave other events
//    into the open scope. Wrap only straight-line sections (the scheduler's
//    event dispatch is the canonical root scope).
//  * Self-time semantics: each sample charges the interval since the last
//    push/pop to the innermost open scope, so a parent's self time excludes
//    its children and the sum over all nodes never double-counts.
//
// Determinism: sim-time attributions are bit-identical across runs of the
// same seed. Wall-clock reads come from an injectable clock (tests inject a
// fake; the default reads the real monotonic clock, which is the one
// sanctioned wall-time consumer in src/ — results never feed back into the
// simulation).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rmc::obs {

enum class ScopeKind : std::uint8_t {
  engine,   ///< simulator machinery: heap ops, pool churn, CQ drains, fabric
  payload,  ///< modeled application work: parse, execute, format, marshalling
};

class Profiler {
 public:
  static constexpr std::size_t kMaxScopes = 64;
  static constexpr std::size_t kMaxNodes = 512;
  static constexpr std::size_t kMaxDepth = 32;
  static constexpr std::uint16_t kNone = 0xffff;

  /// Injectable nanosecond clock (wall or sim). `ctx` is opaque.
  using ClockFn = std::uint64_t (*)(void*);

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Find-or-create a scope id for `name` (a `prof.<layer>.<...>` literal
  /// with static storage duration; the profiler keeps the pointer). Called
  /// once per instrumentation site at static-init time.
  std::uint16_t register_scope(const char* name, ScopeKind kind);

  bool enabled() const { return enabled_; }
  /// Start a profiling window (timestamps it in both clocks).
  void enable();
  /// Close the window: accumulate its duration and stop sampling.
  void disable();
  /// Drop all samples and window time; scope registrations survive.
  void reset();

  /// Replace the wall clock (nullptr restores the real monotonic clock).
  void set_wall_clock(ClockFn fn, void* ctx);
  /// Replace the sim clock (nullptr reads as a constant 0). The scheduler
  /// installs itself here on construction, mirroring attach_log_clock.
  void set_sim_clock(ClockFn fn, void* ctx);
  const void* sim_clock_ctx() const { return sim_ctx_; }

  // ---- hot path (via ProfScope) ----
  /// Open a scope; returns false (and counts a drop) on depth/trie
  /// overflow so the matching pop can be skipped.
  bool push(std::uint16_t scope_id);
  void pop();

  // ---- inspection ----
  std::uint64_t sample_count() const { return samples_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t node_count() const { return node_count_; }
  std::uint64_t window_wall_ns() const;
  std::uint64_t attributed_wall_ns() const;
  std::uint64_t attributed_sim_ns() const;

  /// {"schema":"rmc-prof/1","window":{...},"attributed":{...},
  ///  "engine":{...},"payload":{...},"dropped":N,
  ///  "nodes":[{"stack":"a;b","name":"b","kind":"engine","count":N,
  ///            "wall_self_ns":N,"sim_self_ns":N},...]} — nodes in
  /// deterministic first-seen DFS order.
  std::string to_json() const;

  /// Folded-stack lines ("a;b;c <wall_self_ns>"), one per sampled node —
  /// feed directly to flamegraph.pl / speedscope.
  std::string to_collapsed() const;

 private:
  struct Scope {
    const char* name = nullptr;
    ScopeKind kind = ScopeKind::engine;
  };
  struct Node {
    std::uint16_t scope = kNone;
    std::uint16_t parent = kNone;        ///< node index, kNone = top level
    std::uint16_t first_child = kNone;
    std::uint16_t next_sibling = kNone;
    std::uint64_t count = 0;
    std::uint64_t wall_self_ns = 0;
    std::uint64_t sim_self_ns = 0;
  };

  std::uint64_t wall_now() const;
  std::uint64_t sim_now() const;
  /// Charge the interval since the last mark to the innermost open scope.
  void charge(std::uint64_t wall, std::uint64_t sim);
  std::uint16_t find_or_make(std::uint16_t parent, std::uint16_t scope_id);
  void append_stack(std::string& out, std::uint16_t node) const;
  void emit_nodes_dfs(std::string& out, std::uint16_t node, bool& first) const;

  bool enabled_ = false;
  std::size_t scope_count_ = 0;
  std::size_t node_count_ = 0;
  std::size_t depth_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t mark_wall_ = 0;
  std::uint64_t mark_sim_ = 0;
  std::uint64_t window_start_wall_ = 0;
  std::uint64_t window_start_sim_ = 0;
  std::uint64_t window_wall_ = 0;  ///< accumulated closed windows
  std::uint64_t window_sim_ = 0;
  ClockFn wall_fn_ = nullptr;  ///< nullptr = real monotonic clock
  void* wall_ctx_ = nullptr;
  ClockFn sim_fn_ = nullptr;  ///< nullptr = constant 0
  void* sim_ctx_ = nullptr;
  std::array<Scope, kMaxScopes> scopes_{};
  std::array<Node, kMaxNodes> nodes_{};
  std::array<std::uint16_t, kMaxDepth> stack_{};
  /// Top-level (parentless) nodes, linked through next_sibling.
  std::uint16_t top_level_ = kNone;
};

/// The process-wide profiler every ProfScope records into.
Profiler& profiler();

/// RAII scope annotation. Construct with a registered scope id; when the
/// profiler is disabled this is a single branch.
class ProfScope {
 public:
  explicit ProfScope(std::uint16_t scope_id) {
    Profiler& p = profiler();
    active_ = p.enabled() && p.push(scope_id);
  }
  ~ProfScope() {
    if (active_) profiler().pop();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool active_;
};

}  // namespace rmc::obs
