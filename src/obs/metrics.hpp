// Cross-layer metrics registry: named counters, gauges and histogram-backed
// timers, cheap enough to stay always-on in every layer of the simulation
// (simnet, verbs, ucr, sockets, memcached). Names are hierarchical dotted
// paths ("ucr.eager.sends", "mc.server.stage.parse"); the registry dumps
// them as JSON (for --metrics-json artifacts) or an ASCII table.
//
// Threading: the simulator is single-threaded, so there are no atomics or
// locks. Hot paths cache the Counter*/Gauge*/Timer* returned by the
// registry — instruments are never deallocated (reset() zeroes values but
// keeps every entry), so cached pointers stay valid for the process
// lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/histogram.hpp"

namespace rmc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level (queue depth, buffer occupancy) with a high-water
/// mark. add()/sub() track levels that move both ways; set() snapshots.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    if (v > hwm_) hwm_ = v;
  }
  void add(std::int64_t n = 1) { set(value_ + n); }
  void sub(std::int64_t n = 1) { value_ -= n; }
  std::int64_t value() const { return value_; }
  std::int64_t hwm() const { return hwm_; }
  void reset() { value_ = hwm_ = 0; }

 private:
  std::int64_t value_ = 0;
  std::int64_t hwm_ = 0;
};

/// Duration distribution (nanoseconds) over a LatencyHistogram.
class Timer {
 public:
  void record(std::uint64_t ns) { hist_.record(ns); }
  const LatencyHistogram& hist() const { return hist_; }
  void reset() { hist_.reset(); }

 private:
  LatencyHistogram hist_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. References stay valid forever (see header
  /// comment); repeated lookups with the same name return the same object.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// Non-creating lookup: nullptr when no timer of that name has been
  /// recorded yet. For report writers (bench --latency-json, memslap)
  /// that must not invent empty instruments.
  const Timer* find_timer(std::string_view name) const;

  /// Zero every instrument but keep all entries registered (cached
  /// pointers in the instrumented layers survive a reset).
  void reset();

  std::size_t size() const {
    return counters_.size() + gauges_.size() + timers_.size();
  }

  /// {"counters":{...},"gauges":{name:{"value":v,"hwm":h}},
  ///  "timers":{name:{"count","sum_ns","mean_ns","min_ns","max_ns",
  ///                  "p50_ns","p95_ns","p99_ns","p999_ns"}}} — keys sorted.
  std::string to_json() const;

  /// Human-readable dump (one table per instrument kind) to stdout.
  void print_table() const;

  /// Visit every instrument as (name, rendered value) in sorted name
  /// order; timers expand to <name>.count, <name>.mean_ns and the
  /// <name>.p50_ns/.p95_ns/.p99_ns/.p999_ns tail percentiles. Used by
  /// Server::render_stats to surface the registry over the text protocol.
  template <typename Fn>
  void for_each_stat(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, std::to_string(c->value()));
    for (const auto& [name, g] : gauges_) {
      fn(name, std::to_string(g->value()));
      fn(name + ".hwm", std::to_string(g->hwm()));
    }
    for (const auto& [name, t] : timers_) {
      fn(name + ".count", std::to_string(t->hist().count()));
      fn(name + ".mean_ns", std::to_string(static_cast<std::uint64_t>(t->hist().mean())));
      fn(name + ".p50_ns", std::to_string(t->hist().percentile(0.50)));
      fn(name + ".p95_ns", std::to_string(t->hist().percentile(0.95)));
      fn(name + ".p99_ns", std::to_string(t->hist().percentile(0.99)));
      fn(name + ".p999_ns", std::to_string(t->hist().percentile(0.999)));
    }
  }

 private:
  // std::map keeps dumps sorted; unique_ptr keeps addresses stable.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

/// The process-wide default registry every layer records into.
Registry& registry();

}  // namespace rmc::obs
