// Sim-time event tracer emitting Chrome trace_event JSON.
//
// Every record is stamped with virtual (scheduler) nanoseconds, passed in
// by the instrumented layer — the tracer itself has no scheduler
// dependency, so it sits below simnet in the build graph. Tracks (one
// Chrome "thread" per host / worker / NIC, e.g. "mc:server/w0",
// "verbs:client0") are created on first use; layers tag events with their
// category ("simnet", "verbs", "ucr", "sock", "mc") so chrome://tracing /
// Perfetto can filter a single request's path across all five layers.
//
// Disabled by default (a single branch per call site); benches enable it
// via --trace <file>. Events use the "X" (complete) and "i" (instant)
// phases only — complete events carry begin + duration, so overlapping
// work on one track (e.g. pipelined NIC transfers) never produces a
// malformed begin/end nesting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rmc::obs {

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  /// Drop all recorded events and tracks (keeps the enabled flag).
  void clear();

  /// A span: work on `track` from `ts_ns` lasting `dur_ns` virtual ns.
  void complete(std::uint64_t ts_ns, std::uint64_t dur_ns, std::string_view track,
                std::string_view name, std::string_view category);

  /// A point event on `track` at `ts_ns`.
  void instant(std::uint64_t ts_ns, std::string_view track, std::string_view name,
               std::string_view category);

  std::size_t event_count() const { return events_.size(); }
  std::size_t track_count() const { return tracks_.size(); }

  /// Render {"traceEvents":[...],"displayTimeUnit":"ns"} with thread_name
  /// metadata per track; events sorted by timestamp.
  std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; false on I/O error.
  bool write(const std::string& path) const;

 private:
  struct Event {
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;  ///< 0 for instants
    std::uint32_t tid;
    bool is_span;
    std::string name;
    std::string category;
  };

  std::uint32_t track_id(std::string_view track);

  bool enabled_ = false;
  std::vector<Event> events_;
  std::map<std::string, std::uint32_t, std::less<>> tracks_;
};

/// The process-wide default tracer every layer records into.
Tracer& tracer();

}  // namespace rmc::obs
