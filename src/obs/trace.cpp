#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace rmc::obs {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Chrome's ts/dur fields are microseconds; keep nanosecond precision as
/// fractional microseconds.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

void Tracer::clear() {
  events_.clear();
  tracks_.clear();
}

std::uint32_t Tracer::track_id(std::string_view track) {
  auto it = tracks_.find(track);
  if (it == tracks_.end()) {
    it = tracks_.emplace(std::string(track), static_cast<std::uint32_t>(tracks_.size()))
             .first;
  }
  return it->second;
}

void Tracer::complete(std::uint64_t ts_ns, std::uint64_t dur_ns, std::string_view track,
                      std::string_view name, std::string_view category) {
  if (!enabled_) return;
  events_.push_back(Event{ts_ns, dur_ns, track_id(track), true, std::string(name),
                          std::string(category)});
}

void Tracer::instant(std::uint64_t ts_ns, std::string_view track, std::string_view name,
                     std::string_view category) {
  if (!enabled_) return;
  events_.push_back(
      Event{ts_ns, 0, track_id(track), false, std::string(name), std::string(category)});
}

std::string Tracer::to_chrome_json() const {
  // Sorted output keeps chrome://tracing importers happy and makes the
  // monotonicity of the stream testable.
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const Event& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) { return a->ts_ns < b->ts_ns; });

  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, tid] : tracks_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, track);
    out += "}}";
  }
  for (const Event* e : sorted) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e->is_span ? 'X' : 'i';
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(e->tid);
    out += ",\"ts\":";
    append_us(out, e->ts_ns);
    if (e->is_span) {
      out += ",\"dur\":";
      append_us(out, e->dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"name\":";
    append_json_string(out, e->name);
    out += ",\"cat\":";
    append_json_string(out, e->category);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace rmc::obs
