// Synchronization primitives for simulated tasks.
//
// Event    — one-shot broadcast flag (awaitable).
// Counter  — monotonically increasing 64-bit value with awaitable
//            "wait until value >= threshold, or time out". This is the
//            exact semantic UCR's active-message counters need (§IV-C of
//            the paper): origin/target/completion counters are Counters.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"

namespace rmc::sim {

/// One-shot broadcast event. Once set, all current and future waiters
/// proceed immediately.
class Event {
 public:
  explicit Event(Scheduler& sched) : sched_(&sched) {}

  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sched_->resume_at(sched_->now(), h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.set_; }
      // rmclint:allow(zeroalloc): waiter vector reuses capacity reached during warmup
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Scheduler* sched_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Monotonic counter with threshold waits and timeouts.
///
/// wait_geq() resolves to true when the counter reaches the threshold and
/// to false if the timeout elapses first. With kNoTimeout it never times
/// out. Multiple waiters with different thresholds are supported.
///
/// Allocation: a kNoTimeout wait registers an intrusive node living in the
/// awaiter itself (inside the suspended coroutine frame, whose address is
/// stable), so the steady-state request path never heap-allocates here.
/// Timed waits still share state with their timer closure via shared_ptr —
/// the timer can outlive both the waiter and the Counter, so intrusive
/// registration would dangle.
class Counter {
 public:
  explicit Counter(Scheduler& sched) : sched_(&sched) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::uint64_t value() const { return value_; }

  void add(std::uint64_t n = 1) {
    value_ += n;
    fire_ready();
  }

  /// Wake every current waiter with failure (wait_geq resolves false)
  /// without touching the value. Used when the thing being counted can
  /// never complete — e.g. the endpoint that would have bumped this
  /// counter died. Future waiters are unaffected.
  void fail_waiters() {
    for (auto& w : waiters_) {
      if (w.node != nullptr) {
        w.node->registered = nullptr;
        w.node->failed = true;
        sched_->resume_at(sched_->now(), w.node->handle);
      } else {
        if (w.state->done) continue;
        w.state->done = true;
        w.state->success = false;
        sched_->resume_at(sched_->now(), w.state->handle);
      }
    }
    waiters_.clear();
  }

  /// Awaitable threshold wait; see class comment.
  auto wait_geq(std::uint64_t threshold, Time timeout = kNoTimeout) {
    struct Awaiter {
      Counter& counter;
      std::uint64_t threshold;
      Time timeout;
      IntrusiveWaiter node;              // kNoTimeout: lives in this frame
      std::shared_ptr<WaitState> state;  // timed: shared with the timer

      Awaiter(Counter& c, std::uint64_t th, Time to)
          : counter(c), threshold(th), timeout(to) {}
      Awaiter(const Awaiter&) = delete;
      Awaiter& operator=(const Awaiter&) = delete;

      ~Awaiter() {
        // Frame destroyed while still waiting (teardown): unregister so
        // the counter never touches freed memory.
        if (node.registered != nullptr) node.registered->deregister(&node);
      }

      bool await_ready() const noexcept { return counter.value_ >= threshold; }
      void await_suspend(std::coroutine_handle<> h) {
        counter.waits_metric_().inc();
        if (timeout == kNoTimeout) {
          node.handle = h;
          node.registered = &counter;
          // rmclint:allow(zeroalloc): intrusive node lives in the coroutine frame; vector reuses capacity
          counter.waiters_.push_back({threshold, &node, nullptr});
          return;
        }
        // rmclint:allow(zeroalloc): timed waits allocate by design and are metered via sim.counter.waits; hot paths use kNoTimeout
        state = std::make_shared<WaitState>();
        state->handle = h;
        // rmclint:allow(zeroalloc): waiter vector reuses capacity reached during warmup
        counter.waiters_.push_back({threshold, nullptr, state});
        auto s = state;
        auto* sched = counter.sched_;
        sched->call_in(timeout, [s, sched] {
          if (s->done) return;
          s->done = true;
          s->success = false;
          obs::registry().counter("sim.counter.timeouts").inc();
          sched->resume_at(sched->now(), s->handle);
        });
      }
      bool await_resume() const noexcept {
        return state == nullptr ? !node.failed : state->success;
      }
    };
    return Awaiter{*this, threshold, timeout};
  }

 private:
  struct WaitState {
    bool done = false;
    bool success = false;
    std::coroutine_handle<> handle;
  };

  struct IntrusiveWaiter {
    std::coroutine_handle<> handle;
    Counter* registered = nullptr;  // non-null while on the waiter list
    bool failed = false;            // set by fail_waiters before resuming
  };

  struct Waiter {
    std::uint64_t threshold;
    IntrusiveWaiter* node;  // non-null: intrusive (no timeout)
    std::shared_ptr<WaitState> state;
  };

  static obs::Counter& waits_metric_() {
    static obs::Counter* c = &obs::registry().counter("sim.counter.waits");
    return *c;
  }

  void deregister(IntrusiveWaiter* node) {
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i].node == node) {
        waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
        node->registered = nullptr;
        return;
      }
    }
  }

  void fire_ready() {
    // Wake every waiter whose threshold is now met; compact the list
    // in place (capacity is retained, so steady state never reallocates).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < waiters_.size(); ++i) {
      auto& w = waiters_[i];
      if (w.node != nullptr) {
        if (value_ >= w.threshold) {
          w.node->registered = nullptr;
          sched_->resume_at(sched_->now(), w.node->handle);
          continue;
        }
      } else {
        if (w.state->done) continue;  // timed out already; drop
        if (value_ >= w.threshold) {
          w.state->done = true;
          w.state->success = true;
          sched_->resume_at(sched_->now(), w.state->handle);
          continue;
        }
      }
      if (keep != i) waiters_[keep] = std::move(w);
      ++keep;
    }
    waiters_.resize(keep);  // rmclint:allow(zeroalloc): shrink-only compaction, capacity retained
  }

  Scheduler* sched_;
  std::uint64_t value_ = 0;
  std::vector<Waiter> waiters_;
};

}  // namespace rmc::sim
