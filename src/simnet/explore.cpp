#include "simnet/explore.hpp"

#include <algorithm>
#include <utility>

namespace rmc::sim {

ScheduleExplorer ScheduleExplorer::permutation(std::uint64_t seed) {
  ScheduleExplorer e;
  e.mode_ = ExploreMode::permutation;
  e.rng_ = Rng(seed);
  return e;
}

ScheduleExplorer ScheduleExplorer::exhaustive(ExploreLimits limits) {
  ScheduleExplorer e;
  e.mode_ = ExploreMode::exhaustive;
  e.limits_ = limits;
  return e;
}

ScheduleExplorer ScheduleExplorer::replay(std::vector<std::uint32_t> trace) {
  ScheduleExplorer e;
  e.mode_ = ExploreMode::replay;
  e.trace_ = std::move(trace);
  return e;
}

void ScheduleExplorer::reseed(std::uint64_t seed) { rng_ = Rng(seed); }

void ScheduleExplorer::add_invariant(std::string name, std::function<bool()> check) {
  // rmclint:allow(zeroalloc): exploration harness setup, never on the default schedule
  invariants_.emplace_back(std::move(name), std::move(check));
}

void ScheduleExplorer::clear_invariants() { invariants_.clear(); }

void ScheduleExplorer::begin_run() {
  if (mode_ != ExploreMode::replay) trace_.clear();
  cursor_ = 0;
  run_truncated_ = false;
  failed_invariant_.clear();
  failing_trace_.clear();
}

std::size_t ScheduleExplorer::pick(Time t, std::size_t ready) {
  (void)t;
  switch (mode_) {
    case ExploreMode::insertion:
      return 0;
    case ExploreMode::permutation: {
      const auto choice = static_cast<std::uint32_t>(rng_.below(ready));
      // rmclint:allow(zeroalloc): trace bookkeeping only runs when an explorer is installed
      if (record_trace_) trace_.push_back(choice);
      return choice;
    }
    case ExploreMode::replay: {
      if (cursor_ >= trace_.size()) return 0;
      const std::uint32_t want = trace_[cursor_++];
      return std::min<std::size_t>(want, ready - 1);
    }
    case ExploreMode::exhaustive: {
      if (cursor_ >= limits_.max_decisions_per_run) {
        // Bounded-exhaustive: past the decision budget, fall back to the
        // default order without branching. The DFS tree stays finite.
        run_truncated_ = true;
        return 0;
      }
      if (cursor_ == path_.size()) {
        // rmclint:allow(zeroalloc): DFS bookkeeping, exhaustive mode only — off the hot path
        path_.push_back(Decision{0, static_cast<std::uint32_t>(ready)});
        ++nodes_created_;
      }
      Decision& d = path_[cursor_];
      if (d.fanout != ready && failed_invariant_.empty()) {
        // A replayed prefix must reproduce the same races; if the fanout
        // drifts, the scenario depends on state outside the decisions.
        failed_invariant_ = "nondeterministic-scenario";
        failing_trace_ = trace_;
      }
      const std::size_t choice = std::min<std::size_t>(d.choice, ready - 1);
      ++cursor_;
      // rmclint:allow(zeroalloc): decision trace for counterexample replay, exhaustive mode only
      trace_.push_back(static_cast<std::uint32_t>(choice));
      return choice;
    }
  }
  return 0;
}

void ScheduleExplorer::after_dispatch(Time t) {
  (void)t;
  if (!failed_invariant_.empty()) return;
  for (const auto& [name, check] : invariants_) {
    if (!check()) {
      failed_invariant_ = name;
      failing_trace_ = trace_;
      return;
    }
  }
}

ExploreReport ScheduleExplorer::explore(
    const std::function<void(ScheduleExplorer&)>& scenario) {
  ExploreReport report;
  path_.clear();
  nodes_created_ = 0;
  for (;;) {
    begin_run();
    scenario(*this);
    ++report.schedules;
    report.max_depth = std::max(report.max_depth, path_.size());
    if (run_truncated_) report.truncated_runs = true;
    if (!failed_invariant_.empty()) {
      report.failed_invariant = failed_invariant_;
      report.failing_trace = failing_trace_;
      break;  // first counterexample wins; its trace replays it
    }
    // Backtrack: drop exhausted suffixes, advance the deepest live choice.
    while (!path_.empty() && path_.back().choice + 1 >= path_.back().fanout) {
      path_.pop_back();
    }
    if (path_.empty()) {
      report.exhausted = true;
      break;
    }
    ++path_.back().choice;
    if (report.schedules >= limits_.max_schedules) break;
  }
  report.decisions = nodes_created_;
  return report;
}

}  // namespace rmc::sim
