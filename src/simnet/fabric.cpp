#include "simnet/fabric.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace rmc::sim {

namespace {

const std::uint16_t kProfTransmit =
    obs::profiler().register_scope("prof.sim.fabric.transmit", obs::ScopeKind::engine);

/// Trace one on-the-wire occupancy span on a per-link track.
void trace_hop(Nic& src, Nic& dst, const Packet& p, Time start, Time end) {
  if (!obs::tracer().enabled()) return;
  std::string track = "wire:" + src.host().name() + "->" + dst.host().name();
  // rmclint:allow(zeroalloc): tracing-only path, gated off by the enabled() early-return above
  std::string name = "xfer " + std::to_string(p.wire_bytes) + "B";
  obs::tracer().complete(start, end > start ? end - start : 0, track, name, "simnet");
}

}  // namespace

Fabric::Fabric(Scheduler& sched, LinkParams params)
    : sched_(&sched),
      params_(params),
      packets_metric_(&obs::registry().counter("sim.fabric.packets")),
      bytes_metric_(&obs::registry().counter("sim.fabric.bytes")),
      drops_metric_(&obs::registry().counter("sim.fabric.drops")),
      loopback_metric_(&obs::registry().counter("sim.fabric.loopback_packets")) {}

void Fabric::transmit(PacketPtr packet) {
  assert(packet);
  obs::ProfScope prof{kProfTransmit};
  Nic& src = nic(packet->src);
  Nic& dst = nic(packet->dst);

  src.tx_messages_++;
  src.tx_bytes_ += packet->wire_bytes;
  packets_metric_->inc();
  bytes_metric_->inc(packet->wire_bytes);

  const bool fault_drop = faults_ && faults_->should_drop(packet->src, packet->dst);
  if (fault_drop || (params_.drop_per_million != 0 &&
                     drop_rng_.below(1000000) < params_.drop_per_million)) {
    dst.dropped_messages_++;
    drops_metric_->inc();
    if (obs::tracer().enabled()) {
      obs::tracer().instant(sched_->now(),
                            "wire:" + src.host().name() + "->" + dst.host().name(),
                            "drop", "simnet");
    }
    return;  // lost in the fabric; no one is notified
  }
  const Time fault_delay = faults_ ? faults_->extra_delay(packet->src, packet->dst) : 0;

  const Time now = sched_->now();
  if (packet->src == packet->dst) {
    // Loopback: memory-to-memory through the adapter, no wire. Counted in
    // sim.fabric.packets/bytes above exactly like the wire path, plus a
    // dedicated counter so the bypass traffic stays distinguishable.
    const Time delivery = now + serialization_time(packet->wire_bytes) / 2 + 100;
    loopback_metric_->inc();
    dst.rx_messages_++;
    trace_hop(src, dst, *packet, now, delivery);
    // rmclint:allow(coro-lifetime): `dst` is a fabric-owned Adapter that
    // outlives every in-flight delivery; the packet is moved into the closure.
    sched_->call_at(delivery, [&dst, p = std::move(packet)]() mutable {
      dst.inbox.send(std::move(p));
    });
    return;
  }

  const Time tx_time = serialization_time(packet->wire_bytes);
  const Time tx_start = std::max(now, src.tx_free_);
  src.tx_free_ = tx_start + tx_time;

  const Time arrival = tx_start + tx_time + params_.wire_latency + fault_delay;
  const Time delivery = std::max(arrival, dst.rx_free_ + tx_time);
  dst.rx_free_ = delivery;
  dst.rx_messages_++;
  trace_hop(src, dst, *packet, tx_start, delivery);

  // rmclint:allow(coro-lifetime): `dst` is a fabric-owned Adapter that
  // outlives every in-flight delivery; the packet is moved into the closure.
  sched_->call_at(delivery, [&dst, p = std::move(packet)]() mutable {
    dst.inbox.send(std::move(p));
  });
}

}  // namespace rmc::sim
