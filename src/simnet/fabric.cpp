#include "simnet/fabric.hpp"

#include <algorithm>
#include <cassert>

namespace rmc::sim {

void Fabric::transmit(PacketPtr packet) {
  assert(packet);
  Nic& src = nic(packet->src);
  Nic& dst = nic(packet->dst);

  src.tx_messages_++;
  src.tx_bytes_ += packet->wire_bytes;

  if (params_.drop_per_million != 0 &&
      drop_rng_.below(1000000) < params_.drop_per_million) {
    dst.dropped_messages_++;
    return;  // lost in the fabric; no one is notified
  }

  const Time now = sched_->now();
  if (packet->src == packet->dst) {
    // Loopback: memory-to-memory through the adapter, no wire.
    const Time delivery = now + serialization_time(packet->wire_bytes) / 2 + 100;
    dst.rx_messages_++;
    sched_->call_at(delivery, [&dst, p = std::move(packet)]() mutable {
      dst.inbox.send(std::move(p));
    });
    return;
  }

  const Time tx_time = serialization_time(packet->wire_bytes);
  const Time tx_start = std::max(now, src.tx_free_);
  src.tx_free_ = tx_start + tx_time;

  const Time arrival = tx_start + tx_time + params_.wire_latency;
  const Time delivery = std::max(arrival, dst.rx_free_ + tx_time);
  dst.rx_free_ = delivery;
  dst.rx_messages_++;

  sched_->call_at(delivery, [&dst, p = std::move(packet)]() mutable {
    dst.inbox.send(std::move(p));
  });
}

}  // namespace rmc::sim
