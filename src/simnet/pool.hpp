// Pooled allocation for the simulator hot path.
//
// Three allocation families dominate a steady-state request: packet
// objects (one IbPacket or TCP Segment per simulated message), their
// payload buffers, and coroutine frames (one per Task the message flows
// through). All three recycle through a single size-class freelist here,
// so after warm-up the simulator stops calling malloc on the request
// path entirely — which is both a wall-clock win and the property the
// zero-allocation test in tests/zeroalloc_test.cpp pins down.
//
// Blocks are bucketed by power-of-two size class (64 B .. 1 MiB); larger
// requests fall through to plain operator new and are counted as
// `unpooled`. The pool is a leaky process-lifetime singleton: blocks are
// never returned to the OS, matching the registry's "instruments live
// forever" discipline. Single-threaded by design, like the scheduler.
//
// Per-family registry metrics (PR-1 registry, dumped by --metrics-json):
//   sim.pool.<family>.hits     reuses served from a freelist
//   sim.pool.<family>.misses   freelist empty -> fresh malloc
//   sim.pool.<family>.unpooled over-sized requests bypassing the pool
//   sim.pool.cached_bytes      bytes currently parked in freelists
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace rmc::sim {

enum class PoolTag : unsigned { kBuffer = 0, kPacket = 1, kFrame = 2 };

namespace pool_detail {

/// Pool churn is engine overhead the attribution profiler separates from
/// payload work (registered once; ids shared by every inline call site).
inline const std::uint16_t kProfPoolAlloc =
    obs::profiler().register_scope("prof.sim.pool.alloc", obs::ScopeKind::engine);
inline const std::uint16_t kProfPoolFree =
    obs::profiler().register_scope("prof.sim.pool.free", obs::ScopeKind::engine);

inline constexpr std::size_t kMinClassBytes = 64;
inline constexpr std::size_t kMaxClassBytes = std::size_t{1} << 20;
inline constexpr unsigned kNumClasses = 15;  // 64 << 14 == 1 MiB
inline constexpr unsigned kNumTags = 3;

inline unsigned class_of(std::size_t n) {
  std::size_t c = kMinClassBytes;
  unsigned idx = 0;
  while (c < n) {
    c <<= 1;
    ++idx;
  }
  return idx;
}

inline constexpr std::size_t class_bytes(unsigned idx) { return kMinClassBytes << idx; }

struct Central {
  std::vector<void*> free_lists[kNumClasses];
  obs::Counter* hits[kNumTags];
  obs::Counter* misses[kNumTags];
  obs::Counter* unpooled[kNumTags];
  obs::Gauge* cached_bytes;

  Central() {
    static constexpr const char* kFamilies[kNumTags] = {"buffer", "packet", "frame"};
    auto& reg = obs::registry();
    for (unsigned t = 0; t < kNumTags; ++t) {
      const std::string base = std::string("sim.pool.") + kFamilies[t];
      hits[t] = &reg.counter(base + ".hits");
      misses[t] = &reg.counter(base + ".misses");
      unpooled[t] = &reg.counter(base + ".unpooled");
    }
    cached_bytes = &reg.gauge("sim.pool.cached_bytes");
    // rmclint:allow(zeroalloc): one-time pool construction (function-local static)
    for (auto& fl : free_lists) fl.reserve(64);
  }
};

inline Central& central() {
  // rmclint:allow(zeroalloc): one-time leaky singleton; outlives all pooled objects
  static Central* c = new Central();
  return *c;
}

}  // namespace pool_detail

/// Rounded-up capacity the pool would hand out for a request of n bytes.
inline std::size_t pooled_capacity(std::size_t n) {
  if (n > pool_detail::kMaxClassBytes) return n;
  return pool_detail::class_bytes(pool_detail::class_of(n));
}

inline void* pooled_alloc(std::size_t n, PoolTag tag) {
  obs::ProfScope prof{pool_detail::kProfPoolAlloc};
  auto& c = pool_detail::central();
  const auto t = static_cast<unsigned>(tag);
  if (n > pool_detail::kMaxClassBytes) {
    c.unpooled[t]->inc();
    return ::operator new(n);
  }
  const unsigned cls = pool_detail::class_of(n);
  auto& fl = c.free_lists[cls];
  if (!fl.empty()) {
    void* p = fl.back();
    fl.pop_back();
    c.hits[t]->inc();
    c.cached_bytes->sub(static_cast<std::int64_t>(pool_detail::class_bytes(cls)));
    return p;
  }
  c.misses[t]->inc();
  return ::operator new(pool_detail::class_bytes(cls));
}

inline void pooled_free(void* p, std::size_t n, PoolTag tag) {
  if (p == nullptr) return;
  obs::ProfScope prof{pool_detail::kProfPoolFree};
  auto& c = pool_detail::central();
  if (n > pool_detail::kMaxClassBytes) {
    ::operator delete(p);
    return;
  }
  const unsigned cls = pool_detail::class_of(n);
  // rmclint:allow(zeroalloc): returns a block to the freelist; list capacity reaches steady state at warmup
  c.free_lists[cls].push_back(p);
  c.cached_bytes->add(static_cast<std::int64_t>(pool_detail::class_bytes(cls)));
  (void)tag;
}

/// A byte buffer drawing its storage from the pool. Replaces
/// std::vector<std::byte> for packet payloads: same observable size()/
/// data()/assign surface, but the backing store is recycled instead of
/// freed, and capacity is the pool's size class (never shrinks).
class PooledBytes {
 public:
  PooledBytes() = default;

  PooledBytes(PooledBytes&& o) noexcept : data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }

  PooledBytes& operator=(PooledBytes&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    return *this;
  }

  PooledBytes(const PooledBytes& o) { assign(o.data_, o.size_); }
  PooledBytes& operator=(const PooledBytes& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }

  ~PooledBytes() { release(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::byte* begin() { return data_; }
  std::byte* end() { return data_ + size_; }
  const std::byte* begin() const { return data_; }
  const std::byte* end() const { return data_ + size_; }

  std::byte& operator[](std::size_t i) { return data_[i]; }
  const std::byte& operator[](std::size_t i) const { return data_[i]; }

  void clear() { size_ = 0; }

  /// Uninitialized grow/shrink: callers overwrite the bytes they claim.
  void resize(std::size_t n) {
    ensure(n);
    size_ = n;
  }

  void assign(const std::byte* p, std::size_t n) {
    ensure(n);
    if (n > 0) __builtin_memcpy(data_, p, n);
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(last - first);
    if (n == 0) {
      size_ = 0;
      return;
    }
    assign(&*first, n);
  }

 private:
  void ensure(std::size_t n) {
    if (n <= cap_) return;
    const std::size_t new_cap = pooled_capacity(n);
    std::byte* fresh = static_cast<std::byte*>(pooled_alloc(n, PoolTag::kBuffer));
    if (size_ > 0) __builtin_memcpy(fresh, data_, size_);
    release();
    data_ = fresh;
    cap_ = new_cap;
  }

  void release() {
    if (data_ != nullptr) pooled_free(data_, cap_, PoolTag::kBuffer);
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace rmc::sim
