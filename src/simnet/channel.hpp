// Channel<T>: an unbounded FIFO queue with awaitable receive, used as the
// inbox of every NIC, socket, and memcached worker in the simulation.
//
// send() never blocks (flow control is modeled at the protocol layers, not
// here). recv() suspends until a value arrives or the channel is closed;
// it resolves to std::optional<T> — nullopt means closed-and-drained.
// Multiple concurrent receivers are allowed; values are handed off to
// waiters in FIFO order.
#pragma once

#include <cassert>
#include <coroutine>
#include <optional>
#include <utility>

#include "common/ring_deque.hpp"
#include "simnet/scheduler.hpp"

namespace rmc::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& sched) : sched_(&sched) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue a value; wakes one waiting receiver if any.
  void send(T value) {
    assert(!closed_ && "send on closed channel");
    if (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      // rmclint:allow(zeroalloc): optional::emplace constructs in the waiter's inline slot, no heap
      w->slot.emplace(std::move(value));
      sched_->resume_at(sched_->now(), w->handle);
      return;
    }
    // rmclint:allow(zeroalloc): RingDeque recycles its ring; grows only toward the steady-state high-water mark
    queue_.push_back(std::move(value));
  }

  /// Close the channel: pending values can still be received; waiters and
  /// subsequent recv() calls (once drained) get nullopt.
  void close() {
    if (closed_) return;
    closed_ = true;
    while (!waiters_.empty()) {
      Waiter* w = waiters_.front();
      waiters_.pop_front();
      sched_->resume_at(sched_->now(), w->handle);  // slot stays empty
    }
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    std::optional<T> v(std::move(queue_.front()));
    queue_.pop_front();
    return v;
  }

  /// Awaitable receive; see class comment.
  auto recv() {
    struct Awaiter : Waiter {
      Channel& ch;
      explicit Awaiter(Channel& c) : ch(c) {}
      bool await_ready() {
        if (!ch.queue_.empty()) {
          // rmclint:allow(zeroalloc): optional::emplace constructs in the awaiter's inline slot, no heap
          this->slot.emplace(std::move(ch.queue_.front()));
          ch.queue_.pop_front();
          return true;
        }
        return ch.closed_;  // closed and drained -> resolve to nullopt
      }
      void await_suspend(std::coroutine_handle<> h) {
        this->handle = h;
        // rmclint:allow(zeroalloc): waiter ring reuses capacity reached during warmup
        ch.waiters_.push_back(this);
      }
      std::optional<T> await_resume() { return std::move(this->slot); }
    };
    return Awaiter{*this};
  }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> slot;
  };

  // Rings instead of std::deque: a steady-state producer/consumer pair
  // breathes inside retained capacity with zero allocation (std::deque
  // churns chunk allocations at every boundary crossing).
  Scheduler* sched_;
  RingDeque<T> queue_;
  RingDeque<Waiter*> waiters_;
  bool closed_ = false;
};

}  // namespace rmc::sim
