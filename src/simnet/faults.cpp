#include "simnet/faults.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "simnet/scheduler.hpp"

namespace rmc::sim {

FaultInjector::FaultInjector(Scheduler& sched)
    : sched_(&sched),
      injected_metric_(&obs::registry().counter("sim.fault.injected")),
      drops_metric_(&obs::registry().counter("sim.fault.drops")) {}

void FaultInjector::schedule(const FaultPlan& plan) {
  for (const TimedFault& tf : plan) {
    sched_->call_at(tf.at, [this, f = tf.fault] { apply(f); });
  }
}

void FaultInjector::apply(const Fault& f) {
  injected_metric_->inc();
  switch (f.kind) {
    case Fault::Kind::link_down:
      set_link_down(f.a, f.b, true);
      break;
    case Fault::Kind::link_up:
      set_link_down(f.a, f.b, false);
      break;
    case Fault::Kind::loss:
      set_link_loss(f.a, f.b, f.drop_per_million);
      break;
    case Fault::Kind::delay:
      set_link_delay(f.a, f.b, f.extra_delay);
      break;
    case Fault::Kind::partition:
      partition(f.group);
      break;
    case Fault::Kind::heal:
      heal();
      break;
    case Fault::Kind::node_down:
      set_node_down(f.a, true);
      break;
    case Fault::Kind::node_up:
      set_node_down(f.a, false);
      break;
  }
}

void FaultInjector::set_link_down(NicAddr a, NicAddr b, bool down) {
  LinkState& ls = links_[link_key(a, b)];
  ls.down = down;
  if (ls.idle()) links_.erase(link_key(a, b));
}

void FaultInjector::set_link_loss(NicAddr a, NicAddr b, std::uint32_t drop_per_million) {
  LinkState& ls = links_[link_key(a, b)];
  ls.drop_per_million = drop_per_million;
  if (ls.idle()) links_.erase(link_key(a, b));
}

void FaultInjector::set_link_delay(NicAddr a, NicAddr b, Time extra) {
  LinkState& ls = links_[link_key(a, b)];
  ls.extra_delay = extra;
  if (ls.idle()) links_.erase(link_key(a, b));
}

void FaultInjector::set_node_down(NicAddr n, bool down) {
  if (down) {
    // rmclint:allow(zeroalloc): fault-injection control plane, invoked by scripted plans, not per-op
    dead_nodes_.insert(n);
  } else {
    dead_nodes_.erase(n);
  }
}

void FaultInjector::partition(std::vector<NicAddr> group) {
  partition_group_.clear();
  // rmclint:allow(zeroalloc): fault-injection control plane, invoked by scripted plans, not per-op
  partition_group_.insert(group.begin(), group.end());
  partitioned_ = true;
}

void FaultInjector::heal() {
  partition_group_.clear();
  partitioned_ = false;
}

bool FaultInjector::should_drop(NicAddr src, NicAddr dst) {
  if (dead_nodes_.contains(src) || dead_nodes_.contains(dst)) {
    drops_metric_->inc();
    return true;
  }
  if (partitioned_ && src != dst &&
      partition_group_.contains(src) != partition_group_.contains(dst)) {
    drops_metric_->inc();
    return true;
  }
  if (const LinkState* ls = find_link(src, dst)) {
    if (ls->down) {
      drops_metric_->inc();
      return true;
    }
    if (ls->drop_per_million != 0 && loss_rng_.below(1000000) < ls->drop_per_million) {
      drops_metric_->inc();
      return true;
    }
  }
  return false;
}

Time FaultInjector::extra_delay(NicAddr src, NicAddr dst) const {
  const LinkState* ls = find_link(src, dst);
  return ls ? ls->extra_delay : 0;
}

}  // namespace rmc::sim
