// UniqueFunction: a move-only std::function<void()> replacement.
//
// The scheduler's event queue stores closures that own simulation objects
// (packets, buffers) via unique_ptr; std::function requires copyable
// targets, so we type-erase by hand. Small closures (<= 48 bytes) are
// stored inline to keep event dispatch allocation-free on the hot path.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace rmc::sim {

class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, UniqueFunction>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && std::is_nothrow_move_constructible_v<Fn>) {
      new (storage_) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else {
      // rmclint:allow(zeroalloc): heap fallback for oversized callables; hot-path closures fit kInlineSize
      new (storage_) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  static constexpr std::size_t kInlineSize = 48;

  struct VTable {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        new (dst) Fn*(*static_cast<Fn**>(src));
        *static_cast<Fn**>(src) = nullptr;
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_) {
      vtable_->move(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  void reset() {
    if (vtable_) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace rmc::sim
