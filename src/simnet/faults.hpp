// Deterministic fault injection for the fabric.
//
// A FaultInjector hangs off a Fabric and is consulted on every transmit.
// Faults are scripted as a FaultPlan — a list of (time, fault) entries —
// so a chaos run replays bit-identically: the injector carries its own
// seeded Rng for per-link loss, separate from the fabric's global
// drop_per_million stream (which remains untouched and becomes the
// "uniform loss everywhere" special case of this machinery).
//
// Supported faults:
//   link_down/link_up   — sever / restore one (undirected) NIC pair
//   loss                — per-link probabilistic drop window
//   delay               — add fixed latency on one link
//   partition/heal      — cut the fabric in two (group vs. the rest)
//   node_down/node_up   — crash / revive a NIC: nothing in or out
//
// The injector only *drops or delays* packets; detecting the resulting
// silence is the job of the layers above (verbs RC retransmission, UCR
// keepalive). That mirrors real hardware: a dead peer looks exactly like
// a very quiet one.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "simnet/time.hpp"

namespace rmc::obs {
class Counter;
}  // namespace rmc::obs

namespace rmc::sim {

class Scheduler;

using NicAddr = std::uint32_t;

struct Fault {
  enum class Kind : std::uint8_t {
    link_down,
    link_up,
    loss,
    delay,
    partition,
    heal,
    node_down,
    node_up,
  };

  Kind kind = Kind::link_down;
  /// Link endpoints for link_down/link_up/loss/delay (undirected); the
  /// affected NIC for node_down/node_up is `a`.
  NicAddr a = 0;
  NicAddr b = 0;
  /// Per-link drop probability for Kind::loss (0 clears the window).
  std::uint32_t drop_per_million = 0;
  /// Added one-way latency for Kind::delay (0 clears it).
  Time extra_delay = 0;
  /// One side of a Kind::partition cut; every NIC not listed is on the
  /// other side. Ignored for other kinds.
  std::vector<NicAddr> group = {};
};

/// One scheduled fault activation.
struct TimedFault {
  Time at = 0;
  Fault fault;
};

/// A reproducible chaos script: applied via FaultInjector::schedule.
using FaultPlan = std::vector<TimedFault>;

class FaultInjector {
 public:
  explicit FaultInjector(Scheduler& sched);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Queue every entry of `plan` on the scheduler (times are absolute).
  void schedule(const FaultPlan& plan);

  /// Apply one fault immediately.
  void apply(const Fault& f);

  // Direct setters for tests that want to flip state without a plan.
  void set_link_down(NicAddr a, NicAddr b, bool down);
  void set_link_loss(NicAddr a, NicAddr b, std::uint32_t drop_per_million);
  void set_link_delay(NicAddr a, NicAddr b, Time extra);
  void set_node_down(NicAddr n, bool down);
  void partition(std::vector<NicAddr> group);
  void heal();

  bool node_down(NicAddr n) const { return dead_nodes_.contains(n); }

  /// Fabric hook: should this packet vanish? Consumes the loss Rng only
  /// when a loss window is active on the link, so an idle injector never
  /// perturbs deterministic replay.
  bool should_drop(NicAddr src, NicAddr dst);

  /// Fabric hook: extra one-way latency on this link (0 if none).
  Time extra_delay(NicAddr src, NicAddr dst) const;

 private:
  struct LinkState {
    bool down = false;
    std::uint32_t drop_per_million = 0;
    Time extra_delay = 0;
    bool idle() const { return !down && drop_per_million == 0 && extra_delay == 0; }
  };

  static std::uint64_t link_key(NicAddr a, NicAddr b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  LinkState* find_link(NicAddr src, NicAddr dst) {
    auto it = links_.find(link_key(src, dst));
    return it == links_.end() ? nullptr : &it->second;
  }
  const LinkState* find_link(NicAddr src, NicAddr dst) const {
    auto it = links_.find(link_key(src, dst));
    return it == links_.end() ? nullptr : &it->second;
  }

  Scheduler* sched_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::unordered_set<NicAddr> dead_nodes_;
  std::unordered_set<NicAddr> partition_group_;
  bool partitioned_ = false;
  Rng loss_rng_{0xfa417u};
  obs::Counter* injected_metric_;  ///< sim.fault.injected
  obs::Counter* drops_metric_;     ///< sim.fault.drops
};

}  // namespace rmc::sim
