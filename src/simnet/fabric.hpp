// Hosts, NICs and the switched fabric connecting them.
//
// This is the *only* synthetic piece of the reproduction (see DESIGN.md §2):
// it replaces the physical wire/switch/PCIe path of the paper's testbed with
// an analytic timing model. Everything above it — verbs semantics, socket
// semantics, UCR, memcached — is real code.
//
// Timing model per message of `wire_bytes` from NIC s to NIC d:
//   tx_start  = max(now, s.tx_free)                  (sender serialization)
//   tx_time   = wire_bytes / bandwidth
//   arrival   = tx_start + tx_time + wire_latency    (cut-through fabric)
//   delivery  = max(arrival, d.rx_free + tx_time)    (receiver link busy)
//   d.rx_free = delivery
// The receiver-side constraint is what congests a single memcached server's
// HCA when 8–16 clients blast it in the Figure 6 experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simnet/channel.hpp"
#include "simnet/cpu.hpp"
#include "simnet/faults.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"

namespace rmc::sim {

/// A compute node. Owns its CPU resource; NICs are attached by fabrics.
class Host {
 public:
  Host(Scheduler& sched, std::uint32_t id, std::string name, unsigned cores)
      : id_(id), name_(std::move(name)), cpu_(sched, cores) {}

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  CpuResource& cpu() { return cpu_; }

 private:
  std::uint32_t id_;
  std::string name_;
  CpuResource cpu_;
};

/// Address of a NIC within its fabric.
using NicAddr = std::uint32_t;

/// Base class for anything that crosses the wire. Concrete packet types are
/// defined by the verbs and sockets layers; the fabric only needs size and
/// addressing.
struct Packet {
  NicAddr src = 0;
  NicAddr dst = 0;
  std::uint64_t wire_bytes = 0;

  Packet() = default;
  Packet(NicAddr s, NicAddr d, std::uint64_t bytes) : src(s), dst(d), wire_bytes(bytes) {}
  virtual ~Packet() = default;
};

using PacketPtr = std::unique_ptr<Packet>;

/// Physical-layer parameters of one fabric.
struct LinkParams {
  /// Effective per-link bandwidth in bytes per nanosecond (== GB/s). This
  /// is the *achievable* data rate (PCIe- and encoding-limited), not the
  /// signalling rate on the marketing sheet.
  double bandwidth_Bpns = 1.0;
  /// One-way propagation + switch port-to-port latency.
  Time wire_latency = 500;
  /// Fixed per-message wire/DMA overhead (headers, doorbell DMA, CRC).
  std::uint32_t per_message_overhead_bytes = 64;
  /// Probability (per million) of silently losing a packet in the fabric.
  /// 0 for the lossless IB/Ethernet switches of the testbed; tests raise
  /// it to exercise the unreliable-datagram paths.
  std::uint32_t drop_per_million = 0;
};

class Fabric;

/// One port on the fabric. The owning protocol layer drains `inbox`.
class Nic {
 public:
  Nic(Scheduler& sched, Fabric& fabric, NicAddr addr, Host& host)
      : inbox(sched), fabric_(&fabric), addr_(addr), host_(&host) {}

  Channel<PacketPtr> inbox;

  NicAddr addr() const { return addr_; }
  Host& host() { return *host_; }
  Fabric& fabric() { return *fabric_; }

  std::uint64_t tx_messages() const { return tx_messages_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_messages() const { return rx_messages_; }
  std::uint64_t dropped_messages() const { return dropped_messages_; }

 private:
  friend class Fabric;
  Fabric* fabric_;
  NicAddr addr_;
  Host* host_;
  Time tx_free_ = 0;
  Time rx_free_ = 0;
  std::uint64_t tx_messages_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_messages_ = 0;
  std::uint64_t dropped_messages_ = 0;
};

/// A switched network: a set of NICs plus the timing model above. One
/// Fabric instance per physical network in the testbed (the IB fabric and
/// the 10 GigE fabric of Cluster A are distinct Fabrics).
class Fabric {
 public:
  Fabric(Scheduler& sched, LinkParams params);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  const LinkParams& params() const { return params_; }
  Scheduler& scheduler() { return *sched_; }

  /// Attach a new NIC to `host`; its address is its index in this fabric.
  Nic& add_nic(Host& host) {
    auto addr = static_cast<NicAddr>(nics_.size());
    // rmclint:allow(zeroalloc): topology construction happens once at setup, never per-op
    nics_.push_back(std::make_unique<Nic>(*sched_, *this, addr, host));
    return *nics_.back();
  }

  Nic& nic(NicAddr addr) { return *nics_.at(addr); }
  std::size_t nic_count() const { return nics_.size(); }

  /// Transmit `packet` from the NIC at packet->src to packet->dst; the
  /// packet appears in the destination inbox at the modeled delivery time.
  /// Loopback (src == dst) bypasses the wire with a small constant cost.
  void transmit(PacketPtr packet);

  /// Time a payload of `bytes` occupies the wire (without queueing).
  Time serialization_time(std::uint64_t bytes) const {
    const double b = static_cast<double>(bytes + params_.per_message_overhead_bytes);
    return static_cast<Time>(b / params_.bandwidth_Bpns);
  }

  /// The fault injector for this fabric, created on first use. Fabrics
  /// that never call this pay nothing on the transmit path beyond one
  /// null-pointer check.
  FaultInjector& faults() {
    // rmclint:allow(zeroalloc): fault-injection control plane, created lazily once, not a request path
    if (!faults_) faults_ = std::make_unique<FaultInjector>(*sched_);
    return *faults_;
  }
  bool has_faults() const { return faults_ != nullptr; }

 private:
  Scheduler* sched_;
  LinkParams params_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<FaultInjector> faults_;
  Rng drop_rng_{0xd20bb};
  obs::Counter* packets_metric_;   ///< sim.fabric.packets
  obs::Counter* bytes_metric_;     ///< sim.fabric.bytes
  obs::Counter* drops_metric_;     ///< sim.fabric.drops
  obs::Counter* loopback_metric_;  ///< sim.fabric.loopback_packets
};

}  // namespace rmc::sim
