// Task<T>: the coroutine type every simulated activity is written in.
//
// A Task is lazy: creating one does not run any code. It starts when either
// (a) a parent coroutine `co_await`s it — the parent suspends and control
// transfers to the child symmetrically, or (b) it is handed to
// Scheduler::spawn(), which detaches it as a root "process" (a memcached
// server loop, a client, a NIC dispatcher).
//
// Exceptions propagate across co_await like ordinary calls. A detached task
// that exits with an exception terminates the program — in a deterministic
// simulation that is a bug, not a runtime condition.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "simnet/pool.hpp"

namespace rmc::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  // Every request flows through a handful of short-lived Task frames
  // (per-message handlers, per-op client calls). Route frame storage
  // through the simulator pool so steady-state traffic recycles frames
  // instead of hitting malloc once per coroutine.
  static void* operator new(std::size_t n) { return pooled_alloc(n, PoolTag::kFrame); }
  static void operator delete(void* p, std::size_t n) { pooled_free(p, n, PoolTag::kFrame); }

  std::coroutine_handle<> continuation{};
  bool detached = false;
  // Set by Scheduler::spawn so a finished root can unregister itself
  // before freeing its frame (kept as raw callbacks so Task<> does not
  // depend on the Scheduler type).
  void (*on_detached_done)(void*) = nullptr;
  void* on_detached_done_arg = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.detached) {
        if (p.on_detached_done) p.on_detached_done(p.on_detached_done_arg);
        h.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    // rmclint:allow(zeroalloc): optional::emplace constructs in the promise frame, no heap
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() {
      if (this->detached) std::terminate();
      exception = std::current_exception();
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }

  /// Awaiting a task starts it and resumes the awaiter when it finishes.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;  // symmetric transfer into the child
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        return std::move(*p.value);
      }
    };
    assert(handle_ && "co_await on empty Task");
    return Awaiter{handle_};
  }

  /// Used by Scheduler::spawn — marks the frame self-owning and releases it.
  std::coroutine_handle<promise_type> detach() {
    assert(handle_);
    handle_.promise().detached = true;
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
    void unhandled_exception() {
      if (this->detached) std::terminate();
      exception = std::current_exception();
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        handle.promise().continuation = cont;
        return handle;
      }
      void await_resume() {
        auto& p = handle.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    assert(handle_ && "co_await on empty Task");
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> detach() {
    assert(handle_);
    handle_.promise().detached = true;
    return std::exchange(handle_, nullptr);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace rmc::sim
