#include "simnet/scheduler.hpp"

#include <cassert>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rmc::sim {

Scheduler::Scheduler()
    : events_metric_(&obs::registry().counter("sim.sched.events")),
      queue_depth_metric_(&obs::registry().gauge("sim.sched.queue_depth")) {}

Scheduler::~Scheduler() {
  // Destroy roots that never finished (blocked servers, dispatch loops).
  // The queue may still reference frames being destroyed here; it is
  // dropped without resuming anything, so no stale handle is ever resumed.
  for (auto& root : roots_) {
    if (root->alive && root->handle) root->handle.destroy();
  }
}

void Scheduler::call_at(Time t, UniqueFunction fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Entry{t, seq_++, std::move(fn)});
}

void Scheduler::spawn(Task<> task) {
  auto handle = task.detach();
  auto record = std::make_unique<RootRecord>();
  record->handle = handle;
  handle.promise().on_detached_done = &RootRecordAccess::mark_dead;
  handle.promise().on_detached_done_arg = record.get();
  roots_.push_back(std::move(record));
  resume_at(now_, handle);
}

Time Scheduler::run() { return run_until(kNoTimeout); }

Time Scheduler::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    // Move the entry out before popping: the callback may push new events.
    auto entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_depth_metric_->set(static_cast<std::int64_t>(queue_.size()));
    queue_.pop();
    now_ = entry.t;
    ++events_processed_;
    events_metric_->inc();
    entry.fn();
  }
  return now_;
}

void attach_log_clock(Scheduler* sched) {
  if (!sched) {
    set_log_clock(nullptr, nullptr);
    return;
  }
  set_log_clock(
      [](void* ctx) -> std::uint64_t {
        return static_cast<Scheduler*>(ctx)->now();
      },
      sched);
}

}  // namespace rmc::sim
