#include "simnet/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace rmc::sim {

namespace {
/// Root profiler scope: every event callback dispatched by the scheduler.
const std::uint16_t kProfDispatch =
    obs::profiler().register_scope("prof.sim.sched.dispatch", obs::ScopeKind::engine);
}  // namespace

Scheduler::Scheduler()
    : events_metric_(&obs::registry().counter("sim.sched.events")),
      queue_depth_metric_(&obs::registry().gauge("sim.sched.queue_depth")) {
  // rmclint:allow(zeroalloc): one-time construction reservation
  heap_.reserve(1024);
  // The most recent scheduler provides the profiler's sim clock (testbeds
  // are sequential in one process; mirrors attach_log_clock).
  obs::profiler().set_sim_clock(
      [](void* ctx) -> std::uint64_t { return static_cast<Scheduler*>(ctx)->now(); }, this);
}

Scheduler::~Scheduler() {
  if (obs::profiler().sim_clock_ctx() == this) obs::profiler().set_sim_clock(nullptr, nullptr);
  // Destroy roots that never finished (blocked servers, dispatch loops).
  // The queue may still reference frames being destroyed here; it is
  // dropped without resuming anything, so no stale handle is ever resumed.
  for (auto& root : roots_) {
    if (root->alive && root->handle) root->handle.destroy();
  }
}

void Scheduler::call_at(Time t, UniqueFunction fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = seq_++;
  // Park the closure out-of-band; the heap only shuffles (t, seq, slot).
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    // rmclint:allow(zeroalloc): slot slab grows to the high-water mark, then recycles via free_slots_
    slots_.push_back(std::move(fn));
  }
  // Hole-based sift-up: walk the insertion hole toward the root comparing
  // keys only; the entry is materialized once, in its final slot.
  std::size_t hole = heap_.size();
  // rmclint:allow(zeroalloc): heap vector reuses capacity (reserved at construction, grows to hwm once)
  heap_.emplace_back();  // reserve the slot; filled below
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!before(t, seq, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = Entry{t, seq, slot};
}

void Scheduler::pop_top_into(Entry& out) {
  out = heap_[0];
  const std::size_t last = heap_.size() - 1;
  if (last > 0) {
    // Sift the former back element down from the root, moving the smallest
    // child up into the hole each level; one move per level, no swaps.
    const Entry tail = heap_[last];
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first_child = hole * kArity + 1;
      if (first_child >= last) break;
      std::size_t best = first_child;
      const std::size_t fence = std::min(first_child + kArity, last);
      for (std::size_t c = first_child + 1; c < fence; ++c) {
        if (before(heap_[c].t, heap_[c].seq, heap_[best])) best = c;
      }
      if (!before(heap_[best].t, heap_[best].seq, tail)) break;
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = tail;
  }
  heap_.pop_back();
}

void Scheduler::erase_at(std::size_t idx) {
  const std::size_t last = heap_.size() - 1;
  if (idx == last) {
    heap_.pop_back();
    return;
  }
  const Entry tail = heap_[last];
  heap_.pop_back();
  // The tail may belong above or below the hole; try sift-up first, then
  // sift-down from wherever the hole settled.
  std::size_t hole = idx;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!before(tail.t, tail.seq, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = hole * kArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t fence = std::min(first_child + kArity, size);
    for (std::size_t c = first_child + 1; c < fence; ++c) {
      if (before(heap_[c].t, heap_[c].seq, heap_[best])) best = c;
    }
    if (!before(heap_[best].t, heap_[best].seq, tail)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = tail;
}

void Scheduler::pop_choice_into(Entry& out) {
  const Time top = heap_[0].t;
  tie_scratch_.clear();
  for (std::uint32_t i = 0; i < heap_.size(); ++i) {
    // rmclint:allow(zeroalloc): exploration-only slow path, never on the default schedule
    if (heap_[i].t == top) tie_scratch_.emplace_back(heap_[i].seq, i);
  }
  if (tie_scratch_.size() == 1) {
    pop_top_into(out);
    return;
  }
  // Candidates in insertion order so index 0 == the default schedule.
  std::sort(tie_scratch_.begin(), tie_scratch_.end());
  std::size_t choice = tie_breaker_->pick(top, tie_scratch_.size());
  if (choice >= tie_scratch_.size()) choice = 0;
  const std::size_t idx = tie_scratch_[choice].second;
  out = heap_[idx];
  erase_at(idx);
}

void Scheduler::spawn(Task<> task) {
  auto handle = task.detach();
  // rmclint:allow(zeroalloc): spawn() is a setup-time operation; steady state resumes existing frames
  auto record = std::make_unique<RootRecord>();
  record->handle = handle;
  handle.promise().on_detached_done = &RootRecordAccess::mark_dead;
  handle.promise().on_detached_done_arg = record.get();
  // rmclint:allow(zeroalloc): root bookkeeping, one entry per spawned task at setup
  roots_.push_back(std::move(record));
  resume_at(now_, handle);
}

Time Scheduler::run() { return run_until(kNoTimeout); }

Time Scheduler::run_until(Time deadline) {
  Entry entry;
  while (!heap_.empty() && heap_[0].t <= deadline) {
    if (tie_breaker_ == nullptr) {
      pop_top_into(entry);
    } else {
      pop_choice_into(entry);
    }
    queue_depth_metric_->set(static_cast<std::int64_t>(heap_.size()));
    now_ = entry.t;
    ++events_processed_;
    events_metric_->inc();
    // Move the closure out before dispatching: the callback may push new
    // events (growing/reusing slots_) and may destroy queued frames via
    // teardown. The local dies at scope end, before the next pop.
    UniqueFunction fn = std::move(slots_[entry.slot]);
    // rmclint:allow(zeroalloc): returns a slot index to the freelist; capacity reached at warmup
    free_slots_.push_back(entry.slot);
    {
      obs::ProfScope prof{kProfDispatch};
      fn();
    }
    if (tie_breaker_ != nullptr) tie_breaker_->after_dispatch(now_);
  }
  return now_;
}

void attach_log_clock(Scheduler* sched) {
  if (!sched) {
    set_log_clock(nullptr, nullptr);
    return;
  }
  set_log_clock(
      [](void* ctx) -> std::uint64_t {
        return static_cast<Scheduler*>(ctx)->now();
      },
      sched);
}

}  // namespace rmc::sim
