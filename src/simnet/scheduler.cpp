#include "simnet/scheduler.hpp"

#include <cassert>

namespace rmc::sim {

Scheduler::~Scheduler() {
  // Destroy roots that never finished (blocked servers, dispatch loops).
  // The queue may still reference frames being destroyed here; it is
  // dropped without resuming anything, so no stale handle is ever resumed.
  for (auto& root : roots_) {
    if (root->alive && root->handle) root->handle.destroy();
  }
}

void Scheduler::call_at(Time t, UniqueFunction fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Entry{t, seq_++, std::move(fn)});
}

void Scheduler::spawn(Task<> task) {
  auto handle = task.detach();
  auto record = std::make_unique<RootRecord>();
  record->handle = handle;
  handle.promise().on_detached_done = &RootRecordAccess::mark_dead;
  handle.promise().on_detached_done_arg = record.get();
  roots_.push_back(std::move(record));
  resume_at(now_, handle);
}

Time Scheduler::run() { return run_until(kNoTimeout); }

Time Scheduler::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    // Move the entry out before popping: the callback may push new events.
    auto entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.t;
    ++events_processed_;
    entry.fn();
  }
  return now_;
}

}  // namespace rmc::sim
