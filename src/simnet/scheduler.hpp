// The discrete-event scheduler: a virtual clock plus a min-heap of pending
// wake-ups. Everything in the simulation — NIC packet arrivals, CPU
// occupancy, timeouts, coroutine resumptions — is an entry in this queue.
//
// Determinism: entries are ordered by (time, insertion sequence), so two
// events at the same instant fire in the order they were scheduled. No
// wall-clock time, no OS threads.
//
// PINNED ORDERING GUARANTEE (load-bearing for every BENCH gate and for
// byte-identical figure tables): with no tie-breaker installed, the
// dispatch order of same-timestamp events IS their call_at() insertion
// order, totally ordered by the monotone seq_ stamp. Any change that
// reorders same-timestamp dispatch — a different heap, a different
// comparator, unstable sort anywhere in the pop path — invalidates every
// recorded baseline in tools/bench_baselines/. Schedule exploration
// (src/simnet/explore.hpp) must go through set_tie_breaker(), which
// leaves the default path untouched; direct std::priority_queue use in
// src/ is rejected by rmclint (determinism-priority-queue) for the same
// reason.
//
// The queue is a flat 4-ary heap over a vector that only grows. Compared
// to std::priority_queue<Entry>: half the tree depth, hole-based
// sift-up/down (one move per level instead of a swap's three), and pop
// extracts the top directly instead of move-out-then-sift the husk.
// Closures live out-of-band in a recycled slot array, so heap entries are
// 24-byte trivially-copyable (time, seq, slot) keys — sift moves are plain
// stores instead of indirect-call UniqueFunction moves.
// (t, seq) keys are unique, so any min-heap pops the exact same global
// order — model output is bit-identical to the binary-heap version.
//
// Lifetime: root tasks handed to spawn() are owned by the scheduler. A root
// that finishes frees its own frame (and unregisters); roots still blocked
// when the Scheduler is destroyed are destroyed then. Never resume a
// scheduler's handles after it is destroyed.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "simnet/task.hpp"
#include "simnet/time.hpp"
#include "simnet/unique_function.hpp"

namespace rmc::obs {
class Counter;
class Gauge;
}  // namespace rmc::obs

namespace rmc::sim {

/// Same-timestamp dispatch policy hook (DESIGN.md §17). When installed on a
/// Scheduler, every pop whose minimum timestamp is shared by several queued
/// events presents those events — in insertion order — and lets the policy
/// pick which fires next. pick(t, 1) is *not* called (a single candidate is
/// forced), so implementations only see genuine races. The default
/// (no tie-breaker) preserves the pinned insertion-order guarantee above.
class TieBreaker {
 public:
  virtual ~TieBreaker() = default;

  /// `ready` (>= 2) events share the minimum timestamp `t`; candidates are
  /// numbered 0..ready-1 in insertion order. Return the index to dispatch.
  /// Returning 0 on every call reproduces the default schedule exactly.
  virtual std::size_t pick(Time t, std::size_t ready) = 0;

  /// Called after each dispatched event returns, whether or not pick() ran
  /// for it — the invariant-checker hook for schedule exploration.
  virtual void after_dispatch(Time t) { (void)t; }
};

class Scheduler {
 public:
  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  Time now() const { return now_; }

  /// Enqueue a callback at absolute time `t` (must be >= now(); asserted
  /// in debug builds so pooled-object reuse bugs fail loudly instead of
  /// corrupting event order).
  void call_at(Time t, UniqueFunction fn);

  /// Enqueue a callback `dt` nanoseconds from now.
  void call_in(Time dt, UniqueFunction fn) { call_at(now_ + dt, std::move(fn)); }

  /// Resume a coroutine at absolute time `t`.
  void resume_at(Time t, std::coroutine_handle<> h) {
    call_at(t, [h] { h.resume(); });
  }

  /// Start a detached root task at the current time.
  void spawn(Task<> task);

  /// Awaitable: suspend the current coroutine for `dt` nanoseconds.
  auto delay(Time dt) {
    struct Awaiter {
      Scheduler& sched;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sched.resume_at(sched.now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: reschedule at the current instant, behind already-queued
  /// same-time events (a cooperative yield).
  auto yield() { return delay(0); }

  /// Run until the event queue is empty. Returns the final virtual time.
  Time run();

  /// Run until the queue is empty or virtual time would exceed `deadline`;
  /// events after the deadline stay queued. Returns the current time.
  Time run_until(Time deadline);

  /// Number of events processed so far (for micro-benchmarks and tests).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Install (or clear, with nullptr) a same-timestamp dispatch policy.
  /// The breaker must outlive its installation. With none installed the
  /// scheduler takes the branch-free fast path and the pinned
  /// insertion-order guarantee holds bit-for-bit.
  void set_tie_breaker(TieBreaker* tb) { tie_breaker_ = tb; }
  TieBreaker* tie_breaker() const { return tie_breaker_; }

 private:
  friend struct RootRecordAccess;

  struct Entry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;  ///< index into slots_ holding the closure
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  struct RootRecord {
    std::coroutine_handle<> handle;
    bool alive = true;
  };

  static constexpr std::size_t kArity = 4;

  static bool before(Time at, std::uint64_t aseq, const Entry& b) {
    return at != b.t ? at < b.t : aseq < b.seq;
  }

  /// Remove the minimum entry into `out` (heap must be non-empty).
  void pop_top_into(Entry& out);

  /// Slow path used only when a tie-breaker is installed: collect every
  /// entry sharing the minimum timestamp, let the breaker pick one, and
  /// remove it (O(n) scan — exploration runs small models, not figures).
  void pop_choice_into(Entry& out);

  /// Remove heap_[idx], restoring the heap property (sift up or down).
  void erase_at(std::size_t idx);

  std::vector<Entry> heap_;
  std::vector<UniqueFunction> slots_;     ///< closures, indexed by Entry::slot
  std::vector<std::uint32_t> free_slots_;  ///< recycled slots_ indices
  std::vector<std::unique_ptr<RootRecord>> roots_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>>
      tie_scratch_;  ///< (seq, heap index) candidates for pop_choice_into
  TieBreaker* tie_breaker_ = nullptr;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  obs::Counter* events_metric_;     ///< sim.sched.events
  obs::Gauge* queue_depth_metric_;  ///< sim.sched.queue_depth (sampled per event)
};

/// Prefix every RMC_LOG_* line with this scheduler's virtual time
/// (`[t=<ns>ns]`). Pass nullptr to restore the plain format. The scheduler
/// must outlive the attachment.
void attach_log_clock(Scheduler* sched);

/// Hook used by Task promises to unregister a finished root. Kept out of
/// Task<> so the coroutine types stay scheduler-agnostic.
struct RootRecordAccess {
  static void mark_dead(void* record) {
    static_cast<Scheduler::RootRecord*>(record)->alive = false;
  }
};

}  // namespace rmc::sim
