// The discrete-event scheduler: a virtual clock plus a min-heap of pending
// wake-ups. Everything in the simulation — NIC packet arrivals, CPU
// occupancy, timeouts, coroutine resumptions — is an entry in this queue.
//
// Determinism: entries are ordered by (time, insertion sequence), so two
// events at the same instant fire in the order they were scheduled. No
// wall-clock time, no OS threads.
//
// Lifetime: root tasks handed to spawn() are owned by the scheduler. A root
// that finishes frees its own frame (and unregisters); roots still blocked
// when the Scheduler is destroyed are destroyed then. Never resume a
// scheduler's handles after it is destroyed.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "simnet/task.hpp"
#include "simnet/time.hpp"
#include "simnet/unique_function.hpp"

namespace rmc::obs {
class Counter;
class Gauge;
}  // namespace rmc::obs

namespace rmc::sim {

class Scheduler {
 public:
  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  Time now() const { return now_; }

  /// Enqueue a callback at absolute time `t` (must be >= now()).
  void call_at(Time t, UniqueFunction fn);

  /// Enqueue a callback `dt` nanoseconds from now.
  void call_in(Time dt, UniqueFunction fn) { call_at(now_ + dt, std::move(fn)); }

  /// Resume a coroutine at absolute time `t`.
  void resume_at(Time t, std::coroutine_handle<> h) {
    call_at(t, [h] { h.resume(); });
  }

  /// Start a detached root task at the current time.
  void spawn(Task<> task);

  /// Awaitable: suspend the current coroutine for `dt` nanoseconds.
  auto delay(Time dt) {
    struct Awaiter {
      Scheduler& sched;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sched.resume_at(sched.now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable: reschedule at the current instant, behind already-queued
  /// same-time events (a cooperative yield).
  auto yield() { return delay(0); }

  /// Run until the event queue is empty. Returns the final virtual time.
  Time run();

  /// Run until the queue is empty or virtual time would exceed `deadline`;
  /// events after the deadline stay queued. Returns the current time.
  Time run_until(Time deadline);

  /// Number of events processed so far (for micro-benchmarks and tests).
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  friend struct RootRecordAccess;

  struct Entry {
    Time t;
    std::uint64_t seq;
    UniqueFunction fn;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  struct RootRecord {
    std::coroutine_handle<> handle;
    bool alive = true;
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<std::unique_ptr<RootRecord>> roots_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
  obs::Counter* events_metric_;     ///< sim.sched.events
  obs::Gauge* queue_depth_metric_;  ///< sim.sched.queue_depth (sampled per event)
};

/// Prefix every RMC_LOG_* line with this scheduler's virtual time
/// (`[t=<ns>ns]`). Pass nullptr to restore the plain format. The scheduler
/// must outlive the attachment.
void attach_log_clock(Scheduler* sched);

/// Hook used by Task promises to unregister a finished root. Kept out of
/// Task<> so the coroutine types stay scheduler-agnostic.
struct RootRecordAccess {
  static void mark_dead(void* record) {
    static_cast<Scheduler::RootRecord*>(record)->alive = false;
  }
};

}  // namespace rmc::sim
