// Simulated time.
//
// The simulator runs in virtual time: a 64-bit count of nanoseconds since
// the start of the run. Nothing in the repository reads wall-clock time;
// identical seeds give identical runs.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace rmc::sim {

using Time = std::uint64_t;

/// Sentinel meaning "wait forever" in timeout parameters.
inline constexpr Time kNoTimeout = ~Time{0};

}  // namespace rmc::sim
