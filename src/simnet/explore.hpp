// Schedule exploration over the discrete-event scheduler (DESIGN.md §17).
//
// The simulator's pinned default — same-timestamp events fire in insertion
// order — makes every run reproducible but explores exactly ONE of the
// schedules a real machine could exhibit. ScheduleExplorer is a TieBreaker
// that walks the others:
//
//   insertion    pick() always returns 0: byte-identical to the default
//                schedule (the mode figure benchmarks may install to prove
//                tie-breaker neutrality).
//   permutation  seeded-random choice at every genuine tie: one alternative
//                schedule per seed, reproducible from the seed alone.
//   exhaustive   stateless model checking: depth-first enumeration of every
//                same-timestamp dispatch decision, replaying a decision
//                prefix against a freshly built world per schedule.
//   replay       follow a recorded trace (from a failing permutation seed
//                or an exhaustive counterexample) decision for decision.
//
// Invariant checks registered with add_invariant() run after every
// dispatched event on every schedule; the first violation is recorded with
// the decision trace that produced it, so any failure is replayable.
//
// The exhaustive driver only records decision points with fanout > 1, so
// the tree size is the product of genuine race fanouts, not event count.
// Scenarios must be deterministic given the decision sequence (pure simnet
// worlds are; anything touching wall clock or global RNG state is not).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simnet/scheduler.hpp"

namespace rmc::sim {

enum class ExploreMode : std::uint8_t {
  insertion,    ///< default order; never diverges, never records
  permutation,  ///< seeded-random pick at each tie
  exhaustive,   ///< DFS over all decision prefixes (use explore())
  replay,       ///< follow a fixed trace, then insertion order
};

/// Bounds for exhaustive enumeration. Decisions beyond
/// max_decisions_per_run fall back to insertion order and are not
/// branched on (bounded-exhaustive); schedules stop the DFS when reached.
struct ExploreLimits {
  std::size_t max_schedules = 1u << 20;
  std::size_t max_decisions_per_run = 64;
};

struct ExploreReport {
  std::size_t schedules = 0;      ///< complete schedules executed
  std::size_t decisions = 0;      ///< total fanout>1 decision points seen
  std::size_t max_depth = 0;      ///< deepest decision prefix reached
  bool exhausted = false;         ///< true iff the full bounded tree was walked
  bool truncated_runs = false;    ///< some run hit max_decisions_per_run
  std::string failed_invariant;   ///< empty iff every schedule held
  std::vector<std::uint32_t> failing_trace;  ///< decisions reproducing it
};

class ScheduleExplorer final : public TieBreaker {
 public:
  /// Insertion mode (the byte-identical default schedule).
  ScheduleExplorer() = default;

  static ScheduleExplorer permutation(std::uint64_t seed);
  static ScheduleExplorer exhaustive(ExploreLimits limits = {});
  static ScheduleExplorer replay(std::vector<std::uint32_t> trace);

  ExploreMode mode() const { return mode_; }

  // TieBreaker interface -----------------------------------------------
  std::size_t pick(Time t, std::size_t ready) override;
  void after_dispatch(Time t) override;

  // Invariants ----------------------------------------------------------
  /// `check` runs after every dispatched event; returning false records
  /// `name` and the current decision trace as the failure (first wins).
  void add_invariant(std::string name, std::function<bool()> check);
  void clear_invariants();
  bool failed() const { return !failed_invariant_.empty(); }
  const std::string& failed_invariant() const { return failed_invariant_; }

  // Per-run bookkeeping -------------------------------------------------
  /// Reset per-schedule state (trace, failure flag, RNG for permutation
  /// mode is NOT reset — use reseed()). Call before each manual run.
  void begin_run();
  /// Re-seed permutation mode so a run can be reproduced exactly.
  void reseed(std::uint64_t seed);
  /// Decisions taken this run (only fanout>1 points; replay input format).
  const std::vector<std::uint32_t>& trace() const { return trace_; }
  /// Disable trace recording (large permutation smokes; traces of multi-
  /// million-event runs are not useful and not free).
  void set_trace_recording(bool on) { record_trace_ = on; }

  // Exhaustive driver ---------------------------------------------------
  /// Enumerate schedules of `scenario` depth-first. The scenario must
  /// build a FRESH world per call, install *this on its scheduler (or
  /// call Scheduler::set_tie_breaker itself), and run to quiescence.
  /// Only valid in exhaustive mode.
  ExploreReport explore(const std::function<void(ScheduleExplorer&)>& scenario);

 private:
  struct Decision {
    std::uint32_t choice = 0;
    std::uint32_t fanout = 0;
  };

  ExploreMode mode_ = ExploreMode::insertion;
  ExploreLimits limits_;
  Rng rng_;
  bool record_trace_ = true;

  // One-run state.
  std::vector<std::uint32_t> trace_;
  std::size_t cursor_ = 0;  ///< next decision index (exhaustive/replay)
  bool run_truncated_ = false;
  std::string failed_invariant_;
  std::vector<std::uint32_t> failing_trace_;

  // Exhaustive DFS state: the decision prefix steering the current run.
  std::vector<Decision> path_;
  std::size_t nodes_created_ = 0;

  std::vector<std::pair<std::string, std::function<bool()>>> invariants_;
};

}  // namespace rmc::sim
