// CpuResource: models the cores of a simulated host.
//
// Protocol layers charge CPU time for the work the paper says matters —
// syscalls, kernel TCP processing, memcpys, protocol parsing, interrupt
// handling — by awaiting consume(cost). The resource serializes demand
// onto `cores` cores: a request begins on the earliest-free core (never
// before now) and completes cost nanoseconds later. With more runnable
// work than cores, completion times push out, which is what saturates a
// memcached server under the multi-client load of Figure 6.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simnet/scheduler.hpp"
#include "simnet/time.hpp"

namespace rmc::sim {

class CpuResource {
 public:
  CpuResource(Scheduler& sched, unsigned cores)
      : sched_(&sched), core_free_(std::max(1u, cores), 0) {}

  unsigned cores() const { return static_cast<unsigned>(core_free_.size()); }

  /// Total CPU-nanoseconds charged so far (utilization accounting).
  std::uint64_t busy_ns() const { return busy_ns_; }

  /// Awaitable: occupy one core for `cost` ns, queueing behind earlier work.
  auto consume(Time cost) {
    struct Awaiter {
      CpuResource& cpu;
      Time cost;
      bool await_ready() const noexcept { return cost == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        // rmclint:allow(zeroalloc): CpuResource::reserve books simulated time; it is not container growth
        const Time done = cpu.reserve(cost);
        cpu.sched_->resume_at(done, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, cost};
  }

  /// Non-coroutine variant: book `cost` ns and return the completion time.
  /// Used by layers that model asynchronous hardware (e.g. a TOE NIC doing
  /// segmentation) without suspending the caller.
  Time reserve(Time cost) {
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    const Time start = std::max(*it, sched_->now());
    *it = start + cost;
    busy_ns_ += cost;
    return *it;
  }

 private:
  Scheduler* sched_;
  std::vector<Time> core_free_;
  std::uint64_t busy_ns_ = 0;
};

}  // namespace rmc::sim
