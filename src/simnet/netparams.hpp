// Link-parameter presets for the four physical networks in the paper's
// testbed (§VI-A). Bandwidths are *effective* data rates after encoding and
// PCIe limits, not signalling rates:
//
//  - ConnectX DDR on Cluster A: 16 Gb/s signalling, PCIe 1.1 x8 limited,
//    ~1.4 GB/s achievable.
//  - ConnectX QDR (MT26428) on Cluster B: 36 Gb/s data rate on PCIe Gen2,
//    ~3.2 GB/s achievable.
//  - Chelsio T320 10 GigE: ~1.1 GB/s achievable.
//  - 1 GigE: ~117 MB/s.
//
// wire_latency covers propagation plus one switch hop (Silverstorm DDR /
// Mellanox QDR / Fulcrum FocalPoint are all cut-through). Host-side costs
// (syscalls, copies, interrupts, doorbells) are charged by the protocol
// layers, not here. In particular the doorbell (MMIO ring) is a per-post
// HCA charge — VerbsCosts.post_wr_ns splits into a per-WR build cost and
// a per-doorbell cost (VerbsCosts.doorbell_ns) so that doorbell-batched
// posts (QueuePair::post_send_batch) amortize the ring over a WR chain;
// see DESIGN.md §14. Values were calibrated against the paper's headline
// numbers — see EXPERIMENTS.md.
#pragma once

#include "simnet/fabric.hpp"

namespace rmc::sim {

/// InfiniBand DDR fabric (Cluster A).
inline LinkParams ib_ddr_link() {
  // wire_latency stands in for switch + PCIe-1.1 pipeline latency per message
  return LinkParams{.bandwidth_Bpns = 1.25, .wire_latency = 4500, .per_message_overhead_bytes = 80};
}

/// InfiniBand QDR fabric (Cluster B).
inline LinkParams ib_qdr_link() {
  // wire_latency stands in for switch + PCIe-Gen2 pipeline latency per message
  return LinkParams{.bandwidth_Bpns = 3.2, .wire_latency = 2600, .per_message_overhead_bytes = 60};
}

/// 10 Gigabit Ethernet fabric (Cluster A, Chelsio T320 + FocalPoint switch).
inline LinkParams ten_gige_link() {
  return LinkParams{.bandwidth_Bpns = 1.1, .wire_latency = 900, .per_message_overhead_bytes = 78};
}

/// 1 Gigabit Ethernet fabric (commodity baseline in Figure 5).
inline LinkParams one_gige_link() {
  return LinkParams{.bandwidth_Bpns = 0.117, .wire_latency = 25000, .per_message_overhead_bytes = 78};
}

}  // namespace rmc::sim
