// The benchmark workload runner — our equivalent of the paper's
// memslap-inspired suite (§VI): it drives the standard client API (not raw
// packets), measures per-operation latency in virtual time, and reports
// aggregate transactions per second for multi-client runs.
//
// Two tiers:
//
//  * run_workload — the figure workloads (§VI-B/C): one server, a handful
//    of clients, uniform key picks over a private per-client key set.
//  * run_fleet — the production-shape workload engine: a sharded server
//    pool driven by hundreds-to-thousands of client connections with
//    pluggable key distributions (uniform / Zipfian / hot-key flash
//    crowd), mixed op streams (get / set / multiget fan-out / delete),
//    TTL churn and deliberate eviction storms. Deterministic per seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "core/testbed.hpp"

namespace rmc::core {

class FleetBed;

/// Instruction mixes of §VI-B/C.
enum class OpPattern : std::uint8_t {
  pure_set,         ///< 100% Set
  pure_get,         ///< 100% Get
  non_interleaved,  ///< 10 Sets followed by 90 Gets per 100 ops
  interleaved,      ///< alternating Set / Get (50%/50%)
};

std::string_view pattern_name(OpPattern pattern);

struct WorkloadConfig {
  OpPattern pattern = OpPattern::pure_get;
  std::uint32_t value_size = 4096;  ///< item size (the x-axis of Figs. 3-5)
  std::uint64_t ops_per_client = 1000;
  std::uint32_t keys_per_client = 8;
  std::uint64_t seed = 1;
};

struct WorkloadResult {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  LatencyHistogram all_latency;
  std::uint64_t total_ops = 0;  ///< includes the partial ops of failed clients
  sim::Time elapsed = 0;  ///< virtual time from synchronized start to last finish
  /// Clients that errored out (populate, connect, or mid-run). Their
  /// partial ops and histograms ARE included above — a result with
  /// failed_clients != 0 is explicitly marked, never silently rescaled.
  std::uint64_t failed_clients = 0;
  /// Ops contributed by clients that later failed (the "partial" share of
  /// total_ops).
  std::uint64_t failed_client_ops = 0;
  /// connect_all itself failed: nobody ran, all clients count as failed.
  bool connect_failed = false;

  /// Aggregate transactions per second across all clients (Fig. 6 metric).
  double tps() const {
    return elapsed ? static_cast<double>(total_ops) / to_sec(elapsed) : 0.0;
  }
  /// Mean operation latency in microseconds (Figs. 3-5 metric).
  double mean_latency_us() const { return all_latency.mean() / 1e3; }
};

/// Populate, synchronize all clients, run the measured loop, aggregate.
/// Drives the testbed's scheduler to completion.
WorkloadResult run_workload(TestBed& bed, const WorkloadConfig& config);

// ===================================================================
// Fleet workload library
// ===================================================================

/// Key-pick distributions for the fleet engine.
enum class KeyDist : std::uint8_t {
  uniform,    ///< every key equally likely
  zipfian,    ///< rank-skewed, P(rank k) ∝ 1/(k+1)^s — web-cache shape
  hot_shift,  ///< flash crowd: a small hot set takes most ops, and the
              ///< hot set jumps to a new spot mid-run
};

std::string_view key_dist_name(KeyDist dist);

/// O(1) Zipfian sampler over [0, n) with exponent s, after Gray et al.
/// ("Quickly generating billion-record synthetic databases"): the zeta
/// constants are precomputed once (O(n) at construction), each draw is a
/// single uniform plus a pow(). Deterministic given a deterministic Rng.
/// Rank 0 is the most popular key.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double s);
  std::uint64_t operator()(Rng& rng) const;
  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  std::uint64_t n_;
  double s_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Fleet workload shape: key distribution, op mix, churn knobs.
struct FleetWorkloadConfig {
  // ---- key distribution ----
  KeyDist dist = KeyDist::zipfian;
  double zipf_s = 0.99;            ///< Zipfian exponent (YCSB default)
  std::uint64_t key_space = 16384; ///< shared global keyspace across clients
  // hot_shift knobs: `hot_fraction` of ops land on a window of
  // `hot_set_size` keys whose base jumps every `hot_shift_interval` of
  // sim time (0 = the hot set never moves; the rest is uniform).
  double hot_fraction = 0.9;
  std::uint64_t hot_set_size = 64;
  sim::Time hot_shift_interval = 0;

  // ---- op mix (integer weights, any scale) ----
  std::uint32_t get_weight = 85;
  std::uint32_t set_weight = 10;
  std::uint32_t mget_weight = 4;   ///< multiget fan-out across shards
  std::uint32_t del_weight = 1;
  std::uint32_t mget_width = 8;    ///< keys per multiget

  // ---- churn ----
  /// Fraction of sets that carry a short TTL (TTL churn). Expiry is
  /// visible once sim time crosses a second boundary — pair with
  /// think_time or an explicit delay phase to observe it.
  double ttl_set_fraction = 0.0;
  std::uint32_t ttl_seconds = 1;

  std::uint32_t value_size = 128;
  std::uint64_t ops_per_client = 100;
  /// Per-op pacing: 0 = closed loop (back-to-back); otherwise each client
  /// sleeps a jittered think time around this value between ops.
  sim::Time think_time = 0;
  /// Pre-write the whole key space (split across clients) before timing.
  bool populate = true;
  /// A client aborts (counts as failed, keeps its partial ops) after this
  /// many op errors — bounds runtime when a shard is unreachable.
  std::uint32_t abort_after_errors = 16;
  std::uint64_t seed = 1;
};

/// Key sampler composing the distribution knobs above. sample() maps an
/// Rng draw (plus sim time, for hot_shift epochs) to a key index.
class KeySampler {
 public:
  explicit KeySampler(const FleetWorkloadConfig& config);
  std::uint64_t sample(Rng& rng, sim::Time now) const;
  /// First key of the hot window at sim time `now` (hot_shift only;
  /// exposed so tests can assert the mid-run shift).
  std::uint64_t hot_base(sim::Time now) const;

 private:
  KeyDist dist_;
  std::uint64_t key_space_;
  double hot_fraction_;
  std::uint64_t hot_set_size_;
  sim::Time hot_shift_interval_;
  std::uint64_t seed_;
  ZipfGenerator zipf_;
};

/// Deterministic key / value encoding shared by the engine and its tests:
/// key index i becomes a fixed-width hex key, and every byte of its value
/// is fleet_value_byte(i) — so any hit can be checked for torn bytes.
std::string fleet_key(std::uint64_t index);
std::byte fleet_value_byte(std::uint64_t index);

struct FleetShardStats {
  std::uint64_t ops = 0;     ///< ops routed to this shard (mget: per key)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< store evictions during the run
};

struct FleetResult {
  LatencyHistogram get_latency;
  LatencyHistogram set_latency;
  LatencyHistogram mget_latency;
  LatencyHistogram all_latency;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t mgets = 0;
  std::uint64_t dels = 0;
  std::uint64_t hits = 0;    ///< get + mget per-key hits
  std::uint64_t misses = 0;  ///< get + mget per-key misses
  std::uint64_t errors = 0;  ///< transport/server errors (op not counted)
  /// Hits whose value bytes did not match the deterministic encoding —
  /// torn or corrupt values. Always 0 in a healthy run.
  std::uint64_t value_mismatches = 0;
  std::uint64_t total_ops = 0;  ///< completed ops, incl. failed clients' partials
  std::uint64_t failed_clients = 0;
  bool connect_failed = false;
  sim::Time elapsed = 0;  ///< synchronized start -> last client finish
  std::vector<FleetShardStats> shards;

  double tps() const {
    return elapsed ? static_cast<double>(total_ops) / to_sec(elapsed) : 0.0;
  }
  double hit_ratio() const {
    const std::uint64_t lookups = hits + misses;
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

/// Drive the fleet: populate (optional), synchronize every client, run the
/// mixed op streams to completion, aggregate per-shard and per-op stats.
/// Publishes the mc.fleet.* metrics (per-shard op counts, hit ratio,
/// eviction counts, per-op latency timers) into the registry. Fully
/// deterministic per config.seed.
FleetResult run_fleet(FleetBed& bed, const FleetWorkloadConfig& config);

}  // namespace rmc::core
