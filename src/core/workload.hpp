// The benchmark workload runner — our equivalent of the paper's
// memslap-inspired suite (§VI): it drives the standard client API (not raw
// packets), measures per-operation latency in virtual time, and reports
// aggregate transactions per second for multi-client runs.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "core/testbed.hpp"

namespace rmc::core {

/// Instruction mixes of §VI-B/C.
enum class OpPattern : std::uint8_t {
  pure_set,         ///< 100% Set
  pure_get,         ///< 100% Get
  non_interleaved,  ///< 10 Sets followed by 90 Gets per 100 ops
  interleaved,      ///< alternating Set / Get (50%/50%)
};

std::string_view pattern_name(OpPattern pattern);

struct WorkloadConfig {
  OpPattern pattern = OpPattern::pure_get;
  std::uint32_t value_size = 4096;  ///< item size (the x-axis of Figs. 3-5)
  std::uint64_t ops_per_client = 1000;
  std::uint32_t keys_per_client = 8;
  std::uint64_t seed = 1;
};

struct WorkloadResult {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  LatencyHistogram all_latency;
  std::uint64_t total_ops = 0;
  sim::Time elapsed = 0;  ///< virtual time from synchronized start to last finish

  /// Aggregate transactions per second across all clients (Fig. 6 metric).
  double tps() const {
    return elapsed ? static_cast<double>(total_ops) / to_sec(elapsed) : 0.0;
  }
  /// Mean operation latency in microseconds (Figs. 3-5 metric).
  double mean_latency_us() const { return all_latency.mean() / 1e3; }
};

/// Populate, synchronize all clients, run the measured loop, aggregate.
/// Drives the testbed's scheduler to completion.
WorkloadResult run_workload(TestBed& bed, const WorkloadConfig& config);

}  // namespace rmc::core
