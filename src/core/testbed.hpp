// The public façade: assemble a paper-style testbed in a few lines.
//
// A TestBed builds the simulated equivalent of the paper's experimental
// setup (§VI-A): a cluster (A = Intel Clovertown + ConnectX DDR + Chelsio
// 10GigE TOE; B = Intel Westmere + ConnectX QDR), one memcached server
// host, N client hosts, and one transport wiring memcached clients to the
// server. Every figure benchmark and example builds on this.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "onesided/publisher.hpp"
#include "rfp/ring_server.hpp"
#include "simnet/netparams.hpp"
#include "ucr/runtime.hpp"

namespace rmc::core {

/// The transports of the paper's evaluation.
enum class TransportKind : std::uint8_t {
  ucr_verbs,  ///< the paper's design: memcached over UCR active messages
  sdp,        ///< Sockets Direct Protocol on IB (buffered-copy mode)
  ipoib,      ///< kernel TCP over IP-over-IB (connected mode)
  toe_10ge,   ///< Chelsio 10 GigE with TCP offload
  tcp_1ge,    ///< plain kernel TCP on 1 GigE
  ucr_roce,   ///< §VII future work: UCR over RDMA-converged 10 GigE (RoCE)
  ucr_iwarp,  ///< §VII future work: UCR over iWARP (RDMA over TCP, §II-B)
};

std::string_view transport_name(TransportKind kind);

/// The two testbeds of §VI-A.
enum class ClusterKind : std::uint8_t {
  cluster_a,  ///< ConnectX DDR IB + 10 GigE TOE, 8 cores @ 2.33 GHz
  cluster_b,  ///< ConnectX QDR IB, 8 cores @ 2.67 GHz (no 10 GigE cards)
};

std::string_view cluster_name(ClusterKind kind);

/// True when `transport` existed on `cluster` in the paper (the benches
/// skip combinations the paper could not measure).
bool transport_available(ClusterKind cluster, TransportKind transport);

struct TestBedConfig {
  ClusterKind cluster = ClusterKind::cluster_b;
  TransportKind transport = TransportKind::ucr_verbs;
  unsigned num_clients = 1;
  mc::ServerConfig server{};
  mc::ClientBehavior client{};
  ucr::UcrConfig ucr{};  ///< eager threshold / CQ mode ablations
  /// One-sided GET: publish the server's remote index and have clients
  /// serve GETs with RDMA Reads (UCR transports only). Off by default.
  /// Deprecated shim for `client.mode = Mode::onesided_get`; either spelling
  /// builds the server-side Publisher.
  bool onesided = false;
  onesided::PublisherConfig onesided_cfg{};
  /// Server-side ring geometry / poll policy when `client.mode` is
  /// Mode::rfp (UCR transports only; ignored otherwise).
  rfp::RingServerConfig rfp_cfg{};
};

class TestBed {
 public:
  explicit TestBed(TestBedConfig config);
  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;
  ~TestBed();

  sim::Scheduler& scheduler() { return *sched_; }
  const TestBedConfig& config() const { return config_; }
  mc::Server& server() { return *server_; }
  /// The transport's fabric — exposed so scenarios and tests can script
  /// FaultInjector plans against the testbed.
  sim::Fabric& fabric() { return *fabric_; }

  std::size_t client_count() const { return clients_.size(); }
  mc::Client& client(std::size_t i) { return *clients_.at(i); }
  /// Null unless the effective client mode is onesided_get on a UCR
  /// transport (config.onesided or client.mode).
  onesided::Publisher* publisher() { return publisher_.get(); }
  /// Null unless the effective client mode is rfp on a UCR transport.
  rfp::RingServer* ring_server() { return ring_server_.get(); }
  /// Null on socket transports.
  verbs::Hca* server_hca() { return server_hca_.get(); }
  sim::Host& client_host(std::size_t i) { return *client_hosts_.at(i); }
  sim::Host& server_host() { return *server_host_; }

  /// Pre-register client memory for zero-copy rendezvous SETs (no-op on
  /// socket transports).
  void register_client_memory(std::size_t i, std::span<std::byte> memory);

  /// Establish every client's connection; run inside the scheduler.
  sim::Task<Status> connect_all();

 private:
  TestBedConfig config_;
  std::unique_ptr<sim::Scheduler> sched_;
  std::unique_ptr<sim::Fabric> fabric_;  ///< the transport's fabric
  std::unique_ptr<sim::Host> server_host_;
  std::vector<std::unique_ptr<sim::Host>> client_hosts_;

  // UCR transport state (null for socket transports).
  std::unique_ptr<verbs::Hca> server_hca_;
  std::unique_ptr<ucr::Runtime> server_ucr_;
  std::vector<std::unique_ptr<verbs::Hca>> client_hcas_;
  std::vector<std::unique_ptr<ucr::Runtime>> client_ucrs_;

  // Socket transport state (null for UCR).
  std::unique_ptr<sock::NetStack> server_stack_;
  std::vector<std::unique_ptr<sock::NetStack>> client_stacks_;

  std::unique_ptr<mc::Server> server_;
  std::unique_ptr<onesided::Publisher> publisher_;   ///< mode onesided_get
  std::unique_ptr<rfp::RingServer> ring_server_;     ///< mode rfp
  std::vector<std::unique_ptr<mc::Client>> clients_;
};

}  // namespace rmc::core
