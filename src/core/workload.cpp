#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "core/fleetbed.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace rmc::core {

std::string_view pattern_name(OpPattern pattern) {
  switch (pattern) {
    case OpPattern::pure_set: return "100% Set";
    case OpPattern::pure_get: return "100% Get";
    case OpPattern::non_interleaved: return "Set 10% / Get 90% (non-interleaved)";
    case OpPattern::interleaved: return "Set 50% / Get 50% (interleaved)";
  }
  return "?";
}

std::string_view key_dist_name(KeyDist dist) {
  switch (dist) {
    case KeyDist::uniform: return "uniform";
    case KeyDist::zipfian: return "zipfian";
    case KeyDist::hot_shift: return "hot-shift";
  }
  return "?";
}

namespace {

const std::uint16_t kProfRun =
    obs::profiler().register_scope("prof.mc.workload.run", obs::ScopeKind::engine);
const std::uint16_t kProfFleet =
    obs::profiler().register_scope("prof.mc.workload.fleet", obs::ScopeKind::engine);

/// Is operation #i of the stream a Set?
bool is_set_op(OpPattern pattern, std::uint64_t i) {
  switch (pattern) {
    case OpPattern::pure_set: return true;
    case OpPattern::pure_get: return false;
    case OpPattern::non_interleaved: return i % 100 < 10;  // 10 Sets then 90 Gets
    case OpPattern::interleaved: return i % 2 == 0;        // 1 Set, 1 Get
  }
  return false;
}

struct ClientState {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  LatencyHistogram all_latency;
  sim::Time finished_at = 0;
  std::uint64_t ops = 0;
  bool failed = false;
};

/// Shared run flags: the starter task raises connect_failed before waking
/// the clients, so a failed connect_all drains every task instead of
/// leaving them suspended on `connected` forever.
struct RunFlags {
  bool connect_failed = false;
};

sim::Task<> client_task(TestBed& bed, const WorkloadConfig& config, std::size_t index,
                        std::span<std::byte> value, sim::Event& connected,
                        sim::Counter& ready, sim::Event& start, const RunFlags& flags,
                        ClientState& state) {
  // rmclint:allow(coro-lifetime): every referenced object lives in run_workload's
  // frame, which blocks in sched.run() until all client tasks signal `ready`.
  mc::Client& client = bed.client(index);
  sim::Scheduler& sched = bed.scheduler();
  co_await connected.wait();
  if (flags.connect_failed) {
    // connect_all failed: exit cleanly (and keep the start barrier
    // honest) instead of waiting on a start that would never fire.
    state.failed = true;
    state.finished_at = sched.now();
    ready.add();
    co_return;
  }

  // Populate this client's key set (untimed warm-up; also the warm path
  // for connection buffers and the server's slab classes).
  std::vector<std::string> keys;
  keys.reserve(config.keys_per_client);
  for (std::uint32_t k = 0; k < config.keys_per_client; ++k) {
    keys.push_back("c" + std::to_string(index) + ":k" + std::to_string(k));
  }
  for (const auto& key : keys) {
    auto st = co_await client.set(key, value);
    if (!st.ok()) {
      RMC_LOG_ERROR("workload: populate failed on %s: %s", key.c_str(),
                    std::string(to_string(st.error())).c_str());
      state.failed = true;
      state.finished_at = sched.now();
      ready.add();
      co_return;
    }
  }

  // Synchronized start: all clients fire together (Fig. 6 semantics).
  ready.add();
  co_await start.wait();

  Rng rng(config.seed * 1000003 + index);
  for (std::uint64_t i = 0; i < config.ops_per_client; ++i) {
    const std::string& key = keys[rng.below(keys.size())];
    const sim::Time begin = sched.now();
    if (is_set_op(config.pattern, i)) {
      auto st = co_await client.set(key, value);
      if (!st.ok()) {
        state.failed = true;
        state.finished_at = sched.now();
        co_return;
      }
      const sim::Time lat = sched.now() - begin;
      state.set_latency.record(lat);
      state.all_latency.record(lat);
    } else {
      auto got = co_await client.get(key);
      if (!got.ok()) {
        state.failed = true;
        state.finished_at = sched.now();
        co_return;
      }
      const sim::Time lat = sched.now() - begin;
      state.get_latency.record(lat);
      state.all_latency.record(lat);
    }
    ++state.ops;
  }
  state.finished_at = sched.now();
}

}  // namespace

WorkloadResult run_workload(TestBed& bed, const WorkloadConfig& config) {
  sim::Scheduler& sched = bed.scheduler();
  const std::size_t n = bed.client_count();

  // One value buffer per client, registered for zero-copy rendezvous.
  std::vector<std::vector<std::byte>> values(n);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    values[i].resize(std::max<std::uint32_t>(1, config.value_size));
    for (auto& b : values[i]) b = static_cast<std::byte>(rng() & 0xff);
    bed.register_client_memory(i, values[i]);
  }

  std::vector<ClientState> states(n);
  sim::Event connected(sched);
  sim::Counter ready(sched);
  sim::Event start(sched);
  sim::Time start_time = 0;
  RunFlags flags;

  sched.spawn([](TestBed& tb, sim::Event& conn_ev, sim::Counter& ready_ctr, sim::Event& start_ev,
                 std::size_t clients, sim::Time& t0, RunFlags& fl) -> sim::Task<> {
    // rmclint:allow(coro-lifetime): all arguments live in run_workload's frame,
    // which blocks in sched.run() until this starter and every client finish.
    auto st = co_await tb.connect_all();
    if (!st.ok()) {
      RMC_LOG_ERROR("workload: connect failed: %s",
                    std::string(to_string(st.error())).c_str());
      // Wake the clients anyway: they check connect_failed and drain, so
      // the run terminates instead of hanging inside sched.run().
      fl.connect_failed = true;
    }
    conn_ev.set();
    co_await ready_ctr.wait_geq(clients);
    t0 = tb.scheduler().now();
    start_ev.set();
  }(bed, connected, ready, start, n, start_time, flags));

  for (std::size_t i = 0; i < n; ++i) {
    sched.spawn(
        client_task(bed, config, i, values[i], connected, ready, start, flags, states[i]));
  }
  {
    // Root of the drive loop: every dispatched event nests under it, so
    // the gap between this node's wall time and its children's is the
    // scheduler's own bookkeeping (heap ops, slot recycling).
    obs::ProfScope prof{kProfRun};
    sched.run();
  }

  // Aggregate every client — including the ones that failed mid-run.
  // Their partial ops and histograms stay in the totals and their finish
  // times extend the window, so a lossy run reports the loss explicitly
  // instead of silently inflating per-client throughput.
  WorkloadResult result;
  result.connect_failed = flags.connect_failed;
  sim::Time last_finish = start_time;
  for (auto& state : states) {
    if (state.failed) {
      ++result.failed_clients;
      result.failed_client_ops += state.ops;
    }
    result.set_latency.merge(state.set_latency);
    result.get_latency.merge(state.get_latency);
    result.all_latency.merge(state.all_latency);
    result.total_ops += state.ops;
    last_finish = std::max(last_finish, state.finished_at);
  }
  if (result.failed_clients != 0) {
    RMC_LOG_WARN("workload: %llu/%zu clients failed (%llu partial ops kept)",
                 static_cast<unsigned long long>(result.failed_clients), states.size(),
                 static_cast<unsigned long long>(result.failed_client_ops));
  }
  result.elapsed = last_finish - start_time;
  return result;
}

// ===================================================================
// Fleet workload library
// ===================================================================

namespace {

/// Riemann zeta partial sum — the normalization constant of the Zipfian
/// CDF. O(n), computed once per generator.
double zeta(std::uint64_t n, double s) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), s);
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t n, double s)
    : n_(std::max<std::uint64_t>(1, n)), s_(s) {
  // s == 1 makes the inverse-CDF exponent 1/(1-s) blow up; nudge off the
  // pole (the distribution is indistinguishable at this resolution).
  if (std::abs(1.0 - s_) < 1e-6) s_ = 1.0 - 1e-6;
  zetan_ = zeta(n_, s_);
  alpha_ = 1.0 / (1.0 - s_);
  const double zeta2 = zeta(2, s_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - s_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfGenerator::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, s_)) return 1;
  const auto k = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(k, n_ - 1);
}

KeySampler::KeySampler(const FleetWorkloadConfig& config)
    : dist_(config.dist),
      key_space_(std::max<std::uint64_t>(1, config.key_space)),
      hot_fraction_(config.hot_fraction),
      hot_set_size_(std::clamp<std::uint64_t>(config.hot_set_size, 1, key_space_)),
      hot_shift_interval_(config.hot_shift_interval),
      seed_(config.seed),
      zipf_(key_space_, config.zipf_s) {}

std::uint64_t KeySampler::hot_base(sim::Time now) const {
  const std::uint64_t epoch =
      hot_shift_interval_ ? static_cast<std::uint64_t>(now / hot_shift_interval_) : 0;
  // splitmix64-style mix of (epoch, seed): a new pseudo-random base per
  // epoch, deterministic per seed, uncorrelated with the previous one.
  std::uint64_t z = epoch * 0x9e3779b97f4a7c15ull + seed_ * 0xbf58476d1ce4e5b9ull +
                    0x94d049bb133111ebull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z % key_space_;
}

std::uint64_t KeySampler::sample(Rng& rng, sim::Time now) const {
  switch (dist_) {
    case KeyDist::uniform:
      return rng.below(key_space_);
    case KeyDist::zipfian:
      return zipf_(rng);
    case KeyDist::hot_shift:
      if (rng.uniform() < hot_fraction_) {
        return (hot_base(now) + rng.below(hot_set_size_)) % key_space_;
      }
      return rng.below(key_space_);
  }
  return 0;
}

std::string fleet_key(std::uint64_t index) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string key("kxxxxxxxx");  // fixed width: no per-op length variance
  for (int i = 0; i < 8; ++i) key[8 - i] = kHex[(index >> (4 * i)) & 0xf];
  return key;
}

std::byte fleet_value_byte(std::uint64_t index) {
  return static_cast<std::byte>(0x21 + (index * 131) % 0x5e);  // printable
}

namespace {

/// Per-op-kind registry timers (mc.fleet.get / mc.fleet.set /
/// mc.fleet.mget): the registry's percentile synthesis turns these into
/// the per-op p99 the fleet report quotes.
struct FleetTimers {
  obs::Timer* get = &obs::registry().timer("mc.fleet.get");
  obs::Timer* set = &obs::registry().timer("mc.fleet.set");
  obs::Timer* mget = &obs::registry().timer("mc.fleet.mget");
};

struct FleetClientState {
  LatencyHistogram get_latency;
  LatencyHistogram set_latency;
  LatencyHistogram mget_latency;
  LatencyHistogram all_latency;
  std::uint64_t gets = 0, sets = 0, mgets = 0, dels = 0;
  std::uint64_t hits = 0, misses = 0, errors = 0;
  std::uint64_t value_mismatches = 0;
  std::uint64_t ops = 0;
  sim::Time finished_at = 0;
  bool failed = false;
};

/// Per-shard tallies shared by all client tasks (single-threaded sim:
/// plain increments, no contention, deterministic sums).
struct FleetShardTallies {
  std::vector<std::uint64_t> ops, hits, misses;
  explicit FleetShardTallies(std::size_t shards)
      : ops(shards, 0), hits(shards, 0), misses(shards, 0) {}
};

struct FleetRunFlags {
  bool connect_failed = false;
};

/// True when the value bytes match the deterministic per-key encoding —
/// the torn/corrupt-value check of the eviction-storm scenario.
bool value_intact(std::uint64_t index, std::span<const std::byte> data) {
  const std::byte expect = fleet_value_byte(index);
  for (const std::byte b : data) {
    if (b != expect) return false;
  }
  return true;
}

sim::Task<> fleet_client_task(FleetBed& bed, const FleetWorkloadConfig& config,
                              const KeySampler& sampler, FleetTimers& timers,
                              std::size_t index, sim::Event& connected,
                              sim::Counter& ready, sim::Event& start,
                              const FleetRunFlags& flags, FleetShardTallies& shards,
                              FleetClientState& state) {
  // rmclint:allow(coro-lifetime): every referenced object lives in run_fleet's
  // frame, which blocks in sched.run() until all fleet tasks signal `ready`.
  mc::Client& client = bed.client(index);
  sim::Scheduler& sched = bed.scheduler();
  const std::size_t n_clients = bed.client_count();
  co_await connected.wait();
  if (flags.connect_failed) {
    state.failed = true;
    state.finished_at = sched.now();
    ready.add();
    co_return;
  }

  std::vector<std::byte> value(std::max<std::uint32_t>(1, config.value_size));
  auto fill_value = [&value](std::uint64_t idx) {
    std::fill(value.begin(), value.end(), fleet_value_byte(idx));
  };

  // Populate this client's stripe of the shared key space (untimed).
  if (config.populate) {
    for (std::uint64_t idx = index; idx < config.key_space; idx += n_clients) {
      fill_value(idx);
      auto st = co_await client.set(fleet_key(idx), value);
      if (!st.ok() && ++state.errors >= config.abort_after_errors) {
        state.failed = true;
        state.finished_at = sched.now();
        ready.add();
        co_return;
      }
    }
  }

  ready.add();
  co_await start.wait();

  Rng rng(config.seed * 1000003 + index);
  const std::uint64_t weight_total =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(config.get_weight) +
                                     config.set_weight + config.mget_weight +
                                     config.del_weight);
  std::vector<std::string> mget_keys;
  std::vector<std::size_t> mget_shards;

  for (std::uint64_t i = 0; i < config.ops_per_client; ++i) {
    const std::uint64_t pick = rng.below(weight_total);
    const sim::Time begin = sched.now();
    bool op_failed = false;

    if (pick < config.get_weight) {
      // ---- GET ----
      const std::uint64_t idx = sampler.sample(rng, sched.now());
      const std::string key = fleet_key(idx);
      const std::size_t shard = client.server_index(key);
      auto got = co_await client.get(key);
      const sim::Time lat = sched.now() - begin;
      if (got.ok()) {
        ++state.hits;
        ++shards.hits[shard];
        if (!value_intact(idx, got->data)) ++state.value_mismatches;
      } else if (got.error() == Errc::not_found) {
        ++state.misses;
        ++shards.misses[shard];
      } else {
        op_failed = true;
      }
      if (!op_failed) {
        ++state.gets;
        ++shards.ops[shard];
        state.get_latency.record(lat);
        state.all_latency.record(lat);
        timers.get->record(lat);
      }
    } else if (pick < config.get_weight + config.set_weight) {
      // ---- SET (optionally with a short TTL: the churn knob) ----
      const std::uint64_t idx = sampler.sample(rng, sched.now());
      const std::string key = fleet_key(idx);
      const std::size_t shard = client.server_index(key);
      const bool ttl = config.ttl_set_fraction > 0.0 && rng.chance(config.ttl_set_fraction);
      fill_value(idx);
      auto st = co_await client.set(key, value, 0, ttl ? config.ttl_seconds : 0);
      const sim::Time lat = sched.now() - begin;
      if (st.ok()) {
        ++state.sets;
        ++shards.ops[shard];
        state.set_latency.record(lat);
        state.all_latency.record(lat);
        timers.set->record(lat);
      } else {
        op_failed = true;
      }
    } else if (pick < config.get_weight + config.set_weight + config.mget_weight) {
      // ---- multiget fan-out: one client call, keys spread across shards ----
      const std::uint32_t width = std::max<std::uint32_t>(1, config.mget_width);
      mget_keys.clear();
      mget_shards.clear();
      for (std::uint32_t k = 0; k < width; ++k) {
        const std::uint64_t idx = sampler.sample(rng, sched.now());
        mget_keys.push_back(fleet_key(idx));
        mget_shards.push_back(client.server_index(mget_keys.back()));
      }
      auto r = co_await client.mget(mget_keys);
      const sim::Time lat = sched.now() - begin;
      if (r.ok()) {
        ++state.mgets;
        for (std::size_t k = 0; k < mget_keys.size(); ++k) {
          ++shards.ops[mget_shards[k]];
          if ((*r)[k].has_value()) {
            ++state.hits;
            ++shards.hits[mget_shards[k]];
          } else {
            ++state.misses;
            ++shards.misses[mget_shards[k]];
          }
        }
        state.mget_latency.record(lat);
        state.all_latency.record(lat);
        timers.mget->record(lat);
      } else {
        op_failed = true;
      }
    } else {
      // ---- DELETE ----
      const std::uint64_t idx = sampler.sample(rng, sched.now());
      const std::string key = fleet_key(idx);
      const std::size_t shard = client.server_index(key);
      auto st = co_await client.del(key);
      const sim::Time lat = sched.now() - begin;
      if (st.ok() || st.error() == Errc::not_found) {
        ++state.dels;
        ++shards.ops[shard];
        state.all_latency.record(lat);
      } else {
        op_failed = true;
      }
    }

    if (op_failed) {
      if (++state.errors >= config.abort_after_errors) {
        state.failed = true;
        state.finished_at = sched.now();
        co_return;
      }
    } else {
      ++state.ops;
    }

    if (config.think_time != 0) {
      // Jittered pacing: half-to-1.5x the nominal think time, so clients
      // do not march in lockstep (deterministic per seed regardless).
      co_await sched.delay(config.think_time / 2 + rng.below(config.think_time + 1));
    }
  }
  state.finished_at = sched.now();
}

}  // namespace

FleetResult run_fleet(FleetBed& bed, const FleetWorkloadConfig& config) {
  sim::Scheduler& sched = bed.scheduler();
  const std::size_t n = bed.client_count();
  const std::size_t shards = bed.shard_count();

  std::vector<FleetClientState> states(n);
  FleetShardTallies tallies(shards);
  FleetTimers timers;
  KeySampler sampler(config);
  sim::Event connected(sched);
  sim::Counter ready(sched);
  sim::Event start(sched);
  sim::Time start_time = 0;
  FleetRunFlags flags;

  std::vector<std::uint64_t> evictions_before(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    evictions_before[s] = bed.shard(s).store().stats().evictions;
  }

  sched.spawn([](FleetBed& fb, sim::Event& conn_ev, sim::Counter& ready_ctr,
                 sim::Event& start_ev, std::size_t clients, sim::Time& t0,
                 FleetRunFlags& fl) -> sim::Task<> {
    // rmclint:allow(coro-lifetime): all arguments live in run_fleet's frame,
    // which blocks in sched.run() until this starter and every client finish.
    auto st = co_await fb.connect_all();
    if (!st.ok()) {
      RMC_LOG_ERROR("fleet: connect failed: %s",
                    std::string(to_string(st.error())).c_str());
      fl.connect_failed = true;
    }
    conn_ev.set();
    co_await ready_ctr.wait_geq(clients);
    t0 = fb.scheduler().now();
    start_ev.set();
  }(bed, connected, ready, start, n, start_time, flags));

  for (std::size_t i = 0; i < n; ++i) {
    sched.spawn(fleet_client_task(bed, config, sampler, timers, i, connected, ready,
                                  start, flags, tallies, states[i]));
  }
  {
    obs::ProfScope prof{kProfFleet};
    sched.run();
  }

  FleetResult result;
  result.connect_failed = flags.connect_failed;
  result.shards.resize(shards);
  sim::Time last_finish = start_time;
  for (auto& state : states) {
    if (state.failed) ++result.failed_clients;
    result.get_latency.merge(state.get_latency);
    result.set_latency.merge(state.set_latency);
    result.mget_latency.merge(state.mget_latency);
    result.all_latency.merge(state.all_latency);
    result.gets += state.gets;
    result.sets += state.sets;
    result.mgets += state.mgets;
    result.dels += state.dels;
    result.hits += state.hits;
    result.misses += state.misses;
    result.errors += state.errors;
    result.value_mismatches += state.value_mismatches;
    result.total_ops += state.ops;
    last_finish = std::max(last_finish, state.finished_at);
  }
  result.elapsed = last_finish - start_time;
  if (result.failed_clients != 0) {
    RMC_LOG_WARN("fleet: %llu/%zu clients failed",
                 static_cast<unsigned long long>(result.failed_clients), states.size());
  }

  // Publish the run into the registry: aggregates, then the per-shard
  // dynamic family under the "mc.fleet.shard." prefix.
  obs::Registry& reg = obs::registry();
  reg.counter("mc.fleet.ops").inc(result.total_ops);
  reg.counter("mc.fleet.hits").inc(result.hits);
  reg.counter("mc.fleet.misses").inc(result.misses);
  reg.counter("mc.fleet.errors").inc(result.errors);
  reg.counter("mc.fleet.failed_clients").inc(result.failed_clients);
  reg.counter("mc.fleet.value_mismatches").inc(result.value_mismatches);
  reg.gauge("mc.fleet.hit_ratio_ppm")
      .set(static_cast<std::int64_t>(result.hit_ratio() * 1e6));
  for (std::size_t s = 0; s < shards; ++s) {
    FleetShardStats& sh = result.shards[s];
    sh.ops = tallies.ops[s];
    sh.hits = tallies.hits[s];
    sh.misses = tallies.misses[s];
    sh.evictions = bed.shard(s).store().stats().evictions - evictions_before[s];
    const std::string prefix = "mc.fleet.shard." + std::to_string(s);
    reg.counter(prefix + ".ops").inc(sh.ops);
    reg.counter(prefix + ".hits").inc(sh.hits);
    reg.counter(prefix + ".misses").inc(sh.misses);
    reg.counter(prefix + ".evictions").inc(sh.evictions);
  }
  return result;
}

}  // namespace rmc::core
