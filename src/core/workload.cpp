#include "core/workload.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"

namespace rmc::core {

std::string_view pattern_name(OpPattern pattern) {
  switch (pattern) {
    case OpPattern::pure_set: return "100% Set";
    case OpPattern::pure_get: return "100% Get";
    case OpPattern::non_interleaved: return "Set 10% / Get 90% (non-interleaved)";
    case OpPattern::interleaved: return "Set 50% / Get 50% (interleaved)";
  }
  return "?";
}

namespace {

const std::uint16_t kProfRun =
    obs::profiler().register_scope("prof.mc.workload.run", obs::ScopeKind::engine);

/// Is operation #i of the stream a Set?
bool is_set_op(OpPattern pattern, std::uint64_t i) {
  switch (pattern) {
    case OpPattern::pure_set: return true;
    case OpPattern::pure_get: return false;
    case OpPattern::non_interleaved: return i % 100 < 10;  // 10 Sets then 90 Gets
    case OpPattern::interleaved: return i % 2 == 0;        // 1 Set, 1 Get
  }
  return false;
}

struct ClientState {
  LatencyHistogram set_latency;
  LatencyHistogram get_latency;
  LatencyHistogram all_latency;
  sim::Time finished_at = 0;
  std::uint64_t ops = 0;
  bool ok = false;
};

sim::Task<> client_task(TestBed& bed, const WorkloadConfig& config, std::size_t index,
                        std::span<std::byte> value, sim::Event& connected,
                        sim::Counter& ready, sim::Event& start, ClientState& state) {
  mc::Client& client = bed.client(index);
  sim::Scheduler& sched = bed.scheduler();
  co_await connected.wait();

  // Populate this client's key set (untimed warm-up; also the warm path
  // for connection buffers and the server's slab classes).
  std::vector<std::string> keys;
  keys.reserve(config.keys_per_client);
  for (std::uint32_t k = 0; k < config.keys_per_client; ++k) {
    keys.push_back("c" + std::to_string(index) + ":k" + std::to_string(k));
  }
  for (const auto& key : keys) {
    auto st = co_await client.set(key, value);
    if (!st.ok()) {
      RMC_LOG_ERROR("workload: populate failed on %s: %s", key.c_str(),
                    std::string(to_string(st.error())).c_str());
      ready.add();
      co_return;
    }
  }

  // Synchronized start: all clients fire together (Fig. 6 semantics).
  ready.add();
  co_await start.wait();

  Rng rng(config.seed * 1000003 + index);
  for (std::uint64_t i = 0; i < config.ops_per_client; ++i) {
    const std::string& key = keys[rng.below(keys.size())];
    const sim::Time begin = sched.now();
    if (is_set_op(config.pattern, i)) {
      auto st = co_await client.set(key, value);
      if (!st.ok()) co_return;
      const sim::Time lat = sched.now() - begin;
      state.set_latency.record(lat);
      state.all_latency.record(lat);
    } else {
      auto got = co_await client.get(key);
      if (!got.ok()) co_return;
      const sim::Time lat = sched.now() - begin;
      state.get_latency.record(lat);
      state.all_latency.record(lat);
    }
    ++state.ops;
  }
  state.finished_at = sched.now();
  state.ok = true;
}

}  // namespace

WorkloadResult run_workload(TestBed& bed, const WorkloadConfig& config) {
  sim::Scheduler& sched = bed.scheduler();
  const std::size_t n = bed.client_count();

  // One value buffer per client, registered for zero-copy rendezvous.
  std::vector<std::vector<std::byte>> values(n);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < n; ++i) {
    values[i].resize(std::max<std::uint32_t>(1, config.value_size));
    for (auto& b : values[i]) b = static_cast<std::byte>(rng() & 0xff);
    bed.register_client_memory(i, values[i]);
  }

  std::vector<ClientState> states(n);
  sim::Event connected(sched);
  sim::Counter ready(sched);
  sim::Event start(sched);
  sim::Time start_time = 0;

  sched.spawn([](TestBed& tb, sim::Event& conn_ev, sim::Counter& ready_ctr, sim::Event& start_ev,
                 std::size_t clients, sim::Time& t0) -> sim::Task<> {
    auto st = co_await tb.connect_all();
    if (!st.ok()) {
      RMC_LOG_ERROR("workload: connect failed: %s",
                    std::string(to_string(st.error())).c_str());
      co_return;
    }
    conn_ev.set();
    co_await ready_ctr.wait_geq(clients);
    t0 = tb.scheduler().now();
    start_ev.set();
  }(bed, connected, ready, start, n, start_time));

  for (std::size_t i = 0; i < n; ++i) {
    sched.spawn(client_task(bed, config, i, values[i], connected, ready, start, states[i]));
  }
  {
    // Root of the drive loop: every dispatched event nests under it, so
    // the gap between this node's wall time and its children's is the
    // scheduler's own bookkeeping (heap ops, slot recycling).
    obs::ProfScope prof{kProfRun};
    sched.run();
  }

  WorkloadResult result;
  sim::Time last_finish = start_time;
  for (auto& state : states) {
    if (!state.ok) {
      RMC_LOG_WARN("workload: a client did not finish cleanly");
      continue;
    }
    result.set_latency.merge(state.set_latency);
    result.get_latency.merge(state.get_latency);
    result.all_latency.merge(state.all_latency);
    result.total_ops += state.ops;
    last_finish = std::max(last_finish, state.finished_at);
  }
  result.elapsed = last_finish - start_time;
  return result;
}

}  // namespace rmc::core
