#include "core/testbed.hpp"

#include <cassert>

#include "obs/profiler.hpp"

namespace rmc::core {

std::string_view transport_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::ucr_verbs: return "UCR-IB";
    case TransportKind::sdp: return "SDP";
    case TransportKind::ipoib: return "IPoIB";
    case TransportKind::toe_10ge: return "10GigE-TOE";
    case TransportKind::tcp_1ge: return "1GigE";
    case TransportKind::ucr_roce: return "UCR-RoCE";
    case TransportKind::ucr_iwarp: return "UCR-iWARP";
  }
  return "?";
}

std::string_view cluster_name(ClusterKind kind) {
  return kind == ClusterKind::cluster_a ? "Cluster A (DDR)" : "Cluster B (QDR)";
}

bool transport_available(ClusterKind cluster, TransportKind transport) {
  // Cluster B had no 10 GigE cards (§VI-B); 1 GigE appears on Cluster A
  // only (Figure 5 baselines).
  if (cluster == ClusterKind::cluster_b) {
    return transport == TransportKind::ucr_verbs || transport == TransportKind::sdp ||
           transport == TransportKind::ipoib;
  }
  return true;  // Cluster A has both fabrics, so RoCE (future work) runs there
}

namespace {

const std::uint16_t kProfSetup =
    obs::profiler().register_scope("prof.sim.testbed.setup", obs::ScopeKind::engine);

sim::LinkParams ib_link(ClusterKind cluster) {
  return cluster == ClusterKind::cluster_a ? sim::ib_ddr_link() : sim::ib_qdr_link();
}

unsigned host_cores(ClusterKind) {
  return 8;  // both testbeds: dual quad-core Xeons
}

/// Adapter-generation cost model: the DDR ConnectX on Cluster A sits on a
/// PCIe 1.1 bus and processes messages more slowly than the QDR/PCIe-Gen2
/// part on Cluster B.
verbs::VerbsCosts verbs_costs(ClusterKind cluster, TransportKind transport) {
  // doorbell_ns is the share of post_wr_ns a batched chain pays only once
  // (PCIe MMIO posted write — roughly a third of the post on every part
  // here); single posts still cost exactly post_wr_ns.
  // hca_inbound_write_ns splits the in-bound from the out-bound verb cost:
  // a write landing in exposed memory skips the receive WQE + CQE work, so
  // every profile places it below hca_process_ns. Packet kinds other than
  // rdma_write still pay the symmetric charge, which keeps the classic
  // figures (no in-bound writes on their wire) byte-identical.
  verbs::VerbsCosts costs;
  if (transport == TransportKind::ucr_roce) {
    costs.post_wr_ns = 350;
    costs.doorbell_ns = 100;
    costs.hca_process_ns = 550;  // first-generation RoCE engines
    costs.hca_inbound_write_ns = 380;
    return costs;
  }
  if (transport == TransportKind::ucr_iwarp) {
    costs.post_wr_ns = 400;
    costs.doorbell_ns = 120;
    costs.hca_process_ns = 900;  // TCP termination inside the RNIC
    costs.hca_inbound_write_ns = 640;
    return costs;
  }
  if (cluster == ClusterKind::cluster_a) {
    costs.post_wr_ns = 350;
    costs.doorbell_ns = 100;
    costs.hca_process_ns = 350;
    costs.hca_inbound_write_ns = 240;
  } else {
    costs.post_wr_ns = 250;
    costs.doorbell_ns = 80;
    costs.hca_process_ns = 250;
    costs.hca_inbound_write_ns = 170;
  }
  return costs;
}

/// §VI-B: the SDP implementation shipped with OFED at the time misbehaved
/// on QDR adapters — noisy, and slower than IPoIB in both the latency and
/// throughput experiments. Model that artifact for Cluster B.
sock::StackCosts degrade_sdp_on_qdr(sock::StackCosts costs) {
  costs.wakeup_ns = costs.wakeup_ns * 3 / 2;
  costs.copy_ns_per_byte *= 1.3;
  costs.jitter_ns = 20000;  // up to 20 us of receive-path noise per segment
  return costs;
}

}  // namespace

TestBed::TestBed(TestBedConfig config) : config_(config) {
  obs::ProfScope prof{kProfSetup};
  assert(transport_available(config.cluster, config.transport) &&
         "this transport did not exist on this cluster in the paper");
  sched_ = std::make_unique<sim::Scheduler>();

  // Pick the fabric the transport runs on.
  sim::LinkParams link{};
  sock::StackCosts stack_costs{};
  bool use_ucr = false;
  switch (config.transport) {
    case TransportKind::ucr_verbs:
      link = ib_link(config.cluster);
      use_ucr = true;
      break;
    case TransportKind::sdp:
      link = ib_link(config.cluster);
      stack_costs = sock::sdp_ib();
      if (config.cluster == ClusterKind::cluster_b) {
        stack_costs = degrade_sdp_on_qdr(stack_costs);
      }
      break;
    case TransportKind::ipoib:
      link = ib_link(config.cluster);
      stack_costs = sock::kernel_tcp_ipoib();
      break;
    case TransportKind::toe_10ge:
      link = sim::ten_gige_link();
      stack_costs = sock::toe_10ge();
      break;
    case TransportKind::tcp_1ge:
      link = sim::one_gige_link();
      stack_costs = sock::kernel_tcp_1ge();
      break;
    case TransportKind::ucr_roce:
      // The convergence §II-B describes: the verbs stack unchanged, the
      // fabric an Ethernet one. Early RoCE parts processed messages a bit
      // slower than native IB silicon, and the Ethernet encapsulation adds
      // per-message pipeline latency on top of the 10 GigE wire.
      link = sim::ten_gige_link();
      link.wire_latency = 5200;  // vs 4500 for the DDR HCA's PCIe pipeline
      use_ucr = true;
      break;
    case TransportKind::ucr_iwarp:
      // iWARP: the verbs programming model over TCP (§II-B, "very similar
      // to the verbs layer... with the exception of requiring a connection
      // manager"). The adapter terminates a full TCP stack, so per-message
      // engine time and pipeline latency sit above RoCE's.
      link = sim::ten_gige_link();
      link.wire_latency = 6500;
      use_ucr = true;
      break;
  }
  fabric_ = std::make_unique<sim::Fabric>(*sched_, link);

  const unsigned cores = host_cores(config.cluster);
  server_host_ = std::make_unique<sim::Host>(*sched_, 0, "server", cores);
  for (unsigned i = 0; i < config.num_clients; ++i) {
    client_hosts_.push_back(
        std::make_unique<sim::Host>(*sched_, i + 1, "client" + std::to_string(i), cores));
  }

  server_ = std::make_unique<mc::Server>(*sched_, *server_host_, config.server);

  if (use_ucr) {
    const verbs::VerbsCosts hca_costs = verbs_costs(config.cluster, config.transport);
    server_hca_ =
        std::make_unique<verbs::Hca>(*sched_, *fabric_, *server_host_, hca_costs);
    server_ucr_ = std::make_unique<ucr::Runtime>(*server_hca_, config.ucr);
    server_->attach_ucr_frontend(*server_ucr_);
    mc::ClientBehavior behavior = config.client;
    if (config.onesided) behavior.onesided_get = true;  // deprecated spelling
    switch (behavior.effective_mode()) {
      case mc::ClientBehavior::Mode::onesided_get:
        publisher_ = std::make_unique<onesided::Publisher>(
            *server_ucr_, *server_host_, server_->store(), config.onesided_cfg);
        break;
      case mc::ClientBehavior::Mode::rfp:
        ring_server_ = std::make_unique<rfp::RingServer>(
            *server_ucr_, *server_host_, server_->store(), config.rfp_cfg);
        break;
      case mc::ClientBehavior::Mode::rpc:
        break;
    }
    for (unsigned i = 0; i < config.num_clients; ++i) {
      client_hcas_.push_back(
          std::make_unique<verbs::Hca>(*sched_, *fabric_, *client_hosts_[i], hca_costs));
      client_ucrs_.push_back(std::make_unique<ucr::Runtime>(*client_hcas_[i], config.ucr));
      auto client = std::make_unique<mc::Client>(*sched_, *client_hosts_[i], behavior);
      client->add_server_ucr(*client_ucrs_[i], server_ucr_->addr(),
                             config.server.port);
      clients_.push_back(std::move(client));
    }
  } else {
    server_stack_ =
        std::make_unique<sock::NetStack>(*sched_, *fabric_, *server_host_, stack_costs);
    server_->attach_socket_frontend(*server_stack_);
    for (unsigned i = 0; i < config.num_clients; ++i) {
      client_stacks_.push_back(
          std::make_unique<sock::NetStack>(*sched_, *fabric_, *client_hosts_[i], stack_costs));
      auto client = std::make_unique<mc::Client>(*sched_, *client_hosts_[i], config.client);
      client->add_server_socket(*client_stacks_[i], server_stack_->addr(),
                                config.server.port);
      clients_.push_back(std::move(client));
    }
  }
}

TestBed::~TestBed() = default;

void TestBed::register_client_memory(std::size_t i, std::span<std::byte> memory) {
  if (i < client_ucrs_.size()) client_ucrs_[i]->register_region(memory);
}

sim::Task<Status> TestBed::connect_all() {
  for (auto& client : clients_) {
    auto st = co_await client->connect_all();
    if (!st.ok()) co_return st;
  }
  co_return Status{};
}

}  // namespace rmc::core
