#include "core/fleetbed.hpp"

#include <algorithm>
#include <string>

#include "obs/profiler.hpp"

namespace rmc::core {

namespace {

const std::uint16_t kProfSetup =
    obs::profiler().register_scope("prof.sim.fleetbed.setup", obs::ScopeKind::engine);

/// Same adapter-generation cost model as TestBed (testbed.cpp): the fleet
/// runs the paper's design (UCR over native IB verbs) on either cluster.
verbs::VerbsCosts fleet_verbs_costs(ClusterKind cluster) {
  verbs::VerbsCosts costs;
  if (cluster == ClusterKind::cluster_a) {
    costs.post_wr_ns = 350;
    costs.doorbell_ns = 100;
    costs.hca_process_ns = 350;
    costs.hca_inbound_write_ns = 240;
  } else {
    costs.post_wr_ns = 250;
    costs.doorbell_ns = 80;
    costs.hca_process_ns = 250;
    costs.hca_inbound_write_ns = 170;
  }
  return costs;
}

/// SRQ sizing for a runtime terminating `endpoints` peers whose senders
/// each hold `credits` eager credits: every credit is a receive buffer the
/// sender may legitimately consume, so anything less risks the
/// receiver_not_ready protocol failure. The slack absorbs connection
/// setup traffic, which runs outside the credit window.
std::uint32_t srq_for(std::size_t endpoints, std::uint32_t credits) {
  return static_cast<std::uint32_t>(endpoints) * credits + 64;
}

}  // namespace

FleetBed::FleetBed(FleetBedConfig config) : config_(config) {
  obs::ProfScope prof{kProfSetup};
  config_.shards = std::max(1u, config_.shards);
  config_.clients = std::max(1u, config_.clients);
  config_.generators = std::clamp(config_.generators, 1u, config_.clients);
  config_.credits_per_ep = std::max(2u, config_.credits_per_ep);

  sched_ = std::make_unique<sim::Scheduler>();
  fabric_ = std::make_unique<sim::Fabric>(
      *sched_, config_.cluster == ClusterKind::cluster_a ? sim::ib_ddr_link()
                                                         : sim::ib_qdr_link());
  const verbs::VerbsCosts hca_costs = fleet_verbs_costs(config_.cluster);

  // Per-endpoint credit window, shared by both directions (client request
  // sends and server reply sends use their local runtime's window). The
  // return threshold must sit below the window or explicit credit returns
  // never fire and a quiet connection can wedge.
  ucr::UcrConfig base;
  base.eager_limit = config_.eager_limit;
  base.credits_per_ep = config_.credits_per_ep;
  base.credit_return_threshold = std::max(1u, config_.credits_per_ep / 2);

  const std::size_t clients_per_gen =
      (config_.clients + config_.generators - 1) / config_.generators;

  // Shards: each runtime terminates one endpoint per client.
  ucr::UcrConfig shard_ucr = base;
  shard_ucr.recv_buffers = srq_for(config_.clients, base.credits_per_ep);
  for (unsigned s = 0; s < config_.shards; ++s) {
    shard_hosts_.push_back(
        std::make_unique<sim::Host>(*sched_, s, "mc" + std::to_string(s), 8));
    shard_hcas_.push_back(
        std::make_unique<verbs::Hca>(*sched_, *fabric_, *shard_hosts_.back(), hca_costs));
    shard_ucrs_.push_back(std::make_unique<ucr::Runtime>(*shard_hcas_.back(), shard_ucr));
    servers_.push_back(
        std::make_unique<mc::Server>(*sched_, *shard_hosts_.back(), config_.server));
    servers_.back()->attach_ucr_frontend(*shard_ucrs_.back());
    if (config_.client.effective_mode() == mc::ClientBehavior::Mode::rfp) {
      shard_rings_.push_back(std::make_unique<rfp::RingServer>(
          *shard_ucrs_.back(), *shard_hosts_.back(), servers_.back()->store(),
          config_.rfp_cfg));
    }
  }

  // Generators: each runtime terminates (its clients x shards) endpoints.
  ucr::UcrConfig gen_ucr = base;
  gen_ucr.recv_buffers = srq_for(clients_per_gen * config_.shards, base.credits_per_ep);
  for (unsigned g = 0; g < config_.generators; ++g) {
    gen_hosts_.push_back(std::make_unique<sim::Host>(*sched_, 10000 + g,
                                                     "gen" + std::to_string(g), 8));
    gen_hcas_.push_back(
        std::make_unique<verbs::Hca>(*sched_, *fabric_, *gen_hosts_.back(), hca_costs));
    gen_ucrs_.push_back(std::make_unique<ucr::Runtime>(*gen_hcas_.back(), gen_ucr));
  }

  // Clients: round-robin across generators, every client wired to every
  // shard. The per-connection landing arena is shrunk from the 8 MiB
  // single-connection default unless the caller already tuned it —
  // thousands of connections multiply it into real memory, and overflow
  // falls back gracefully anyway.
  mc::ClientBehavior behavior = config_.client;
  if (behavior.arena_bytes == mc::ClientBehavior{}.arena_bytes) {
    behavior.arena_bytes = 8 * 1024;
  }
  // Same reasoning for the RFP ring geometry: every connection's response
  // arena is slot_count x slot_size on the client AND a matching request
  // ring + staging on its shard, so untouched defaults shrink to fleet
  // scale (values there are <= ~1 KiB anyway).
  if (behavior.rfp.slot_count == rfp::ChannelConfig{}.slot_count) {
    behavior.rfp.slot_count = 4;
  }
  if (behavior.rfp.slot_size == rfp::ChannelConfig{}.slot_size) {
    behavior.rfp.slot_size = 1536;
  }
  for (unsigned c = 0; c < config_.clients; ++c) {
    const unsigned g = c % config_.generators;
    auto client = std::make_unique<mc::Client>(*sched_, *gen_hosts_[g], behavior);
    for (unsigned s = 0; s < config_.shards; ++s) {
      client->add_server_ucr(*gen_ucrs_[g], shard_ucrs_[s]->addr(), config_.server.port);
    }
    clients_.push_back(std::move(client));
  }
}

FleetBed::~FleetBed() = default;

sim::Task<Status> FleetBed::connect_all() {
  for (auto& client : clients_) {
    auto st = co_await client->connect_all();
    if (!st.ok()) co_return st;
  }
  co_return Status{};
}

}  // namespace rmc::core
