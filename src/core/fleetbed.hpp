// The fleet testbed: a sharded memcached pool at production-like scale.
//
// Where TestBed models the paper's experimental setup (one server, a
// handful of client hosts), FleetBed models the deployment the paper
// argues for: S memcached shards behind client-side key routing (§II-C),
// driven by thousands of client connections. Logical clients are packed
// onto a few generator hosts — each generator owns one HCA + UCR runtime
// shared by all its clients' connections, the way a real load generator
// multiplexes connections over one NIC.
//
// Flow control is derived, not guessed: with C clients against S shards,
// a shard's runtime terminates C endpoints and every sender may burn its
// full per-endpoint credit window, so each runtime's SRQ is sized to
// (endpoints x credits) plus slack. Getting this wrong is not a slow
// path — UCR treats an SRQ overrun as a protocol bug.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/testbed.hpp"

namespace rmc::core {

struct FleetBedConfig {
  unsigned shards = 8;     ///< memcached servers (one host + HCA + runtime each)
  unsigned clients = 128;  ///< logical clients; connections = clients x shards
  unsigned generators = 8; ///< load-generator hosts the clients are packed onto
  ClusterKind cluster = ClusterKind::cluster_b;
  mc::ServerConfig server{};  ///< per-shard; shrink store.slabs.memory_limit
                              ///< below the working set for eviction storms
  mc::ClientBehavior client{};
  /// Per-shard ring-server knobs when `client.mode` is Mode::rfp. The
  /// client-side ring geometry (client.rfp) is shrunk at defaults the same
  /// way arena_bytes is: thousands of connections multiply every slot.
  rfp::RingServerConfig rfp_cfg{};
  /// Eager/credit tuning. Small values on purpose: fleet values are small
  /// (≤ ~1 KiB) and per-endpoint credit windows multiply across thousands
  /// of endpoints into SRQ arena bytes.
  std::uint32_t eager_limit = 1024;
  std::uint32_t credits_per_ep = 4;
};

class FleetBed {
 public:
  explicit FleetBed(FleetBedConfig config);
  FleetBed(const FleetBed&) = delete;
  FleetBed& operator=(const FleetBed&) = delete;
  ~FleetBed();

  sim::Scheduler& scheduler() { return *sched_; }
  sim::Fabric& fabric() { return *fabric_; }
  const FleetBedConfig& config() const { return config_; }

  std::size_t shard_count() const { return servers_.size(); }
  mc::Server& shard(std::size_t i) { return *servers_.at(i); }
  /// The UCR transport mode every client connection runs in.
  mc::ClientBehavior::Mode client_mode() const { return config_.client.effective_mode(); }

  std::size_t client_count() const { return clients_.size(); }
  mc::Client& client(std::size_t i) { return *clients_.at(i); }

  /// Total UCR connections: every client connects to every shard.
  std::size_t connection_count() const { return clients_.size() * servers_.size(); }

  /// Establish every client's connections; run inside the scheduler.
  sim::Task<Status> connect_all();

 private:
  FleetBedConfig config_;
  std::unique_ptr<sim::Scheduler> sched_;
  std::unique_ptr<sim::Fabric> fabric_;

  // One host + HCA + runtime per shard.
  std::vector<std::unique_ptr<sim::Host>> shard_hosts_;
  std::vector<std::unique_ptr<verbs::Hca>> shard_hcas_;
  std::vector<std::unique_ptr<ucr::Runtime>> shard_ucrs_;
  std::vector<std::unique_ptr<mc::Server>> servers_;
  std::vector<std::unique_ptr<rfp::RingServer>> shard_rings_;  ///< mode rfp

  // One host + HCA + runtime per generator, shared by its clients.
  std::vector<std::unique_ptr<sim::Host>> gen_hosts_;
  std::vector<std::unique_ptr<verbs::Hca>> gen_hcas_;
  std::vector<std::unique_ptr<ucr::Runtime>> gen_ucrs_;

  std::vector<std::unique_ptr<mc::Client>> clients_;
};

}  // namespace rmc::core
