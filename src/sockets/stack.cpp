#include "sockets/stack.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace rmc::sock {

namespace {
/// Receive-side buffer occupancy across every socket in the process.
obs::Gauge& rx_buffered_gauge() {
  static obs::Gauge& g = obs::registry().gauge("sock.rx.buffered_bytes");
  return g;
}

const std::uint16_t kProfTxStream =
    obs::profiler().register_scope("prof.sock.tx.stream", obs::ScopeKind::engine);
const std::uint16_t kProfRxDeliver =
    obs::profiler().register_scope("prof.sock.rx.deliver", obs::ScopeKind::engine);
}  // namespace

// ---------------------------------------------------------------- Socket

Socket::Socket(NetStack& stack, std::uint32_t id)
    : stack_(&stack), id_(id), rx_signal_(stack.scheduler()) {}

sim::Task<Result<std::size_t>> Socket::send(std::span<const std::byte> data) {
  if (state_ != SockState::established) co_return Errc::disconnected;
  const StackCosts& costs = stack_->costs();
  // Syscall entry plus the user->kernel (or user->private buffer) copy.
  const auto copy_cost =
      static_cast<sim::Time>(static_cast<double>(data.size()) * costs.copy_ns_per_byte);
  co_await stack_->host().cpu().consume(costs.syscall_ns + copy_cost);
  if (state_ != SockState::established) co_return Errc::disconnected;
  stack_->transmit_stream(*this, data);
  co_return data.size();
}

sim::Task<Result<std::size_t>> Socket::recv(std::span<std::byte> data) {
  if (data.empty()) co_return std::size_t{0};
  const StackCosts& costs = stack_->costs();
  bool waited = false;
  while (rx_bytes_ == 0) {
    if (state_ == SockState::closed) co_return Errc::disconnected;
    if (peer_closed_) co_return std::size_t{0};  // EOF
    const std::uint64_t target = rx_signal_.value() + 1;
    co_await rx_signal_.wait_geq(target);
    waited = true;
  }
  if (waited) {
    // The reader was blocked: pay the interrupt + context-switch wake-up.
    co_await stack_->host().cpu().consume(costs.wakeup_ns);
  }

  const std::size_t n = std::min(data.size(), rx_bytes_);
  const auto copy_cost =
      static_cast<sim::Time>(static_cast<double>(n) * costs.copy_ns_per_byte);
  co_await stack_->host().cpu().consume(costs.syscall_ns + copy_cost);

  std::size_t copied = 0;
  while (copied < n) {
    auto& chunk = rx_chunks_.front();
    const std::size_t avail = chunk.size() - rx_head_offset_;
    const std::size_t take = std::min(avail, n - copied);
    std::memcpy(data.data() + copied, chunk.data() + rx_head_offset_, take);
    copied += take;
    rx_head_offset_ += take;
    if (rx_head_offset_ == chunk.size()) {
      rx_chunks_.pop_front();
      rx_head_offset_ = 0;
    }
  }
  rx_bytes_ -= n;
  rx_buffered_gauge().sub(static_cast<std::int64_t>(n));
  co_return n;
}

sim::Task<Status> Socket::recv_exact(std::span<std::byte> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    auto r = co_await recv(data.subspan(got));
    if (!r.ok()) co_return r.error();
    if (*r == 0) co_return got == 0 ? Errc::disconnected : Errc::protocol_error;
    got += *r;
  }
  co_return Status{};
}

void Socket::close() {
  if (state_ == SockState::established) {
    stack_->transmit_control(peer_nic_, wire::Kind::fin, 0, id_, peer_sock_);
  }
  state_ = SockState::closed;
  rx_signal_.add();  // wake any blocked reader so it sees the closed state
}

void Socket::deliver(sim::PooledBytes chunk) {
  obs::ProfScope prof{kProfRxDeliver};
  rx_bytes_ += chunk.size();
  rx_buffered_gauge().add(static_cast<std::int64_t>(chunk.size()));
  rx_chunks_.push_back(std::move(chunk));
  rx_signal_.add();
}

void Socket::deliver_eof() {
  peer_closed_ = true;
  rx_signal_.add();
}

// --------------------------------------------------------------- NetStack

NetStack::NetStack(sim::Scheduler& sched, sim::Fabric& fabric, sim::Host& host,
                   StackCosts costs)
    : sched_(&sched), fabric_(&fabric), host_(&host), costs_(costs) {
  nic_ = &fabric.add_nic(host);
  sched.spawn(dispatch());
}

Socket& NetStack::make_socket() {
  const std::uint32_t id = next_sock_id_++;
  auto sock = std::make_unique<Socket>(*this, id);
  Socket& ref = *sock;
  sockets_.emplace(id, std::move(sock));
  return ref;
}

Listener& NetStack::listen(std::uint16_t port) {
  auto [it, inserted] = listeners_.emplace(port, std::make_unique<Listener>(*sched_));
  assert(inserted && "port already listening");
  return *it->second;
}

void NetStack::stop_listen(std::uint16_t port) {
  auto it = listeners_.find(port);
  if (it == listeners_.end()) return;
  it->second->pending_.close();
  listeners_.erase(it);
}

sim::Task<Result<Socket*>> NetStack::connect(sim::NicAddr dst, std::uint16_t port,
                                             sim::Time timeout) {
  Socket& sock = make_socket();
  sock.peer_nic_ = dst;

  auto pending = std::make_shared<PendingConnect>();
  pending->resolved = std::make_unique<sim::Counter>(*sched_);
  pending_connects_.emplace(sock.id(), pending);

  co_await host_->cpu().consume(costs_.syscall_ns);
  transmit_control(dst, wire::Kind::syn, port, sock.id(), 0);

  const bool ok = co_await pending->resolved->wait_geq(1, timeout);
  pending_connects_.erase(sock.id());
  if (!ok) {
    pending->done = true;
    sockets_.erase(sock.id());
    co_return Errc::timed_out;
  }
  if (pending->err != Errc::ok) {
    sockets_.erase(sock.id());
    co_return pending->err;
  }
  co_return &sock;
}

void NetStack::transmit_stream(Socket& socket, std::span<const std::byte> data) {
  obs::ProfScope prof{kProfTxStream};
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len = std::min<std::size_t>(costs_.mss, data.size() - offset);
    auto seg = std::make_unique<wire::Segment>();
    seg->kind = wire::Kind::data;
    seg->src = nic_->addr();
    seg->dst = socket.peer_nic_;
    seg->src_sock = socket.id();
    seg->dst_sock = socket.peer_sock_;
    seg->payload.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                        data.begin() + static_cast<std::ptrdiff_t>(offset + len));
    seg->wire_bytes = len;
    offset += len;
    ++segments_sent_;
    obs::registry().counter("sock.segments.sent").inc();
    obs::registry().counter("sock.bytes.sent").inc(len);

    // Per-segment processing: host kernel CPU, or the TOE's tx engine.
    sim::Time ready;
    if (costs_.offload_segmentation) {
      tx_engine_free_ = std::max(tx_engine_free_, sched_->now()) + costs_.offload_tx_engine_ns;
      ready = tx_engine_free_;
    } else {
      ready = host_->cpu().reserve(costs_.per_segment_tx_ns);
    }
    // Keep stream order even if CPU cores complete out of order.
    tx_engine_free_ = std::max(tx_engine_free_, ready);
    sched_->call_at(tx_engine_free_, [fabric = fabric_, s = std::move(seg)]() mutable {
      fabric->transmit(std::move(s));
    });
  }
}

void NetStack::transmit_control(sim::NicAddr dst, wire::Kind kind, std::uint16_t port,
                                std::uint32_t src_sock, std::uint32_t dst_sock) {
  auto seg = std::make_unique<wire::Segment>();
  seg->kind = kind;
  seg->src = nic_->addr();
  seg->dst = dst;
  seg->port = port;
  seg->src_sock = src_sock;
  seg->dst_sock = dst_sock;
  seg->wire_bytes = 60;
  // Control segments keep FIFO with data already queued.
  tx_engine_free_ = std::max(tx_engine_free_, sched_->now());
  sched_->call_at(tx_engine_free_, [fabric = fabric_, s = std::move(seg)]() mutable {
    fabric->transmit(std::move(s));
  });
}

sim::Task<> NetStack::dispatch() {
  while (true) {
    auto packet = co_await nic_->inbox.recv();
    if (!packet) co_return;
    auto seg = std::unique_ptr<wire::Segment>(static_cast<wire::Segment*>(packet->release()));
    ++segments_received_;
    obs::registry().counter("sock.segments.received").inc();
    if (seg->kind == wire::Kind::data) {
      obs::registry().counter("sock.bytes.received").inc(seg->payload.size());
      co_await handle_data(std::move(seg));
    } else {
      handle_control(*seg);
    }
  }
}

sim::Task<> NetStack::handle_data(std::unique_ptr<wire::Segment> seg) {
  // Kernel receive path: per-segment softirq processing, serialized.
  co_await host_->cpu().consume(costs_.per_segment_rx_ns);
  auto it = sockets_.find(seg->dst_sock);
  if (it == sockets_.end() || it->second->state() != SockState::established) {
    obs::registry().counter("sock.segments.stray_drops").inc();
    co_return;  // stray segment after close: dropped (a real stack RSTs)
  }
  Socket& sock = *it->second;
  if (costs_.jitter_ns) {
    // Implementation noise (e.g. SDP on QDR, §VI-B): a random extra delay
    // before delivery. Pure latency — it does not occupy the CPU — and
    // monotonic per socket so the stream never reorders.
    const sim::Time target =
        std::max(sched_->now() + jitter_rng_.below(costs_.jitter_ns + 1),
                 sock.jitter_release_);
    sock.jitter_release_ = target;
    // rmclint:allow(coro-lifetime): `sock` is pool-owned by this stack — close()
    // only marks state, storage persists — and the closure checks state on fire.
    sched_->call_at(target, [&sock, payload = std::move(seg->payload)]() mutable {
      if (sock.state() == SockState::established) sock.deliver(std::move(payload));
    });
    co_return;
  }
  sock.deliver(std::move(seg->payload));
}

void NetStack::handle_control(wire::Segment& seg) {
  switch (seg.kind) {
    case wire::Kind::syn: {
      auto it = listeners_.find(seg.port);
      if (it == listeners_.end()) {
        transmit_control(seg.src, wire::Kind::rst, 0, 0, seg.src_sock);
        return;
      }
      Socket& server = make_socket();
      server.peer_nic_ = seg.src;
      server.peer_sock_ = seg.src_sock;
      server.state_ = SockState::established;
      obs::registry().counter("sock.conn.established").inc();
      if (obs::tracer().enabled()) {
        obs::tracer().instant(sched_->now(), "sock:" + host_->name(), "accept", "sock");
      }
      transmit_control(seg.src, wire::Kind::syn_ack, 0, server.id(), seg.src_sock);
      it->second->pending_.send(&server);
      return;
    }
    case wire::Kind::syn_ack: {
      auto sock_it = sockets_.find(seg.dst_sock);
      auto pend_it = pending_connects_.find(seg.dst_sock);
      if (sock_it == sockets_.end() || pend_it == pending_connects_.end()) return;
      if (pend_it->second->done) return;
      Socket& sock = *sock_it->second;
      sock.peer_sock_ = seg.src_sock;
      sock.state_ = SockState::established;
      pend_it->second->done = true;
      pend_it->second->resolved->add();
      return;
    }
    case wire::Kind::rst: {
      auto pend_it = pending_connects_.find(seg.dst_sock);
      if (pend_it == pending_connects_.end() || pend_it->second->done) return;
      pend_it->second->done = true;
      pend_it->second->err = Errc::refused;
      pend_it->second->resolved->add();
      return;
    }
    case wire::Kind::fin: {
      auto it = sockets_.find(seg.dst_sock);
      if (it == sockets_.end()) return;
      it->second->deliver_eof();
      return;
    }
    case wire::Kind::data:
      break;  // handled elsewhere
  }
}

}  // namespace rmc::sock
