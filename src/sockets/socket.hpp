// Byte-stream socket over the simulated fabric.
//
// The semantics the paper contrasts with RDMA (§I): data is a stream, so
// the memcached protocol layer must frame and parse it; every send/recv is
// a syscall with a user<->kernel copy; the receive path wakes through an
// interrupt. Blocking semantics with TCP_NODELAY behaviour (segments go
// out immediately; we do not model Nagle because the paper's client sets
// MEMCACHED_BEHAVIOR_TCP_NODELAY).
#pragma once

#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "common/ring_deque.hpp"
#include "simnet/event.hpp"
#include "simnet/pool.hpp"
#include "simnet/task.hpp"
#include "sockets/costs.hpp"

namespace rmc::sock {

class NetStack;

enum class SockState : std::uint8_t { connecting, established, closed };

class Socket {
 public:
  Socket(NetStack& stack, std::uint32_t id);
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  std::uint32_t id() const { return id_; }
  SockState state() const { return state_; }
  bool peer_closed() const { return peer_closed_; }
  /// Bytes buffered and not yet read.
  std::size_t rx_available() const { return rx_bytes_; }

  /// Send the whole buffer (blocking semantics). Resolves to the byte
  /// count once the data is handed to the stack, or disconnected.
  sim::Task<Result<std::size_t>> send(std::span<const std::byte> data);

  /// Receive up to data.size() bytes; resolves with at least 1 byte, or 0
  /// on orderly peer shutdown (EOF), or disconnected after close().
  sim::Task<Result<std::size_t>> recv(std::span<std::byte> data);

  /// Receive exactly data.size() bytes (loops recv); EOF mid-way is a
  /// protocol_error, immediate EOF is disconnected.
  sim::Task<Status> recv_exact(std::span<std::byte> data);

  /// Orderly shutdown: flushes a FIN; further sends fail.
  void close();

 private:
  friend class NetStack;

  /// Stack side: buffered payload arrival (storage returns to the pool
  /// once the reader drains the chunk).
  void deliver(sim::PooledBytes chunk);
  /// Stack side: peer sent FIN.
  void deliver_eof();

  NetStack* stack_;
  std::uint32_t id_;
  std::uint32_t peer_nic_ = 0;
  std::uint32_t peer_sock_ = 0;
  SockState state_ = SockState::connecting;
  bool peer_closed_ = false;

  RingDeque<sim::PooledBytes> rx_chunks_;
  std::size_t rx_head_offset_ = 0;  ///< consumed bytes of rx_chunks_.front()
  std::size_t rx_bytes_ = 0;
  sim::Counter rx_signal_;  ///< bumped on every delivery and on EOF
  sim::Time jitter_release_ = 0;  ///< per-socket jittered-delivery clock
};

}  // namespace rmc::sock
