// Cost models of the four byte-stream stacks in the paper's evaluation.
//
// The same Socket/NetStack code runs over all of them; what differs is
// where the cycles go. The parameters encode the per-stack behaviours of
// §II: kernel TCP pays syscalls, user<->kernel copies, per-segment
// processing and interrupt wake-ups; a TOE offloads segmentation to the
// adapter; SDP bypasses the kernel TCP machinery but (in the buffered-copy
// mode the paper runs, zero-copy off per §VI-A) still copies through
// private buffers on both sides.
//
// The numbers are calibrated so memcached-level results match the paper's
// shapes (see EXPERIMENTS.md); they are in the range of 2010-era
// measurements for these stacks.
#pragma once

#include <cstdint>

#include "simnet/time.hpp"

namespace rmc::sock {

struct StackCosts {
  /// Per send()/recv() call: trap + socket layer entry.
  sim::Time syscall_ns = 1500;
  /// User<->kernel (or user<->private-buffer) copy, charged on each side.
  double copy_ns_per_byte = 0.30;
  /// Kernel CPU per outgoing segment (0 when segmentation is offloaded).
  sim::Time per_segment_tx_ns = 2000;
  /// Kernel/driver CPU per incoming segment (softirq half).
  sim::Time per_segment_rx_ns = 2500;
  /// Adapter engine time per segment when segmentation is offloaded.
  sim::Time offload_tx_engine_ns = 0;
  /// Waking a blocked reader: interrupt + scheduler + context switch.
  sim::Time wakeup_ns = 6000;
  /// Maximum bytes per wire segment.
  std::uint32_t mss = 1448;
  /// True for TOE: tx segmentation runs on the NIC, not the host CPU.
  bool offload_segmentation = false;
  /// Uniform extra receive-path delay in [0, jitter_ns], drawn per segment
  /// from a deterministic per-stack RNG. Models implementation noise (the
  /// paper observed heavy jitter for SDP on QDR adapters, §VI-B).
  sim::Time jitter_ns = 0;
};

/// Plain kernel TCP on 1 Gigabit Ethernet.
inline StackCosts kernel_tcp_1ge() {
  return StackCosts{.syscall_ns = 2200,
                    .copy_ns_per_byte = 0.40,
                    .per_segment_tx_ns = 2800,
                    .per_segment_rx_ns = 3600,
                    .offload_tx_engine_ns = 0,
                    .wakeup_ns = 12000,
                    .mss = 1448,
                    .offload_segmentation = false};
}

/// Kernel TCP over IPoIB connected mode (§II-A2): same kernel path as
/// Ethernet TCP, bigger MTU (IPoIB-CM allows 65520), but heavier per-byte
/// cost — the IPoIB driver adds another copy/translation layer.
inline StackCosts kernel_tcp_ipoib() {
  return StackCosts{.syscall_ns = 2400,
                    .copy_ns_per_byte = 1.05,
                    .per_segment_tx_ns = 7000,
                    .per_segment_rx_ns = 8000,
                    .offload_tx_engine_ns = 0,
                    .wakeup_ns = 17000,
                    .mss = 16384,
                    .offload_segmentation = false};
}

/// Sockets Direct Protocol in buffered-copy mode (§II-A3, zero-copy off
/// per §VI-A): OS-bypass for the transport, but data still staged through
/// 8 KB private buffers with a copy on each side, and completions are
/// event-driven.
inline StackCosts sdp_ib() {
  return StackCosts{.syscall_ns = 2000,
                    .copy_ns_per_byte = 0.90,
                    .per_segment_tx_ns = 4000,
                    .per_segment_rx_ns = 4500,
                    .offload_tx_engine_ns = 0,
                    .wakeup_ns = 20000,
                    .mss = 8192,
                    .offload_segmentation = false};
}

/// Chelsio T320 TCP Offload Engine on 10 GigE (§II-B): full socket
/// semantics, segmentation and TCP processing in hardware; the host still
/// pays syscalls, one copy each way, and interrupt wake-ups.
inline StackCosts toe_10ge() {
  return StackCosts{.syscall_ns = 2200,
                    .copy_ns_per_byte = 1.00,
                    .per_segment_tx_ns = 0,
                    .per_segment_rx_ns = 5200,
                    .offload_tx_engine_ns = 600,
                    .wakeup_ns = 19500,
                    .mss = 1448,
                    .offload_segmentation = true};
}

}  // namespace rmc::sock
