// Wire format of the byte-stream stacks (internal).
//
// One Segment == one wire packet on the Ethernet or IB fabric. Connection
// demultiplexing uses per-stack socket ids exchanged during the handshake
// (a simplified port/sequence machinery — reliability and ordering come
// from the fabric model, which preserves per-path FIFO like a single
// switched L2 does).
#pragma once

#include <cstdint>

#include "simnet/fabric.hpp"
#include "simnet/pool.hpp"

namespace rmc::sock::wire {

enum class Kind : std::uint8_t {
  syn,      ///< connect request: carries listen port + client socket id
  syn_ack,  ///< accept: carries server socket id
  rst,      ///< connection refused
  data,     ///< payload segment
  fin,      ///< orderly shutdown
};

struct Segment final : sim::Packet {
  Kind kind = Kind::data;
  std::uint16_t port = 0;        ///< syn: destination listen port
  std::uint32_t src_sock = 0;    ///< sender's socket id
  std::uint32_t dst_sock = 0;    ///< receiver's socket id (0 during syn)
  sim::PooledBytes payload;      ///< recycled with the segment itself

  // Segments churn once per MSS on the streaming path; recycle their
  // storage through the shared size-class pool.
  static void* operator new(std::size_t n) {
    return sim::pooled_alloc(n, sim::PoolTag::kPacket);
  }
  static void operator delete(void* p, std::size_t n) {
    sim::pooled_free(p, n, sim::PoolTag::kPacket);
  }
};

}  // namespace rmc::sock::wire
