// NetStack: one protocol stack instance per (host, fabric) pair.
//
// Owns the NIC, the socket table, listeners, and the receive dispatch
// loop (the "kernel" of this host for the given stack). The same class
// models plain TCP, IPoIB, SDP and TOE — only the StackCosts and the
// underlying Fabric differ (see costs.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "simnet/channel.hpp"
#include "simnet/fabric.hpp"
#include "simnet/scheduler.hpp"
#include "simnet/task.hpp"
#include "sockets/costs.hpp"
#include "sockets/segment.hpp"
#include "sockets/socket.hpp"

namespace rmc::sock {

class Listener {
 public:
  explicit Listener(sim::Scheduler& sched) : pending_(sched) {}

  /// Await the next established inbound connection.
  sim::Task<Socket*> accept() {
    auto s = co_await pending_.recv();
    co_return s.value_or(nullptr);
  }

  std::size_t backlog() const { return pending_.size(); }

 private:
  friend class NetStack;
  sim::Channel<Socket*> pending_;
};

class NetStack {
 public:
  NetStack(sim::Scheduler& sched, sim::Fabric& fabric, sim::Host& host, StackCosts costs);
  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  sim::NicAddr addr() const { return nic_->addr(); }
  sim::Host& host() { return *host_; }
  sim::Scheduler& scheduler() { return *sched_; }
  const StackCosts& costs() const { return costs_; }

  /// Open a listening port. The Listener lives until stop_listen.
  Listener& listen(std::uint16_t port);
  void stop_listen(std::uint16_t port);

  /// Active connect: resolves to an established socket, or refused /
  /// timed_out (no listener answers arrive when the peer host is down).
  sim::Task<Result<Socket*>> connect(sim::NicAddr dst, std::uint16_t port,
                                     sim::Time timeout = 1 * kNsPerSec);

  /// Stats for tests/benches.
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint64_t segments_received() const { return segments_received_; }

 private:
  friend class Socket;

  /// Socket tx path: segmentation + injection (called from Socket::send
  /// after the syscall/copy costs were charged).
  void transmit_stream(Socket& socket, std::span<const std::byte> data);
  void transmit_control(sim::NicAddr dst, wire::Kind kind, std::uint16_t port,
                        std::uint32_t src_sock, std::uint32_t dst_sock);

  sim::Task<> dispatch();
  sim::Task<> handle_data(std::unique_ptr<wire::Segment> seg);
  void handle_control(wire::Segment& seg);

  Socket& make_socket();

  struct PendingConnect {
    bool done = false;
    Errc err = Errc::ok;
    std::unique_ptr<sim::Counter> resolved;
  };

  sim::Scheduler* sched_;
  sim::Fabric* fabric_;
  sim::Host* host_;
  sim::Nic* nic_;
  StackCosts costs_;

  std::unordered_map<std::uint32_t, std::unique_ptr<Socket>> sockets_;
  std::unordered_map<std::uint16_t, std::unique_ptr<Listener>> listeners_;
  std::unordered_map<std::uint32_t, std::shared_ptr<PendingConnect>> pending_connects_;
  std::uint32_t next_sock_id_ = 1;

  /// TOE tx engine occupancy (segmentation offload).
  sim::Time tx_engine_free_ = 0;

  /// Deterministic noise source for StackCosts::jitter_ns.
  Rng jitter_rng_{0x7e57ed};

  std::uint64_t segments_sent_ = 0;
  std::uint64_t segments_received_ = 0;
};

}  // namespace rmc::sock
