// RFP server-bypass RPC wire layout (DESIGN.md §16).
//
// RFP (remote fetch paradigm) inverts the active-message RPC: the client
// RDMA-writes a framed request into a server-polled per-client ring, the
// server executes it and RDMA-writes a framed response into the client's
// response arena, and the client polls *locally*. Neither direction posts
// a SEND or consumes a receive buffer, so the server's CQ wake-up — AM
// dispatch, worker hand-off, reply post — leaves the critical path for
// every command, not just GET (Su et al., PAPERS.md).
//
// Both directions use the same self-verifying frame, modeled on the
// seqlock discipline of src/onesided/layout.hpp:
//
//   FrameHeader { seq, body_len, checksum } | body | u32 seq_back
//
// A slot is consumed only when seq == the consumer's expected epoch for
// that slot, seq_back matches, and the checksum over (seq, body_len,
// body) verifies. A frame that fails any check while carrying the
// expected seq is *torn* — an RDMA write still landing — and is simply
// polled again; a frame with any other seq is stale and invisible. Slot
// epochs advance in lockstep on both sides (request use N and its
// response both carry seq N), so no clearing writes are ever needed:
// reuse makes old frames unreadable by construction.
//
// Request bodies reuse the ucr_proto.hpp op formats verbatim:
//   ucrp::RequestHeader | key bytes | inline value bytes (storage ops)
// and for Op::mget the packed key block follows the header in place of
// key+value. Response bodies are ucrp::ResponseHeader | value bytes, or
// for mget ucrp::ResponseHeader | MgetChunkHeader + records + values,
// repeated chunk by chunk back to back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "onesided/layout.hpp"

namespace rmc::rfp {

/// Bootstrap + wake AM ids (the only active messages RFP ever sends).
inline constexpr std::uint16_t kMsgRfpBootstrap = 0x6d20;
inline constexpr std::uint16_t kMsgRfpBootstrapResp = 0x6d21;
/// One-way nudge re-arming a parked server poll loop (no reply).
inline constexpr std::uint16_t kMsgRfpWake = 0x6d22;

using onesided::Fnv1a64;
using onesided::RemoteWindow;

/// Framing of one ring slot (either direction).
struct FrameHeader {
  std::uint32_t seq = 0;       ///< slot epoch; consumed when == expected
  std::uint32_t body_len = 0;  ///< bytes of body following the header
  std::uint64_t checksum = 0;  ///< FNV-1a over (seq, body_len, body)

  static constexpr std::size_t kSize = 4 + 4 + 8;
  /// Trailing u32 seq copy closing the seqlock pair.
  static constexpr std::size_t kTailSize = sizeof(std::uint32_t);

  static std::uint64_t expected_checksum(std::uint32_t seq, std::uint32_t body_len,
                                         std::span<const std::byte> body) {
    Fnv1a64 h;
    h.mix_value(seq);
    h.mix_value(body_len);
    h.mix(body);
    return h.value();
  }
};
static_assert(sizeof(FrameHeader) == FrameHeader::kSize);

/// Largest body a slot of `slot_size` bytes can frame.
inline constexpr std::uint32_t body_capacity(std::uint32_t slot_size) {
  constexpr auto overhead =
      static_cast<std::uint32_t>(FrameHeader::kSize + FrameHeader::kTailSize);
  return slot_size > overhead ? slot_size - overhead : 0;
}

/// Body span of a slot buffer (where the producer writes the payload).
inline std::span<std::byte> frame_body(std::span<std::byte> slot) {
  return slot.subspan(FrameHeader::kSize,
                      slot.size() - FrameHeader::kSize - FrameHeader::kTailSize);
}

/// Seal a frame in place: the body was already written at frame_body();
/// stamp header + checksum + tail so the whole slot is one coherent write.
inline void seal_frame(std::span<std::byte> slot, std::uint32_t seq,
                       std::uint32_t body_len) {
  FrameHeader hdr;
  hdr.seq = seq;
  hdr.body_len = body_len;
  hdr.checksum = FrameHeader::expected_checksum(
      seq, body_len, std::span<const std::byte>(frame_body(slot)).first(body_len));
  std::memcpy(slot.data(), &hdr, sizeof(hdr));
  std::memcpy(slot.data() + FrameHeader::kSize + body_len, &seq, sizeof(seq));
}

/// Bytes of a sealed frame carrying `body_len` body bytes (the span to
/// actually RDMA-write: tail included, slack excluded).
inline constexpr std::size_t framed_size(std::uint32_t body_len) {
  return FrameHeader::kSize + body_len + FrameHeader::kTailSize;
}

enum class FrameState : std::uint8_t {
  empty,  ///< stale or future epoch: nothing for this consumer (yet)
  torn,   ///< expected epoch but inconsistent: a write still landing
  ready,  ///< verified frame; body() below is trustworthy
};

/// Inspect a slot for the consumer expecting epoch `seq`. On ready, `body`
/// aliases the verified payload inside the slot.
inline FrameState read_frame(std::span<const std::byte> slot, std::uint32_t seq,
                             std::span<const std::byte>& body) {
  FrameHeader hdr;
  std::memcpy(&hdr, slot.data(), sizeof(hdr));
  if (hdr.seq != seq) return FrameState::empty;
  if (hdr.body_len > body_capacity(static_cast<std::uint32_t>(slot.size()))) {
    return FrameState::torn;
  }
  std::uint32_t back = 0;
  std::memcpy(&back, slot.data() + FrameHeader::kSize + hdr.body_len, sizeof(back));
  if (back != hdr.seq) return FrameState::torn;
  const auto candidate = slot.subspan(FrameHeader::kSize, hdr.body_len);
  if (hdr.checksum != FrameHeader::expected_checksum(hdr.seq, hdr.body_len, candidate)) {
    return FrameState::torn;
  }
  body = candidate;
  return FrameState::ready;
}

/// Bootstrap request: the client proposes a ring geometry and ships the
/// window of its response arena (slot i of the request ring answers into
/// slot i of the response arena — same epoch, same index).
struct BootstrapRequest {
  std::uint64_t cookie = 0;
  std::uint64_t reply_counter = 0;  ///< CounterRef at the client
  RemoteWindow response_ring;       ///< client's exposed response arena
  std::uint32_t slot_count = 0;
  std::uint32_t slot_size = 0;

  static constexpr std::size_t kSize = 8 + 8 + (8 + 4 + 4) + 4 + 4;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(cookie);
    put(reply_counter);
    put(response_ring.addr);
    put(response_ring.rkey);
    put(response_ring.length);
    put(slot_count);
    put(slot_size);
  }
  static BootstrapRequest decode(const std::byte* in) {
    BootstrapRequest r;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(r.cookie);
    get(r.reply_counter);
    get(r.response_ring.addr);
    get(r.response_ring.rkey);
    get(r.response_ring.length);
    get(r.slot_count);
    get(r.slot_size);
    return r;
  }
};

/// Bootstrap reply: where the server's request ring lives (the geometry
/// may be clamped below the client's proposal) plus the park threshold so
/// the client knows when a wake AM is needed before the next request.
struct RingDescriptor {
  RemoteWindow request_ring;
  std::uint32_t slot_count = 0;
  std::uint32_t slot_size = 0;
  std::uint64_t park_after_ns = 0;  ///< server poll loop parks after this idle
  std::uint64_t cookie = 0;         ///< echoed bootstrap request cookie

  static constexpr std::size_t kSize = (8 + 4 + 4) + 4 + 4 + 8 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(request_ring.addr);
    put(request_ring.rkey);
    put(request_ring.length);
    put(slot_count);
    put(slot_size);
    put(park_after_ns);
    put(cookie);
  }
  static RingDescriptor decode(const std::byte* in) {
    RingDescriptor d;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(d.request_ring.addr);
    get(d.request_ring.rkey);
    get(d.request_ring.length);
    get(d.slot_count);
    get(d.slot_size);
    get(d.park_after_ns);
    get(d.cookie);
    return d;
  }

  bool valid() const {
    return slot_count != 0 && slot_size != 0 && body_capacity(slot_size) != 0;
  }
};

}  // namespace rmc::rfp
