// Server side of the RFP subsystem: per-client request rings + poll loop.
//
// A RingServer owns one request ring per bootstrapped client endpoint.
// Clients RDMA-write framed commands (layout.hpp) into their ring slots;
// a single dedicated poll loop sweeps every ring, executes verified
// frames directly against the ItemStore, and RDMA-writes the framed
// response into the client's response arena — one doorbell per ring
// sweep via the runtime's send-batch window. No active message, CQ
// wake-up, or worker hand-off touches the data path.
//
// Poll policy (billed to the server CPU so the bypass is honest): the
// loop spins at poll_min_ns while frames arrive, doubles its interval
// toward poll_max_ns when sweeps come up empty, and parks entirely after
// park_after_ns of idleness. A parked loop costs nothing; clients re-arm
// it with a one-way wake AM before their first request after a long gap
// (the bootstrap descriptor tells them the threshold). A missed wake
// degrades to the client's op timeout + RPC fallback, never to a hang —
// and parking also keeps Scheduler::run() terminating (a perpetual
// poller would wedge drivers that run the event loop dry).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "memcached/store.hpp"
#include "memcached/ucr_proto.hpp"
#include "obs/metrics.hpp"
#include "rfp/layout.hpp"
#include "simnet/scheduler.hpp"
#include "ucr/runtime.hpp"

namespace rmc::rfp {

struct RingServerConfig {
  /// Geometry ceilings: a client's proposed ring is clamped to these.
  std::uint32_t max_slot_count = 64;
  std::uint32_t max_slot_size = 8192;

  /// Adaptive poll interval: spin at min while busy, back off x2 per
  /// empty sweep toward max, park after this much cumulative idleness.
  /// The max is deliberately tight — pickup lag is bounded by it, and a
  /// closed-loop client would otherwise phase-lock against a coarse
  /// interval and eat it on every op; parking (not backoff) is what
  /// makes a truly idle ring free.
  sim::Time poll_min_ns = 200;
  sim::Time poll_max_ns = 400;
  sim::Time park_after_ns = 200'000;

  /// CPU costs. One sweep over the rings costs poll_sweep_ns; a verified
  /// frame pays request_ns (decode) + op_base_ns (store op) plus
  /// value_copy_ns_per_byte over the bytes staged into the response.
  sim::Time poll_sweep_ns = 80;
  sim::Time request_ns = 250;
  sim::Time op_base_ns = 900;
  double value_copy_ns_per_byte = 0.08;
};

class RingServer {
 public:
  /// Registers the bootstrap + wake AM handlers on `runtime` and serves
  /// ops against `store`, billing poll and execute work to `host`.
  RingServer(ucr::Runtime& runtime, sim::Host& host, mc::ItemStore& store,
             RingServerConfig config = {});
  ~RingServer();
  RingServer(const RingServer&) = delete;
  RingServer& operator=(const RingServer&) = delete;

  const RingServerConfig& config() const { return config_; }
  /// Live (non-tombstoned) client rings.
  std::size_t ring_count() const {
    std::size_t n = 0;
    for (const auto& [id, ring] : rings_) n += ring != nullptr;
    return n;
  }
  bool polling() const { return poll_running_; }

 private:
  /// One bootstrapped client: its exposed request ring, the remote
  /// window of its response arena, and per-slot staging for outgoing
  /// response frames (per-slot because a batched/retransmitted WR reads
  /// its source buffer until acked — slots never have two outstanding
  /// responses, so slot-indexed staging is single-writer by protocol).
  struct ClientRing {
    ucr::Endpoint* ep = nullptr;
    std::vector<std::byte> ring;     ///< exposed request ring
    std::vector<std::byte> staging;  ///< response frames, slot-indexed
    ucr::Runtime::RemoteMemory request_window;   ///< ring, as shipped
    ucr::Runtime::RemoteMemory response_window;  ///< client arena
    std::uint32_t slot_count = 0;
    std::uint32_t slot_size = 0;
    std::vector<std::uint32_t> expected_seq;  ///< per-slot epoch, starts 1
  };

  void on_bootstrap(ucr::Endpoint& ep, const BootstrapRequest& req);
  void ensure_polling();
  sim::Task<> poll_loop();
  /// Execute one verified request frame and seal the response frame into
  /// the ring's staging slot. Returns the sealed frame length (0 = the
  /// reply cannot be represented; a server_error frame is sealed instead).
  sim::Task<std::size_t> execute(ClientRing& ring, std::uint32_t slot,
                                 std::span<const std::byte> body);
  std::size_t seal_response(ClientRing& ring, std::uint32_t slot,
                            const mc::ucrp::ResponseHeader& resp,
                            std::span<const std::byte> value);
  std::size_t execute_mget(ClientRing& ring, std::uint32_t slot,
                           const mc::ucrp::RequestHeader& req,
                           std::span<const std::byte> key_block);
  /// Advance the slot's expected epoch after its request has been executed
  /// and its response staged. This is the ONLY place the server's half of
  /// the lockstep seq protocol moves (rmclint seqlock-discipline blesses
  /// it by name): bumping before execute would let a fast client reuse the
  /// slot while the old body is still being read.
  static void release_slot(ClientRing& ring, std::uint32_t slot);

  ucr::Runtime* runtime_;
  sim::Host* host_;
  mc::ItemStore* store_;
  RingServerConfig config_;

  // Swept in order when polling — ep-id-keyed ordered map so the sweep
  // order (sim-visible: CPU charges, write order) is deterministic. A
  // null value is a tombstone: handlers retiring a ring mid-sweep null
  // the pointer rather than erase the node (the poll loop may be
  // suspended inside a range-for over this map); tombstoned nodes are
  // erased only from straight-line poll code at the sweep top.
  std::map<std::uint64_t, std::unique_ptr<ClientRing>> rings_;
  /// Rings retired mid-sweep (endpoint failure, re-bootstrap) park here
  /// until the next sweep top: the in-flight sweep may still hold spans
  /// into them, so they are freed only from straight-line poll code.
  std::vector<std::unique_ptr<ClientRing>> graveyard_;
  bool poll_running_ = false;
  std::uint64_t down_handler_id_ = 0;

  /// Ready slots found by the current sweep of one ring (scratch,
  /// reserved to max_slot_count so steady state never allocates).
  std::vector<std::uint32_t> ready_slots_;
  std::vector<std::size_t> ready_lens_;  ///< sealed frame length per ready slot
  std::size_t mget_value_bytes_ = 0;     ///< staged bytes of the last mget

  obs::Counter* bootstraps_;
  obs::Counter* wakes_;
  obs::Counter* torn_frames_;
  obs::Counter* sweeps_;
  obs::Counter* frames_;
  obs::Counter* parks_;
};

}  // namespace rmc::rfp
