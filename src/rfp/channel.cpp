#include "rfp/channel.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "simnet/cpu.hpp"
#include "ucr/endpoint.hpp"

namespace rmc::rfp {

namespace ucrp = mc::ucrp;

namespace {

/// Bootstrap responses arrive on a per-runtime AM handler shared by every
/// channel on that runtime; the descriptor's echoed cookie routes each
/// response to its owner (the RemoteGetter pattern). Cookies are
/// process-unique, so all runtimes share one map.
std::uint64_t next_cookie() {
  static std::uint64_t next = 1;
  return next++;
}

std::unordered_map<std::uint64_t, Channel*>& cookie_registry() {
  static std::unordered_map<std::uint64_t, Channel*> map;
  return map;
}

}  // namespace

Channel::Channel(ucr::Runtime& runtime, sim::Host& host, ChannelConfig config)
    : runtime_(&runtime), host_(&host), config_(config), cookie_(next_cookie()),
      ops_(&obs::registry().counter("mc.rfp.ops")),
      fallbacks_(&obs::registry().counter("mc.rfp.fallbacks")),
      ring_full_(&obs::registry().counter("mc.rfp.ring_full")),
      oversize_(&obs::registry().counter("mc.rfp.oversize")),
      torn_retries_(&obs::registry().counter("mc.rfp.torn_retries")) {
  config_.slot_count = std::max(1u, config_.slot_count);
  config_.slot_size = std::max<std::uint32_t>(
      config_.slot_size,
      static_cast<std::uint32_t>(framed_size(ucrp::ResponseHeader::kSize)));
  cookie_registry()[cookie_] = this;
  // Re-registering is idempotent: the handler closes over nothing and
  // resolves the owning channel through the cookie registry.
  runtime_->register_handler(
      kMsgRfpBootstrapResp,
      {.on_header = {},
       .on_complete = [](ucr::Endpoint&, std::span<const std::byte> header,
                         std::span<std::byte>) {
        if (header.size() < RingDescriptor::kSize) return;
        const RingDescriptor d = RingDescriptor::decode(header.data());
        auto it = cookie_registry().find(d.cookie);
        if (it != cookie_registry().end()) it->second->descriptor_ = d;
      }});
  down_handler_id_ = runtime_->on_endpoint_down([this](ucr::Endpoint& ep, Errc) {
    if (ep_ == &ep) invalidate();
  });
}

Channel::~Channel() {
  cookie_registry().erase(cookie_);
  runtime_->remove_endpoint_handler(down_handler_id_);
}

void Channel::invalidate() {
  ep_ = nullptr;
  descriptor_ = {};
}

std::span<std::byte> Channel::request_slot(std::uint32_t slot) {
  return {request_staging_.data() +
              static_cast<std::size_t>(slot) * descriptor_.slot_size,
          descriptor_.slot_size};
}

std::span<std::byte> Channel::response_slot(std::uint32_t slot) {
  return {response_arena_.data() +
              static_cast<std::size_t>(slot) * descriptor_.slot_size,
          descriptor_.slot_size};
}

sim::Task<Status> Channel::bootstrap(ucr::Endpoint& ep, sim::Time timeout) {
  if (ready() && ep_ == &ep) co_return Status{};
  if (ep.state() != ucr::EpState::ready || ep.type() != ucr::EpType::reliable) {
    co_return Errc::disconnected;
  }
  invalidate();

  // Size both arenas for the proposal; the server may clamp the geometry
  // down, in which case the tail of each arena simply goes unused.
  const std::size_t arena_bytes =
      static_cast<std::size_t>(config_.slot_count) * config_.slot_size;
  response_arena_.assign(arena_bytes, std::byte{0});
  request_staging_.assign(arena_bytes, std::byte{0});
  runtime_->register_region(request_staging_);
  const auto response_window = runtime_->expose_memory(response_arena_);

  bootstrap_counter_ = runtime_->make_counter();
  bootstrap_ref_ = runtime_->export_counter(*bootstrap_counter_);

  BootstrapRequest req;
  req.cookie = cookie_;
  req.reply_counter = bootstrap_ref_.id;
  req.response_ring = {response_window.addr, response_window.rkey,
                       response_window.length};
  req.slot_count = config_.slot_count;
  req.slot_size = config_.slot_size;
  std::byte header[BootstrapRequest::kSize];
  req.encode(header);
  auto sent = runtime_->send_message(ep, kMsgRfpBootstrap, header, {}, nullptr,
                                     ucr::CounterRef{}, nullptr);
  if (!sent.ok()) co_return sent;

  const bool woke = co_await bootstrap_counter_->wait_geq(1, timeout);
  if (!woke) co_return Errc::timed_out;
  if (!descriptor_.valid()) co_return Errc::protocol_error;
  // Adopted geometry must fit the arenas we shipped a window for.
  if (static_cast<std::size_t>(descriptor_.slot_count) * descriptor_.slot_size >
      arena_bytes) {
    descriptor_ = {};
    co_return Errc::protocol_error;
  }

  slots_.assign(descriptor_.slot_count, Slot{});
  ++slots_epoch_;
  busy_slots_ = 0;
  request_window_ = {descriptor_.request_ring.addr, descriptor_.request_ring.rkey,
                     descriptor_.request_ring.length};
  ep_ = &ep;
  last_traffic_ = runtime_->scheduler().now();
  co_return Status{};
}

void Channel::reclaim_lost() {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (s.state != SlotState::lost) continue;
    std::span<const std::byte> body;
    if (read_frame(response_slot(i), s.seq, body) == FrameState::ready) {
      // The abandoned op's response finally landed: its epoch is closed
      // and the slot can carry a new op.
      s.seq += 1;
      s.state = SlotState::free;
    }
  }
}

std::uint32_t Channel::claim_slot() {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].state == SlotState::free) {
      slots_[i].state = SlotState::busy;
      ++busy_slots_;
      return i;
    }
  }
  return descriptor_.slot_count;
}

void Channel::release(std::uint32_t slot) {
  if (slot >= slots_.size() || slots_[slot].state != SlotState::busy) return;
  slots_[slot].seq += 1;
  slots_[slot].state = SlotState::free;
  --busy_slots_;
}

sim::Task<Result<OpResult>> Channel::execute(ucr::Endpoint& ep,
                                             const ucrp::RequestHeader& hdr,
                                             std::span<const std::byte> head,
                                             std::span<const std::byte> tail,
                                             sim::Time timeout) {
  ops_->inc();
  if (!ready() || ep_ != &ep || ep.state() != ucr::EpState::ready) {
    fallbacks_->inc();
    co_return Errc::disconnected;
  }
  const std::size_t body_len = ucrp::RequestHeader::kSize + head.size() + tail.size();
  if (body_len > body_capacity(descriptor_.slot_size)) {
    oversize_->inc();
    fallbacks_->inc();
    co_return Errc::too_large;
  }
  reclaim_lost();
  const std::uint32_t slot = claim_slot();
  if (slot == descriptor_.slot_count) {
    ring_full_->inc();
    fallbacks_->inc();
    co_return Errc::no_resources;
  }
  // Claim-time generation of slots_. A re-bootstrap while this op is
  // suspended rebuilds the map and bumps slots_epoch_; our slot id may
  // then be free — or busy under a new owner — so every abandonment path
  // below re-checks the epoch before mutating slot state.
  const std::uint64_t epoch = slots_epoch_;
  auto abandon = [&](SlotState next) {
    if (slots_epoch_ == epoch && slots_[slot].state == SlotState::busy) {
      slots_[slot].state = next;
      --busy_slots_;
    }
    fallbacks_->inc();
  };

  sim::Scheduler& sched = runtime_->scheduler();
  // The server's poll loop parks after park_after_ns of idleness; if our
  // own send gap is anywhere near that, nudge it awake first. A lost
  // nudge degrades to this op's timeout + RPC fallback, never a hang.
  if (descriptor_.park_after_ns != 0 &&
      sched.now() - last_traffic_ >=
          static_cast<sim::Time>(descriptor_.park_after_ns / 2)) {
    std::byte wake[sizeof(cookie_)];
    std::memcpy(wake, &cookie_, sizeof(cookie_));
    (void)runtime_->send_message(ep, kMsgRfpWake, wake, {}, nullptr,
                                 ucr::CounterRef{}, nullptr);
  }
  last_traffic_ = sched.now();

  co_await host_->cpu().consume(config_.request_build_ns);
  if (slots_epoch_ != epoch || !ready() || ep_ != &ep) {
    abandon(SlotState::free);
    co_return Errc::disconnected;
  }

  const std::uint32_t seq = slots_[slot].seq;
  const std::span<std::byte> staging = request_slot(slot);
  const std::span<std::byte> body = frame_body(staging);
  hdr.encode(body.data());
  if (!head.empty()) {
    std::memcpy(body.data() + ucrp::RequestHeader::kSize, head.data(), head.size());
  }
  if (!tail.empty()) {
    std::memcpy(body.data() + ucrp::RequestHeader::kSize + head.size(), tail.data(),
                tail.size());
  }
  seal_frame(staging, seq, static_cast<std::uint32_t>(body_len));

  auto posted = runtime_->put(
      ep, staging.first(framed_size(static_cast<std::uint32_t>(body_len))),
      request_window_, slot * descriptor_.slot_size, nullptr);
  if (!posted.ok()) {
    // Never went out: the slot's seq is untouched and reusable.
    abandon(SlotState::free);
    co_return Errc::disconnected;
  }

  const bool bounded = timeout != sim::kNoTimeout;
  const sim::Time deadline = bounded ? sched.now() + timeout : 0;
  std::uint32_t torn_seen = 0;
  for (;;) {
    if (slots_epoch_ != epoch || !ready() || ep_ != &ep) {
      abandon(SlotState::lost);
      co_return Errc::disconnected;
    }
    std::span<const std::byte> resp_body;
    switch (read_frame(response_slot(slot), seq, resp_body)) {
      case FrameState::ready: {
        if (resp_body.size() < ucrp::ResponseHeader::kSize) {
          // Verified but malformed — server bug, not a race. Epoch is
          // closed, so free the slot and fall back.
          release(slot);
          fallbacks_->inc();
          co_return Errc::protocol_error;
        }
        OpResult out;
        out.header = ucrp::ResponseHeader::decode(resp_body.data());
        out.body = resp_body.subspan(ucrp::ResponseHeader::kSize);
        out.slot = slot;
        co_return out;
      }
      case FrameState::torn:
        torn_retries_->inc();
        if (++torn_seen > config_.max_torn_retries) {
          abandon(SlotState::lost);
          co_return Errc::protocol_error;
        }
        break;
      case FrameState::empty:
        break;
    }
    if (bounded && sched.now() >= deadline) {
      // The response may still land later; quarantine the slot until
      // reclaim_lost sees its seq close.
      abandon(SlotState::lost);
      co_return Errc::timed_out;
    }
    co_await sched.delay(config_.poll_ns);
  }
}

}  // namespace rmc::rfp
