#include "rfp/ring_server.hpp"

#include <algorithm>
#include <cstring>

#include "obs/profiler.hpp"
#include "simnet/time.hpp"

namespace rmc::rfp {

namespace ucrp = mc::ucrp;

namespace {

const std::uint16_t kProfPoll =
    obs::profiler().register_scope("prof.mc.rfp.poll", obs::ScopeKind::engine);
const std::uint16_t kProfExecute =
    obs::profiler().register_scope("prof.mc.rfp.execute", obs::ScopeKind::payload);

std::span<std::byte> slot_span(std::vector<std::byte>& buf, std::uint32_t slot,
                               std::uint32_t slot_size) {
  return {buf.data() + static_cast<std::size_t>(slot) * slot_size, slot_size};
}

}  // namespace

RingServer::RingServer(ucr::Runtime& runtime, sim::Host& host, mc::ItemStore& store,
                       RingServerConfig config)
    : runtime_(&runtime), host_(&host), store_(&store), config_(config),
      bootstraps_(&obs::registry().counter("mc.rfp.bootstraps")),
      wakes_(&obs::registry().counter("mc.rfp.wakes")),
      torn_frames_(&obs::registry().counter("mc.rfp.torn_frames")),
      sweeps_(&obs::registry().counter("mc.rfp.poll.sweeps")),
      frames_(&obs::registry().counter("mc.rfp.poll.frames")),
      parks_(&obs::registry().counter("mc.rfp.poll.parks")) {
  config_.max_slot_count = std::max(1u, config_.max_slot_count);
  config_.max_slot_size = std::max<std::uint32_t>(
      config_.max_slot_size,
      static_cast<std::uint32_t>(framed_size(ucrp::ResponseHeader::kSize)));
  ready_slots_.reserve(config_.max_slot_count);
  ready_lens_.reserve(config_.max_slot_count);

  runtime_->register_handler(
      kMsgRfpBootstrap,
      {.on_header = {},
       .on_complete = [this](ucr::Endpoint& ep, std::span<const std::byte> header,
                             std::span<std::byte>) {
        if (header.size() < BootstrapRequest::kSize) return;
        on_bootstrap(ep, BootstrapRequest::decode(header.data()));
      }});
  runtime_->register_handler(
      kMsgRfpWake,
      {.on_header = {},
       .on_complete = [this](ucr::Endpoint&, std::span<const std::byte>,
                             std::span<std::byte>) {
        wakes_->inc();
        ensure_polling();
      }});
  down_handler_id_ = runtime_->on_endpoint_down([this](ucr::Endpoint& ep, Errc) {
    auto it = rings_.find(ep.id());
    if (it == rings_.end() || it->second == nullptr) return;
    it->second->ep = nullptr;  // dead: skipped by the sweep in progress
    graveyard_.push_back(std::move(it->second));
    // The null entry stays behind as a tombstone: poll_loop may be
    // suspended mid-iteration over rings_, so handlers never erase map
    // nodes — the sweep top reaps tombstones in straight-line code.
  });
}

RingServer::~RingServer() { runtime_->remove_endpoint_handler(down_handler_id_); }

void RingServer::on_bootstrap(ucr::Endpoint& ep, const BootstrapRequest& req) {
  RingDescriptor resp;
  resp.cookie = req.cookie;

  const std::uint32_t slot_count =
      std::min(std::max(1u, req.slot_count), config_.max_slot_count);
  const std::uint32_t slot_size = std::min(req.slot_size, config_.max_slot_size);
  const std::uint64_t span_bytes =
      static_cast<std::uint64_t>(slot_count) * slot_size;
  // Geometry sanity: the response arena must cover the clamped ring and
  // slots must frame at least a bare response. An unusable proposal gets
  // a zeroed (invalid) descriptor back — the client stays on classic RPC.
  const bool usable = body_capacity(slot_size) >= ucrp::ResponseHeader::kSize &&
                      req.response_ring.length >= span_bytes &&
                      ep.type() == ucr::EpType::reliable;
  if (usable) {
    auto ring = std::make_unique<ClientRing>();
    ring->ep = &ep;
    ring->slot_count = slot_count;
    ring->slot_size = slot_size;
    ring->ring.assign(span_bytes, std::byte{0});
    ring->staging.assign(span_bytes, std::byte{0});
    // rmclint:allow(seqlock-discipline): fresh ring — no client holds its epochs yet,
    // so initializing every slot to epoch 1 cannot race a reader.
    ring->expected_seq.assign(slot_count, 1);
    ring->request_window = runtime_->expose_memory(ring->ring);
    runtime_->register_region(ring->staging);
    ring->response_window = {req.response_ring.addr, req.response_ring.rkey,
                             req.response_ring.length};

    resp.request_ring = {ring->request_window.addr, ring->request_window.rkey,
                         ring->request_window.length};
    resp.slot_count = slot_count;
    resp.slot_size = slot_size;
    resp.park_after_ns = static_cast<std::uint64_t>(config_.park_after_ns);

    auto [it, inserted] = rings_.try_emplace(ep.id());
    if (it->second != nullptr) {
      // Re-bootstrap on a live endpoint: retire the old ring via the
      // graveyard so an in-flight sweep never touches freed memory. The
      // map node is reused in place, never erased here — poll_loop may
      // be suspended mid-iteration over rings_.
      it->second->ep = nullptr;
      graveyard_.push_back(std::move(it->second));
    }
    it->second = std::move(ring);
    bootstraps_->inc();
    ensure_polling();
  }

  std::byte out[RingDescriptor::kSize];
  resp.encode(out);
  (void)runtime_->send_message(ep, kMsgRfpBootstrapResp, out, {}, nullptr,
                               ucr::CounterRef{req.reply_counter}, nullptr);
}

void RingServer::ensure_polling() {
  if (poll_running_ || rings_.empty()) return;
  poll_running_ = true;
  runtime_->scheduler().spawn(poll_loop());
}

void RingServer::release_slot(ClientRing& ring, std::uint32_t slot) {
  // Blessed epoch advance (see header). The client's next request in this
  // slot must carry seq == expected_seq to verify as ready.
  ring.expected_seq[slot] += 1;
}

sim::Task<> RingServer::poll_loop() {
  sim::Scheduler& sched = runtime_->scheduler();
  sim::Time interval = config_.poll_min_ns;
  sim::Time idle_ns = 0;
  for (;;) {
    // Straight-line sweep bookkeeping: rings retired by the down/re-
    // bootstrap handlers park in the graveyard behind a null map
    // tombstone, and both are reaped only here — so map nodes and
    // ClientRing memory seen by this sweep stay valid across every
    // co_await below.
    graveyard_.clear();
    std::erase_if(rings_, [](const auto& kv) { return kv.second == nullptr; });
    if (rings_.empty()) {
      parks_->inc();
      break;
    }
    sweeps_->inc();
    co_await host_->cpu().consume(config_.poll_sweep_ns);

    bool worked = false;
    // std::map iterators survive handler-driven insertions, and handlers
    // tombstone entries (null the pointer) instead of erasing nodes, so
    // iteration is safe across the co_awaits in the loop body.
    for (auto& [ep_id, ring_ptr] : rings_) {
      if (ring_ptr == nullptr) continue;  // tombstoned during this sweep
      ClientRing& ring = *ring_ptr;
      if (ring.ep == nullptr || ring.ep->state() != ucr::EpState::ready) continue;

      ready_slots_.clear();
      ready_lens_.clear();
      {
        obs::ProfScope prof{kProfPoll};
        for (std::uint32_t slot = 0; slot < ring.slot_count; ++slot) {
          std::span<const std::byte> body;
          switch (read_frame(slot_span(ring.ring, slot, ring.slot_size),
                             ring.expected_seq[slot], body)) {
            case FrameState::ready:
              ready_slots_.push_back(slot);
              break;
            case FrameState::torn:
              // A client write still landing; the next sweep picks it up.
              torn_frames_->inc();
              break;
            case FrameState::empty:
              break;
          }
        }
      }
      if (ready_slots_.empty()) continue;
      worked = true;
      frames_->inc(ready_slots_.size());

      for (const std::uint32_t slot : ready_slots_) {
        std::span<const std::byte> body;
        // Re-read is stable: the client never rewrites a slot before it
        // has consumed the matching response, and this frame verified.
        (void)read_frame(slot_span(ring.ring, slot, ring.slot_size),
                         ring.expected_seq[slot], body);
        ready_lens_.push_back(co_await execute(ring, slot, body));
        release_slot(ring, slot);
      }

      if (ring.ep != nullptr && ring.ep->state() == ucr::EpState::ready) {
        // All responses of this sweep ride one doorbell.
        obs::ProfScope prof{kProfPoll};
        runtime_->begin_send_batch();
        for (std::size_t i = 0; i < ready_slots_.size(); ++i) {
          if (ready_lens_[i] == 0) continue;
          const std::uint32_t slot = ready_slots_[i];
          const std::span<const std::byte> frame{
              ring.staging.data() + static_cast<std::size_t>(slot) * ring.slot_size,
              ready_lens_[i]};
          (void)runtime_->put(*ring.ep, frame, ring.response_window,
                              slot * ring.slot_size, nullptr);
        }
        runtime_->end_send_batch();
      }
    }

    if (worked) {
      interval = config_.poll_min_ns;
      idle_ns = 0;
    } else {
      idle_ns += interval;
      if (idle_ns >= config_.park_after_ns) {
        parks_->inc();
        break;
      }
      interval = std::min(interval * 2, config_.poll_max_ns);
    }
    co_await sched.delay(interval);
  }
  poll_running_ = false;
  graveyard_.clear();
  std::erase_if(rings_, [](const auto& kv) { return kv.second == nullptr; });
}

std::size_t RingServer::seal_response(ClientRing& ring, std::uint32_t slot,
                                      const ucrp::ResponseHeader& resp,
                                      std::span<const std::byte> value) {
  const std::span<std::byte> staging = slot_span(ring.staging, slot, ring.slot_size);
  const std::uint32_t capacity = body_capacity(ring.slot_size);
  ucrp::ResponseHeader out = resp;
  if (ucrp::ResponseHeader::kSize + value.size() > capacity) {
    // Reply cannot be framed in one slot: tell the client to re-run the
    // op over classic RPC (the fallback matrix in DESIGN.md §16).
    out.status = ucrp::RStatus::server_error;
    value = {};
  }
  const std::span<std::byte> body = frame_body(staging);
  out.encode(body.data());
  if (!value.empty()) {
    std::memcpy(body.data() + ucrp::ResponseHeader::kSize, value.data(), value.size());
  }
  const auto body_len =
      static_cast<std::uint32_t>(ucrp::ResponseHeader::kSize + value.size());
  seal_frame(staging, ring.expected_seq[slot], body_len);
  return framed_size(body_len);
}

std::size_t RingServer::execute_mget(ClientRing& ring, std::uint32_t slot,
                                     const ucrp::RequestHeader& req,
                                     std::span<const std::byte> key_block) {
  const std::span<std::byte> staging = slot_span(ring.staging, slot, ring.slot_size);
  const std::span<std::byte> body = frame_body(staging);
  const auto key_count = static_cast<std::uint32_t>(req.delta);

  ucrp::ResponseHeader resp;
  resp.status = ucrp::RStatus::value;
  resp.req_id = req.req_id;

  // Single-chunk layout: ResponseHeader | MgetChunkHeader | records | values.
  const std::size_t records_at =
      ucrp::ResponseHeader::kSize + ucrp::MgetChunkHeader::kSize;
  std::size_t values_at = records_at + key_count * ucrp::MgetRecord::kSize;
  if (values_at > body.size()) {
    return seal_response(ring, slot,
                         ucrp::ResponseHeader{.status = ucrp::RStatus::server_error,
                                              .req_id = req.req_id},
                         {});
  }

  ucrp::MgetKeyReader reader{key_block.data(), key_block.size()};
  std::string_view key;
  std::uint32_t index = 0;
  std::size_t value_bytes = 0;
  bool overflow = false;
  while (index < key_count && reader.next(key)) {
    ucrp::MgetRecord rec;
    if (mc::ItemHeader* item = store_->get_pinned(key)) {
      const auto value = item->value();
      if (values_at + value.size() > body.size()) {
        store_->release(item);
        overflow = true;
        break;
      }
      rec.status = ucrp::RStatus::value;
      rec.flags = item->flags;
      rec.cas = item->cas;
      rec.value_len = static_cast<std::uint32_t>(value.size());
      std::memcpy(body.data() + values_at, value.data(), value.size());
      values_at += value.size();
      value_bytes += value.size();
      store_->release(item);
    }
    rec.encode(body.data() + records_at + index * ucrp::MgetRecord::kSize);
    ++index;
  }
  if (overflow || index != key_count) {
    // Reply overflows the slot (or the block was malformed): hand the
    // whole multiget back to the RPC path, which chunks freely.
    return seal_response(ring, slot,
                         ucrp::ResponseHeader{.status = ucrp::RStatus::server_error,
                                              .req_id = req.req_id},
                         {});
  }

  ucrp::MgetChunkHeader chunk;
  chunk.start_index = 0;
  chunk.record_count = key_count;
  chunk.total_chunks = 1;
  chunk.total_keys = key_count;
  resp.encode(body.data());
  chunk.encode(body.data() + ucrp::ResponseHeader::kSize);
  mget_value_bytes_ = value_bytes;
  const auto body_len = static_cast<std::uint32_t>(values_at);
  seal_frame(staging, ring.expected_seq[slot], body_len);
  return framed_size(body_len);
}

sim::Task<std::size_t> RingServer::execute(ClientRing& ring, std::uint32_t slot,
                                           std::span<const std::byte> body) {
  co_await host_->cpu().consume(config_.request_ns + config_.op_base_ns);

  ucrp::ResponseHeader resp;
  if (body.size() < ucrp::RequestHeader::kSize) {
    resp.status = ucrp::RStatus::client_error;
    co_return seal_response(ring, slot, resp, {});
  }
  const auto req = ucrp::RequestHeader::decode(body.data());
  resp.req_id = req.req_id;
  const std::span<const std::byte> tail = body.subspan(ucrp::RequestHeader::kSize);
  if (tail.size() < req.key_len) {
    resp.status = ucrp::RStatus::client_error;
    co_return seal_response(ring, slot, resp, {});
  }
  const std::string_view key{reinterpret_cast<const char*>(tail.data()), req.key_len};
  const std::span<const std::byte> value = tail.subspan(req.key_len);

  store_->set_clock(
      static_cast<std::uint32_t>(1 + runtime_->scheduler().now() / kNsPerSec));

  std::size_t copied_bytes = 0;
  std::size_t frame_len = 0;
  {
    obs::ProfScope prof{kProfExecute};
    switch (req.op) {
      case ucrp::Op::get:
      case ucrp::Op::gets: {
        if (mc::ItemHeader* item = store_->get_pinned(key)) {
          resp.status = ucrp::RStatus::value;
          resp.flags = item->flags;
          resp.cas = item->cas;
          frame_len = seal_response(ring, slot, resp, item->value());
          copied_bytes = item->value_len;
          store_->release(item);
        } else {
          resp.status = ucrp::RStatus::not_found;
          frame_len = seal_response(ring, slot, resp, {});
        }
        break;
      }
      case ucrp::Op::set:
      case ucrp::Op::add:
      case ucrp::Op::replace:
      case ucrp::Op::append:
      case ucrp::Op::prepend:
      case ucrp::Op::cas: {
        mc::SetMode mode = mc::SetMode::set;
        switch (req.op) {
          case ucrp::Op::add: mode = mc::SetMode::add; break;
          case ucrp::Op::replace: mode = mc::SetMode::replace; break;
          case ucrp::Op::append: mode = mc::SetMode::append; break;
          case ucrp::Op::prepend: mode = mc::SetMode::prepend; break;
          case ucrp::Op::cas: mode = mc::SetMode::cas; break;
          default: break;
        }
        auto stored = store_->store(mode, key, value, req.flags, req.exptime, req.cas);
        if (stored.ok()) {
          resp.status = ucrp::RStatus::stored;
        } else {
          switch (stored.error()) {
            case Errc::not_stored: resp.status = ucrp::RStatus::not_stored; break;
            case Errc::exists: resp.status = ucrp::RStatus::exists; break;
            case Errc::not_found: resp.status = ucrp::RStatus::not_found; break;
            default: resp.status = ucrp::RStatus::server_error; break;
          }
        }
        copied_bytes = value.size();
        frame_len = seal_response(ring, slot, resp, {});
        break;
      }
      case ucrp::Op::del:
        resp.status =
            store_->del(key) ? ucrp::RStatus::deleted : ucrp::RStatus::not_found;
        frame_len = seal_response(ring, slot, resp, {});
        break;
      case ucrp::Op::incr:
      case ucrp::Op::decr: {
        auto result = store_->arith(key, req.delta, req.op == ucrp::Op::decr);
        if (result.ok()) {
          resp.status = ucrp::RStatus::number;
          resp.number = *result;
        } else if (result.error() == Errc::not_found) {
          resp.status = ucrp::RStatus::not_found;
        } else {
          resp.status = ucrp::RStatus::client_error;
        }
        frame_len = seal_response(ring, slot, resp, {});
        break;
      }
      case ucrp::Op::touch:
        resp.status = store_->touch(key, req.exptime) ? ucrp::RStatus::touched
                                                      : ucrp::RStatus::not_found;
        frame_len = seal_response(ring, slot, resp, {});
        break;
      case ucrp::Op::mget:
        mget_value_bytes_ = 0;
        frame_len = execute_mget(
            ring, slot, req,
            tail.first(std::min<std::size_t>(req.key_len, tail.size())));
        copied_bytes = mget_value_bytes_;
        break;
      default:
        // flush_all / version and anything unknown stay on the RPC path
        // (fallback matrix, DESIGN.md §16).
        resp.status = ucrp::RStatus::client_error;
        frame_len = seal_response(ring, slot, resp, {});
        break;
    }
  }

  if (copied_bytes != 0) {
    co_await host_->cpu().consume(static_cast<sim::Time>(
        static_cast<double>(copied_bytes) * config_.value_copy_ns_per_byte));
  }
  co_return frame_len;
}

}  // namespace rmc::rfp
