// Client side of the RFP subsystem: the op channel.
//
// A Channel bootstraps a ring pair with one cookie-routed AM round trip
// (the client ships the window of its response arena, the server answers
// with the window of the request ring it allocated), then serves whole
// memcached ops without any further active message: the request is
// framed into a ring slot and RDMA-written to the server, and the
// response is polled *locally* out of the slot-matched response arena
// frame the server RDMA-writes back. Slot epochs advance in lockstep —
// request and response of one op carry the same seq — so neither side
// ever clears a slot.
//
// The channel is deliberately non-authoritative about failure: every
// non-ok execute() result (ring full, oversize body, endpoint trouble,
// poll timeout, torn frame beyond the retry budget) means "run this op
// over classic RPC". The caller keeps the RPC path wired and falls back
// transparently, exactly like the one-sided GET ladder.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "memcached/ucr_proto.hpp"
#include "obs/metrics.hpp"
#include "rfp/layout.hpp"
#include "simnet/event.hpp"
#include "ucr/runtime.hpp"

namespace rmc::rfp {

struct ChannelConfig {
  /// Proposed ring geometry (the server may clamp both; bootstrap adopts
  /// the echoed values). slot_count bounds the ops in flight; slot_size
  /// bounds one framed request/response — larger bodies fall back to RPC.
  std::uint32_t slot_count = 16;
  std::uint32_t slot_size = 2048;
  /// Local response-poll interval (client CPU is idle-waiting anyway, so
  /// this only trades sim latency against poll events).
  sim::Time poll_ns = 200;
  /// Torn response observations tolerated per op before falling back.
  std::uint32_t max_torn_retries = 2;
  /// CPU cost of framing a request into the staging slot.
  sim::Time request_build_ns = 300;
};

/// A completed RFP op. `body` aliases the response arena slot: everything
/// after the ResponseHeader (the value for GET, the chunk block for
/// mget). It stays valid until release(slot) hands the slot back.
struct OpResult {
  mc::ucrp::ResponseHeader header;
  std::span<const std::byte> body;
  std::uint32_t slot = 0;
};

class Channel {
 public:
  /// `host` is the client host billed for request framing.
  Channel(ucr::Runtime& runtime, sim::Host& host, ChannelConfig config = {});
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// The one RPC: exchange ring windows over `ep`. Idempotent while the
  /// descriptor is valid and still bound to `ep`.
  sim::Task<Status> bootstrap(ucr::Endpoint& ep, sim::Time timeout = 1 * kNsPerSec);

  bool ready() const { return descriptor_.valid() && ep_ != nullptr; }
  const RingDescriptor& descriptor() const { return descriptor_; }

  /// Run one op through the rings. The request body is laid out as
  /// `hdr | head | tail` (key + inline value for plain ops; the packed
  /// key block as `head` for mget). Non-ok = use the RPC path; ok =
  /// definitive server answer (the caller must still treat
  /// RStatus::server_error as "reply did not fit — re-run over RPC") and
  /// owns `slot` until release().
  sim::Task<Result<OpResult>> execute(ucr::Endpoint& ep, const mc::ucrp::RequestHeader& hdr,
                                      std::span<const std::byte> head,
                                      std::span<const std::byte> tail, sim::Time timeout);

  /// Hand a completed op's slot back (advances its epoch; the body span
  /// of that op dies here).
  void release(std::uint32_t slot);

  /// Largest request body (RequestHeader + key + value) execute() can
  /// frame; 0 until bootstrapped.
  std::uint32_t max_body() const {
    return ready() ? body_capacity(descriptor_.slot_size) : 0;
  }
  std::uint32_t slots_in_flight() const { return busy_slots_; }

  /// Test hook: the raw response arena (tests forge torn frames in it).
  std::span<std::byte> response_arena_for_test() { return response_arena_; }
  std::uint32_t slot_seq_for_test(std::uint32_t slot) const { return slots_[slot].seq; }

 private:
  enum class SlotState : std::uint8_t {
    free,  ///< claimable
    busy,  ///< op in flight, owner polling
    lost,  ///< owner gave up (timeout/torn budget); response may still land
  };
  struct Slot {
    SlotState state = SlotState::free;
    std::uint32_t seq = 1;  ///< epoch of the next/current op on this slot
  };

  std::span<std::byte> request_slot(std::uint32_t slot);
  std::span<std::byte> response_slot(std::uint32_t slot);
  /// Free lost slots whose late response has landed (their epoch closed).
  void reclaim_lost();
  std::uint32_t claim_slot();  ///< slot_count = none free
  void invalidate();

  ucr::Runtime* runtime_;
  sim::Host* host_;
  ChannelConfig config_;
  std::uint64_t cookie_;  ///< routes the bootstrap response back to us
  std::uint64_t down_handler_id_ = 0;

  ucr::Endpoint* ep_ = nullptr;    ///< endpoint the rings are bound to
  RingDescriptor descriptor_{};    ///< server's reply (adopted geometry)
  ucr::Runtime::RemoteMemory request_window_{};

  std::vector<std::byte> response_arena_;  ///< exposed; server writes here
  std::vector<std::byte> request_staging_; ///< registered; frames built here
  std::vector<Slot> slots_;
  /// Bumped each time slots_ is rebuilt (re-bootstrap). execute()
  /// snapshots it at claim time: after any suspension, a stale snapshot
  /// means the claimed slot id now belongs to a different generation of
  /// the map and must not be touched.
  std::uint64_t slots_epoch_ = 0;
  std::uint32_t busy_slots_ = 0;
  sim::Time last_traffic_ = 0;  ///< wake-AM bookkeeping vs server parking

  // Bootstrap rendezvous state.
  std::unique_ptr<sim::Counter> bootstrap_counter_;
  ucr::CounterRef bootstrap_ref_{};

  obs::Counter* ops_;
  obs::Counter* fallbacks_;
  obs::Counter* ring_full_;
  obs::Counter* oversize_;
  obs::Counter* torn_retries_;
};

}  // namespace rmc::rfp
