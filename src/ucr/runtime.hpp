// The Unified Communication Runtime (§IV) — the paper's core contribution.
//
// UCR exposes an active-message API over verbs:
//
//   send_message(ep, msg_id, header, data,
//                origin_counter, target_counter, completion_counter)
//
// mirroring the paper's ucr_send_message. Messages whose wire header +
// user header + data fit one pre-registered 8 KB buffer go *eager*: one
// SEND, data memcpy'd out of the network buffer at the target (Fig. 2b).
// Larger messages go *rendezvous*: the SEND carries only the header plus
// the (addr, rkey) of the origin's data; the target's header handler names
// a destination buffer and UCR pulls the payload with an RDMA READ
// (Fig. 2a) — zero copies on either side.
//
// Counters (§IV-C): origin_counter bumps when the origin's buffers are
// reusable (immediately for eager, on an internal ack for rendezvous);
// target_counter is a counter *at the target*, named by a CounterRef the
// origin learned earlier, bumped after the completion handler runs;
// completion_counter bumps at the origin when the target's completion
// handler has run (internal ack). NULL/invalid counters suppress the
// corresponding internal messages, exactly as the paper specifies.
//
// Flow control: per-endpoint credit window over a shared receive queue
// (SRQ), the MVAPICH-derived buffer-scalability design; senders without
// credits queue in a backlog that drains as credits return (piggybacked on
// reverse traffic or via explicit credit messages).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "simnet/event.hpp"
#include "simnet/task.hpp"
#include "ucr/config.hpp"
#include "ucr/endpoint.hpp"
#include "ucr/wire.hpp"
#include "verbs/hca.hpp"

namespace rmc::ucr {

/// A shippable reference to a counter living at another process. Obtained
/// from Runtime::export_counter and carried inside AM headers.
struct CounterRef {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Active-message handler pair (§IV-B).
struct AmHandler {
  /// Header handler: runs on arrival; identifies the destination buffer
  /// for the data (must be at least data_len bytes; return an empty span
  /// to drop the payload). Runs "short logic" — it is charged the
  /// dispatch cost, so keep real work in on_complete or a worker.
  std::function<std::span<std::byte>(Endpoint&, std::span<const std::byte> header,
                                     std::uint32_t data_len)>
      on_header;
  /// Completion handler: runs once the data is in place.
  std::function<void(Endpoint&, std::span<const std::byte> header, std::span<std::byte> data)>
      on_complete;
};

class Runtime {
 public:
  Runtime(verbs::Hca& hca, UcrConfig config = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  sim::Scheduler& scheduler() { return hca_->scheduler(); }
  verbs::Hca& hca() { return *hca_; }
  const UcrConfig& config() const { return config_; }
  sim::NicAddr addr() const { return hca_->addr(); }

  // ------------------------------------------------------------ counters
  /// Create a counter bound to this runtime's scheduler.
  std::unique_ptr<sim::Counter> make_counter() {
    // rmclint:allow(zeroalloc): completion-counter factory used at op setup by rendezvous/one-sided paths
    return std::make_unique<sim::Counter>(scheduler());
  }
  /// Make `counter` nameable by remote peers (for target_counter fields).
  CounterRef export_counter(sim::Counter& counter);

  // ------------------------------------------------------------ handlers
  void register_handler(std::uint16_t msg_id, AmHandler handler) {
    handlers_[msg_id] = std::move(handler);
  }

  // -------------------------------------------------------------- memory
  /// Pre-register application memory so rendezvous transfers to/from it
  /// need no on-the-fly registration (e.g. memcached slab arenas, client
  /// value buffers).
  void register_region(std::span<std::byte> memory);

  // ---------------------------------------------------------- connection
  /// Accept UCR clients on `port`; on_client runs once per endpoint
  /// (reliable and unreliable alike).
  void listen(std::uint16_t port, std::function<void(Endpoint&)> on_client);

  /// Establish an endpoint with a listening runtime. Reliable endpoints
  /// get their own RC QP; unreliable endpoints (§VII future work) share
  /// one UD QP per runtime — eager-only, no delivery guarantee, but no
  /// per-client connection state at the server.
  sim::Task<Result<Endpoint*>> connect(sim::NicAddr dst, std::uint16_t port,
                                       EpType type = EpType::reliable,
                                       sim::Time timeout = 1 * kNsPerSec);

  /// Tear one endpoint down; other endpoints are unaffected (§IV-A).
  void close(Endpoint& ep);

  // ------------------------------------------------------ failure events
  /// Fail one endpoint: every pending operation tied to it completes with
  /// an error *now* (waiters wake with failure instead of riding out
  /// their own timeouts), registered on_endpoint_down handlers are
  /// notified on the next scheduler turn, and the endpoint is queued for
  /// deferred reclamation. Other endpoints are unaffected (§IV-A).
  void fail_endpoint(Endpoint& ep, Errc reason = Errc::disconnected);

  /// Register a handler invoked (deferred, next scheduler turn) whenever
  /// an endpoint of this runtime fails. Returns an id for removal.
  using EndpointDownHandler = std::function<void(Endpoint&, Errc)>;
  std::uint64_t on_endpoint_down(EndpointDownHandler handler);
  void remove_endpoint_handler(std::uint64_t id);

  /// Live + not-yet-reclaimed endpoints (churn tests).
  std::size_t endpoint_count() const { return endpoints_.size(); }
  /// Outstanding origin/read/one-sided bookkeeping entries (leak tests).
  std::size_t pending_op_count() const {
    return pending_origin_.size() + pending_reads_.size() + pending_one_sided_.size();
  }

  // ----------------------------------------------------- active messages
  /// The ucr_send_message call. Non-blocking: returns after handing the
  /// message to the transport (or queueing it for credits). Counter
  /// arguments may be null / invalid to suppress the respective updates.
  Status send_message(Endpoint& ep, std::uint16_t msg_id, std::span<const std::byte> header,
                      std::span<const std::byte> data, sim::Counter* origin_counter,
                      CounterRef target_counter, sim::Counter* completion_counter);

  // --------------------------------------------- doorbell-batched sends
  /// Between begin_send_batch and end_send_batch, outgoing AM posts are
  /// chained per QP and rung with ONE doorbell at the flush
  /// (QueuePair::post_send_batch) instead of one per message. Multiget
  /// uses this: all sub-requests of one mget — and all response chunks of
  /// one reply — share a single doorbell charge. The window must be
  /// straight-line code (no co_await between begin and end); not
  /// re-entrant.
  void begin_send_batch();
  void end_send_batch();

  // ------------------------------------------- one-sided put/get (§IV-B)
  /// RemoteMemory names a window a peer may access one-sided. Obtained at
  /// the target via expose_memory() and shipped to peers by the
  /// application (e.g. inside an AM header) — the PGAS-style half of the
  /// UCR API. Reliable endpoints only.
  struct RemoteMemory {
    std::uint64_t addr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t length = 0;
  };

  /// Register (or look up) `memory` and return a shippable descriptor.
  RemoteMemory expose_memory(std::span<std::byte> memory);

  /// One-sided write: src -> remote window (+offset). `done` bumps when
  /// the data is placed (remote CPU never involved).
  Status put(Endpoint& ep, std::span<const std::byte> src, const RemoteMemory& window,
             std::uint32_t offset, sim::Counter* done);

  /// One-sided read: remote window (+offset) -> dst.
  Status get(Endpoint& ep, std::span<std::byte> dst, const RemoteMemory& window,
             std::uint32_t offset, sim::Counter* done);

  // ---------------------------------------------------------------- stats
  std::uint64_t eager_sent() const { return eager_sent_; }
  std::uint64_t rendezvous_sent() const { return rendezvous_sent_; }
  std::uint64_t messages_received() const { return messages_received_; }

 private:
  struct PendingOrigin {
    sim::Counter* origin = nullptr;
    sim::Counter* completion = nullptr;
    std::uint8_t awaiting = 0;   ///< AckFlags still expected
    Endpoint* ep = nullptr;      ///< whose failure errors this entry out
  };
  struct PendingOneSided {
    sim::Counter* done = nullptr;
    Endpoint* ep = nullptr;
  };
  struct PendingTargetRead {
    Endpoint* ep = nullptr;
    std::vector<std::byte> header;  ///< user header, copied out of the buffer
    std::span<std::byte> dest;
    wire::AmWire am;
    sim::Time arrived_at = 0;  ///< rendezvous header arrival (tracing)
  };

  /// Registered-memory bookkeeping (registration cache).
  struct Region {
    std::size_t len = 0;
    verbs::MemoryRegion* mr = nullptr;
  };

  Endpoint& adopt_qp(verbs::QueuePair& qp);
  Endpoint& adopt_ud_peer(sim::NicAddr nic, std::uint32_t qpn, std::uint64_t peer_ep_id);
  verbs::QueuePair& ensure_ud_qp();
  verbs::MemoryRegion* find_or_register(std::span<const std::byte> memory);

  /// Grab a send-staging slot (index into the staging arena).
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  std::span<std::byte> slot_span(std::uint32_t slot);

  /// Transmit a packed AM over the endpoint, consuming one credit and
  /// piggybacking owed credits.
  void transmit(Endpoint& ep, std::span<const std::byte> packed);
  /// Transmit a message already encoded into the staging slot `slot`
  /// (first `len` bytes); patches piggybacked credits in place.
  void transmit_slot(Endpoint& ep, std::uint32_t slot, std::size_t len);
  void send_internal(Endpoint& ep, wire::Kind kind, std::uint64_t token,
                     std::uint8_t ack_flags);
  void flush_backlog(Endpoint& ep);
  void return_credits(Endpoint& ep);

  /// Remove the endpoint from the routing maps (no more inbound dispatch).
  void detach_endpoint(Endpoint& ep);
  /// Deferred on_endpoint_down delivery.
  void notify_endpoint_down(Endpoint& ep, Errc reason);
  /// Queue the endpoint for reclamation after ep_reclaim_delay.
  void retire_endpoint(Endpoint& ep);
  void schedule_reap();
  void reap_endpoints();
  sim::Task<> keepalive_loop();

  Status one_sided(Endpoint& ep, verbs::Opcode opcode, std::span<std::byte> local,
                   const RemoteMemory& window, std::uint32_t offset, sim::Counter* done);

  sim::Task<> recv_progress();
  sim::Task<> send_progress();
  sim::Task<> handle_message(Endpoint& ep, std::span<std::byte> buffer, std::uint32_t len);
  sim::Task<> complete_target_read(std::uint64_t token, verbs::WcStatus status);
  void repost_recv_slot(std::uint32_t slot);

  /// Fire the exported counter an AM named as its target. Inside a CQ
  /// drain batch (and with config.coalesce_drain_fires set), sibling
  /// fires to the same counter merge into one add(n) flushed at end of
  /// drain — a multi-chunk multiget wakes its waiter once, not once per
  /// chunk. ucr.cq.drain_batch records completions per drain.
  void fire_exported(std::uint64_t counter_id);
  void begin_drain() { ++drain_depth_; }
  void end_drain(std::uint32_t completions);
  /// Post the chained WRs of the current begin/end_send_batch window.
  void flush_send_batch();

  verbs::Hca* hca_;
  UcrConfig config_;

  std::unique_ptr<verbs::CompletionQueue> send_cq_;
  std::unique_ptr<verbs::CompletionQueue> recv_cq_;
  verbs::SharedReceiveQueue srq_;

  // Receive arena: recv_buffers slots of eager_limit bytes, registered.
  // Allocated uninitialized (make_unique_for_overwrite): slots are written
  // by arriving data before any read, and skipping the multi-MB zeroing
  // keeps testbed construction off the benchmark's critical path.
  std::unique_ptr<std::byte[]> recv_arena_;
  verbs::MemoryRegion* recv_mr_ = nullptr;

  // Send-staging arena with a freelist of slots; same uninitialized
  // allocation — a slot is memcpy'd full before the wire reads it.
  std::unique_ptr<std::byte[]> send_arena_;
  verbs::MemoryRegion* send_mr_ = nullptr;
  std::vector<std::uint32_t> free_slots_;

  std::unordered_map<std::uint16_t, AmHandler> handlers_;
  std::unordered_map<std::uint64_t, sim::Counter*> exported_counters_;
  std::unordered_map<std::uint32_t, Endpoint*> ep_by_qpn_;
  std::unordered_map<std::uint32_t, Endpoint*> ep_by_ud_id_;  ///< local ep id -> UD endpoint
  verbs::QueuePair* ud_qp_ = nullptr;  ///< one shared datagram QP (lazy)
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  // The pending-op and handler maps are *iterated* when an endpoint fails
  // (fail_waiters wake order, handler invocation order) — that order is
  // sim-visible, so these are ordered maps over monotonic ids: iteration
  // equals registration order, deterministically. Lookup-only routing maps
  // (handlers_, ep_by_qpn_, ...) stay unordered.
  std::map<std::uint64_t, PendingOrigin> pending_origin_;
  std::map<std::uint64_t, PendingTargetRead> pending_reads_;
  std::map<std::uint64_t, PendingOneSided> pending_one_sided_;
  std::map<std::uint64_t, Region> region_cache_;

  std::map<std::uint64_t, EndpointDownHandler> down_handlers_;
  std::uint64_t next_down_handler_ = 1;
  bool reap_armed_ = false;

  std::uint64_t next_counter_id_ = 1;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_ep_id_ = 1;

  std::uint64_t eager_sent_ = 0;
  std::uint64_t rendezvous_sent_ = 0;
  std::uint64_t messages_received_ = 0;

  // Deferred exported-counter fires for the current CQ drain (fixed-size:
  // a drain rarely touches more than a handful of distinct counters;
  // overflow falls back to immediate, unbatched fires).
  struct DeferredFire {
    sim::Counter* counter = nullptr;
    std::uint64_t adds = 0;
  };
  std::array<DeferredFire, 8> deferred_fires_{};
  std::size_t deferred_fire_count_ = 0;
  std::uint32_t drain_depth_ = 0;  ///< send+recv drains may nest via co_await

  // Doorbell batching state (begin/end_send_batch): WRs chained for one
  // QP, posted together. Fixed-size; a full chain flushes mid-window.
  bool send_batch_active_ = false;
  verbs::QueuePair* batch_qp_ = nullptr;
  Endpoint* batch_ep_ = nullptr;
  std::array<verbs::SendWr, 16> batch_wrs_{};
  std::size_t batch_wr_count_ = 0;
};

}  // namespace rmc::ucr
