// UCR endpoints (§IV-A).
//
// Unlike MPI ranks, UCR connections are first-class endpoints: a client
// establishes one with a server, both sides can send active messages over
// it, and the failure of one endpoint (peer death, timeout) never affects
// others — the fault-isolation requirement of the data-center domain.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring_deque.hpp"
#include "simnet/time.hpp"
#include "verbs/qp.hpp"

namespace rmc::ucr {

class Runtime;

enum class EpState : std::uint8_t { connecting, ready, failed, closed };

/// Endpoint type requested at connect time (§IV-A: "The client has a
/// choice of the type of end-point that can be used (reliable vs
/// unreliable)"). The paper evaluates reliable endpoints; unreliable
/// (UD-based) endpoints implement its §VII future work: eager-only active
/// messages over a single shared datagram QP, so a server holds no
/// per-client QP or buffer state.
enum class EpType : std::uint8_t { reliable, unreliable };

class Endpoint {
 public:
  Endpoint(Runtime& runtime, std::uint64_t id, verbs::QueuePair& qp, std::uint32_t credits,
           EpType type = EpType::reliable)
      : runtime_(&runtime), id_(id), qp_(&qp), type_(type), send_credits_(credits) {}

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  std::uint64_t id() const { return id_; }
  EpType type() const { return type_; }
  EpState state() const { return state_; }
  Runtime& runtime() { return *runtime_; }

  /// Application cookie (e.g. the memcached connection object).
  void set_user_data(void* p) { user_data_ = p; }
  void* user_data() const { return user_data_; }

  std::uint32_t send_credits() const { return send_credits_; }
  std::size_t backlog_size() const { return backlog_.size(); }

 private:
  friend class Runtime;

  struct QueuedAm {
    std::vector<std::byte> packed;  ///< AmWire + header (+ eager data)
    bool is_rendezvous = false;
  };

  Runtime* runtime_;
  std::uint64_t id_;
  verbs::QueuePair* qp_;  ///< own RC QP, or the runtime's shared UD QP
  EpType type_ = EpType::reliable;
  EpState state_ = EpState::connecting;
  void* user_data_ = nullptr;
  sim::Time last_heard_ = 0;  ///< last inbound message (keepalive clock)
  sim::Time retired_at_ = 0;  ///< non-zero once queued for reclamation

  // UD addressing (unreliable endpoints): where datagrams for this
  // endpoint go, and which endpoint id to stamp into their headers.
  std::uint32_t ud_remote_nic_ = 0;
  std::uint32_t ud_remote_qpn_ = 0;
  std::uint32_t ud_remote_ep_ = 0;

  // ---- flow control (credit window, §IV buffer management) ----
  std::uint32_t send_credits_;        ///< my right to send eager messages
  std::uint32_t credits_owed_ = 0;    ///< peer messages processed, not yet credited
  bool credit_msg_inflight_ = false;  ///< bounded explicit credit returns
  RingDeque<QueuedAm> backlog_;       ///< sends waiting for credits
};

}  // namespace rmc::ucr
