// UCR configuration knobs.
#pragma once

#include <cstdint>

#include "simnet/time.hpp"

namespace rmc::ucr {

struct UcrConfig {
  /// Messages whose header+data fit one network buffer go out in a single
  /// transaction and are memcpy'd at the target (§V "Note on Small Set/Get
  /// operations": 8 KB). Larger messages use the rendezvous path: header
  /// only, then the target RDMA-reads the data.
  std::uint32_t eager_limit = 8192;

  /// Pre-posted receive buffers in the shared receive queue (SRQ design
  /// inherited from MVAPICH, [11]).
  std::uint32_t recv_buffers = 1024;

  /// Credit window per endpoint: max eager messages in flight towards a
  /// peer before the sender's backlog queue kicks in.
  std::uint32_t credits_per_ep = 32;

  /// Return credits explicitly once this many are owed (otherwise they
  /// piggyback on reverse traffic).
  std::uint32_t credit_return_threshold = 16;

  /// Runtime dispatch + handler invocation cost per active message.
  sim::Time am_dispatch_ns = 500;

  /// memcpy between network buffers and application memory (eager path).
  double memcpy_ns_per_byte = 0.10;

  /// Completion detection: false = busy-polling CQs (the paper's choice,
  /// §II-A1), true = event-driven with interrupt cost per completion
  /// (exposed for the ablation benchmark).
  bool event_driven_cq = false;

  /// Pipelined CQ drains: exported-counter fires landing in the same
  /// drain batch coalesce into one add(n) at end of drain, so the waiter
  /// of a multi-chunk multiget resumes once instead of once per chunk.
  /// Single-completion drains flush at the same sim time either way, so
  /// sequential single-op latencies (fig 3/4) are unaffected.
  bool coalesce_drain_fires = true;

  /// Keepalive probe interval for reliable endpoints. 0 (default)
  /// disables the prober entirely — note that a non-zero interval keeps a
  /// perpetual task alive, so drivers must use run_until, not run().
  sim::Time keepalive_interval = 0;

  /// Declare an endpoint dead after this much silence. 0 derives
  /// 4 * keepalive_interval.
  sim::Time keepalive_timeout = 0;

  /// How long a failed/closed endpoint lingers before its storage (and RC
  /// QP) is reclaimed. The grace period lets in-flight references — work
  /// items queued at server workers, handler notifications — drain before
  /// the Endpoint object disappears.
  sim::Time ep_reclaim_delay = 5'000'000;  // 5 ms
};

}  // namespace rmc::ucr
