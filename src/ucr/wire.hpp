// UCR active-message wire format (internal).
//
// Every UCR message starts with a fixed AmWire header, followed by the
// user header and (eager only) the data. The same layout carries internal
// acknowledgement and credit messages (§IV-C's "optional internal
// messages").
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace rmc::ucr::wire {

enum class Kind : std::uint8_t {
  eager,         ///< header + data in one transaction (Fig. 2b)
  rendezvous,    ///< header only; target RDMA-reads the data (Fig. 2a)
  internal_ack,  ///< counter update back to the origin
  credit,        ///< explicit credit return (flow control)
  ping,          ///< keepalive probe (liveness, not flow control)
  pong,          ///< keepalive answer
};

/// Flags on internal_ack saying which origin-side counters to bump, and on
/// eager/rendezvous saying which acks the origin wants.
enum AckFlags : std::uint8_t {
  kAckOrigin = 1,      ///< data has been pulled; origin buffer reusable
  kAckCompletion = 2,  ///< target completion handler has run
};

struct AmWire {
  Kind kind = Kind::eager;
  std::uint8_t want_flags = 0;       ///< acks requested by the origin
  std::uint16_t msg_id = 0;          ///< header-handler selector
  std::uint16_t header_len = 0;
  std::uint16_t credits = 0;         ///< piggybacked credit return
  std::uint32_t data_len = 0;
  std::uint64_t target_counter = 0;  ///< counter ref at the target (0=none)
  std::uint64_t token = 0;           ///< origin-side pending-op correlation
  std::uint64_t rndz_addr = 0;       ///< rendezvous: origin data address
  std::uint32_t rndz_rkey = 0;       ///< rendezvous: origin data rkey
  std::uint8_t ack_flags = 0;        ///< internal_ack: which counters fired
  std::uint32_t dst_ep = 0;          ///< UD endpoints: target endpoint id

  static constexpr std::size_t kSize = 48;

  void encode(std::byte* out) const {
    std::byte buf[kSize] = {};
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(buf + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(kind);
    put(want_flags);
    put(msg_id);
    put(header_len);
    put(credits);
    put(data_len);
    put(target_counter);
    put(token);
    put(rndz_addr);
    put(rndz_rkey);
    put(ack_flags);
    put(dst_ep);
    std::memcpy(out, buf, kSize);
  }

  static AmWire decode(const std::byte* in) {
    AmWire w;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(w.kind);
    get(w.want_flags);
    get(w.msg_id);
    get(w.header_len);
    get(w.credits);
    get(w.data_len);
    get(w.target_counter);
    get(w.token);
    get(w.rndz_addr);
    get(w.rndz_rkey);
    get(w.ack_flags);
    get(w.dst_ep);
    return w;
  }
};

static_assert(AmWire::kSize >= 1 + 1 + 2 + 2 + 2 + 4 + 8 + 8 + 8 + 4 + 1 + 4,
              "wire header fits");

}  // namespace rmc::ucr::wire
