#include "ucr/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <iterator>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace rmc::ucr {

namespace {

const std::uint16_t kProfSendMessage =
    obs::profiler().register_scope("prof.ucr.send.message", obs::ScopeKind::engine);
const std::uint16_t kProfSendComplete =
    obs::profiler().register_scope("prof.ucr.send.complete", obs::ScopeKind::engine);
const std::uint16_t kProfRecvRoute =
    obs::profiler().register_scope("prof.ucr.recv.route", obs::ScopeKind::engine);
const std::uint16_t kProfAmDispatch =
    obs::profiler().register_scope("prof.ucr.am.dispatch", obs::ScopeKind::engine);

// wr_id tagging so one send CQ can carry both staging-send and RDMA-read
// completions.
constexpr std::uint64_t kTagShift = 62;
constexpr std::uint64_t kTagSend = 1ull << kTagShift;
constexpr std::uint64_t kTagRead = 2ull << kTagShift;
constexpr std::uint64_t kTagOneSided = 3ull << kTagShift;
constexpr std::uint64_t kTagMask = 3ull << kTagShift;

/// Byte offset of AmWire::credits within the encoded header (see encode()).
constexpr std::size_t kCreditsOffset = 1 + 1 + 2 + 2;

std::span<const std::byte> const_span(const std::vector<std::byte>& v) {
  return {v.data(), v.size()};
}

}  // namespace

Runtime::Runtime(verbs::Hca& hca, UcrConfig config) : hca_(&hca), config_(config) {
  const auto cq_mode =
      config_.event_driven_cq ? verbs::CqMode::event_driven : verbs::CqMode::polling;
  send_cq_ = hca.create_cq(cq_mode);
  recv_cq_ = hca.create_cq(cq_mode);

  const std::size_t recv_bytes = static_cast<std::size_t>(config_.recv_buffers) * config_.eager_limit;
  recv_arena_ = std::make_unique_for_overwrite<std::byte[]>(recv_bytes);
  recv_mr_ = &hca.reg_mr({recv_arena_.get(), recv_bytes});
  for (std::uint32_t slot = 0; slot < config_.recv_buffers; ++slot) {
    repost_recv_slot(slot);
  }

  // Staging arena sized to the credit window times a generous endpoint
  // count; grows never — exhaustion backpressures through acquire_slot.
  const std::uint32_t slots = config_.recv_buffers;
  const std::size_t send_bytes = static_cast<std::size_t>(slots) * config_.eager_limit;
  send_arena_ = std::make_unique_for_overwrite<std::byte[]>(send_bytes);
  send_mr_ = &hca.reg_mr({send_arena_.get(), send_bytes});
  // rmclint:allow(zeroalloc): constructor-time freelist reservation
  free_slots_.reserve(slots);
  // rmclint:allow(zeroalloc): constructor-time freelist fill within the reservation above
  for (std::uint32_t s = 0; s < slots; ++s) free_slots_.push_back(slots - 1 - s);

  scheduler().spawn(recv_progress());
  scheduler().spawn(send_progress());
  // The keepalive prober is perpetual, so it is opt-in: drivers that
  // enable it must run the scheduler with run_until.
  if (config_.keepalive_interval > 0) scheduler().spawn(keepalive_loop());
}

Runtime::~Runtime() = default;

CounterRef Runtime::export_counter(sim::Counter& counter) {
  const std::uint64_t id = next_counter_id_++;
  // rmclint:allow(zeroalloc): counter export happens at connection setup, once per exported counter
  exported_counters_.emplace(id, &counter);
  return CounterRef{id};
}

void Runtime::register_region(std::span<std::byte> memory) {
  (void)find_or_register(memory);
}

verbs::MemoryRegion* Runtime::find_or_register(std::span<const std::byte> memory) {
  const auto base = reinterpret_cast<std::uint64_t>(memory.data());
  auto it = region_cache_.upper_bound(base);
  if (it != region_cache_.begin()) {
    --it;
    if (base >= it->first && base + memory.size() <= it->first + it->second.len) {
      return it->second.mr;
    }
  }
  // Registration-cache miss: register on the fly (charges the pin cost).
  auto mutable_span = std::span<std::byte>(const_cast<std::byte*>(memory.data()), memory.size());
  verbs::MemoryRegion* mr = &hca_->reg_mr(mutable_span);
  region_cache_[base] = Region{memory.size(), mr};
  return mr;
}

std::uint32_t Runtime::acquire_slot() {
  assert(!free_slots_.empty() && "send staging exhausted; raise recv_buffers");
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

// rmclint:allow(zeroalloc): returns a slot index to the freelist; capacity fixed at construction
void Runtime::release_slot(std::uint32_t slot) { free_slots_.push_back(slot); }

std::span<std::byte> Runtime::slot_span(std::uint32_t slot) {
  return {send_arena_.get() + static_cast<std::size_t>(slot) * config_.eager_limit,
          config_.eager_limit};
}

void Runtime::repost_recv_slot(std::uint32_t slot) {
  std::span<std::byte> buf{
      recv_arena_.get() + static_cast<std::size_t>(slot) * config_.eager_limit,
      config_.eager_limit};
  srq_.post({.wr_id = slot, .buffer = buf, .lkey = recv_mr_->lkey()});
}

// ------------------------------------------------------------ connection

Endpoint& Runtime::adopt_qp(verbs::QueuePair& qp) {
  // rmclint:allow(zeroalloc): endpoint adoption is connection setup, not a request path
  auto ep = std::make_unique<Endpoint>(*this, next_ep_id_++, qp, config_.credits_per_ep);
  Endpoint& ref = *ep;
  ref.state_ = EpState::ready;
  ref.last_heard_ = scheduler().now();
  // rmclint:allow(zeroalloc): routing-map entry added once per connection
  ep_by_qpn_.emplace(qp.qp_num(), &ref);
  // rmclint:allow(zeroalloc): endpoint registry entry added once per connection
  endpoints_.push_back(std::move(ep));
  // Async-event channel: the QP erroring out (peer disconnect, transport
  // retry exhaustion) fails the endpoint. close()/fail_endpoint detach
  // the qpn entry first, so self-inflicted errors are a no-op here.
  qp.set_on_error([this](verbs::QueuePair& q) {
    auto it = ep_by_qpn_.find(q.qp_num());
    if (it != ep_by_qpn_.end()) fail_endpoint(*it->second, Errc::disconnected);
  });
  return ref;
}

verbs::QueuePair& Runtime::ensure_ud_qp() {
  if (!ud_qp_) ud_qp_ = &hca_->create_ud_qp(*send_cq_, *recv_cq_, &srq_);
  return *ud_qp_;
}

Endpoint& Runtime::adopt_ud_peer(sim::NicAddr nic, std::uint32_t qpn,
                                 std::uint64_t peer_ep_id) {
  // rmclint:allow(zeroalloc): UD peer adoption happens once per new datagram peer, not per message
  auto ep = std::make_unique<Endpoint>(*this, next_ep_id_++, ensure_ud_qp(),
                                       config_.credits_per_ep, EpType::unreliable);
  Endpoint& ref = *ep;
  ref.state_ = EpState::ready;
  ref.last_heard_ = scheduler().now();
  ref.ud_remote_nic_ = nic;
  ref.ud_remote_qpn_ = qpn;
  ref.ud_remote_ep_ = static_cast<std::uint32_t>(peer_ep_id);
  // rmclint:allow(zeroalloc): routing-map entry added once per datagram endpoint
  ep_by_ud_id_.emplace(static_cast<std::uint32_t>(ref.id()), &ref);
  // rmclint:allow(zeroalloc): endpoint registry entry added once per connection
  endpoints_.push_back(std::move(ep));
  return ref;
}

void Runtime::listen(std::uint16_t port, std::function<void(Endpoint&)> on_client) {
  // rmclint:allow(zeroalloc): listener setup, one shared callback per listen() call
  auto shared_cb = std::make_shared<std::function<void(Endpoint&)>>(std::move(on_client));
  hca_->listen(
      port,
      {.make_qp = [this] { return &hca_->create_qp(*send_cq_, *recv_cq_, &srq_); },
       .on_established =
           [this, shared_cb](verbs::QueuePair& qp) {
             Endpoint& ep = adopt_qp(qp);
             if (*shared_cb) (*shared_cb)(ep);
           },
       .on_ud_connect =
           [this, shared_cb](sim::NicAddr nic, std::uint32_t qpn, std::uint64_t peer_ep)
           -> std::optional<std::pair<std::uint32_t, std::uint64_t>> {
             Endpoint& ep = adopt_ud_peer(nic, qpn, peer_ep);
             if (*shared_cb) (*shared_cb)(ep);
             return std::make_pair(ensure_ud_qp().qp_num(), ep.id());
           }});
}

sim::Task<Result<Endpoint*>> Runtime::connect(sim::NicAddr dst, std::uint16_t port,
                                              EpType type, sim::Time timeout) {
  if (type == EpType::unreliable) {
    // Reserve the endpoint id first so the peer can address us from its
    // very first datagram.
    const std::uint64_t my_ep_id = next_ep_id_;
    auto answer =
        co_await hca_->connect_ud(dst, port, ensure_ud_qp().qp_num(), my_ep_id, timeout);
    if (!answer.ok()) co_return answer.error();
    Endpoint& ep = adopt_ud_peer(dst, answer->first, answer->second);
    co_return &ep;
  }
  auto qp = co_await hca_->connect(dst, port, *send_cq_, *recv_cq_, &srq_, timeout);
  if (!qp.ok()) {
    if (qp.error() == Errc::timed_out) {
      obs::registry().counter("ucr.connect.timeouts").inc();
    }
    co_return qp.error();
  }
  co_return &adopt_qp(**qp);
}

void Runtime::close(Endpoint& ep) {
  if (ep.state_ == EpState::closed) return;
  if (ep.state_ == EpState::failed) {
    // Already torn down and queued for reclamation by fail_endpoint.
    ep.state_ = EpState::closed;
    return;
  }
  const bool notify_peer = ep.state_ == EpState::ready;
  // Mark closed *before* disconnecting: the QP's on_error fires during
  // disconnect and must see a terminal state so it doesn't double-fail.
  ep.state_ = EpState::closed;
  ep.backlog_.clear();
  detach_endpoint(ep);
  if (ep.type_ == EpType::reliable && notify_peer) hca_->disconnect(*ep.qp_);
  retire_endpoint(ep);
}

void Runtime::fail_endpoint(Endpoint& ep, Errc reason) {
  if (ep.state_ == EpState::closed || ep.state_ == EpState::failed) return;
  ep.state_ = EpState::failed;
  ep.backlog_.clear();
  obs::registry().counter("ucr.ep.failures").inc();
  detach_endpoint(ep);
  // Error the QP: flushes its outstanding verbs WRs (their completions
  // find the pending maps already cleaned below and no-op) and, if the
  // wire still works, tells the peer. The UD QP is shared — leave it be.
  if (ep.type_ == EpType::reliable) hca_->disconnect(*ep.qp_);

  // Erase every pending operation tied to this endpoint and wake its
  // waiters with failure *now* — this is the bug class this layer is
  // for: nobody should ride out op_timeout against a dead peer.
  for (auto it = pending_origin_.begin(); it != pending_origin_.end();) {
    if (it->second.ep == &ep) {
      if (it->second.origin) it->second.origin->fail_waiters();
      if (it->second.completion) it->second.completion->fail_waiters();
      it = pending_origin_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_reads_.begin(); it != pending_reads_.end();) {
    it = it->second.ep == &ep ? pending_reads_.erase(it) : std::next(it);
  }
  for (auto it = pending_one_sided_.begin(); it != pending_one_sided_.end();) {
    if (it->second.ep == &ep) {
      if (it->second.done) it->second.done->fail_waiters();
      it = pending_one_sided_.erase(it);
    } else {
      ++it;
    }
  }

  notify_endpoint_down(ep, reason);
  retire_endpoint(ep);
}

void Runtime::detach_endpoint(Endpoint& ep) {
  if (ep.type_ == EpType::unreliable) {
    ep_by_ud_id_.erase(static_cast<std::uint32_t>(ep.id()));
  } else {
    ep_by_qpn_.erase(ep.qp_->qp_num());
  }
}

std::uint64_t Runtime::on_endpoint_down(EndpointDownHandler handler) {
  const std::uint64_t id = next_down_handler_++;
  // rmclint:allow(zeroalloc): handler registration at subscriber setup
  down_handlers_.emplace(id, std::move(handler));
  return id;
}

void Runtime::remove_endpoint_handler(std::uint64_t id) { down_handlers_.erase(id); }

void Runtime::notify_endpoint_down(Endpoint& ep, Errc reason) {
  if (down_handlers_.empty()) return;
  // Deferred to the next scheduler turn so handlers observe a settled
  // endpoint (pending maps cleaned, waiters woken) and may re-enter the
  // runtime (reconnect, close) without re-entrancy surprises. The
  // Endpoint object outlives the turn: reclamation waits ep_reclaim_delay.
  // rmclint:allow(coro-lifetime): the captured Endpoint pointer stays valid —
  // reclamation is deferred by ep_reclaim_delay, strictly after this turn.
  scheduler().call_at(scheduler().now(), [this, ep = &ep, reason] {
    std::vector<EndpointDownHandler*> snapshot;
    // rmclint:allow(zeroalloc): failure path — endpoint death is off the steady-state budget
    snapshot.reserve(down_handlers_.size());
    // rmclint:allow(zeroalloc): failure path — endpoint death is off the steady-state budget
    for (auto& [id, fn] : down_handlers_) snapshot.push_back(&fn);
    for (auto* fn : snapshot) {
      if (*fn) (*fn)(*ep, reason);
    }
  });
}

void Runtime::retire_endpoint(Endpoint& ep) {
  if (ep.retired_at_ != 0) return;
  ep.retired_at_ = scheduler().now();
  schedule_reap();
}

void Runtime::schedule_reap() {
  if (reap_armed_) return;
  reap_armed_ = true;
  scheduler().call_in(config_.ep_reclaim_delay + 1, [this] { reap_endpoints(); });
}

void Runtime::reap_endpoints() {
  reap_armed_ = false;
  const sim::Time now = scheduler().now();
  bool stragglers = false;
  std::erase_if(endpoints_, [&](std::unique_ptr<Endpoint>& ep) {
    if (ep->retired_at_ == 0) return false;
    if (now < ep->retired_at_ + config_.ep_reclaim_delay) {
      stragglers = true;
      return false;
    }
    if (ep->type_ == EpType::reliable) {
      // Silence the async-event hook before destroying: this teardown is
      // ours, not a failure to report.
      ep->qp_->set_on_error(nullptr);
      hca_->destroy_qp(*ep->qp_);
    }
    obs::registry().counter("ucr.ep.reaped").inc();
    return true;
  });
  if (stragglers) schedule_reap();
}

sim::Task<> Runtime::keepalive_loop() {
  const sim::Time interval = config_.keepalive_interval;
  const sim::Time timeout =
      config_.keepalive_timeout != 0 ? config_.keepalive_timeout : 4 * interval;
  while (true) {
    co_await scheduler().delay(interval);
    const sim::Time now = scheduler().now();
    for (auto& ep : endpoints_) {
      if (ep->type_ != EpType::reliable || ep->state_ != EpState::ready) continue;
      const sim::Time silence = now - ep->last_heard_;
      if (silence >= timeout) {
        obs::registry().counter("ucr.keepalive.timeouts").inc();
        fail_endpoint(*ep, Errc::timed_out);
      } else if (silence >= interval) {
        obs::registry().counter("ucr.keepalive.probes").inc();
        send_internal(*ep, wire::Kind::ping, 0, 0);
      }
    }
  }
}

// -------------------------------------------------------- send machinery

Status Runtime::send_message(Endpoint& ep, std::uint16_t msg_id,
                             std::span<const std::byte> header,
                             std::span<const std::byte> data, sim::Counter* origin_counter,
                             CounterRef target_counter, sim::Counter* completion_counter) {
  if (ep.state_ != EpState::ready) return Errc::disconnected;
  if (header.size() > std::uint16_t(-1)) return Errc::invalid_argument;
  obs::ProfScope prof{kProfSendMessage};

  const std::size_t eager_total = wire::AmWire::kSize + header.size() + data.size();
  const bool eager = eager_total <= config_.eager_limit;
  if (!eager && wire::AmWire::kSize + header.size() > config_.eager_limit) {
    return Errc::invalid_argument;  // header alone must fit a buffer
  }
  if (ep.type_ == EpType::unreliable) {
    // Datagram endpoints are eager-only (no RC to RDMA-read over) and
    // bounded by the UD path MTU.
    if (!eager || eager_total > hca_->costs().ud_mtu) return Errc::invalid_argument;
  }

  wire::AmWire am;
  am.dst_ep = ep.ud_remote_ep_;
  am.msg_id = msg_id;
  am.header_len = static_cast<std::uint16_t>(header.size());
  am.data_len = static_cast<std::uint32_t>(data.size());
  am.target_counter = target_counter.id;
  am.token = next_token_++;

  const std::size_t packed_len =
      eager ? eager_total : wire::AmWire::kSize + header.size();
  if (eager) {
    am.kind = wire::Kind::eager;
    am.want_flags = completion_counter ? wire::kAckCompletion : 0;
    ++eager_sent_;
    obs::registry().counter("ucr.eager.sends").inc();
    if (am.want_flags) {
      pending_origin_[am.token] =
          PendingOrigin{nullptr, completion_counter, am.want_flags, &ep};
    }
  } else {
    am.kind = wire::Kind::rendezvous;
    am.want_flags = static_cast<std::uint8_t>((origin_counter ? wire::kAckOrigin : 0) |
                                              (completion_counter ? wire::kAckCompletion : 0));
    verbs::MemoryRegion* mr = find_or_register(data);
    am.rndz_addr = reinterpret_cast<std::uint64_t>(data.data());
    am.rndz_rkey = mr->rkey();
    ++rendezvous_sent_;
    obs::registry().counter("ucr.rendezvous.sends").inc();
    if (am.want_flags) {
      pending_origin_[am.token] =
          PendingOrigin{origin_counter, completion_counter, am.want_flags, &ep};
    }
  }

  if (ep.send_credits_ == 0) {
    // Credit stall: the registered staging arena may be needed for credit
    // returns, so park a heap copy on the backlog. This is the only
    // allocating branch of the send path; ucr.backlog.stalls counts it.
    obs::registry().counter("ucr.backlog.stalls").inc();
    std::vector<std::byte> packed(packed_len);
    am.encode(packed.data());
    std::memcpy(packed.data() + wire::AmWire::kSize, header.data(), header.size());
    if (eager && !data.empty()) {
      std::memcpy(packed.data() + wire::AmWire::kSize + header.size(), data.data(),
                  data.size());
    }
    // rmclint:allow(zeroalloc): backpressure path (credits/window exhausted), counted by ucr.backlog.stalls
    ep.backlog_.push_back({std::move(packed), !eager});
  } else {
    // Credits available: encode wire header + user header (+ eager data)
    // straight into the registered bounce buffer — no intermediate copy.
    --ep.send_credits_;
    const std::uint32_t slot = acquire_slot();
    auto buf = slot_span(slot);
    assert(packed_len <= buf.size());
    am.encode(buf.data());
    std::memcpy(buf.data() + wire::AmWire::kSize, header.data(), header.size());
    if (eager && !data.empty()) {
      std::memcpy(buf.data() + wire::AmWire::kSize + header.size(), data.data(),
                  data.size());
    }
    transmit_slot(ep, slot, packed_len);
  }

  // Eager local completion: the message was staged (copied), so the
  // caller's header and data buffers are immediately reusable (§IV-C).
  if (eager && origin_counter) origin_counter->add();
  return {};
}

void Runtime::transmit(Endpoint& ep, std::span<const std::byte> packed) {
  const std::uint32_t slot = acquire_slot();
  auto buf = slot_span(slot);
  assert(packed.size() <= buf.size());
  std::memcpy(buf.data(), packed.data(), packed.size());
  transmit_slot(ep, slot, packed.size());
}

void Runtime::transmit_slot(Endpoint& ep, std::uint32_t slot, std::size_t len) {
  auto buf = slot_span(slot);

  // Piggyback owed credits by patching the already-encoded wire header.
  const auto credits = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(ep.credits_owed_, std::uint16_t(-1)));
  std::memcpy(buf.data() + kCreditsOffset, &credits, sizeof(credits));
  ep.credits_owed_ -= credits;

  verbs::SendWr wr{.wr_id = kTagSend | slot,
                   .opcode = verbs::Opcode::send,
                   .local = buf.first(len),
                   .lkey = send_mr_->lkey()};
  if (ep.type_ == EpType::unreliable) {
    wr.ud_remote_nic = ep.ud_remote_nic_;
    wr.ud_remote_qpn = ep.ud_remote_qpn_;
  }
  if (send_batch_active_) {
    // Chain the WR; end_send_batch posts the chain with one doorbell.
    // The staging slot stays valid until its completion either way. UD
    // WRs carry their own addressing, so one shared UD QP chains fine.
    if ((batch_qp_ != nullptr && batch_qp_ != ep.qp_) ||
        batch_wr_count_ == batch_wrs_.size()) {
      flush_send_batch();
    }
    batch_qp_ = ep.qp_;
    batch_ep_ = &ep;
    batch_wrs_[batch_wr_count_++] = wr;
    return;
  }
  if (!ep.qp_->post_send(wr).ok()) {
    release_slot(slot);
    fail_endpoint(ep);
  }
}

void Runtime::begin_send_batch() {
  flush_send_batch();  // defensive: not re-entrant, flush any leftovers
  send_batch_active_ = true;
}

void Runtime::end_send_batch() {
  flush_send_batch();
  send_batch_active_ = false;
}

void Runtime::flush_send_batch() {
  if (batch_wr_count_ == 0) {
    batch_qp_ = nullptr;
    batch_ep_ = nullptr;
    return;
  }
  verbs::QueuePair* qp = batch_qp_;
  Endpoint* ep = batch_ep_;
  const std::size_t n = batch_wr_count_;
  batch_wr_count_ = 0;
  batch_qp_ = nullptr;
  batch_ep_ = nullptr;
  if (!qp->post_send_batch(std::span<const verbs::SendWr>{batch_wrs_.data(), n}).ok()) {
    if (ep != nullptr) fail_endpoint(*ep);
  }
}

void Runtime::send_internal(Endpoint& ep, wire::Kind kind, std::uint64_t token,
                            std::uint8_t ack_flags) {
  if (ep.state_ != EpState::ready) return;
  wire::AmWire am;
  am.dst_ep = ep.ud_remote_ep_;
  am.kind = kind;
  am.token = token;
  am.ack_flags = ack_flags;
  // Internal messages bypass the credit window (bounded by outstanding
  // operations, which are themselves credit-bounded). Encode straight
  // into the staging slot; nothing to copy.
  const std::uint32_t slot = acquire_slot();
  am.encode(slot_span(slot).data());
  transmit_slot(ep, slot, wire::AmWire::kSize);
}

void Runtime::flush_backlog(Endpoint& ep) {
  while (ep.send_credits_ > 0 && !ep.backlog_.empty()) {
    auto queued = std::move(ep.backlog_.front());
    ep.backlog_.pop_front();
    --ep.send_credits_;
    transmit(ep, const_span(queued.packed));
  }
}

void Runtime::return_credits(Endpoint& ep) {
  ++ep.credits_owed_;
  if (ep.credits_owed_ >= config_.credit_return_threshold) {
    send_internal(ep, wire::Kind::credit, 0, 0);  // transmit() flushes owed
  }
}

// ------------------------------------------------- one-sided put / get

Runtime::RemoteMemory Runtime::expose_memory(std::span<std::byte> memory) {
  verbs::MemoryRegion* mr = find_or_register(memory);
  return RemoteMemory{reinterpret_cast<std::uint64_t>(memory.data()), mr->rkey(),
                      static_cast<std::uint32_t>(memory.size())};
}

Status Runtime::one_sided(Endpoint& ep, verbs::Opcode opcode, std::span<std::byte> local,
                          const RemoteMemory& window, std::uint32_t offset,
                          sim::Counter* done) {
  if (ep.state_ != EpState::ready) return Errc::disconnected;
  if (ep.type_ != EpType::reliable) return Errc::invalid_argument;  // UD has no RDMA
  if (offset > window.length || local.size() > window.length - offset) {
    return Errc::invalid_argument;
  }
  verbs::MemoryRegion* mr = find_or_register(local);
  const std::uint64_t token = next_token_++;
  // rmclint:allow(zeroalloc): per in-flight one-sided read tracking; off the PR 2 active-message GET budget
  if (done) pending_one_sided_.emplace(token, PendingOneSided{done, &ep});
  const verbs::SendWr wr{.wr_id = kTagOneSided | token,
                         .opcode = opcode,
                         .local = local,
                         .lkey = mr->lkey(),
                         .remote_addr = window.addr + offset,
                         .rkey = window.rkey};
  if (send_batch_active_) {
    // One-sided WRs chain into the same doorbell window as AM sends (the
    // RFP ring server batches one sweep's response writes this way). The
    // caller's buffer must stay valid until completion — true for the
    // slot-indexed staging arenas that use this path.
    if ((batch_qp_ != nullptr && batch_qp_ != ep.qp_) ||
        batch_wr_count_ == batch_wrs_.size()) {
      flush_send_batch();
    }
    batch_qp_ = ep.qp_;
    batch_ep_ = &ep;
    batch_wrs_[batch_wr_count_++] = wr;
    return {};
  }
  if (!ep.qp_->post_send(wr).ok()) {
    pending_one_sided_.erase(token);
    fail_endpoint(ep);
    return Errc::disconnected;
  }
  return {};
}

Status Runtime::put(Endpoint& ep, std::span<const std::byte> src, const RemoteMemory& window,
                    std::uint32_t offset, sim::Counter* done) {
  return one_sided(ep, verbs::Opcode::rdma_write,
                   {const_cast<std::byte*>(src.data()), src.size()}, window, offset, done);
}

Status Runtime::get(Endpoint& ep, std::span<std::byte> dst, const RemoteMemory& window,
                    std::uint32_t offset, sim::Counter* done) {
  return one_sided(ep, verbs::Opcode::rdma_read, dst, window, offset, done);
}

// ------------------------------------------------------ progress engines

void Runtime::fire_exported(std::uint64_t counter_id) {
  if (counter_id == 0) return;
  auto it = exported_counters_.find(counter_id);
  if (it == exported_counters_.end()) return;
  sim::Counter* counter = it->second;
  if (drain_depth_ == 0 || !config_.coalesce_drain_fires) {
    counter->add();
    return;
  }
  for (std::size_t i = 0; i < deferred_fire_count_; ++i) {
    if (deferred_fires_[i].counter == counter) {
      ++deferred_fires_[i].adds;
      return;
    }
  }
  if (deferred_fire_count_ == deferred_fires_.size()) {
    counter->add();  // table full: fire now (correct, just unbatched)
    return;
  }
  deferred_fires_[deferred_fire_count_++] = DeferredFire{counter, 1};
}

void Runtime::end_drain(std::uint32_t completions) {
  obs::registry().timer("ucr.cq.drain_batch").record(completions);
  assert(drain_depth_ > 0);
  if (--drain_depth_ > 0) return;
  // Flush coalesced fires: one add(n) — and so one wake-up — per counter,
  // however many sibling completions the drain carried for it.
  const std::size_t n = deferred_fire_count_;
  deferred_fire_count_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    deferred_fires_[i].counter->add(deferred_fires_[i].adds);
  }
}

sim::Task<> Runtime::send_progress() {
  while (true) {
    auto wc = co_await send_cq_->next();
    // Batch drain: after the awaited completion, pull any others already
    // queued (polling mode) without bouncing through the awaitable again.
    begin_drain();
    std::uint32_t drained = 0;
    while (true) {
      ++drained;
      const std::uint64_t tag = wc.wr_id & kTagMask;
      const std::uint64_t value = wc.wr_id & ~kTagMask;
      if (tag == kTagSend) {
        obs::ProfScope prof{kProfSendComplete};
        release_slot(static_cast<std::uint32_t>(value));
        if (wc.status != verbs::WcStatus::success) {
          auto it = ep_by_qpn_.find(wc.qp_num);
          if (it != ep_by_qpn_.end()) fail_endpoint(*it->second);
        }
      } else if (tag == kTagRead) {
        co_await complete_target_read(value, wc.status);
      } else if (tag == kTagOneSided) {
        auto it = pending_one_sided_.find(value);
        if (it != pending_one_sided_.end()) {
          if (wc.status == verbs::WcStatus::success) {
            it->second.done->add();
          } else {
            // Wake the waiter with failure now; fail_endpoint below tears
            // the rest of the endpoint state down.
            it->second.done->fail_waiters();
          }
          pending_one_sided_.erase(it);
        }
        if (wc.status != verbs::WcStatus::success) {
          auto ep_it = ep_by_qpn_.find(wc.qp_num);
          if (ep_it != ep_by_qpn_.end()) fail_endpoint(*ep_it->second);
        }
      }
      auto more = send_cq_->try_next_ready();
      if (!more) break;
      wc = *more;
    }
    end_drain(drained);
  }
}

sim::Task<> Runtime::recv_progress() {
  while (true) {
    auto wc = co_await recv_cq_->next();
    // Batch drain queued completions (polling mode) before suspending.
    begin_drain();
    std::uint32_t drained = 0;
    while (true) {
      ++drained;
      const auto slot = static_cast<std::uint32_t>(wc.wr_id);
      if (wc.status == verbs::WcStatus::success) {
        ++messages_received_;
        obs::registry().counter("ucr.msgs.received").inc();
        std::span<std::byte> buf{
            recv_arena_.get() + static_cast<std::size_t>(slot) * config_.eager_limit,
            config_.eager_limit};
        Endpoint* ep = nullptr;
        {
          // Sync routing prologue only: handle_message below may suspend,
          // and a ProfScope must never span a co_await.
          obs::ProfScope prof{kProfRecvRoute};
          if (ud_qp_ && wc.qp_num == ud_qp_->qp_num()) {
            // Datagram: route by the endpoint id stamped into the AM header.
            const wire::AmWire am = wire::AmWire::decode(buf.data());
            auto it = ep_by_ud_id_.find(am.dst_ep);
            if (it != ep_by_ud_id_.end()) ep = it->second;
          } else {
            auto it = ep_by_qpn_.find(wc.qp_num);
            if (it != ep_by_qpn_.end()) ep = it->second;
          }
        }
        if (ep) co_await handle_message(*ep, buf, wc.byte_len);
      }
      repost_recv_slot(slot);
      auto more = recv_cq_->try_next_ready();
      if (!more) break;
      wc = *more;
    }
    end_drain(drained);
  }
}

sim::Task<> Runtime::handle_message(Endpoint& ep, std::span<std::byte> buffer,
                                    std::uint32_t len) {
  assert(len >= wire::AmWire::kSize);
  (void)len;
  const wire::AmWire am = wire::AmWire::decode(buffer.data());

  // Any inbound traffic proves the peer alive.
  ep.last_heard_ = scheduler().now();

  // Credits piggybacked on anything unblock our sends.
  if (am.credits) {
    ep.send_credits_ += am.credits;
    flush_backlog(ep);
  }

  switch (am.kind) {
    case wire::Kind::credit:
      co_return;

    case wire::Kind::ping:
      send_internal(ep, wire::Kind::pong, 0, 0);
      co_return;

    case wire::Kind::pong:
      co_return;  // last_heard_ above is the whole point

    case wire::Kind::internal_ack: {
      auto it = pending_origin_.find(am.token);
      if (it == pending_origin_.end()) co_return;
      PendingOrigin& pending = it->second;
      if ((am.ack_flags & wire::kAckOrigin) && pending.origin) pending.origin->add();
      if ((am.ack_flags & wire::kAckCompletion) && pending.completion) {
        pending.completion->add();
      }
      pending.awaiting &= static_cast<std::uint8_t>(~am.ack_flags);
      if (pending.awaiting == 0) pending_origin_.erase(it);
      co_return;
    }

    case wire::Kind::eager: {
      const sim::Time dispatch_start = scheduler().now();
      co_await hca_->host().cpu().consume(
          config_.am_dispatch_ns +
          static_cast<sim::Time>(am.data_len * config_.memcpy_ns_per_byte));
      // Post-consume dispatch is straight-line code: handler lookup, the
      // payload landing memcpy, counter fire and credit return.
      obs::ProfScope prof_dispatch{kProfAmDispatch};
      auto handler_it = handlers_.find(am.msg_id);
      if (handler_it == handlers_.end()) {
        RMC_LOG_WARN("ucr: no handler for msg_id %u", am.msg_id);
        return_credits(ep);
        co_return;
      }
      const std::span<const std::byte> header{buffer.data() + wire::AmWire::kSize,
                                              am.header_len};
      std::span<std::byte> dest{};
      if (handler_it->second.on_header) {
        dest = handler_it->second.on_header(ep, header, am.data_len);
      }
      std::uint32_t placed = 0;
      if (am.data_len && !dest.empty()) {
        placed = std::min<std::uint32_t>(am.data_len, static_cast<std::uint32_t>(dest.size()));
        std::memcpy(dest.data(), buffer.data() + wire::AmWire::kSize + am.header_len, placed);
      }
      if (handler_it->second.on_complete) {
        handler_it->second.on_complete(ep, header, dest.first(placed));
      }
      fire_exported(am.target_counter);
      if (am.want_flags & wire::kAckCompletion) {
        send_internal(ep, wire::Kind::internal_ack, am.token, wire::kAckCompletion);
      }
      if (obs::tracer().enabled()) {
        const sim::Time now = scheduler().now();
        obs::tracer().complete(dispatch_start, now - dispatch_start,
                               "ucr:" + hca_->host().name(), "eager_dispatch", "ucr");
      }
      return_credits(ep);
      co_return;
    }

    case wire::Kind::rendezvous: {
      co_await hca_->host().cpu().consume(config_.am_dispatch_ns);
      auto handler_it = handlers_.find(am.msg_id);
      const std::span<const std::byte> header{buffer.data() + wire::AmWire::kSize,
                                              am.header_len};
      std::span<std::byte> dest{};
      if (handler_it != handlers_.end() && handler_it->second.on_header) {
        dest = handler_it->second.on_header(ep, header, am.data_len);
      }
      if (dest.size() < am.data_len) {
        // Payload dropped (no handler or no buffer). The active message
        // itself is still delivered: run the completion handler with an
        // empty data span so the application can answer with an error,
        // and release the origin so its counters cannot hang.
        if (handler_it != handlers_.end() && handler_it->second.on_complete) {
          handler_it->second.on_complete(ep, header, {});
        }
        fire_exported(am.target_counter);
        if (am.want_flags) {
          send_internal(ep, wire::Kind::internal_ack, am.token, am.want_flags);
        }
        return_credits(ep);
        co_return;
      }
      // Pull the data with a one-sided read into the destination buffer.
      verbs::MemoryRegion* mr = find_or_register(dest);
      const std::uint64_t token = next_token_++;
      pending_reads_[token] = PendingTargetRead{
          &ep, std::vector<std::byte>(header.begin(), header.end()),
          dest.first(am.data_len), am, scheduler().now()};
      const verbs::SendWr wr{.wr_id = kTagRead | token,
                             .opcode = verbs::Opcode::rdma_read,
                             .local = dest.first(am.data_len),
                             .lkey = mr->lkey(),
                             .remote_addr = am.rndz_addr,
                             .rkey = am.rndz_rkey};
      if (!ep.qp_->post_send(wr).ok()) {
        pending_reads_.erase(token);
        fail_endpoint(ep);
      }
      return_credits(ep);
      co_return;
    }
  }
}

sim::Task<> Runtime::complete_target_read(std::uint64_t token, verbs::WcStatus status) {
  auto it = pending_reads_.find(token);
  if (it == pending_reads_.end()) co_return;
  PendingTargetRead pending = std::move(it->second);
  pending_reads_.erase(it);

  if (status != verbs::WcStatus::success) {
    fail_endpoint(*pending.ep);
    co_return;
  }

  co_await hca_->host().cpu().consume(config_.am_dispatch_ns);
  auto handler_it = handlers_.find(pending.am.msg_id);
  if (handler_it != handlers_.end() && handler_it->second.on_complete) {
    handler_it->second.on_complete(*pending.ep, const_span(pending.header), pending.dest);
  }
  fire_exported(pending.am.target_counter);
  if (pending.am.want_flags) {
    send_internal(*pending.ep, wire::Kind::internal_ack, pending.am.token,
                  pending.am.want_flags);
  }
  if (obs::tracer().enabled()) {
    const sim::Time now = scheduler().now();
    obs::tracer().complete(pending.arrived_at, now - pending.arrived_at,
                           "ucr:" + hca_->host().name(), "rendezvous_pull", "ucr");
  }
}

}  // namespace rmc::ucr
