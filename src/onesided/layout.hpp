// One-sided GET wire layout: the self-verifying remote index.
//
// The server publishes cached items into two RDMA-readable regions and
// clients fetch them with plain RDMA Reads, bypassing the server CPU on
// the hot read path (the RFP-style extension of the paper's rendezvous
// design — see DESIGN.md §9):
//
//  * index  — a fixed-size bucket array keyed by the store's own hash
//    (hash_one_at_a_time), `ways` entries per bucket. One bucket line is
//    one RDMA Read.
//  * arena  — one fixed-size record slot per (bucket, way). A published
//    record is the item's metadata + key + value framed by a seqlock
//    version pair and covered by a checksum.
//
// Nothing here is trusted: every field a client acts on is re-verified
// after the read (entry self-check, version pair, key bytes, checksum),
// so a torn or stale observation — the bucket line and the record were
// snapshotted at different instants while the server mutated the slot —
// is always detectable and never surfaces as a value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace rmc::onesided {

/// Bootstrap AM ids (one RPC per client to learn the descriptor).
inline constexpr std::uint16_t kMsgBootstrap = 0x6d10;
inline constexpr std::uint16_t kMsgBootstrapResp = 0x6d11;

/// FNV-1a over arbitrary bytes, used for record checksums. (The common/
/// hash.hpp variant takes a string_view; records are byte spans and the
/// checksum folds several disjoint fields, so keep an incremental one.)
class Fnv1a64 {
 public:
  void mix(std::span<const std::byte> bytes) {
    for (std::byte b : bytes) {
      state_ ^= static_cast<std::uint64_t>(b);
      state_ *= 0x100000001b3ull;
    }
  }
  template <typename T>
  void mix_value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::byte raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    mix({raw, sizeof(T)});
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/// One way of a bucket line (32 bytes, so a 4-way bucket is one 128 B
/// read). `version` is the slot epoch the entry was published under; a
/// reader requires it to match the record's own version pair exactly.
struct BucketEntry {
  std::uint64_t tag = 0;          ///< occupied<<63 | key_len<<32 | hash32
  std::uint32_t version = 0;      ///< slot epoch at publish (even = stable)
  std::uint32_t arena_offset = 0; ///< record start within the arena window
  std::uint32_t record_len = 0;   ///< bytes to read (header + key + value + tail)
  std::uint32_t reserved = 0;
  std::uint64_t check = 0;        ///< entry self-check (torn bucket line)

  static std::uint64_t make_tag(std::uint32_t hash, std::size_t key_len) {
    return (1ull << 63) | (static_cast<std::uint64_t>(key_len) << 32) | hash;
  }
  bool occupied() const { return (tag >> 63) & 1; }

  std::uint64_t expected_check() const {
    Fnv1a64 h;
    h.mix_value(tag);
    h.mix_value(version);
    h.mix_value(arena_offset);
    h.mix_value(record_len);
    return h.value();
  }
  void seal() { check = expected_check(); }
  bool self_consistent() const { return check == expected_check(); }
};
static_assert(sizeof(BucketEntry) == 32);

/// Arena record framing. The layout in the slot is:
///   RecordHeader | key bytes | value bytes | u32 version_back
/// version_front/version_back form the seqlock pair; checksum covers the
/// metadata, the key and the value under the version they were published
/// with, so a reader that raced a republish cannot stitch old bytes to a
/// new header.
struct RecordHeader {
  std::uint32_t version_front = 0;
  std::uint16_t key_len = 0;
  std::uint16_t reserved = 0;
  std::uint32_t value_len = 0;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::uint32_t exptime = 0;  ///< absolute cache-clock seconds; 0 = never
  std::uint32_t reserved2 = 0;
  std::uint64_t checksum = 0;

  static constexpr std::size_t kTailSize = sizeof(std::uint32_t);

  static std::size_t framed_size(std::size_t key_len, std::size_t value_len) {
    return sizeof(RecordHeader) + key_len + value_len + kTailSize;
  }

  std::uint64_t expected_checksum(std::string_view key,
                                  std::span<const std::byte> value) const {
    Fnv1a64 h;
    h.mix_value(version_front);
    h.mix_value(key_len);
    h.mix_value(value_len);
    h.mix_value(flags);
    h.mix_value(cas);
    h.mix_value(exptime);
    h.mix({reinterpret_cast<const std::byte*>(key.data()), key.size()});
    h.mix(value);
    return h.value();
  }
};
static_assert(sizeof(RecordHeader) == 40);

/// RDMA window descriptor as it crosses the wire in the bootstrap reply
/// (mirrors ucr::Runtime::RemoteMemory, kept separate so the layout is a
/// fixed wire contract).
struct RemoteWindow {
  std::uint64_t addr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;
};

/// Everything a client needs to run the two-read GET protocol. Shipped as
/// the bootstrap response header.
struct IndexDescriptor {
  RemoteWindow index;
  RemoteWindow arena;
  std::uint32_t bucket_count = 0;  ///< power of two
  std::uint32_t ways = 0;
  std::uint32_t slot_size = 0;     ///< fixed record slot bytes
  std::uint64_t cookie = 0;        ///< echoed bootstrap request cookie

  static constexpr std::size_t kSize = 2 * (8 + 4 + 4) + 4 + 4 + 4 + 8;

  void encode(std::byte* out) const {
    std::size_t o = 0;
    auto put = [&](const auto& v) {
      std::memcpy(out + o, &v, sizeof(v));
      o += sizeof(v);
    };
    put(index.addr);
    put(index.rkey);
    put(index.length);
    put(arena.addr);
    put(arena.rkey);
    put(arena.length);
    put(bucket_count);
    put(ways);
    put(slot_size);
    put(cookie);
  }
  static IndexDescriptor decode(const std::byte* in) {
    IndexDescriptor d;
    std::size_t o = 0;
    auto get = [&](auto& v) {
      std::memcpy(&v, in + o, sizeof(v));
      o += sizeof(v);
    };
    get(d.index.addr);
    get(d.index.rkey);
    get(d.index.length);
    get(d.arena.addr);
    get(d.arena.rkey);
    get(d.arena.length);
    get(d.bucket_count);
    get(d.ways);
    get(d.slot_size);
    get(d.cookie);
    return d;
  }

  bool valid() const { return bucket_count != 0 && ways != 0 && slot_size != 0; }
  /// Largest value publishable in one slot for a given key length.
  std::uint32_t max_value_len(std::size_t key_len) const {
    const std::size_t overhead = sizeof(RecordHeader) + key_len + RecordHeader::kTailSize;
    return overhead >= slot_size ? 0 : static_cast<std::uint32_t>(slot_size - overhead);
  }
};

/// Bootstrap request header: the client's reply-counter ref plus a cookie
/// used to route the response back to the issuing RemoteGetter.
struct BootstrapRequest {
  std::uint64_t cookie = 0;
  std::uint64_t reply_counter = 0;  ///< CounterRef at the client

  static constexpr std::size_t kSize = 16;

  void encode(std::byte* out) const {
    std::memcpy(out, &cookie, 8);
    std::memcpy(out + 8, &reply_counter, 8);
  }
  static BootstrapRequest decode(const std::byte* in) {
    BootstrapRequest r;
    std::memcpy(&r.cookie, in, 8);
    std::memcpy(&r.reply_counter, in + 8, 8);
    return r;
  }
};

}  // namespace rmc::onesided
