#include "onesided/remote_getter.hpp"

#include <cstring>
#include <unordered_map>

#include "common/hash.hpp"
#include "ucr/endpoint.hpp"

namespace rmc::onesided {

namespace {

/// Bootstrap responses arrive on a per-runtime AM handler, but the
/// endpoint's user_data belongs to the connection layer above us, so the
/// response is routed back by the cookie echoed in the descriptor.
/// Cookies are process-unique, which lets every runtime share one map.
std::uint64_t next_cookie() {
  static std::uint64_t next = 1;
  return next++;
}

std::unordered_map<std::uint64_t, RemoteGetter*>& cookie_registry() {
  static std::unordered_map<std::uint64_t, RemoteGetter*> map;
  return map;
}

void decode_entry(const std::byte* src, BucketEntry& out) {
  std::memcpy(&out, src, sizeof(BucketEntry));
}

}  // namespace

RemoteGetter::RemoteGetter(ucr::Runtime& runtime, GetterConfig config)
    : runtime_(&runtime), config_(config), cookie_(next_cookie()),
      reads_metric_(&obs::registry().counter("mc.oneside.reads")),
      fallbacks_metric_(&obs::registry().counter("mc.oneside.fallbacks")),
      torn_metric_(&obs::registry().counter("mc.oneside.torn_retries")) {
  read_counter_ = runtime_->make_counter();
  cookie_registry()[cookie_] = this;
  // Re-registering is idempotent: the handler closes over nothing and
  // resolves the owning getter through the cookie registry, so the last
  // registration on a runtime serves every getter.
  runtime_->register_handler(
      kMsgBootstrapResp,
      {.on_header = {},
       .on_complete = [](ucr::Endpoint&, std::span<const std::byte> header,
                         std::span<std::byte>) {
        if (header.size() < IndexDescriptor::kSize) return;
        const IndexDescriptor d = IndexDescriptor::decode(header.data());
        auto it = cookie_registry().find(d.cookie);
        if (it != cookie_registry().end()) it->second->descriptor_ = d;
      }});
}

RemoteGetter::~RemoteGetter() { cookie_registry().erase(cookie_); }

std::uint32_t RemoteGetter::now_seconds() const {
  // Mirror of Server::advance_clock so both ends agree on expiry.
  return static_cast<std::uint32_t>(1 + runtime_->scheduler().now() / kNsPerSec);
}

sim::Task<Status> RemoteGetter::bootstrap(ucr::Endpoint& ep, sim::Time timeout) {
  if (ready()) co_return Status{};
  if (ep.state() != ucr::EpState::ready) co_return Errc::disconnected;

  bootstrap_counter_ = runtime_->make_counter();
  bootstrap_ref_ = runtime_->export_counter(*bootstrap_counter_);

  BootstrapRequest req{.cookie = cookie_, .reply_counter = bootstrap_ref_.id};
  std::byte header[BootstrapRequest::kSize];
  req.encode(header);
  auto sent = runtime_->send_message(ep, kMsgBootstrap, header, {}, nullptr,
                                     ucr::CounterRef{}, nullptr);
  if (!sent.ok()) co_return sent;

  const bool woke = co_await bootstrap_counter_->wait_geq(1, timeout);
  if (!woke) co_return Errc::timed_out;
  if (!ready()) co_return Errc::protocol_error;

  // One landing zone for both reads: the bucket line up front, the record
  // behind it. Sized once from the descriptor and pre-registered so the
  // steady-state GET path never registers memory.
  const std::size_t bucket_bytes =
      static_cast<std::size_t>(descriptor_.ways) * sizeof(BucketEntry);
  scratch_.assign(bucket_bytes + descriptor_.slot_size, std::byte{0});
  runtime_->register_region(scratch_);
  co_return Status{};
}

sim::Task<bool> RemoteGetter::read(ucr::Endpoint& ep, std::span<std::byte> dst,
                                   const ucr::Runtime::RemoteMemory& window,
                                   std::uint32_t offset) {
  const std::uint64_t target = read_counter_->value() + 1;
  auto posted = runtime_->get(ep, dst, window, offset, read_counter_.get());
  if (!posted.ok()) co_return false;
  co_return co_await read_counter_->wait_geq(target, config_.read_timeout);
}

RemoteGetter::Verify RemoteGetter::verify_record(std::span<const std::byte> record,
                                                 std::string_view key,
                                                 std::uint32_t expected_version,
                                                 OneSidedHit& out) const {
  if (record.size() < sizeof(RecordHeader) + RecordHeader::kTailSize)
    return Verify::mismatch;
  RecordHeader hdr;
  std::memcpy(&hdr, record.data(), sizeof(hdr));
  // An odd front version is a retraction in progress; a zero one is a
  // never-published slot. `expected_version` (from a bucket entry) pins
  // the pair exactly; a hinted read accepts any stable even version.
  if (hdr.version_front == 0 || (hdr.version_front & 1u) != 0) return Verify::mismatch;
  if (expected_version != 0 && hdr.version_front != expected_version)
    return Verify::mismatch;
  if (hdr.key_len != key.size() ||
      RecordHeader::framed_size(hdr.key_len, hdr.value_len) != record.size()) {
    return Verify::mismatch;
  }
  std::uint32_t version_back = 0;
  std::memcpy(&version_back, record.data() + record.size() - RecordHeader::kTailSize,
              sizeof(version_back));
  if (version_back != hdr.version_front) return Verify::mismatch;
  const auto* key_bytes = reinterpret_cast<const char*>(record.data() + sizeof(hdr));
  if (std::string_view(key_bytes, hdr.key_len) != key) return Verify::mismatch;
  const auto value = record.subspan(sizeof(hdr) + hdr.key_len, hdr.value_len);
  if (hdr.checksum != hdr.expected_checksum(key, value)) return Verify::mismatch;
  // Fully verified. Expiry is the one post-verification miss: the record
  // is genuine but dead, and only the RPC path may reap it.
  if (hdr.exptime != 0 && hdr.exptime <= now_seconds()) return Verify::expired;
  out = OneSidedHit{.value = value, .flags = hdr.flags, .cas = hdr.cas};
  return Verify::hit;
}

void RemoteGetter::remember_hint(const std::string& key, Hint hint) {
  if (hints_.size() >= config_.max_hints && !hints_.contains(key)) hints_.clear();
  hints_[key] = hint;
}

sim::Task<Result<OneSidedHit>> RemoteGetter::try_get(ucr::Endpoint& ep,
                                                     std::string_view key) {
  reads_metric_->inc();
  if (!ready() || ep.state() != ucr::EpState::ready) {
    fallbacks_metric_->inc();
    co_return Errc::disconnected;
  }

  const std::uint32_t hash = hash_one_at_a_time(key);
  const std::uint32_t bucket = hash & (descriptor_.bucket_count - 1);
  const std::uint64_t want_tag = BucketEntry::make_tag(hash, key.size());
  const std::size_t bucket_bytes =
      static_cast<std::size_t>(descriptor_.ways) * sizeof(BucketEntry);
  const ucr::Runtime::RemoteMemory index_win{descriptor_.index.addr,
                                             descriptor_.index.rkey,
                                             descriptor_.index.length};
  const ucr::Runtime::RemoteMemory arena_win{descriptor_.arena.addr,
                                             descriptor_.arena.rkey,
                                             descriptor_.arena.length};
  const std::string key_owned(key);

  // Fast path: a key we have verified before is re-read at its hinted
  // slot in a single round trip. The record frame alone proves identity
  // and integrity, so the bucket line is only needed to (re)locate it; a
  // hint that fails verification is dropped and repaired below.
  if (auto it = hints_.find(key_owned); it != hints_.end()) {
    const Hint hint = it->second;
    if (hint.record_len <= descriptor_.slot_size &&
        hint.record_len >= RecordHeader::framed_size(key.size(), 0) &&
        static_cast<std::uint64_t>(hint.arena_offset) + hint.record_len <=
            descriptor_.arena.length) {
      auto record = std::span<std::byte>(scratch_).subspan(bucket_bytes, hint.record_len);
      if (!co_await read(ep, record, arena_win, hint.arena_offset)) {
        fallbacks_metric_->inc();
        co_return Errc::disconnected;
      }
      OneSidedHit hit;
      switch (verify_record(record, key, 0, hit)) {
        case Verify::hit:
          co_return hit;
        case Verify::expired:
          hints_.erase(key_owned);
          fallbacks_metric_->inc();
          co_return Errc::not_found;
        case Verify::mismatch:
          hints_.erase(key_owned);  // stale or racing a rewrite; relocate
          break;
      }
    } else {
      hints_.erase(it);
    }
  }

  for (std::uint32_t attempt = 0; attempt <= config_.max_torn_retries; ++attempt) {
    if (attempt != 0) torn_metric_->inc();

    // Read 1: the bucket line.
    auto line = std::span<std::byte>(scratch_).first(bucket_bytes);
    if (!co_await read(ep, line, index_win,
                       static_cast<std::uint32_t>(bucket * bucket_bytes))) {
      fallbacks_metric_->inc();
      co_return Errc::disconnected;
    }

    BucketEntry entry;
    bool found = false;
    bool torn = false;
    for (std::uint32_t way = 0; way < descriptor_.ways; ++way) {
      BucketEntry e;
      decode_entry(line.data() + way * sizeof(BucketEntry), e);
      if (!e.occupied()) continue;
      if (!e.self_consistent()) {
        // A half-written entry: can't even trust its tag, so we can't rule
        // out that it is our key. Re-read the line.
        torn = true;
        continue;
      }
      if (e.tag != want_tag) continue;
      entry = e;
      found = true;
      break;
    }
    if (!found) {
      if (torn) continue;
      break;  // verifiable miss: not published (absent/displaced/oversized)
    }

    // Entry sanity before trusting it as a read target. An odd version is
    // a retraction in progress; bad geometry means we raced a republish.
    if ((entry.version & 1u) != 0 || entry.record_len > descriptor_.slot_size ||
        entry.record_len < RecordHeader::framed_size(key.size(), 0) ||
        static_cast<std::uint64_t>(entry.arena_offset) + entry.record_len >
            descriptor_.arena.length) {
      continue;
    }

    // Read 2: the record.
    auto record = std::span<std::byte>(scratch_).subspan(bucket_bytes, entry.record_len);
    if (!co_await read(ep, record, arena_win, entry.arena_offset)) {
      fallbacks_metric_->inc();
      co_return Errc::disconnected;
    }

    OneSidedHit hit;
    switch (verify_record(record, key, entry.version, hit)) {
      case Verify::hit:
        remember_hint(key_owned, {entry.arena_offset, entry.record_len});
        co_return hit;
      case Verify::expired:
        remember_hint(key_owned, {entry.arena_offset, entry.record_len});
        goto fallback;  // genuine but dead; only the RPC path may reap it
      case Verify::mismatch:
        continue;  // raced a rewrite between the two reads
    }
  }

fallback:
  fallbacks_metric_->inc();
  co_return Errc::not_found;
}

}  // namespace rmc::onesided
