// Client side of the one-sided GET subsystem.
//
// A RemoteGetter bootstraps the server's IndexDescriptor with one AM
// round trip, then serves GETs by RDMA Read. The cold path is two reads
// — the bucket line keyed by the store's hash, then the record slot the
// matching entry names. Because the record frame is self-verifying
// (seqlock version pair, embedded key, checksum over both), a verified
// hit also yields a location hint, and steady-state GETs re-read the
// record directly in ONE round trip; a hint that no longer verifies is
// dropped and the two-read path repairs it. Every read is re-verified
// (entry self-check, version pair, key bytes, checksum) before a value
// is surfaced; any mismatch is a torn observation and is retried a
// bounded number of times before the caller falls back to the RPC GET.
//
// The getter is deliberately non-authoritative: a miss here only means
// "not published" (absent, oversized, or displaced from a full bucket),
// so callers always fall back to the RPC path rather than reporting
// not_found from a one-sided miss.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "onesided/layout.hpp"
#include "simnet/event.hpp"
#include "ucr/runtime.hpp"

namespace rmc::onesided {

struct GetterConfig {
  /// Re-run the two-read sequence this many times on a torn observation
  /// before giving up and falling back to RPC.
  std::uint32_t max_torn_retries = 2;
  /// Per-read completion timeout (endpoint failures wake waiters earlier
  /// via the runtime's fail-fast path; this bounds lost completions).
  sim::Time read_timeout = 1 * kNsPerSec;
  /// Location hints cached per key (verified hit -> arena offset/length)
  /// so repeat GETs cost one RDMA Read instead of two. The cache is
  /// advisory only — a hinted read must still fully verify — so the cap
  /// just bounds memory; the map is cleared when it fills.
  std::size_t max_hints = 4096;
};

/// A verified one-sided GET hit. `value` points into the getter's scratch
/// buffer and stays valid until the next try_get on the same getter.
struct OneSidedHit {
  std::span<const std::byte> value;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
};

class RemoteGetter {
 public:
  RemoteGetter(ucr::Runtime& runtime, GetterConfig config = {});
  ~RemoteGetter();
  RemoteGetter(const RemoteGetter&) = delete;
  RemoteGetter& operator=(const RemoteGetter&) = delete;

  /// The one RPC: fetch the index descriptor over `ep`. Idempotent;
  /// returns immediately when already bootstrapped.
  sim::Task<Status> bootstrap(ucr::Endpoint& ep, sim::Time timeout = 1 * kNsPerSec);

  bool ready() const { return descriptor_.valid(); }
  const IndexDescriptor& descriptor() const { return descriptor_; }

  /// Attempt a one-sided GET. Any non-ok result means "use the RPC path":
  ///   not_found     — no verifiable published entry (miss/displaced/torn
  ///                   beyond the retry budget/expired)
  ///   too_large     — published record exceeds the scratch capacity
  ///   disconnected  — endpoint failed or a read never completed
  /// mc.oneside.reads counts attempts, mc.oneside.torn_retries counts
  /// re-reads after failed verification, mc.oneside.fallbacks counts
  /// non-ok returns.
  sim::Task<Result<OneSidedHit>> try_get(ucr::Endpoint& ep, std::string_view key);

 private:
  /// Where a key's record lived the last time it verified. Advisory:
  /// the hinted read re-verifies everything, so a stale hint costs one
  /// wasted read, never a wrong value.
  struct Hint {
    std::uint32_t arena_offset = 0;
    std::uint32_t record_len = 0;
  };
  enum class Verify { hit, expired, mismatch };

  /// One RDMA Read + wait. False = failed/timed out (endpoint trouble).
  sim::Task<bool> read(ucr::Endpoint& ep, std::span<std::byte> dst,
                       const ucr::Runtime::RemoteMemory& window, std::uint32_t offset);
  /// Full record-frame verification: version pair even and matching
  /// (`expected_version` pins it, 0 accepts any even pair), framed size,
  /// embedded key, checksum, expiry. On `hit`, `out` points into the
  /// record bytes.
  Verify verify_record(std::span<const std::byte> record, std::string_view key,
                       std::uint32_t expected_version, OneSidedHit& out) const;
  void remember_hint(const std::string& key, Hint hint);
  /// Current cache-clock seconds, mirroring the server's advance_clock.
  std::uint32_t now_seconds() const;

  ucr::Runtime* runtime_;
  GetterConfig config_;
  IndexDescriptor descriptor_{};
  std::uint64_t cookie_;  ///< routes the bootstrap response back to us

  std::vector<std::byte> scratch_;  ///< bucket line + record landing zone
  std::unique_ptr<sim::Counter> read_counter_;
  std::unordered_map<std::string, Hint> hints_;  ///< key -> last-verified slot

  // Bootstrap rendezvous state.
  std::unique_ptr<sim::Counter> bootstrap_counter_;
  ucr::CounterRef bootstrap_ref_{};

  obs::Counter* reads_metric_;
  obs::Counter* fallbacks_metric_;
  obs::Counter* torn_metric_;
};

}  // namespace rmc::onesided
