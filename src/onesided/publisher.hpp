// Server side of the one-sided GET subsystem: the index publisher.
//
// A Publisher owns the two RDMA-exposed regions of layout.hpp (bucket
// array + record arena), listens to the ItemStore's mutation events, and
// keeps the published view consistent under a per-slot epoch scheme:
//
//  * publish  — on link (SET/commit, in-place arith/touch rewrites): copy
//    the item's metadata+key+value into the slot's record under a fresh
//    even epoch, then seal the bucket entry with that epoch.
//  * retract  — on unlink (delete/evict/expiry/replace) and on flush_all:
//    bump the record's front version to an odd epoch (readers holding the
//    old bucket line now fail verification) and clear the entry.
//
// Readers never coordinate with the server; every transition is made safe
// purely by the version/checksum discipline the client re-verifies.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "memcached/store.hpp"
#include "obs/metrics.hpp"
#include "onesided/layout.hpp"
#include "simnet/scheduler.hpp"
#include "ucr/runtime.hpp"

namespace rmc::onesided {

struct PublisherConfig {
  std::uint32_t bucket_count = 2048;  ///< power of two
  std::uint32_t ways = 4;             ///< entries (and arena slots) per bucket
  std::uint32_t slot_size = 4608;     ///< record slot bytes; larger values are not published
  /// CPU cost of publishing, billed to the server host asynchronously
  /// (the copy into the exposed arena is real work the server pays on
  /// every SET when the feature is on).
  sim::Time publish_base_ns = 150;
  double publish_ns_per_byte = 0.10;
};

class Publisher final : public mc::StoreListener {
 public:
  /// Builds the regions, exposes them through `runtime`, registers the
  /// bootstrap AM handler, and installs itself as `store`'s listener.
  /// `host` is the server host whose CPU pays the publish copies.
  Publisher(ucr::Runtime& runtime, sim::Host& host, mc::ItemStore& store,
            PublisherConfig config = {});
  ~Publisher() override;
  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  const IndexDescriptor& descriptor() const { return descriptor_; }
  const PublisherConfig& config() const { return config_; }

  // ------------------------------------------------------ StoreListener
  void on_item_linked(const mc::ItemHeader* item) override;
  void on_item_unlinked(const mc::ItemHeader* item) override;
  void on_store_flushed() override;

  // ------------------------------------------------------------- stats
  std::uint64_t published() const { return published_; }
  std::uint64_t retracted() const { return retracted_; }
  std::uint64_t skipped_oversize() const { return skipped_oversize_; }

 private:
  /// One (bucket, way) pair; slot index == entry index == arena slot.
  struct SlotState {
    std::string key;            ///< key currently published ("" = empty)
    std::uint32_t version = 0;  ///< epoch; even = stable, odd = retracted
  };

  std::uint32_t bucket_of(std::string_view key) const;
  BucketEntry* entry_at(std::uint32_t slot);
  std::byte* record_at(std::uint32_t slot);
  /// Way holding `key` in `bucket`, or the way to claim for it (empty
  /// first, else round-robin victim). Returns the global slot index.
  std::uint32_t pick_slot(std::uint32_t bucket, std::string_view key);
  void publish(std::uint32_t slot, const mc::ItemHeader* item);
  void retract(std::uint32_t slot);
  void charge(std::size_t bytes);
  sim::Task<> charge_loop();

  ucr::Runtime* runtime_;
  sim::Host* host_;
  mc::ItemStore* store_;
  PublisherConfig config_;

  std::vector<std::byte> index_;  ///< the exposed bucket array
  std::vector<std::byte> arena_;  ///< the exposed record arena
  std::vector<SlotState> slots_;
  std::vector<std::uint32_t> victim_rr_;  ///< per-bucket round-robin cursor
  IndexDescriptor descriptor_;

  sim::Time pending_cost_ = 0;  ///< accumulated publish CPU, drained by charge_loop
  bool charge_armed_ = false;

  std::uint64_t published_ = 0;
  std::uint64_t retracted_ = 0;
  std::uint64_t skipped_oversize_ = 0;

  obs::Counter* publishes_metric_;
  obs::Counter* retracts_metric_;
};

}  // namespace rmc::onesided
