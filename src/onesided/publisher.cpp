#include "onesided/publisher.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/hash.hpp"
#include "simnet/fabric.hpp"

namespace rmc::onesided {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Publisher::Publisher(ucr::Runtime& runtime, sim::Host& host, mc::ItemStore& store,
                     PublisherConfig config)
    : runtime_(&runtime), host_(&host), store_(&store), config_(config),
      publishes_metric_(&obs::registry().counter("mc.oneside.publishes")),
      retracts_metric_(&obs::registry().counter("mc.oneside.retracts")) {
  config_.bucket_count = round_up_pow2(std::max(1u, config_.bucket_count));
  config_.ways = std::max(1u, config_.ways);
  config_.slot_size = std::max<std::uint32_t>(
      config_.slot_size, static_cast<std::uint32_t>(RecordHeader::framed_size(1, 0)));

  const std::size_t slot_count =
      static_cast<std::size_t>(config_.bucket_count) * config_.ways;
  index_.assign(slot_count * sizeof(BucketEntry), std::byte{0});
  arena_.assign(slot_count * config_.slot_size, std::byte{0});
  slots_.resize(slot_count);
  victim_rr_.assign(config_.bucket_count, 0);

  const auto index_window = runtime_->expose_memory(index_);
  const auto arena_window = runtime_->expose_memory(arena_);
  descriptor_.index = {index_window.addr, index_window.rkey, index_window.length};
  descriptor_.arena = {arena_window.addr, arena_window.rkey, arena_window.length};
  descriptor_.bucket_count = config_.bucket_count;
  descriptor_.ways = config_.ways;
  descriptor_.slot_size = config_.slot_size;

  // Bootstrap RPC: one eager AM round trip handing the descriptor out.
  runtime_->register_handler(
      kMsgBootstrap,
      {.on_header = {},
       .on_complete = [this](ucr::Endpoint& ep, std::span<const std::byte> header,
                             std::span<std::byte>) {
        if (header.size() < BootstrapRequest::kSize) return;
        const auto req = BootstrapRequest::decode(header.data());
        IndexDescriptor resp = descriptor_;
        resp.cookie = req.cookie;
        std::byte out[IndexDescriptor::kSize];
        resp.encode(out);
        (void)runtime_->send_message(ep, kMsgBootstrapResp, out, {}, nullptr,
                                     ucr::CounterRef{req.reply_counter}, nullptr);
      }});

  store_->set_listener(this);
}

Publisher::~Publisher() { store_->set_listener(nullptr); }

std::uint32_t Publisher::bucket_of(std::string_view key) const {
  return hash_one_at_a_time(key) & (config_.bucket_count - 1);
}

BucketEntry* Publisher::entry_at(std::uint32_t slot) {
  return reinterpret_cast<BucketEntry*>(index_.data() + slot * sizeof(BucketEntry));
}

std::byte* Publisher::record_at(std::uint32_t slot) {
  return arena_.data() + static_cast<std::size_t>(slot) * config_.slot_size;
}

std::uint32_t Publisher::pick_slot(std::uint32_t bucket, std::string_view key) {
  const std::uint32_t base = bucket * config_.ways;
  std::uint32_t free_way = config_.ways;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    const SlotState& s = slots_[base + way];
    if (s.key == key) return base + way;
    if (s.key.empty() && free_way == config_.ways) free_way = way;
  }
  if (free_way != config_.ways) return base + free_way;
  // Bucket full: evict a way round-robin. The displaced key simply loses
  // its published entry — its RPC path still serves it.
  const std::uint32_t victim = victim_rr_[bucket]++ % config_.ways;
  return base + victim;
}

void Publisher::on_item_linked(const mc::ItemHeader* item) {
  const std::uint32_t bucket = bucket_of(item->key());
  const std::size_t framed = RecordHeader::framed_size(item->key_len, item->value_len);
  if (framed > config_.slot_size) {
    // Oversized values are never published; retract any stale entry for
    // this key so readers fall back instead of seeing the old value.
    ++skipped_oversize_;
    on_item_unlinked(item);
    return;
  }
  const std::uint32_t slot = pick_slot(bucket, item->key());
  if (!slots_[slot].key.empty() && slots_[slot].key != item->key()) retract(slot);
  publish(slot, item);
}

void Publisher::on_item_unlinked(const mc::ItemHeader* item) {
  const std::uint32_t base = bucket_of(item->key()) * config_.ways;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    if (slots_[base + way].key == item->key()) {
      retract(base + way);
      return;
    }
  }
}

void Publisher::on_store_flushed() {
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (!slots_[slot].key.empty()) retract(slot);
  }
}

void Publisher::publish(std::uint32_t slot, const mc::ItemHeader* item) {
  SlotState& state = slots_[slot];
  // Fresh even epoch strictly above every version a reader may still hold
  // for this slot. (In a threaded implementation the odd intermediate
  // would be written first; the simulator executes this block atomically,
  // so the observable race is a reader spanning two publishes — caught by
  // the version pair + checksum either way.)
  const std::uint32_t version = (state.version | 1u) + 1u;
  state.version = version;
  state.key.assign(item->key());

  std::byte* rec = record_at(slot);
  RecordHeader hdr;
  hdr.version_front = version;
  hdr.key_len = item->key_len;
  hdr.value_len = item->value_len;
  hdr.flags = item->flags;
  hdr.cas = item->cas;
  hdr.exptime = item->exptime;
  hdr.checksum = hdr.expected_checksum(item->key(), item->value());
  std::memcpy(rec, &hdr, sizeof(hdr));
  std::memcpy(rec + sizeof(hdr), item->key_data(), item->key_len);
  std::memcpy(rec + sizeof(hdr) + item->key_len, item->value_data(), item->value_len);
  const std::uint32_t back = version;
  std::memcpy(rec + sizeof(hdr) + item->key_len + item->value_len, &back, sizeof(back));

  BucketEntry entry;
  entry.tag = BucketEntry::make_tag(hash_one_at_a_time(item->key()), item->key_len);
  entry.version = version;
  entry.arena_offset = slot * config_.slot_size;
  entry.record_len =
      static_cast<std::uint32_t>(RecordHeader::framed_size(item->key_len, item->value_len));
  entry.seal();
  std::memcpy(entry_at(slot), &entry, sizeof(entry));

  ++published_;
  publishes_metric_->inc();
  charge(sizeof(RecordHeader) + item->key_len + item->value_len);
}

void Publisher::retract(std::uint32_t slot) {
  SlotState& state = slots_[slot];
  // Odd epoch: readers holding the old bucket line see a version mismatch
  // on the record and fall back instead of serving the dead value.
  state.version |= 1u;
  state.key.clear();
  std::byte* rec = record_at(slot);
  std::uint32_t front;
  std::memcpy(&front, rec, sizeof(front));
  front = state.version;
  std::memcpy(rec, &front, sizeof(front));
  BucketEntry cleared;  // tag 0 = unoccupied; check of a zero entry differs too
  std::memcpy(entry_at(slot), &cleared, sizeof(cleared));

  ++retracted_;
  retracts_metric_->inc();
  charge(sizeof(BucketEntry));
}

void Publisher::charge(std::size_t bytes) {
  pending_cost_ += config_.publish_base_ns +
                   static_cast<sim::Time>(static_cast<double>(bytes) *
                                          config_.publish_ns_per_byte);
  if (!charge_armed_) {
    charge_armed_ = true;
    runtime_->scheduler().spawn(charge_loop());
  }
}

sim::Task<> Publisher::charge_loop() {
  // Drain the accumulated publish cost on the server CPU. Listener hooks
  // run synchronously inside store mutations (not coroutines), so the
  // cost is billed here, contending with the workers like the real memcpy
  // would.
  while (pending_cost_ != 0) {
    const sim::Time cost = pending_cost_;
    pending_cost_ = 0;
    co_await host_->cpu().consume(cost);
  }
  charge_armed_ = false;
}

}  // namespace rmc::onesided
