#include "common/hash.hpp"

#include <array>

#include "common/md5.hpp"

namespace rmc {

std::uint32_t hash_one_at_a_time(std::string_view data) {
  std::uint32_t h = 0;
  for (unsigned char c : data) {
    h += c;
    h += h << 10;
    h ^= h >> 6;
  }
  h += h << 3;
  h ^= h >> 11;
  h += h << 15;
  return h;
}

std::uint32_t hash_fnv1a_32(std::string_view data) {
  std::uint32_t h = 0x811c9dc5u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

std::uint64_t hash_fnv1a_64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t hash_crc32(std::string_view data) {
  std::uint32_t crc = 0xffffffffu;
  for (unsigned char c : data) {
    crc = kCrcTable[(crc ^ c) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t hash_key(HashKind kind, std::string_view key) {
  switch (kind) {
    case HashKind::default_jenkins:
      return hash_one_at_a_time(key);
    case HashKind::fnv1a_32:
      return hash_fnv1a_32(key);
    case HashKind::fnv1a_64: {
      const std::uint64_t h = hash_fnv1a_64(key);
      return static_cast<std::uint32_t>(h ^ (h >> 32));
    }
    case HashKind::crc:
      return (hash_crc32(key) >> 16) & 0x7fffu;
    case HashKind::md5: {
      const Md5Digest d = md5(key);
      // libmemcached folds the first four digest bytes, little-endian.
      return static_cast<std::uint32_t>(d.bytes[0]) |
             static_cast<std::uint32_t>(d.bytes[1]) << 8 |
             static_cast<std::uint32_t>(d.bytes[2]) << 16 |
             static_cast<std::uint32_t>(d.bytes[3]) << 24;
    }
  }
  return hash_one_at_a_time(key);
}

}  // namespace rmc
