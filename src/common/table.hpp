// Fixed-width ASCII table printer used by the figure benchmarks to emit
// paper-style result tables (message size / client count on rows, one
// transport per column).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rmc {

class Table {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  Table(std::string title, std::vector<std::string> columns);

  /// Append a row; cells beyond `columns` are dropped, missing cells blank.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` decimals.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

  /// Render to stdout.
  void print() const;

  /// Render to a string (tests).
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rmc
