#include "common/histogram.hpp"

#include <bit>
#include <cmath>

namespace rmc {

namespace {
// 64 sub-buckets per power of two => worst-case relative error 1/64.
constexpr std::size_t kSubBucketBits = 6;
constexpr std::size_t kSubBuckets = 1u << kSubBucketBits;
// Values 0..127 get exact buckets; above that, log bucketing up to 2^63.
constexpr std::size_t kExactLimit = kSubBuckets * 2;
constexpr std::size_t kMaxBuckets = kExactLimit + (64 - kSubBucketBits - 1) * kSubBuckets;
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kMaxBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kExactLimit) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - static_cast<int>(kSubBucketBits);
  const std::size_t sub = static_cast<std::size_t>(value >> shift) - kSubBuckets;
  const std::size_t tier = static_cast<std::size_t>(msb) - kSubBucketBits;
  std::size_t idx = kExactLimit + (tier - 1) * kSubBuckets + sub;
  return idx < kMaxBuckets ? idx : kMaxBuckets - 1;
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::size_t index) {
  if (index < kExactLimit) return index;
  const std::size_t tier = (index - kExactLimit) / kSubBuckets + 1;
  const std::size_t sub = (index - kExactLimit) % kSubBuckets;
  const int shift = static_cast<int>(tier);
  return ((kSubBuckets + sub + 1) << shift) - 1;
}

namespace {
// Saturating accumulate: a huge sample count times huge values must not wrap
// the running sum (mean() would silently go wrong); pin it at UINT64_MAX.
void add_saturating(std::uint64_t& acc, std::uint64_t v) {
  if (__builtin_add_overflow(acc, v, &acc)) acc = ~0ull;
}
}  // namespace

void LatencyHistogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)]++;
  ++count_;
  add_saturating(sum_, value);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  add_saturating(sum_, other.sum_);
  if (other.count_) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

double LatencyHistogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

std::uint64_t LatencyHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  // q<=0 (and NaN, which fails both comparisons below) means "the smallest
  // sample" — we know it exactly, so don't widen to a bucket bound.
  if (!(q > 0)) return min_;
  if (q > 1) q = 1;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      const std::uint64_t ub = bucket_upper_bound(i);
      return ub > max_ ? max_ : ub;
    }
  }
  return max_;
}

void LatencyHistogram::reset() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

}  // namespace rmc
