#include "common/log.hpp"

namespace rmc {

namespace {
LogLevel g_level = LogLevel::warn;
LogClockFn g_clock_fn = nullptr;
void* g_clock_ctx = nullptr;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void set_log_clock(LogClockFn fn, void* ctx) {
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

std::string log_prefix(LogLevel level) {
  std::string prefix = "[";
  prefix += level_tag(level);
  prefix += "] ";
  if (g_clock_fn) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%lluns] ",
                  static_cast<unsigned long long>(g_clock_fn(g_clock_ctx)));
    prefix += buf;
  }
  return prefix;
}

void log_write(LogLevel level, const char* fmt, ...) {
  const std::string prefix = log_prefix(level);
  std::fwrite(prefix.data(), 1, prefix.size(), stderr);
  va_list args;
  va_start(args, fmt);
  // rmclint:allow(io-hygiene): this IS the logger's designated sink; all RMC_LOG_* funnels here
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace rmc
