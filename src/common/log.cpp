#include "common/log.hpp"

namespace rmc {

namespace {
LogLevel g_level = LogLevel::warn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_write(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace rmc
