// Error codes and a minimal Result<T> used by the transport stacks.
//
// The project targets C++20, which has no std::expected; this is the small
// subset we need: an error enum shared by verbs/sockets/ucr/memcached and a
// value-or-error wrapper with the usual observers. APIs that can only fail
// in ways the caller must handle return Result<T>; programming errors
// (misuse of an API) assert.
#pragma once

#include <cassert>
#include <optional>
#include <string_view>
#include <utility>

namespace rmc {

/// Error conditions surfaced by the communication stacks and memcached.
enum class Errc {
  ok = 0,
  timed_out,        ///< a wait exceeded its caller-supplied timeout
  disconnected,     ///< peer endpoint / socket has gone away
  refused,          ///< no listener at the destination
  no_resources,     ///< out of credits, buffers, or queue depth
  invalid_argument, ///< malformed request (bad key, bad lkey/rkey, ...)
  not_found,        ///< memcached: key miss
  exists,           ///< memcached: add on existing key / CAS conflict
  not_stored,       ///< memcached: replace/append precondition failed
  too_large,        ///< memcached: value exceeds the item size limit
  protocol_error,   ///< byte-stream parse failure
};

/// Human-readable name for an error code (stable, for logs and tests).
constexpr std::string_view to_string(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::timed_out: return "timed_out";
    case Errc::disconnected: return "disconnected";
    case Errc::refused: return "refused";
    case Errc::no_resources: return "no_resources";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::not_stored: return "not_stored";
    case Errc::too_large: return "too_large";
    case Errc::protocol_error: return "protocol_error";
  }
  return "unknown";
}

/// Value-or-error. A Result holds either a T (and Errc::ok) or an Errc.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), err_(Errc::ok) {}  // NOLINT(google-explicit-constructor)
  Result(Errc err) : err_(err) { assert(err != Errc::ok); }      // NOLINT(google-explicit-constructor)

  bool ok() const { return err_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return err_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Errc err_;
};

/// Result<void> analogue: just an error code with the same observers.
class [[nodiscard]] Status {
 public:
  Status() : err_(Errc::ok) {}
  Status(Errc err) : err_(err) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return err_ == Errc::ok; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return err_; }

 private:
  Errc err_;
};

}  // namespace rmc
