// MD5 message digest (RFC 1321), implemented from scratch.
//
// Two consumers: (1) the paper notes memcached keys "are typically MD5 sums
// or hashes of the objects being stored", so workload generators can derive
// realistic keys; (2) ketama consistent hashing in the client library hashes
// "<host>:<port>-<replica>" with MD5 to place points on the continuum.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace rmc {

struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  /// Lowercase hex rendering, e.g. "d41d8cd98f00b204e9800998ecf8427e".
  std::string hex() const;

  bool operator==(const Md5Digest&) const = default;
};

/// Compute the MD5 digest of `data` in one shot.
Md5Digest md5(std::string_view data);

}  // namespace rmc
