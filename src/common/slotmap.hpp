// SlotMap: stable uint64 handles over a reusable slot array.
//
// The verbs and UCR layers key every in-flight operation (pending sends,
// RDMA reads, client requests) by a token that crosses the simulated wire
// and comes back in the matching ack. std::unordered_map churns nodes for
// each of those — one malloc/free per message. A slot map keeps the
// entries in a vector that only grows, recycles slots through a free
// list, and guards against stale handles with a per-slot generation
// folded into the key, so steady-state insert/erase never allocates.
//
// Keys are (index << 32) | generation with generation >= 1, so a valid
// key is never zero and survives as an opaque uint64 on the wire.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rmc {

template <typename T>
class SlotMap {
 public:
  using Key = std::uint64_t;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename... Args>
  Key emplace(Args&&... args) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[index];
    ::new (static_cast<void*>(&s.storage)) T(std::forward<Args>(args)...);
    s.occupied = true;
    ++size_;
    return (static_cast<Key>(index) << 32) | s.generation;
  }

  /// nullptr when the key is stale or was never issued. Pointers are
  /// invalidated by any later emplace() (vector growth) — re-lookup after
  /// suspension points, exactly as with an unordered_map under rehash.
  T* get(Key key) {
    const std::uint32_t index = static_cast<std::uint32_t>(key >> 32);
    if (index >= slots_.size()) return nullptr;
    Slot& s = slots_[index];
    if (!s.occupied || s.generation != static_cast<std::uint32_t>(key)) return nullptr;
    return reinterpret_cast<T*>(&s.storage);
  }

  bool erase(Key key) {
    const std::uint32_t index = static_cast<std::uint32_t>(key >> 32);
    if (index >= slots_.size()) return false;
    Slot& s = slots_[index];
    if (!s.occupied || s.generation != static_cast<std::uint32_t>(key)) return false;
    reinterpret_cast<T*>(&s.storage)->~T();
    s.occupied = false;
    ++s.generation;
    if (s.generation == 0) s.generation = 1;  // wrapped: keep keys nonzero
    free_.push_back(index);
    --size_;
    return true;
  }

  /// Visit every live entry as fn(key, value). Erasing the entry being
  /// visited (or any other) from inside fn is allowed; inserting is not.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (!s.occupied) continue;
      fn((static_cast<Key>(i) << 32) | s.generation, *reinterpret_cast<T*>(&s.storage));
    }
  }

  ~SlotMap() {
    for (Slot& s : slots_) {
      if (s.occupied) reinterpret_cast<T*>(&s.storage)->~T();
    }
  }

  SlotMap() = default;
  SlotMap(const SlotMap&) = delete;
  SlotMap& operator=(const SlotMap&) = delete;

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 1;
    bool occupied = false;

    Slot() = default;
    // Vector growth must relocate a live T properly, not memcpy its bytes.
    Slot(Slot&& o) noexcept : generation(o.generation), occupied(o.occupied) {
      if (occupied) {
        T* from = reinterpret_cast<T*>(&o.storage);
        ::new (static_cast<void*>(&storage)) T(std::move(*from));
        from->~T();
        o.occupied = false;
      }
    }
    Slot& operator=(Slot&&) = delete;
    ~Slot() = default;  // SlotMap's dtor destroys any live T
  };

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

}  // namespace rmc
