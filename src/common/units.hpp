// Time and size unit helpers shared across the simulator and benchmarks.
//
// All simulated time in this project is an integer count of nanoseconds
// (`rmc::sim::Time` is defined in simnet/time.hpp as an alias of
// std::uint64_t). These helpers keep unit conversions readable at call
// sites: `5_us`, `kib(64)`, `to_us(t)`.
#pragma once

#include <cstdint>
#include <string>

namespace rmc {

/// Nanoseconds-per-unit constants.
inline constexpr std::uint64_t kNsPerUs = 1000;
inline constexpr std::uint64_t kNsPerMs = 1000 * 1000;
inline constexpr std::uint64_t kNsPerSec = 1000ull * 1000 * 1000;

namespace literals {

constexpr std::uint64_t operator""_ns(unsigned long long v) { return v; }
constexpr std::uint64_t operator""_us(unsigned long long v) { return v * kNsPerUs; }
constexpr std::uint64_t operator""_ms(unsigned long long v) { return v * kNsPerMs; }
constexpr std::uint64_t operator""_s(unsigned long long v) { return v * kNsPerSec; }

constexpr std::uint64_t operator""_B(unsigned long long v) { return v; }
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024 * 1024; }

}  // namespace literals

/// Convert nanoseconds to (double) microseconds, the unit the paper reports.
constexpr double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Convert nanoseconds to (double) seconds.
constexpr double to_sec(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

/// Format a byte count the way the paper labels its x axes: "4", "1K", "512K".
std::string format_size_label(std::uint64_t bytes);

}  // namespace rmc
