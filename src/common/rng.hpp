// Deterministic pseudo-random number generation for workloads and tests.
//
// The whole reproduction is a deterministic simulation: every run with the
// same seed produces bit-identical results. We use SplitMix64 for seeding
// and xoshiro256** as the main generator (fast, good quality, trivially
// reproducible — unlike std::mt19937_64 it has a tiny state and is cheap to
// fork per component).
#pragma once

#include <cstdint>
#include <string>

namespace rmc {

/// SplitMix64 step — used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (e.g. one per simulated client).
  Rng fork() { return Rng((*this)()); }

  /// Random lowercase-alphanumeric string of length n (memcached keys).
  std::string alnum(std::size_t n) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s(n, '\0');
    for (auto& c : s) c = kAlphabet[below(sizeof(kAlphabet) - 1)];
    return s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace rmc
