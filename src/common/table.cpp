#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/units.hpp"

namespace rmc {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  out << "## " << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_size_label(std::uint64_t bytes) {
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0)
    return std::to_string(bytes / (1024 * 1024)) + "M";
  if (bytes >= 1024 && bytes % 1024 == 0) return std::to_string(bytes / 1024) + "K";
  return std::to_string(bytes);
}

}  // namespace rmc
