// Key hashing used by the memcached client for server selection and by the
// server's item hash table.
//
// libmemcached 0.45 (the client library the paper uses) ships several hash
// functions; we implement the ones that matter for reproducing its
// behaviour: the "default" Jenkins one-at-a-time hash, FNV-1a (32/64 bit),
// and MD5 (used both by MEMCACHED_HASH_MD5 and by ketama consistent
// hashing). The server-side hash table uses Bob Jenkins' one-at-a-time as
// memcached 1.4.x did by default.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace rmc {

/// Bob Jenkins one-at-a-time hash — memcached's classic default.
std::uint32_t hash_one_at_a_time(std::string_view data);

/// FNV-1a, 32-bit.
std::uint32_t hash_fnv1a_32(std::string_view data);

/// FNV-1a, 64-bit.
std::uint64_t hash_fnv1a_64(std::string_view data);

/// CRC32 (the ITU-T polynomial, bit-reflected) — libmemcached's HASH_CRC
/// uses (crc >> 16) & 0x7fff; we expose the raw CRC and let callers mask.
std::uint32_t hash_crc32(std::string_view data);

/// Hash function selector mirroring libmemcached's memcached_hash_t subset.
enum class HashKind {
  default_jenkins,
  fnv1a_32,
  fnv1a_64,
  crc,
  md5,
};

/// Dispatch on HashKind; MD5 and 64-bit variants are folded to 32 bits the
/// way libmemcached folds them (low 4 bytes for MD5, xor-fold for fnv64).
std::uint32_t hash_key(HashKind kind, std::string_view key);

}  // namespace rmc
