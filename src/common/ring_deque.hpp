// RingDeque: a FIFO over a single contiguous power-of-two ring.
//
// std::deque allocates and frees fixed-size chunks as the queue breathes,
// which puts malloc on the per-event path of every Channel, SRQ and NIC
// inbox in the simulator. This ring keeps one buffer that only grows
// (doubling), so a steady-state producer/consumer pair never allocates
// after warm-up. Only the operations the simulator needs are provided:
// push_back / emplace_back, pop_front, front, and random access for the
// rare scan-and-erase paths (waiter deregistration).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace rmc {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;
  RingDeque(const RingDeque&) = delete;
  RingDeque& operator=(const RingDeque&) = delete;

  RingDeque(RingDeque&& other) noexcept
      : data_(other.data_), cap_(other.cap_), head_(other.head_), size_(other.size_) {
    other.data_ = nullptr;
    other.cap_ = other.head_ = other.size_ = 0;
  }

  RingDeque& operator=(RingDeque&& other) noexcept {
    if (this != &other) {
      destroy_all();
      data_ = other.data_;
      cap_ = other.cap_;
      head_ = other.head_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.cap_ = other.head_ = other.size_ = 0;
    }
    return *this;
  }

  ~RingDeque() { destroy_all(); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  void reserve(std::size_t n) {
    if (n > cap_) grow_to(round_up(n));
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow_to(cap_ == 0 ? 8 : cap_ * 2);
    T* slot = data_ + ((head_ + size_) & (cap_ - 1));
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  T& front() { return data_[head_]; }
  const T& front() const { return data_[head_]; }

  T& back() { return (*this)[size_ - 1]; }

  T& operator[](std::size_t i) { return data_[(head_ + i) & (cap_ - 1)]; }
  const T& operator[](std::size_t i) const { return data_[(head_ + i) & (cap_ - 1)]; }

  void pop_front() {
    data_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }

  /// Remove element i preserving FIFO order of the rest (used by the rare
  /// waiter-deregistration paths; O(n) shift toward the back).
  void erase_at(std::size_t i) {
    for (std::size_t j = i; j + 1 < size_; ++j) (*this)[j] = std::move((*this)[j + 1]);
    (*this)[size_ - 1].~T();
    --size_;
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c *= 2;
    return c;
  }

  void grow_to(std::size_t new_cap) {
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move((*this)[i]));
      (*this)[i].~T();
    }
    if (data_ != nullptr) ::operator delete(data_, std::align_val_t(alignof(T)));
    data_ = fresh;
    cap_ = new_cap;
    head_ = 0;
  }

  void destroy_all() {
    clear();
    if (data_ != nullptr) ::operator delete(data_, std::align_val_t(alignof(T)));
    data_ = nullptr;
    cap_ = 0;
  }

  T* data_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rmc
