// Latency statistics: a log-bucketed histogram with percentile queries plus
// exact running mean/min/max. Used by every benchmark harness to report the
// per-operation latencies the paper plots.
#pragma once

#include <cstdint>
#include <vector>

namespace rmc {

/// HDR-style histogram: values are bucketed with ~1.6% relative precision
/// (64 sub-buckets per power of two). record() is O(1); percentiles are
/// computed by scanning buckets.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Record one sample (nanoseconds, but any non-negative value works).
  void record(std::uint64_t value);

  /// Merge another histogram into this one (for multi-client aggregation).
  /// The running sum saturates instead of wrapping, so mean() degrades
  /// gracefully on pathological totals.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Value at quantile q; q=0.5 is the median. q outside [0,1] (including
  /// NaN) is clamped. q<=0 returns the exact recorded minimum; otherwise
  /// an upper bound of the bucket containing the quantile. 0 when empty.
  std::uint64_t percentile(double q) const;

  void reset();

 private:
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace rmc
