// Minimal leveled logger.
//
// The simulator is single-threaded, so this is deliberately simple: a
// global level, printf-style formatting, stderr output. Benchmarks leave it
// at `warn` so tables stay clean; tests can raise it to `debug` to trace
// message flows.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>

namespace rmc {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide log threshold (default: warn).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Optional virtual-clock hook: when set, every log line is prefixed with
/// the simulated time as `[t=<ns>ns]`. Registered as a plain function
/// pointer + context so common/ stays below simnet/ in the build graph
/// (simnet attaches the scheduler via sim::attach_log_clock). Pass nullptr
/// to detach (the default — output format is unchanged without a clock).
using LogClockFn = std::uint64_t (*)(void* ctx);
void set_log_clock(LogClockFn fn, void* ctx);

/// The `[LEVEL] [t=...ns] ` prefix log_write emits for `level` right now
/// (clock sampled at call time). Exposed so tests can pin the format.
std::string log_prefix(LogLevel level);

/// Core sink; prefer the RMC_LOG_* macros, which skip argument evaluation
/// when the level is disabled.
void log_write(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace rmc

#define RMC_LOG_AT(lvl, ...)                                     \
  do {                                                           \
    if (static_cast<int>(lvl) >= static_cast<int>(::rmc::log_level())) \
      ::rmc::log_write(lvl, __VA_ARGS__);                        \
  } while (0)

#define RMC_LOG_DEBUG(...) RMC_LOG_AT(::rmc::LogLevel::debug, __VA_ARGS__)
#define RMC_LOG_INFO(...) RMC_LOG_AT(::rmc::LogLevel::info, __VA_ARGS__)
#define RMC_LOG_WARN(...) RMC_LOG_AT(::rmc::LogLevel::warn, __VA_ARGS__)
#define RMC_LOG_ERROR(...) RMC_LOG_AT(::rmc::LogLevel::error, __VA_ARGS__)
