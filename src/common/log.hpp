// Minimal leveled logger.
//
// The simulator is single-threaded, so this is deliberately simple: a
// global level, printf-style formatting, stderr output. Benchmarks leave it
// at `warn` so tables stay clean; tests can raise it to `debug` to trace
// message flows.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace rmc {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide log threshold (default: warn).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Core sink; prefer the RMC_LOG_* macros, which skip argument evaluation
/// when the level is disabled.
void log_write(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace rmc

#define RMC_LOG_AT(lvl, ...)                                     \
  do {                                                           \
    if (static_cast<int>(lvl) >= static_cast<int>(::rmc::log_level())) \
      ::rmc::log_write(lvl, __VA_ARGS__);                        \
  } while (0)

#define RMC_LOG_DEBUG(...) RMC_LOG_AT(::rmc::LogLevel::debug, __VA_ARGS__)
#define RMC_LOG_INFO(...) RMC_LOG_AT(::rmc::LogLevel::info, __VA_ARGS__)
#define RMC_LOG_WARN(...) RMC_LOG_AT(::rmc::LogLevel::warn, __VA_ARGS__)
#define RMC_LOG_ERROR(...) RMC_LOG_AT(::rmc::LogLevel::error, __VA_ARGS__)
