// Parameterized property sweeps across the whole stack: every (cluster,
// transport, pattern) combination serves a correct workload; end-to-end
// data integrity holds for every value size across the eager/rendezvous
// boundary and both wire protocols; and the latency ordering UCR < TOE <
// SDP/IPoIB holds at every size of the paper's sweep.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;
using core::ClusterKind;
using core::OpPattern;
using core::TransportKind;

// ----------------------------------------- transport x pattern matrix ----

using MatrixParam = std::tuple<ClusterKind, TransportKind, OpPattern>;

class WorkloadMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(WorkloadMatrix, ServesCorrectMix) {
  const auto [cluster, transport, pattern] = GetParam();
  if (!core::transport_available(cluster, transport)) GTEST_SKIP();

  core::TestBedConfig config;
  config.cluster = cluster;
  config.transport = transport;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = pattern;
  workload.ops_per_client = 100;
  workload.value_size = 512;
  const auto result = core::run_workload(bed, workload);

  EXPECT_EQ(result.total_ops, 100u);
  EXPECT_GT(result.mean_latency_us(), 0.0);
  switch (pattern) {
    case OpPattern::pure_get:
      EXPECT_EQ(result.get_latency.count(), 100u);
      break;
    case OpPattern::pure_set:
      EXPECT_EQ(result.set_latency.count(), 100u);
      break;
    case OpPattern::non_interleaved:
      EXPECT_EQ(result.set_latency.count(), 10u);
      EXPECT_EQ(result.get_latency.count(), 90u);
      break;
    case OpPattern::interleaved:
      EXPECT_EQ(result.set_latency.count(), 50u);
      EXPECT_EQ(result.get_latency.count(), 50u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, WorkloadMatrix,
    ::testing::Combine(::testing::Values(ClusterKind::cluster_a, ClusterKind::cluster_b),
                       ::testing::Values(TransportKind::ucr_verbs, TransportKind::sdp,
                                         TransportKind::ipoib, TransportKind::toe_10ge,
                                         TransportKind::tcp_1ge, TransportKind::ucr_roce,
                                         TransportKind::ucr_iwarp),
                       ::testing::Values(OpPattern::pure_get, OpPattern::pure_set,
                                         OpPattern::non_interleaved,
                                         OpPattern::interleaved)));

// ------------------------------------------- value-size integrity sweep ----

struct SizeParam {
  std::uint32_t size;
  bool binary;  ///< wire protocol for the socket leg
};

class ValueSizeIntegrity : public ::testing::TestWithParam<SizeParam> {};

TEST_P(ValueSizeIntegrity, RoundTripsExactBytesOverUcrAndSockets) {
  const auto param = GetParam();
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime server_ucr{server_hca};
  ucr::Runtime client_ucr{client_hca};
  sock::NetStack server_sock{sched, fabric, server_host, sock::sdp_ib()};
  sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
  mc::Server server{sched, server_host, {}};
  server.attach_ucr_frontend(server_ucr);
  server.attach_socket_frontend(server_sock);

  mc::Client ucr_client{sched, client_host};
  ucr_client.add_server_ucr(client_ucr, server_ucr.addr(), 11211);
  mc::ClientBehavior sock_behavior;
  sock_behavior.binary_protocol = param.binary;
  mc::Client sock_client{sched, client_host, sock_behavior};
  sock_client.add_server_socket(client_sock, server_sock.addr(), 11211);

  bool done = false;
  sched.spawn([](sim::Scheduler& sch, ucr::Runtime& client_ucr2, mc::Client& ucr_client2,
                 mc::Client& sock_client2, std::uint32_t size, bool& fin) -> sim::Task<> {
    (void)sch;
    EXPECT_TRUE((co_await ucr_client2.connect_all()).ok());
    EXPECT_TRUE((co_await sock_client2.connect_all()).ok());

    std::vector<std::byte> payload(size);
    Rng rng(size);
    for (auto& b : payload) b = static_cast<std::byte>(rng() & 0xff);
    client_ucr2.register_region(payload);

    // Write over UCR, read back over both transports, byte-compare.
    EXPECT_TRUE((co_await ucr_client2.set("blob", payload)).ok());
    auto via_ucr = co_await ucr_client2.get("blob");
    auto via_sock = co_await sock_client2.get("blob");
    EXPECT_TRUE(via_ucr.ok());
    EXPECT_TRUE(via_sock.ok());
    if (via_ucr.ok() && via_sock.ok()) {
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(), via_ucr->data.begin()));
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(), via_sock->data.begin()));
      EXPECT_EQ(via_ucr->data.size(), size);
      EXPECT_EQ(via_sock->data.size(), size);
    }
    fin = true;
  }(sched, client_ucr, ucr_client, sock_client, param.size, done));
  sched.run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossEagerBoundary, ValueSizeIntegrity,
    ::testing::Values(SizeParam{1, false}, SizeParam{100, true}, SizeParam{4096, false},
                      // straddling the 8 KiB eager threshold (48B AM + header)
                      SizeParam{8100, false}, SizeParam{8192, true}, SizeParam{8292, false},
                      SizeParam{65536, true}, SizeParam{500000, false}),
    [](const auto& info2) {
      return std::to_string(info2.param.size) + (info2.param.binary ? "_binary" : "_ascii");
    });

// ------------------------------------------------ ordering at every size ----

class LatencyOrdering : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LatencyOrdering, UcrWinsAtEverySizeOnClusterA) {
  const std::uint32_t size = GetParam();
  auto latency = [&](TransportKind transport) {
    core::TestBedConfig config;
    config.cluster = ClusterKind::cluster_a;
    config.transport = transport;
    core::TestBed bed(config);
    core::WorkloadConfig workload;
    workload.pattern = OpPattern::pure_get;
    workload.value_size = size;
    workload.ops_per_client = 60;
    return core::run_workload(bed, workload).mean_latency_us();
  };
  const double ucr = latency(TransportKind::ucr_verbs);
  const double toe = latency(TransportKind::toe_10ge);
  const double sdp = latency(TransportKind::sdp);
  const double ipoib = latency(TransportKind::ipoib);
  // The paper's global claim: UCR wins at every size, >= ~4x vs TOE.
  EXPECT_LT(ucr * 3.0, toe) << "size " << size;
  EXPECT_LT(ucr, sdp) << "size " << size;
  EXPECT_LT(ucr, ipoib) << "size " << size;
  // And the socket ordering: TOE best below the bandwidth regime.
  if (size <= 4096) {
    EXPECT_LT(toe, sdp) << "size " << size;
    EXPECT_LT(sdp, ipoib) << "size " << size;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, LatencyOrdering,
                         ::testing::Values(1u, 64u, 1024u, 4096u, 32768u, 262144u));

}  // namespace
}  // namespace rmc
