// RFP server-bypass RPC: request/response rings for the full command set.
//
// Covers the frame layer (seal/read, epoch staleness, torn detection),
// the bootstrap handshake, the whole command set served through the
// rings, slot-epoch reuse (wrap-around without clearing writes), the
// ring-full / oversize / reply-overflow backpressure ladders into classic
// RPC, torn-frame handling on both sides of the fabric, lost-slot
// reclamation, and — the governing invariant, inherited from the
// one-sided suite — that under scripted link loss an RFP client never
// surfaces a torn value.
#include <gtest/gtest.h>

#include <charconv>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "rfp/channel.hpp"
#include "rfp/ring_server.hpp"
#include "simnet/faults.hpp"
#include "simnet/netparams.hpp"
#include "ucr/runtime.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;
namespace ucrp = mc::ucrp;
using sim::Scheduler;
using sim::Task;

std::uint64_t metric(const char* name) { return obs::registry().counter(name).value(); }

std::span<const std::byte> bytes_view(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// --------------------------------------------------- frame layer (pure) ----

TEST(RfpFrame, SealReadRoundTripEpochsAndTearing) {
  std::vector<std::byte> slot(256);
  std::span<const std::byte> body;

  // A zeroed slot is empty for a consumer at epoch 1 (seq 0 != 1).
  EXPECT_EQ(rfp::read_frame(slot, 1, body), rfp::FrameState::empty);

  std::span<std::byte> payload = rfp::frame_body(slot);
  for (int i = 0; i < 32; ++i) payload[i] = static_cast<std::byte>(i);
  rfp::seal_frame(slot, 1, 32);

  ASSERT_EQ(rfp::read_frame(slot, 1, body), rfp::FrameState::ready);
  EXPECT_EQ(body.size(), 32u);
  EXPECT_EQ(body.data(), payload.data());  // aliases the slot, no copy

  // Epoch advance makes the same bytes invisible — reuse needs no clear.
  EXPECT_EQ(rfp::read_frame(slot, 2, body), rfp::FrameState::empty);

  // A body byte flipped while carrying the expected seq = torn, not ready.
  payload[5] ^= std::byte{0xff};
  EXPECT_EQ(rfp::read_frame(slot, 1, body), rfp::FrameState::torn);
  payload[5] ^= std::byte{0xff};
  EXPECT_EQ(rfp::read_frame(slot, 1, body), rfp::FrameState::ready);

  // A missing tail (header landed, tail not yet) = torn as well.
  const std::uint32_t zero = 0;
  std::memcpy(slot.data() + rfp::FrameHeader::kSize + 32, &zero, sizeof(zero));
  EXPECT_EQ(rfp::read_frame(slot, 1, body), rfp::FrameState::torn);
}

TEST(RfpFrame, BootstrapStructsRoundTripAndValidity) {
  rfp::BootstrapRequest req;
  req.cookie = 0xabcdef;
  req.reply_counter = 42;
  req.response_ring = {0x1000, 7, 4096};
  req.slot_count = 16;
  req.slot_size = 2048;
  std::byte buf[rfp::BootstrapRequest::kSize];
  req.encode(buf);
  const auto back = rfp::BootstrapRequest::decode(buf);
  EXPECT_EQ(back.cookie, req.cookie);
  EXPECT_EQ(back.response_ring.addr, req.response_ring.addr);
  EXPECT_EQ(back.slot_count, 16u);

  rfp::RingDescriptor d;
  EXPECT_FALSE(d.valid());  // the zeroed descriptor = "stay on RPC"
  d.slot_count = 4;
  d.slot_size = 512;
  EXPECT_TRUE(d.valid());
  d.slot_size = 8;  // can't even frame an empty body
  EXPECT_FALSE(d.valid());
}

// -------------------------------------------------------------- worlds ----

/// One server (UCR frontend + RingServer) and one rfp-mode client.
struct RfpWorld {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};

  sim::Host server_host{sched, 0, "server", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  ucr::Runtime server_ucr{server_hca};
  mc::Server server{sched, server_host, mc::ServerConfig{}};
  std::unique_ptr<rfp::RingServer> ring;

  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  std::unique_ptr<mc::Client> client;

  explicit RfpWorld(mc::ClientBehavior behavior = {},
                    rfp::RingServerConfig ring_cfg = {}) {
    server.attach_ucr_frontend(server_ucr);
    ring = std::make_unique<rfp::RingServer>(server_ucr, server_host, server.store(),
                                             ring_cfg);
    behavior.mode = mc::ClientBehavior::Mode::rfp;
    client = std::make_unique<mc::Client>(sched, client_host, behavior);
    client->add_server_ucr(client_ucr, server_ucr.addr(), 11211);
  }

  void drive(Task<> task, sim::Time horizon = 5_s) {
    bool done = false;
    sched.spawn([](Task<> inner, bool& fin) -> Task<> {
      co_await std::move(inner);
      fin = true;
    }(std::move(task), done));
    const sim::Time deadline = sched.now() + horizon;
    while (!done && sched.now() < deadline) {
      const sim::Time before = sched.now();
      sched.run_until(std::min(deadline, before + 1_ms));
      if (sched.now() == before) break;  // queue drained: no progress possible
    }
    ASSERT_TRUE(done) << "scenario hung past its horizon";
  }
};

/// Server side plus a *raw* Channel — for tests that need the channel's
/// staging/arena hooks (forged torn frames, slot epoch assertions).
struct ChannelWorld {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};

  sim::Host server_host{sched, 0, "server", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  ucr::Runtime server_ucr{server_hca};
  mc::Server server{sched, server_host, mc::ServerConfig{}};
  std::unique_ptr<rfp::RingServer> ring;

  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  std::unique_ptr<rfp::Channel> channel;
  ucr::Endpoint* ep = nullptr;

  explicit ChannelWorld(rfp::ChannelConfig cfg = {}, rfp::RingServerConfig srv_cfg = {}) {
    server.attach_ucr_frontend(server_ucr);
    ring = std::make_unique<rfp::RingServer>(server_ucr, server_host, server.store(),
                                             srv_cfg);
    channel = std::make_unique<rfp::Channel>(client_ucr, client_host, cfg);
  }

  Task<Status> connect_and_bootstrap() {
    auto r = co_await client_ucr.connect(server_ucr.addr(), 11211);
    if (!r.ok()) co_return r.error();
    ep = *r;
    co_return co_await channel->bootstrap(*ep);
  }

  /// One GET through the raw channel; returns the op result status (the
  /// response status is checked by the caller via out).
  Task<Result<rfp::OpResult>> raw_get(std::string_view key) {
    ucrp::RequestHeader hdr;
    hdr.op = ucrp::Op::get;
    hdr.key_len = static_cast<std::uint16_t>(key.size());
    co_return co_await channel->execute(
        *ep, hdr, std::as_bytes(std::span<const char>(key.data(), key.size())), {},
        1 * kNsPerSec);
  }

  Task<Result<rfp::OpResult>> raw_set(std::string_view key, const std::string& value) {
    ucrp::RequestHeader hdr;
    hdr.op = ucrp::Op::set;
    hdr.key_len = static_cast<std::uint16_t>(key.size());
    co_return co_await channel->execute(
        *ep, hdr, std::as_bytes(std::span<const char>(key.data(), key.size())),
        bytes_view(value), 1 * kNsPerSec);
  }

  void drive(Task<> task, sim::Time horizon = 5_s) {
    bool done = false;
    sched.spawn([](Task<> inner, bool& fin) -> Task<> {
      co_await std::move(inner);
      fin = true;
    }(std::move(task), done));
    const sim::Time deadline = sched.now() + horizon;
    while (!done && sched.now() < deadline) {
      const sim::Time before = sched.now();
      sched.run_until(std::min(deadline, before + 1_ms));
      if (sched.now() == before) break;
    }
    ASSERT_TRUE(done) << "scenario hung past its horizon";
  }
};

/// Seal a deliberately-corrupt frame at `seq` into `slot`: header and tail
/// are consistent but one body byte is flipped after checksumming, so any
/// consumer expecting `seq` reads torn until a genuine frame lands.
void forge_torn_frame(std::span<std::byte> slot, std::uint32_t seq) {
  std::span<std::byte> body = rfp::frame_body(slot);
  const std::uint32_t body_len = 24;
  for (std::uint32_t i = 0; i < body_len; ++i) body[i] = static_cast<std::byte>(0x5a);
  rfp::seal_frame(slot, seq, body_len);
  body[3] ^= std::byte{0xff};
}

// -------------------------------------------- the full command set ----

TEST(Rfp, FullCommandSetRidesTheRingsWithoutFallback) {
  RfpWorld w;
  const std::uint64_t ops0 = metric("mc.rfp.ops");
  const std::uint64_t falls0 = metric("mc.rfp.fallbacks");
  const std::uint64_t boots0 = metric("mc.rfp.bootstraps");
  const std::uint64_t sweeps0 = metric("mc.rfp.poll.sweeps");
  const std::uint64_t frames0 = metric("mc.rfp.poll.frames");

  w.drive([](RfpWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.client->connect_all()).ok());

    // Storage family.
    EXPECT_TRUE((co_await wk.client->set("alpha", bytes_view("value-one"), 7)).ok());
    EXPECT_FALSE((co_await wk.client->add("alpha", bytes_view("x"))).ok());
    EXPECT_TRUE((co_await wk.client->replace("alpha", bytes_view("value-two"), 9)).ok());
    EXPECT_TRUE((co_await wk.client->append("alpha", bytes_view("!"))).ok());

    // GET / gets / get_into.
    auto hit = co_await wk.client->get("alpha");
    EXPECT_TRUE(hit.ok());
    if (hit.ok()) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(hit->data.data()),
                            hit->data.size()),
                "value-two!");
    }
    auto with_cas = co_await wk.client->gets("alpha");
    EXPECT_TRUE(with_cas.ok());
    if (with_cas.ok()) {
      EXPECT_GT(with_cas->cas, 0u);
    }
    std::vector<std::byte> dest(64);
    auto direct = co_await wk.client->get_into("alpha", dest);
    EXPECT_TRUE(direct.ok());
    if (direct.ok()) {
      EXPECT_EQ(direct->value_len, 10u);
    }
    auto miss = co_await wk.client->get("never-stored");
    EXPECT_EQ(miss.error(), Errc::not_found);

    // INCR / DECR.
    EXPECT_TRUE((co_await wk.client->set("ctr", bytes_view("41"))).ok());
    auto up = co_await wk.client->incr("ctr", 1);
    EXPECT_TRUE(up.ok());
    if (up.ok()) {
      EXPECT_EQ(*up, 42u);
    }
    auto down = co_await wk.client->decr("ctr", 2);
    EXPECT_TRUE(down.ok());
    if (down.ok()) {
      EXPECT_EQ(*down, 40u);
    }

    // TOUCH / DELETE.
    EXPECT_TRUE((co_await wk.client->touch("ctr", 3600)).ok());
    EXPECT_TRUE((co_await wk.client->del("alpha")).ok());
    EXPECT_EQ((co_await wk.client->get("alpha")).error(), Errc::not_found);

    // Multiget: one request frame, one chunked reply frame.
    const std::vector<std::string> keys = {"m0", "m1", "m2", "m3"};
    for (const auto& k : keys) {
      EXPECT_TRUE((co_await wk.client->set(k, bytes_view("v-" + k), 5)).ok());
    }
    auto many = co_await wk.client->mget(keys);
    EXPECT_TRUE(many.ok());
    if (many.ok() && many->size() == 4) {
      for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_TRUE((*many)[i].has_value()) << "mget miss at " << i;
        if (!(*many)[i].has_value()) continue;
        EXPECT_EQ(std::string(reinterpret_cast<const char*>((*many)[i]->data.data()),
                              (*many)[i]->data.size()),
                  "v-" + keys[i]);
      }
    } else if (many.ok()) {
      ADD_FAILURE() << "mget returned " << many->size() << " results";
    }

    // flush_all stays on the RPC path (fallback matrix) but still works.
    EXPECT_TRUE((co_await wk.client->flush_all()).ok());
    EXPECT_EQ((co_await wk.client->get("m0")).error(), Errc::not_found);
  }(w));

  EXPECT_GE(metric("mc.rfp.bootstraps") - boots0, 1u);
  EXPECT_GE(metric("mc.rfp.ops") - ops0, 15u);
  // Every command above that the rings can serve was served there.
  EXPECT_EQ(metric("mc.rfp.fallbacks") - falls0, 0u);
  EXPECT_GT(metric("mc.rfp.poll.sweeps") - sweeps0, 0u);
  EXPECT_GT(metric("mc.rfp.poll.frames") - frames0, 0u);
  EXPECT_EQ(w.ring->ring_count(), 1u);
}

// ------------------------------------- wrap-around / epoch lockstep ----

TEST(Rfp, SlotEpochsAdvanceAcrossWrapAroundWithoutClearing) {
  rfp::ChannelConfig cfg;
  cfg.slot_count = 2;
  ChannelWorld w(cfg);

  w.drive([](ChannelWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.connect_and_bootstrap()).ok());
    EXPECT_EQ(wk.channel->descriptor().slot_count, 2u);

    auto stored = co_await wk.raw_set("wrap", std::string(48, 'w'));
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    EXPECT_EQ(stored->header.status, ucrp::RStatus::stored);
    wk.channel->release(stored->slot);

    // 10 sequential GETs over a 2-slot ring: every op claims slot 0, so
    // its epoch must climb once per op — stale response frames from prior
    // epochs are invisible by seq alone (nothing is ever cleared).
    for (int i = 0; i < 10; ++i) {
      auto r = co_await wk.raw_get("wrap");
      EXPECT_TRUE(r.ok()) << "op " << i;
      if (!r.ok()) co_return;
      EXPECT_EQ(r->header.status, ucrp::RStatus::value);
      EXPECT_EQ(r->slot, 0u);
      EXPECT_EQ(r->body.size(), 48u);
      wk.channel->release(r->slot);
    }
    // set (epoch 1) + 10 gets: slot 0 sits at epoch 12 for the next op.
    EXPECT_EQ(wk.channel->slot_seq_for_test(0), 12u);
    EXPECT_EQ(wk.channel->slots_in_flight(), 0u);
  }(w));
}

// ------------------------------------------------- backpressure ladders ----

TEST(Rfp, RingFullBackpressureFallsBackToRpcAndRecovers) {
  mc::ClientBehavior behavior;
  behavior.rfp.slot_count = 2;  // tiny ring: concurrency must overflow it
  RfpWorld w(behavior);
  const std::uint64_t full0 = metric("mc.rfp.ring_full");
  const std::uint64_t falls0 = metric("mc.rfp.fallbacks");

  w.drive([](RfpWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.client->connect_all()).ok());
    constexpr int kKeys = 8;
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_TRUE((co_await wk.client->set("k" + std::to_string(i),
                                           bytes_view("v" + std::to_string(i))))
                      .ok());
    }
    // 8 concurrent GETs against 2 slots: the overflow must transparently
    // run over RPC — all 8 succeed either way.
    int done = 0, ok = 0;
    for (int i = 0; i < kKeys; ++i) {
      wk.sched.spawn([](RfpWorld& w2, int i2, int& done2, int& ok2) -> Task<> {
        auto r = co_await w2.client->get("k" + std::to_string(i2));
        if (r.ok()) ++ok2;
        ++done2;
      }(wk, i, done, ok));
    }
    while (done < kKeys) co_await wk.sched.delay(10_us);
    EXPECT_EQ(ok, kKeys);

    // The ring is usable again once the burst drains.
    EXPECT_TRUE((co_await wk.client->get("k0")).ok());
  }(w));

  EXPECT_GT(metric("mc.rfp.ring_full") - full0, 0u);
  EXPECT_GT(metric("mc.rfp.fallbacks") - falls0, 0u);
}

TEST(Rfp, OversizeRequestsAndOverflowingRepliesFallBackToRpc) {
  mc::ClientBehavior behavior;
  behavior.rfp.slot_size = 512;  // bodies near/over 512 B cannot be framed
  RfpWorld w(behavior);
  const std::uint64_t over0 = metric("mc.rfp.oversize");
  const std::uint64_t falls0 = metric("mc.rfp.fallbacks");

  w.drive([](RfpWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.client->connect_all()).ok());

    // Request too big for a slot: client-side oversize gate, RPC serves it.
    const std::string big(2000, 'b');
    EXPECT_TRUE((co_await wk.client->set("big", bytes_view(big))).ok());

    // Request fits (a bare key) but the reply cannot: the server seals a
    // server_error frame and the client re-runs the GET over RPC.
    auto r = co_await wk.client->get("big");
    EXPECT_TRUE(r.ok());
    if (r.ok()) {
      EXPECT_EQ(r->data.size(), big.size());
    }

    // Small values still ride the rings end to end.
    EXPECT_TRUE((co_await wk.client->set("small", bytes_view("tiny"))).ok());
    auto s = co_await wk.client->get("small");
    EXPECT_TRUE(s.ok());
  }(w));

  EXPECT_GT(metric("mc.rfp.oversize") - over0, 0u);
  EXPECT_GE(metric("mc.rfp.fallbacks") - falls0, 2u);
}

// ----------------------------------------------------- torn frames ----

TEST(Rfp, ServerSkipsTornRequestFrameUntilItHeals) {
  ChannelWorld w;
  const std::uint64_t torn0 = metric("mc.rfp.torn_frames");

  w.drive([](ChannelWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.connect_and_bootstrap()).ok());
    auto stored = co_await wk.raw_set("whole", "intact-value");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    wk.channel->release(stored->slot);

    // Forge a torn frame directly into the server's request ring at slot
    // 1's expected epoch (slot 1 is idle: sequential ops reuse slot 0).
    // The sweep must flag it torn — and never execute it.
    const std::uint32_t slot_size = wk.channel->descriptor().slot_size;
    std::vector<std::byte> garbage(slot_size);
    wk.client_ucr.register_region(garbage);
    forge_torn_frame(garbage, /*seq=*/1);
    const auto& win = wk.channel->descriptor().request_ring;
    const ucr::Runtime::RemoteMemory target{win.addr, win.rkey, win.length};
    EXPECT_TRUE(wk.client_ucr
                    .put(*wk.ep, std::span<const std::byte>(garbage),
                         target, /*offset=*/1 * slot_size, nullptr)
                    .ok());
    co_await wk.sched.delay(30_us);  // several sweeps observe the tear

    // The healthy slots keep serving ops the whole time.
    auto r = co_await wk.raw_get("whole");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->header.status, ucrp::RStatus::value);
    wk.channel->release(r->slot);
  }(w));

  EXPECT_GT(metric("mc.rfp.torn_frames") - torn0, 0u);
}

TEST(Rfp, ClientRetriesTornResponseFrameUntilTheRealOneLands) {
  rfp::ChannelConfig cfg;
  cfg.max_torn_retries = 64;  // ride out the tear until the response lands
  ChannelWorld w(cfg);
  const std::uint64_t torn0 = metric("mc.rfp.torn_retries");

  w.drive([](ChannelWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.connect_and_bootstrap()).ok());
    auto stored = co_await wk.raw_set("heal", "healed-value");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    wk.channel->release(stored->slot);

    // Pre-corrupt slot 0's response frame at the epoch the next op will
    // use: the poll loop must observe torn (a concurrent write, as far as
    // it can tell) and keep polling until the genuine response overwrites.
    const std::uint32_t slot_size = wk.channel->descriptor().slot_size;
    const std::uint32_t next_seq = wk.channel->slot_seq_for_test(0);
    forge_torn_frame(wk.channel->response_arena_for_test().subspan(0, slot_size),
                     next_seq);

    auto r = co_await wk.raw_get("heal");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->header.status, ucrp::RStatus::value);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(r->body.data()), r->body.size()),
              "healed-value");
    wk.channel->release(r->slot);
  }(w));

  EXPECT_GT(metric("mc.rfp.torn_retries") - torn0, 0u);
}

TEST(Rfp, TornBudgetExhaustionQuarantinesAndReclaimsTheSlot) {
  rfp::ChannelConfig cfg;
  cfg.max_torn_retries = 1;  // give up long before the real response lands
  ChannelWorld w(cfg);

  w.drive([](ChannelWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.connect_and_bootstrap()).ok());
    auto stored = co_await wk.raw_set("quarantine", "qv");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    wk.channel->release(stored->slot);

    const std::uint32_t slot_size = wk.channel->descriptor().slot_size;
    const std::uint32_t seq = wk.channel->slot_seq_for_test(0);
    forge_torn_frame(wk.channel->response_arena_for_test().subspan(0, slot_size), seq);

    // The op exhausts its torn budget and falls back; the slot is lost,
    // not free — its epoch is still open.
    auto r = co_await wk.raw_get("quarantine");
    EXPECT_EQ(r.error(), Errc::protocol_error);
    EXPECT_EQ(wk.channel->slots_in_flight(), 0u);

    // The real response lands later and closes the epoch; the next op
    // reclaims the slot and runs on the advanced epoch.
    co_await wk.sched.delay(30_us);
    auto again = co_await wk.raw_get("quarantine");
    EXPECT_TRUE(again.ok());
    if (!again.ok()) co_return;
    EXPECT_EQ(again->header.status, ucrp::RStatus::value);
    EXPECT_EQ(again->slot, 0u);
    wk.channel->release(again->slot);
    EXPECT_EQ(wk.channel->slot_seq_for_test(0), seq + 2);
  }(w));
}

// ------------------------------------------------------------- chaos ----

/// Generation-stamped value (the one-sided suite's scheme): any stitch of
/// two generations fails the consistency check.
std::string gen_value(int gen, int key, std::size_t len) {
  std::string v = std::to_string(gen) + ":";
  v.append(len, static_cast<char>('a' + (gen * 7 + key * 3) % 26));
  return v;
}

bool value_consistent(const std::string& v, int key, std::size_t len) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) return false;
  int gen = -1;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + colon, gen);
  if (ec != std::errc{} || ptr != v.data() + colon) return false;
  return v == gen_value(gen, key, len);
}

TEST(Rfp, NeverServesTornValuesUnderLinkLoss) {
  mc::ClientBehavior behavior;
  behavior.op_timeout = 300_us;
  behavior.max_retries = 2;
  behavior.eject_after_failures = 0;  // pool of one: keep retrying it
  RfpWorld w(behavior);

  constexpr int kKeys = 6;
  constexpr int kGens = 30;
  constexpr std::size_t kLen = 256;

  const sim::Time t0 = w.sched.now();
  w.fabric.faults().schedule({
      {t0 + 200_us, {.kind = sim::Fault::Kind::loss,
                     .a = 1 /* client */, .b = 0 /* server */,
                     .drop_per_million = 30'000}},
      {t0 + 2_ms, {.kind = sim::Fault::Kind::loss, .a = 1, .b = 0,
                   .drop_per_million = 0}},
  });

  int hits = 0, misses = 0, transport_errors = 0, torn = 0;

  w.drive([](RfpWorld& wk, int& hits2, int& misses2, int& errors2, int& torn2) -> Task<> {
    EXPECT_TRUE((co_await wk.client->connect_all()).ok());
    for (int k = 0; k < kKeys; ++k) {
      EXPECT_TRUE((co_await wk.client->set("key" + std::to_string(k),
                                           bytes_view(gen_value(0, k, kLen))))
                      .ok());
    }

    // Interleave republishes and reads across the lossy window: every GET
    // must surface a whole generation or an error — never a stitch.
    Rng rng(7);
    for (int gen = 1; gen <= kGens; ++gen) {
      const int wk_key = static_cast<int>(rng.below(kKeys));
      (void)co_await wk.client->set("key" + std::to_string(wk_key),
                                    bytes_view(gen_value(gen, wk_key, kLen)));
      for (int i = 0; i < 8; ++i) {
        const int k = static_cast<int>(rng.below(kKeys));
        auto r = co_await wk.client->get("key" + std::to_string(k));
        if (r.ok()) {
          const std::string v(reinterpret_cast<const char*>(r->data.data()),
                              r->data.size());
          if (value_consistent(v, k, kLen)) {
            ++hits2;
          } else {
            ++torn2;
            ADD_FAILURE() << "torn value for key" << k << ": " << v.substr(0, 32);
          }
        } else if (r.error() == Errc::not_found) {
          ++misses2;
        } else {
          ++errors2;  // lossy window: bounded failures are fine
        }
      }
    }
  }(w, hits, misses, transport_errors, torn));

  EXPECT_EQ(torn, 0);
  EXPECT_GT(hits, 0);
}

// --------------------------------------------------- park / wake cycle ----

TEST(Rfp, PollLoopParksWhenIdleAndWakesForTheNextOp) {
  rfp::RingServerConfig srv;
  srv.park_after_ns = 20'000;  // park fast so the test sees a full cycle
  ChannelWorld w({}, srv);
  const std::uint64_t parks0 = metric("mc.rfp.poll.parks");
  const std::uint64_t wakes0 = metric("mc.rfp.wakes");

  w.drive([](ChannelWorld& wk) -> Task<> {
    EXPECT_TRUE((co_await wk.connect_and_bootstrap()).ok());
    auto stored = co_await wk.raw_set("nap", "zzz");
    EXPECT_TRUE(stored.ok());
    if (!stored.ok()) co_return;
    wk.channel->release(stored->slot);

    // Go quiet long past the park threshold, then issue another op: the
    // channel must nudge the parked loop awake and the op must complete.
    co_await wk.sched.delay(200_us);
    EXPECT_FALSE(wk.ring->polling());
    auto r = co_await wk.raw_get("nap");
    EXPECT_TRUE(r.ok());
    if (!r.ok()) co_return;
    EXPECT_EQ(r->header.status, ucrp::RStatus::value);
    wk.channel->release(r->slot);
  }(w));

  EXPECT_GT(metric("mc.rfp.poll.parks") - parks0, 0u);
  EXPECT_GT(metric("mc.rfp.wakes") - wakes0, 0u);
}

}  // namespace
}  // namespace rmc
