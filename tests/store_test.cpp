// Tests for the storage engine: slab allocator invariants, hash table with
// incremental rehash, LRU eviction, expiration, flush_all, CAS, arithmetic,
// the two-phase RDMA path, and refcount pinning.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memcached/store.hpp"

namespace rmc::mc {
namespace {

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string str(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

// ---------------------------------------------------------------- slab ----

TEST(Slab, ClassLadderGrowsByFactor) {
  SlabAllocator slabs;
  std::size_t prev = 0;
  for (std::size_t c = 0; c < slabs.class_count(); ++c) {
    EXPECT_GT(slabs.chunk_size(static_cast<std::uint8_t>(c)), prev);
    prev = slabs.chunk_size(static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(prev, SlabConfig{}.chunk_max);
}

TEST(Slab, ClassForPicksSmallestFit) {
  SlabAllocator slabs;
  auto cls = slabs.class_for(100);
  ASSERT_TRUE(cls.ok());
  EXPECT_GE(slabs.chunk_size(*cls), 100u);
  if (*cls > 0) {
    EXPECT_LT(slabs.chunk_size(*cls - 1), 100u);
  }
}

TEST(Slab, TooLargeRejected) {
  SlabAllocator slabs;
  EXPECT_EQ(slabs.class_for(2 * 1024 * 1024).error(), Errc::too_large);
}

TEST(Slab, AllocationsAreDistinctAndNonOverlapping) {
  SlabAllocator slabs;
  const auto cls = *slabs.class_for(200);
  const std::size_t chunk = slabs.chunk_size(cls);
  std::set<std::byte*> seen;
  std::vector<std::byte*> chunks;
  for (int i = 0; i < 500; ++i) {
    auto p = slabs.allocate(cls);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(seen.insert(*p).second) << "duplicate chunk";
    chunks.push_back(*p);
  }
  // Property: no two chunks overlap.
  std::sort(chunks.begin(), chunks.end());
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_GE(static_cast<std::size_t>(chunks[i] - chunks[i - 1]), chunk);
  }
}

TEST(Slab, FreeRecyclesMemory) {
  SlabConfig config;
  config.memory_limit = 1024 * 1024;  // one page only
  SlabAllocator slabs(config);
  const auto cls = *slabs.class_for(100000);  // big chunks, few per page
  std::vector<std::byte*> all;
  while (true) {
    auto p = slabs.allocate(cls);
    if (!p.ok()) break;
    all.push_back(*p);
  }
  ASSERT_FALSE(all.empty());
  slabs.free(cls, all.back());
  auto again = slabs.allocate(cls);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, all.back());
}

TEST(Slab, MemoryLimitEnforced) {
  SlabConfig config;
  config.memory_limit = 2 * 1024 * 1024;
  SlabAllocator slabs(config);
  const auto cls = *slabs.class_for(1000);
  while (slabs.allocate(cls).ok()) {
  }
  EXPECT_LE(slabs.memory_allocated(), config.memory_limit);
}

// ----------------------------------------------------------- hashtable ----

TEST(Hash, InsertFindRemoveAcrossRehash) {
  // Start tiny so expansion happens many times; every key must stay
  // findable through incremental migration.
  HashTable table(4);  // 16 buckets
  SlabAllocator slabs;
  std::map<std::string, ItemHeader*> reference;

  const auto cls = *slabs.class_for(400);
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    auto chunk = slabs.allocate(cls);
    auto* item = new (*chunk) ItemHeader();
    item->key_len = static_cast<std::uint16_t>(key.size());
    std::memcpy(item->key_data(), key.data(), key.size());
    table.insert(item, hash_one_at_a_time(key));
    reference[key] = item;

    // Interleave lookups of old keys while expansion is in flight.
    if (i % 7 == 0) {
      const std::string probe = "key-" + std::to_string(i / 2);
      EXPECT_EQ(table.find(probe, hash_one_at_a_time(probe)), reference[probe]);
    }
  }
  EXPECT_EQ(table.size(), 2000u);
  EXPECT_GT(table.bucket_count(), 16u);  // expanded

  for (const auto& [key, item] : reference) {
    EXPECT_EQ(table.find(key, hash_one_at_a_time(key)), item);
  }
  // Remove half, verify the rest.
  int removed = 0;
  for (const auto& [key, item] : reference) {
    if (removed % 2 == 0) {
      EXPECT_TRUE(table.remove(item, hash_one_at_a_time(key)));
    }
    ++removed;
  }
  EXPECT_EQ(table.size(), 1000u);
}

// --------------------------------------------------------------- store ----

TEST(Store, SetAndGetRoundTrip) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "hello", val("world"), 42, 0).ok());
  ItemHeader* item = store.get("hello");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(str(item->value()), "world");
  EXPECT_EQ(item->flags, 42u);
  EXPECT_EQ(item->key(), "hello");
}

TEST(Store, GetMissingReturnsNull) {
  ItemStore store;
  EXPECT_EQ(store.get("nope"), nullptr);
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(Store, SetOverwritesAndBumpsCas) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v1"), 0, 0).ok());
  const auto cas1 = store.get("k")->cas;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v2"), 0, 0).ok());
  ItemHeader* item = store.get("k");
  EXPECT_EQ(str(item->value()), "v2");
  EXPECT_GT(item->cas, cas1);
  EXPECT_EQ(store.item_count(), 1u);
}

TEST(Store, AddOnlyWhenAbsent) {
  ItemStore store;
  EXPECT_TRUE(store.store(SetMode::add, "k", val("v"), 0, 0).ok());
  EXPECT_EQ(store.store(SetMode::add, "k", val("w"), 0, 0).error(), Errc::not_stored);
  EXPECT_EQ(str(store.get("k")->value()), "v");
}

TEST(Store, ReplaceOnlyWhenPresent) {
  ItemStore store;
  EXPECT_EQ(store.store(SetMode::replace, "k", val("v"), 0, 0).error(), Errc::not_stored);
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, 0).ok());
  EXPECT_TRUE(store.store(SetMode::replace, "k", val("w"), 0, 0).ok());
  EXPECT_EQ(str(store.get("k")->value()), "w");
}

TEST(Store, AppendPrependCombineAndKeepFlags) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("mid"), 7, 0).ok());
  ASSERT_TRUE(store.store(SetMode::append, "k", val("-end"), 99, 0).ok());
  ASSERT_TRUE(store.store(SetMode::prepend, "k", val("start-"), 99, 0).ok());
  ItemHeader* item = store.get("k");
  EXPECT_EQ(str(item->value()), "start-mid-end");
  EXPECT_EQ(item->flags, 7u);  // storage verbs keep original flags
}

TEST(Store, CasMatchesAndConflicts) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v1"), 0, 0).ok());
  const auto cas = store.get("k")->cas;
  EXPECT_TRUE(store.store(SetMode::cas, "k", val("v2"), 0, 0, cas).ok());
  // Old CAS id now stale.
  EXPECT_EQ(store.store(SetMode::cas, "k", val("v3"), 0, 0, cas).error(), Errc::exists);
  EXPECT_EQ(store.store(SetMode::cas, "missing", val("x"), 0, 0, 1).error(), Errc::not_found);
  EXPECT_EQ(str(store.get("k")->value()), "v2");
  EXPECT_EQ(store.stats().cas_hits, 1u);
  EXPECT_EQ(store.stats().cas_badval, 1u);
  EXPECT_EQ(store.stats().cas_misses, 1u);
}

TEST(Store, DeleteRemoves) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, 0).ok());
  EXPECT_TRUE(store.del("k"));
  EXPECT_FALSE(store.del("k"));
  EXPECT_EQ(store.get("k"), nullptr);
  EXPECT_EQ(store.stats().curr_items, 0u);
}

TEST(Store, ExpirationIsLazy) {
  ItemStore store;
  store.set_clock(100);
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, 5).ok());  // expires at 105
  EXPECT_NE(store.get("k"), nullptr);
  store.set_clock(104);
  EXPECT_NE(store.get("k"), nullptr);
  store.set_clock(105);
  EXPECT_EQ(store.get("k"), nullptr);
  EXPECT_EQ(store.stats().expired_unfetched, 1u);
  EXPECT_EQ(store.stats().curr_items, 0u);
}

TEST(Store, ExptimeZeroNeverExpires) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, 0).ok());
  store.set_clock(1u << 30);
  EXPECT_NE(store.get("k"), nullptr);
}

TEST(Store, LargeExptimeIsAbsolute) {
  ItemStore store;
  store.set_clock(100);
  const std::uint32_t absolute = 40 * 86400;  // > 30 days -> absolute
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, absolute).ok());
  EXPECT_EQ(store.get("k")->exptime, absolute);
}

TEST(Store, FlushAllInvalidatesEverythingStoredBefore) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "a", val("1"), 0, 0).ok());
  ASSERT_TRUE(store.store(SetMode::set, "b", val("2"), 0, 0).ok());
  store.flush_all();
  EXPECT_EQ(store.get("a"), nullptr);
  EXPECT_EQ(store.get("b"), nullptr);
  // New stores after the flush live.
  ASSERT_TRUE(store.store(SetMode::set, "c", val("3"), 0, 0).ok());
  EXPECT_NE(store.get("c"), nullptr);
}

TEST(Store, IncrDecrSemantics) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "n", val("10"), 0, 0).ok());
  EXPECT_EQ(*store.arith("n", 5, false), 15u);
  EXPECT_EQ(*store.arith("n", 3, true), 12u);
  EXPECT_EQ(*store.arith("n", 100, true), 0u);  // clamps at zero
  EXPECT_EQ(str(store.get("n")->value()), "0");
  EXPECT_EQ(store.arith("missing", 1, false).error(), Errc::not_found);
}

TEST(Store, IncrOnNonNumericFails) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "s", val("abc"), 0, 0).ok());
  EXPECT_EQ(store.arith("s", 1, false).error(), Errc::invalid_argument);
}

TEST(Store, IncrGrowsValueLength) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "n", val("9"), 0, 0).ok());
  EXPECT_EQ(*store.arith("n", 1, false), 10u);
  EXPECT_EQ(str(store.get("n")->value()), "10");
  // Wrap a number to maximum width.
  ASSERT_TRUE(store.store(SetMode::set, "m", val("18446744073709551615"), 0, 0).ok());
  EXPECT_EQ(*store.arith("m", 1, false), 0u);  // wraps like memcached
}

TEST(Store, TouchUpdatesExpiry) {
  ItemStore store;
  store.set_clock(10);
  ASSERT_TRUE(store.store(SetMode::set, "k", val("v"), 0, 5).ok());
  EXPECT_TRUE(store.touch("k", 100));
  store.set_clock(50);
  EXPECT_NE(store.get("k"), nullptr);  // would have expired without touch
  EXPECT_FALSE(store.touch("missing", 10));
}

TEST(Store, EvictionReclaimsLruTail) {
  StoreConfig config;
  config.slabs.memory_limit = 1024 * 1024;  // one page
  ItemStore store(config);
  const std::string value(1000, 'x');

  // Fill beyond capacity; early keys must be evicted, late ones live.
  int stored = 0;
  for (int i = 0; i < 2000; ++i) {
    if (store.store(SetMode::set, "k" + std::to_string(i), val(value), 0, 0).ok()) ++stored;
  }
  EXPECT_EQ(stored, 2000);  // eviction means set never fails
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_EQ(store.get("k0"), nullptr);                  // oldest gone
  EXPECT_NE(store.get("k1999"), nullptr);               // newest alive
  EXPECT_LE(store.slabs().memory_allocated(), config.slabs.memory_limit);
}

TEST(Store, GetBumpsLruSoHotKeysSurvive) {
  StoreConfig config;
  config.slabs.memory_limit = 1024 * 1024;
  ItemStore store(config);
  const std::string value(1000, 'x');
  ASSERT_TRUE(store.store(SetMode::set, "hot", val(value), 0, 0).ok());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(store.store(SetMode::set, "k" + std::to_string(i), val(value), 0, 0).ok());
    store.get("hot");  // keep it warm
  }
  EXPECT_NE(store.get("hot"), nullptr);
}

TEST(Store, EvictionDisabledReturnsNoResources) {
  StoreConfig config;
  config.slabs.memory_limit = 1024 * 1024;
  config.evict_to_free = false;  // memcached -M
  ItemStore store(config);
  const std::string value(1000, 'x');
  bool failed = false;
  for (int i = 0; i < 2000 && !failed; ++i) {
    failed = !store.store(SetMode::set, "k" + std::to_string(i), val(value), 0, 0).ok();
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(Store, ItemOwnsKeyAndValueBytesAfterCallerBufferDies) {
  // The store must copy key and value into the slab chunk: the hot path
  // hands it string_views/spans into receive buffers that are recycled
  // immediately after the call.
  ItemStore store;
  std::string key_buf = "volatile-key";
  std::string val_buf = "volatile-value";
  ASSERT_TRUE(store.store(SetMode::set, key_buf, val(val_buf), 0, 0).ok());
  // Scribble over the caller's buffers (simulating rx-buffer reuse).
  std::fill(key_buf.begin(), key_buf.end(), '!');
  std::fill(val_buf.begin(), val_buf.end(), '?');
  ItemHeader* item = store.get("volatile-key");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->key(), "volatile-key");
  EXPECT_EQ(str(item->value()), "volatile-value");
  // And lookups read the probe key by value, not by pointer identity.
  std::string probe = "volatile-key";
  EXPECT_EQ(store.get(probe), item);
}

TEST(Store, PinnedItemSurvivesDeleteUntilRelease) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("payload"), 0, 0).ok());
  ItemHeader* item = store.get_pinned("k");
  ASSERT_NE(item, nullptr);
  EXPECT_TRUE(store.del("k"));
  // The chunk is still readable: an in-flight RDMA would still see it.
  EXPECT_EQ(str(item->value()), "payload");
  store.release(item);  // now it may be recycled
  EXPECT_EQ(store.get("k"), nullptr);
}

TEST(Store, PinnedItemNotEvicted) {
  StoreConfig config;
  config.slabs.memory_limit = 1024 * 1024;
  ItemStore store(config);
  const std::string value(1000, 'x');
  ASSERT_TRUE(store.store(SetMode::set, "pinned", val(value), 0, 0).ok());
  ItemHeader* pinned = store.get_pinned("pinned");
  for (int i = 0; i < 1500; ++i) {
    (void)store.store(SetMode::set, "k" + std::to_string(i), val(value), 0, 0);
  }
  EXPECT_EQ(str(pinned->value()), value);
  EXPECT_TRUE(pinned->linked);
  store.release(pinned);
}

TEST(Store, TwoPhaseAllocateCommit) {
  ItemStore store;
  auto item = store.allocate_item("rdma-key", 8, 5, 0);
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(store.get("rdma-key"), nullptr);  // not yet visible
  std::memcpy((*item)->value_data(), "RDMADATA", 8);
  store.commit_item(*item);
  ItemHeader* found = store.get("rdma-key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, *item);  // same memory: zero-copy
  EXPECT_EQ(str(found->value()), "RDMADATA");
  EXPECT_EQ(found->flags, 5u);
}

TEST(Store, TwoPhaseCommitReplacesExisting) {
  ItemStore store;
  ASSERT_TRUE(store.store(SetMode::set, "k", val("old"), 0, 0).ok());
  auto item = store.allocate_item("k", 3, 0, 0);
  ASSERT_TRUE(item.ok());
  std::memcpy((*item)->value_data(), "new", 3);
  store.commit_item(*item);
  EXPECT_EQ(str(store.get("k")->value()), "new");
  EXPECT_EQ(store.item_count(), 1u);
}

TEST(Store, TwoPhaseAbandonFrees) {
  ItemStore store;
  auto item = store.allocate_item("k", 100, 0, 0);
  ASSERT_TRUE(item.ok());
  const auto in_use = store.slabs().chunks_in_use((*item)->slab_class);
  store.abandon_item(*item);
  EXPECT_EQ(store.slabs().chunks_in_use((*item)->slab_class), in_use - 1);
  EXPECT_EQ(store.get("k"), nullptr);
}

TEST(Store, KeyLimits) {
  ItemStore store;
  EXPECT_EQ(store.store(SetMode::set, "", val("v"), 0, 0).error(), Errc::invalid_argument);
  const std::string long_key(251, 'k');
  EXPECT_EQ(store.store(SetMode::set, long_key, val("v"), 0, 0).error(),
            Errc::invalid_argument);
  const std::string max_key(250, 'k');
  EXPECT_TRUE(store.store(SetMode::set, max_key, val("v"), 0, 0).ok());
}

TEST(Store, ValueTooLargeRejected) {
  ItemStore store;
  std::vector<std::byte> huge(2 * 1024 * 1024);
  EXPECT_EQ(store.store(SetMode::set, "k", huge, 0, 0).error(), Errc::too_large);
}

TEST(Store, BytesStatTracksUsage) {
  ItemStore store;
  EXPECT_EQ(store.stats().bytes, 0u);
  ASSERT_TRUE(store.store(SetMode::set, "k", val("0123456789"), 0, 0).ok());
  const auto with_item = store.stats().bytes;
  EXPECT_GT(with_item, 10u);
  store.del("k");
  EXPECT_EQ(store.stats().bytes, 0u);
}

// Property: random workload against a std::map reference model.
TEST(Store, RandomizedAgainstReferenceModel) {
  ItemStore store;
  std::map<std::string, std::string> model;
  Rng rng(2024);
  for (int op = 0; op < 20000; ++op) {
    const std::string key = "key" + std::to_string(rng.below(500));
    switch (rng.below(4)) {
      case 0: {  // set
        const std::string value = rng.alnum(rng.between(1, 2000));
        ASSERT_TRUE(store.store(SetMode::set, key, val(value), 0, 0).ok());
        model[key] = value;
        break;
      }
      case 1: {  // get
        ItemHeader* item = store.get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_EQ(item, nullptr) << key;
        } else {
          ASSERT_NE(item, nullptr) << key;
          EXPECT_EQ(str(item->value()), it->second);
        }
        break;
      }
      case 2: {  // delete
        EXPECT_EQ(store.del(key), model.erase(key) > 0);
        break;
      }
      case 3: {  // add
        const std::string value = rng.alnum(16);
        const bool existed = model.count(key) > 0;
        const auto result = store.store(SetMode::add, key, val(value), 0, 0);
        EXPECT_EQ(result.ok(), !existed);
        if (!existed) model[key] = value;
        break;
      }
    }
  }
  EXPECT_EQ(store.item_count(), model.size());
}

}  // namespace
}  // namespace rmc::mc
