// The fleet workload engine and the workload-accounting fixes.
//
// Covers the pieces a wrong fleet number would hide behind: the Zipfian
// sampler (deterministic per seed, actually skewed), the flash-crowd hot
// window (moves across epochs, stays inside its bounds), eviction storms
// (evictions really happen and surviving hits carry intact bytes), the
// failed-client accounting fix (failures are *reported*, partial ops kept
// — never silently folded into a healthy-looking TPS), the connect-failure
// fast path (no hang), and the delayed-flush timer (last write wins,
// cancel-safe after server destruction).
#include <gtest/gtest.h>

#include <set>
#include <span>
#include <string>

#include "core/fleetbed.hpp"
#include "core/workload.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "simnet/faults.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;
using namespace rmc::core;

std::uint64_t metric(const char* name) { return obs::registry().counter(name).value(); }

std::span<const std::byte> bytes_view(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

// ------------------------------------------------------------- sampler

TEST(ZipfGeneratorTest, DeterministicPerSeed) {
  const ZipfGenerator zipf(10'000, 0.99);
  Rng a(42), b(42), c(43);
  std::uint64_t c_mismatches = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = zipf(a);
    EXPECT_EQ(x, zipf(b)) << "same seed must give the same sequence";
    EXPECT_LT(x, 10'000u);
    if (x != zipf(c)) ++c_mismatches;
  }
  EXPECT_GT(c_mismatches, 0u) << "a different seed must give a different sequence";
}

TEST(ZipfGeneratorTest, SkewMatchesExponent) {
  constexpr std::uint64_t kN = 1000;
  constexpr int kDraws = 20'000;
  const auto rank0_share = [&](double s) {
    const ZipfGenerator zipf(kN, s);
    Rng rng(7);
    int rank0 = 0;
    for (int i = 0; i < kDraws; ++i) {
      if (zipf(rng) == 0) ++rank0;
    }
    return rank0;
  };
  // At the YCSB default the head is far above the uniform share
  // (kDraws / kN = 20 draws); analytically ~2660 here.
  EXPECT_GT(rank0_share(0.99), 20 * 20);
  // And the skew is monotone in s.
  EXPECT_GT(rank0_share(1.2), rank0_share(0.4));
}

TEST(KeySamplerTest, HotWindowShiftsAcrossEpochsAndStaysBounded) {
  FleetWorkloadConfig config;
  config.dist = KeyDist::hot_shift;
  config.key_space = 4096;
  config.hot_set_size = 16;
  config.hot_shift_interval = 1_ms;
  config.hot_fraction = 1.0;  // every sample must land in the window
  config.seed = 7;
  const KeySampler sampler(config);

  Rng rng(1);
  std::set<std::uint64_t> bases;
  for (sim::Time epoch = 0; epoch < 8; ++epoch) {
    const sim::Time now = epoch * 1_ms;
    const std::uint64_t base = sampler.hot_base(now);
    EXPECT_LT(base, config.key_space);
    bases.insert(base);
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t key = sampler.sample(rng, now);
      const std::uint64_t offset = (key + config.key_space - base) % config.key_space;
      EXPECT_LT(offset, config.hot_set_size)
          << "sample outside the hot window at epoch " << epoch;
    }
  }
  EXPECT_GT(bases.size(), 1u) << "the hot set never moved";

  // interval == 0 pins the window: the flash crowd stands still.
  config.hot_shift_interval = 0;
  const KeySampler pinned(config);
  EXPECT_EQ(pinned.hot_base(0), pinned.hot_base(5 * 1_ms));
}

TEST(FleetKeyTest, EncodingIsStable) {
  // The torn-value check depends on this encoding; pin it.
  EXPECT_EQ(fleet_key(0), "k00000000");
  EXPECT_EQ(fleet_key(0x1234), "k00001234");
  EXPECT_EQ(fleet_key(0xdeadbeef), "kdeadbeef");
  EXPECT_EQ(fleet_value_byte(0), static_cast<std::byte>(0x21));
  EXPECT_NE(fleet_value_byte(1), fleet_value_byte(2));
}

// -------------------------------------------------------- fleet engine

FleetBedConfig small_fleet() {
  FleetBedConfig config;
  config.shards = 2;
  config.clients = 8;
  config.generators = 2;
  return config;
}

TEST(FleetWorkloadTest, DeterministicPerSeedAndAccountingConsistent) {
  FleetWorkloadConfig workload;
  workload.key_space = 256;
  workload.ops_per_client = 50;
  workload.seed = 11;

  const auto run_once = [&](std::uint64_t seed) {
    FleetBed bed(small_fleet());
    FleetWorkloadConfig w = workload;
    w.seed = seed;
    return run_fleet(bed, w);
  };

  const FleetResult a = run_once(11);
  const FleetResult b = run_once(11);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.elapsed, b.elapsed);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].ops, b.shards[s].ops) << "shard " << s;
    EXPECT_EQ(a.shards[s].hits, b.shards[s].hits) << "shard " << s;
  }

  const FleetResult c = run_once(12);
  EXPECT_TRUE(c.elapsed != a.elapsed || c.hits != a.hits ||
              c.shards[0].ops != a.shards[0].ops)
      << "a different seed must change the run";

  // Accounting invariants on a healthy run.
  EXPECT_EQ(a.failed_clients, 0u);
  EXPECT_FALSE(a.connect_failed);
  EXPECT_EQ(a.errors, 0u);
  EXPECT_EQ(a.value_mismatches, 0u);
  EXPECT_EQ(a.gets + a.sets + a.mgets + a.dels, a.total_ops);
  EXPECT_EQ(a.total_ops, 8u * workload.ops_per_client);
  std::uint64_t shard_ops = 0;
  for (const auto& s : a.shards) shard_ops += s.ops;
  EXPECT_GT(shard_ops, 0u);
  EXPECT_GT(a.tps(), 0.0);
}

TEST(FleetWorkloadTest, EvictionStormEvictsWithoutTornValues) {
  FleetBedConfig bed_config = small_fleet();
  // Slab budget (2 x 1 MiB pages per shard) far below the working set:
  // ~8192 keys x ~900-byte chunks split across 2 shards is ~3.7 MiB each.
  bed_config.server.store.slabs.memory_limit = 2 * 1024 * 1024;
  FleetBed bed(bed_config);

  FleetWorkloadConfig storm;
  storm.dist = KeyDist::uniform;
  storm.key_space = 8192;
  storm.value_size = 768;
  storm.get_weight = 20;
  storm.set_weight = 75;
  storm.mget_weight = 4;
  storm.del_weight = 1;
  storm.ops_per_client = 200;
  storm.seed = 3;

  const std::uint64_t evictions_before = metric("mc.store.evictions");
  const FleetResult r = run_fleet(bed, storm);

  std::uint64_t evictions = 0;
  for (const auto& s : r.shards) evictions += s.evictions;
  EXPECT_GT(evictions, 0u) << "the storm never overflowed the slab budget";
  EXPECT_GT(metric("mc.store.evictions"), evictions_before);

  EXPECT_EQ(r.failed_clients, 0u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.hits, 0u);
  EXPECT_GT(r.misses, 0u) << "evicted keys should produce misses";
  EXPECT_EQ(r.value_mismatches, 0u) << "surviving hits must carry intact bytes";
}

// --------------------------------------------- accounting regressions

TEST(WorkloadAccountingTest, FailedClientsReportedWithPartialOpsKept) {
  TestBedConfig config;
  config.num_clients = 2;
  TestBed bed(config);
  // Kill the server NIC mid-run: both clients have completed ops by then,
  // and both must be reported as failed — with their partials kept.
  bed.fabric().faults().schedule(
      {{1_ms, {.kind = sim::Fault::Kind::node_down, .a = bed.server_hca()->addr()}}});

  WorkloadConfig workload;
  workload.value_size = 64;
  workload.ops_per_client = 1'000'000;  // far more than fits before the fault
  const WorkloadResult r = run_workload(bed, workload);

  EXPECT_EQ(r.failed_clients, 2u);
  EXPECT_FALSE(r.connect_failed);
  EXPECT_GT(r.total_ops, 0u) << "partial ops of failed clients must be kept";
  EXPECT_EQ(r.failed_client_ops, r.total_ops);
  EXPECT_EQ(r.all_latency.count(), r.total_ops);
  EXPECT_GT(r.elapsed, 0u);
}

TEST(WorkloadAccountingTest, ConnectFailureFailsFastWithoutHang) {
  TestBedConfig config;
  config.num_clients = 2;
  TestBed bed(config);
  bed.fabric().faults().set_node_down(bed.server_hca()->addr(), true);

  WorkloadConfig workload;
  workload.ops_per_client = 10;
  // Regression: this used to leave every client suspended on the start
  // barrier forever. It must return, with the failure explicit.
  const WorkloadResult r = run_workload(bed, workload);
  EXPECT_TRUE(r.connect_failed);
  EXPECT_EQ(r.failed_clients, 2u);
  EXPECT_EQ(r.total_ops, 0u);
}

// ------------------------------------------------------- flush timers

TEST(FlushTimerTest, DelayedFlushFiresAtItsDeadline) {
  sim::Scheduler sched;
  sim::Host host(sched, 0, "srv", 8);
  mc::Server server(sched, host, {});
  const std::string v = "value";
  ASSERT_TRUE(server.store().store(mc::SetMode::set, "k", bytes_view(v), 0, 0).ok());

  server.schedule_flush(1);
  sched.run_until(500 * 1_ms);
  EXPECT_NE(server.store().get("k"), nullptr) << "flushed before its deadline";
  sched.run_until(1500 * 1_ms);
  EXPECT_EQ(server.store().get("k"), nullptr) << "delayed flush never fired";
}

TEST(FlushTimerTest, NewestFlushWins) {
  sim::Scheduler sched;
  sim::Host host(sched, 0, "srv", 8);
  mc::Server server(sched, host, {});
  const std::string v = "value";

  // An immediate flush supersedes a pending delayed one: the stale timer
  // must not fire later and wipe data written after it.
  ASSERT_TRUE(server.store().store(mc::SetMode::set, "k", bytes_view(v), 0, 0).ok());
  server.schedule_flush(2);
  server.schedule_flush(0);
  EXPECT_EQ(server.store().get("k"), nullptr) << "immediate flush did not flush";
  ASSERT_TRUE(server.store().store(mc::SetMode::set, "k", bytes_view(v), 0, 0).ok());
  sched.run_until(3 * kNsPerSec);
  EXPECT_NE(server.store().get("k"), nullptr)
      << "the superseded 2s timer fired anyway (stacked-timer regression)";

  // A newer delayed flush supersedes an older one, in both directions.
  server.schedule_flush(5);
  server.schedule_flush(1);
  sched.run_until(sched.now() + 2 * kNsPerSec);
  EXPECT_EQ(server.store().get("k"), nullptr) << "newest (1s) flush did not fire";
  ASSERT_TRUE(server.store().store(mc::SetMode::set, "k", bytes_view(v), 0, 0).ok());
  sched.run_until(sched.now() + 6 * kNsPerSec);
  EXPECT_NE(server.store().get("k"), nullptr) << "stale 5s flush fired anyway";
}

TEST(FlushTimerTest, PendingFlushIsCancelSafeAfterServerDestruction) {
  sim::Scheduler sched;
  sim::Host host(sched, 0, "srv", 8);
  {
    mc::Server server(sched, host, {});
    sched.run_until(1_ms);  // let the worker loops start and park
    server.schedule_flush(1);
  }
  // The timer fires into a destroyed server; the liveness token makes it a
  // no-op (ASan would flag the old capture-this use-after-free here).
  sched.run_until(2 * kNsPerSec);
}

}  // namespace
}  // namespace rmc
