// Tests for the Unified Communication Runtime: endpoint establishment,
// eager and rendezvous active messages, all three counters, timeouts,
// fault isolation, credit flow control, and the zero-copy property of the
// rendezvous path.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "simnet/netparams.hpp"
#include "ucr/runtime.hpp"

namespace rmc::ucr {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

constexpr std::uint16_t kMsgPing = 1;
constexpr std::uint16_t kMsgData = 2;

std::span<const std::byte> bytes_view(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

struct World {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host host_client{sched, 0, "client", 8};
  sim::Host host_server{sched, 1, "server", 8};
  verbs::Hca hca_client{sched, fabric, host_client};
  verbs::Hca hca_server{sched, fabric, host_server};
  Runtime client{hca_client};
  Runtime server{hca_server};

  Endpoint* client_ep = nullptr;  ///< client's endpoint to the server
  Endpoint* server_ep = nullptr;  ///< server's endpoint to the client

  void establish(std::uint16_t port = 7000) {
    server.listen(port, [this](Endpoint& ep) { server_ep = &ep; });
    sched.spawn([](World& w, std::uint16_t port2) -> Task<> {
      auto r = co_await w.client.connect(w.server.addr(), port2);
      EXPECT_TRUE(r.ok());
      w.client_ep = *r;
    }(*this, port));
    sched.run();
    ASSERT_NE(client_ep, nullptr);
    ASSERT_NE(server_ep, nullptr);
  }
};

// --------------------------------------------------------- connection ----

TEST(Connection, EndpointEstablished) {
  World w;
  w.establish();
  EXPECT_EQ(w.client_ep->state(), EpState::ready);
  EXPECT_EQ(w.server_ep->state(), EpState::ready);
  EXPECT_EQ(w.client_ep->send_credits(), UcrConfig{}.credits_per_ep);
}

// ----------------------------------------- unreliable endpoints (UD) ----

/// Establish an unreliable (UD) endpoint pair on a World.
void establish_ud(World& w, std::uint16_t port = 7100) {
  w.server.listen(port, [&w](Endpoint& ep) { w.server_ep = &ep; });
  w.sched.spawn([](World& wk, std::uint16_t port2) -> Task<> {
    auto r = co_await wk.client.connect(wk.server.addr(), port2, EpType::unreliable);
    EXPECT_TRUE(r.ok());
    if (r.ok()) wk.client_ep = *r;
  }(w, port));
  w.sched.run();
}

TEST(Unreliable, EndpointEstablishes) {
  World w;
  establish_ud(w);
  ASSERT_NE(w.client_ep, nullptr);
  ASSERT_NE(w.server_ep, nullptr);
  EXPECT_EQ(w.client_ep->type(), EpType::unreliable);
  EXPECT_EQ(w.server_ep->type(), EpType::unreliable);
  EXPECT_EQ(w.client_ep->state(), EpState::ready);
}

TEST(Unreliable, EagerMessagesFlowBothWays) {
  World w;
  std::string got;
  w.server.register_handler(
      kMsgData,
      {.on_header = nullptr,
       .on_complete = [&](Endpoint& ep, std::span<const std::byte> header,
                          std::span<std::byte>) {
         got.assign(reinterpret_cast<const char*>(header.data()), header.size());
         // Reply over the same unreliable endpoint.
         EXPECT_TRUE(
             ep.runtime().send_message(ep, kMsgData + 1, bytes_view("pong"), {}, nullptr, {},
                                       nullptr)
                 .ok());
       }});
  std::string reply;
  w.client.register_handler(
      kMsgData + 1, {.on_complete = [&](Endpoint&, std::span<const std::byte> header,
                                        std::span<std::byte>) {
        reply.assign(reinterpret_cast<const char*>(header.data()), header.size());
      }});
  establish_ud(w);
  ASSERT_NE(w.client_ep, nullptr);

  EXPECT_TRUE(w.client
                  .send_message(*w.client_ep, kMsgData, bytes_view("ping"), {}, nullptr, {},
                                nullptr)
                  .ok());
  w.sched.run();
  EXPECT_EQ(got, "ping");
  EXPECT_EQ(reply, "pong");
}

TEST(Unreliable, CountersWorkOverDatagrams) {
  World w;
  w.server.register_handler(kMsgPing, {});
  auto target = w.server.make_counter();
  const CounterRef target_ref = w.server.export_counter(*target);
  establish_ud(w);
  ASSERT_NE(w.client_ep, nullptr);

  auto completion = w.client.make_counter();
  bool done = false;
  w.sched.spawn([](World& wk, CounterRef ref, sim::Counter& completion2, bool& fin) -> Task<> {
    EXPECT_TRUE(
        wk.client.send_message(*wk.client_ep, kMsgPing, {}, {}, nullptr, ref, &completion2)
            .ok());
    fin = co_await completion2.wait_geq(1, 1_ms);
  }(w, target_ref, *completion, done));
  w.sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(target->value(), 1u);
}

TEST(Unreliable, LargePayloadsRejected) {
  // No RC connection, no RDMA read: rendezvous is impossible, and eager is
  // bounded by the UD MTU.
  World w;
  establish_ud(w);
  ASSERT_NE(w.client_ep, nullptr);
  std::vector<std::byte> big(16_KiB);
  EXPECT_EQ(
      w.client.send_message(*w.client_ep, kMsgData, {}, big, nullptr, {}, nullptr).error(),
      Errc::invalid_argument);
  // Even "eager-sized" payloads fail if they exceed the datagram MTU.
  std::vector<std::byte> over_mtu(4096);
  EXPECT_EQ(w.client.send_message(*w.client_ep, kMsgData, {}, over_mtu, nullptr, {}, nullptr)
                .error(),
            Errc::invalid_argument);
}

TEST(Unreliable, SharedUdQpAcrossEndpoints) {
  // Many unreliable endpoints, one server: the server side must not grow
  // per-client QPs — the §VII scalability motivation.
  sim::Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  Runtime server{server_hca};
  int pings = 0;
  server.register_handler(kMsgPing, {.on_complete = [&](Endpoint&, std::span<const std::byte>,
                                                        std::span<std::byte>) { ++pings; }});
  server.listen(7100, nullptr);

  constexpr int kClients = 12;
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < kClients; ++i) {
    hosts.push_back(std::make_unique<sim::Host>(sched, i + 1, "c", 8));
    hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
    runtimes.push_back(std::make_unique<Runtime>(*hcas.back()));
    sched.spawn([](Runtime& rt, Runtime& srv) -> Task<> {
      auto r = co_await rt.connect(srv.addr(), 7100, EpType::unreliable);
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        EXPECT_TRUE(rt.send_message(**r, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
      }
    }(*runtimes.back(), server));
  }
  sched.run();
  EXPECT_EQ(pings, kClients);
}

TEST(Unreliable, FabricLossIsSilentAndTimedOut) {
  // Inject 20% packet loss: some requests or replies vanish; the client's
  // counter timeout detects it (the Facebook-UDP operating mode, §III).
  sim::Scheduler sched;
  auto link = sim::ib_qdr_link();
  link.drop_per_million = 200000;  // 20%
  sim::Fabric fabric{sched, link};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  verbs::Hca server_hca{sched, fabric, server_host};
  verbs::Hca client_hca{sched, fabric, client_host};
  Runtime server{server_hca};
  Runtime client{client_hca};
  server.register_handler(kMsgPing, {});
  auto target = server.make_counter();
  const CounterRef ref = server.export_counter(*target);
  server.listen(7100, nullptr);

  int delivered = 0, lost = 0;
  sched.spawn([](sim::Scheduler& sch, Runtime& cli, Runtime& srv, CounterRef ref2,
                 sim::Counter& target2, int& delivered2, int& lost2) -> Task<> {
    auto r = co_await cli.connect(srv.addr(), 7100, EpType::unreliable);
    if (!r.ok()) co_return;  // even the handshake can be lost2; that's UD life
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t before = target2.value();
      (void)cli.send_message(**r, kMsgPing, {}, {}, nullptr, ref2, nullptr);
      const bool ok = co_await target2.wait_geq(before + 1, 50_us);
      (ok ? delivered2 : lost2)++;
      (void)sch;
    }
  }(sched, client, server, ref, *target, delivered, lost));
  sched.run();
  // With 20% loss both outcomes must occur, and the run must terminate.
  EXPECT_GT(delivered, 0);
  EXPECT_GT(lost, 0);
  EXPECT_EQ(delivered + lost, 50);
}

TEST(Connection, ConnectTimesOutAgainstDeadPort) {
  World w;
  Errc err = Errc::ok;
  w.sched.spawn([](World& wk, Errc& ec) -> Task<> {
    auto r = co_await wk.client.connect(wk.server.addr(), 9090);
    ec = r.error();
  }(w, err));
  w.sched.run();
  EXPECT_EQ(err, Errc::refused);
}

// -------------------------------------------------------------- eager ----

TEST(Eager, HeaderAndDataDelivered) {
  World w;
  std::string got_header, got_data;
  int completions = 0;
  std::vector<std::byte> dest(64);
  w.server.register_handler(
      kMsgData,
      {.on_header =
           [&](Endpoint&, std::span<const std::byte> header, std::uint32_t data_len) {
             got_header.assign(reinterpret_cast<const char*>(header.data()), header.size());
             EXPECT_EQ(data_len, 5u);
             return std::span<std::byte>(dest);
           },
       .on_complete =
           [&](Endpoint&, std::span<const std::byte>, std::span<std::byte> data) {
             got_data.assign(reinterpret_cast<const char*>(data.data()), data.size());
             ++completions;
           }});
  w.establish();

  const std::string header = "hdr";
  const std::string data = "12345";
  EXPECT_TRUE(w.client
                  .send_message(*w.client_ep, kMsgData, bytes_view(header), bytes_view(data),
                                nullptr, {}, nullptr)
                  .ok());
  w.sched.run();
  EXPECT_EQ(got_header, "hdr");
  EXPECT_EQ(got_data, "12345");
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(w.client.eager_sent(), 1u);
  EXPECT_EQ(w.client.rendezvous_sent(), 0u);
}

TEST(Eager, OriginCounterBumpsImmediately) {
  World w;
  w.server.register_handler(kMsgPing, {});
  w.establish();
  auto origin = w.client.make_counter();
  EXPECT_TRUE(w.client
                  .send_message(*w.client_ep, kMsgPing, {}, {}, origin.get(), {}, nullptr)
                  .ok());
  // Eager local completion: staged copy means instant reuse.
  EXPECT_EQ(origin->value(), 1u);
}

TEST(Eager, TargetCounterFiresAtTarget) {
  World w;
  w.server.register_handler(kMsgPing, {});
  auto server_counter = w.server.make_counter();
  const CounterRef ref = w.server.export_counter(*server_counter);
  w.establish();

  EXPECT_TRUE(
      w.client.send_message(*w.client_ep, kMsgPing, {}, {}, nullptr, ref, nullptr).ok());
  w.sched.run();
  EXPECT_EQ(server_counter->value(), 1u);
}

TEST(Eager, CompletionCounterFiresAtOrigin) {
  World w;
  w.server.register_handler(kMsgPing, {});
  w.establish();
  auto completion = w.client.make_counter();
  bool reached = false;
  w.sched.spawn([](World& wk, sim::Counter& completion2, bool& reached2) -> Task<> {
    EXPECT_TRUE(wk.client
                    .send_message(*wk.client_ep, kMsgPing, {}, {}, nullptr, {}, &completion2)
                    .ok());
    reached2 = co_await completion2.wait_geq(1, 1_ms);
  }(w, *completion, reached));
  w.sched.run();
  EXPECT_TRUE(reached);
}

TEST(Eager, RoundTripRequestResponse) {
  // The §V pattern: client AM1 carries a counter ref; server replies with
  // AM2 naming that ref as target counter; client waits on the counter.
  World w;
  auto reply_counter = w.client.make_counter();
  const CounterRef reply_ref = w.client.export_counter(*reply_counter);

  w.server.register_handler(
      kMsgPing, {.on_header = nullptr,
                 .on_complete = [&](Endpoint& ep, std::span<const std::byte> header,
                                    std::span<std::byte>) {
                   CounterRef ref{};
                   std::memcpy(&ref.id, header.data(), sizeof(ref.id));
                   EXPECT_TRUE(ep.runtime()
                                   .send_message(ep, kMsgPing + 100, {}, {}, nullptr, ref,
                                                 nullptr)
                                   .ok());
                 }});
  w.client.register_handler(kMsgPing + 100, {});
  w.establish();

  bool done = false;
  sim::Time latency = 0;
  w.sched.spawn([](World& wk, CounterRef ref, sim::Counter& counter, bool& fin,
                   sim::Time& latency2) -> Task<> {
    std::vector<std::byte> header(sizeof(ref.id));
    std::memcpy(header.data(), &ref.id, sizeof(ref.id));
    const sim::Time start = wk.sched.now();
    EXPECT_TRUE(
        wk.client.send_message(*wk.client_ep, kMsgPing, header, {}, nullptr, {}, nullptr).ok());
    fin = co_await counter.wait_geq(1, 1_ms);
    latency2 = wk.sched.now() - start;
  }(w, reply_ref, *reply_counter, done, latency));
  w.sched.run();
  EXPECT_TRUE(done);
  // Small AM round trip on QDR verbs: a handful of microseconds.
  EXPECT_LT(latency, 10_us);
  EXPECT_GT(latency, 1_us);
}

// --------------------------------------------------------- rendezvous ----

TEST(Rendezvous, LargePayloadViaRdmaRead) {
  World w;
  std::vector<std::byte> dest(256_KiB);
  std::string got_header;
  int completions = 0;
  w.server.register_handler(
      kMsgData,
      {.on_header =
           [&](Endpoint&, std::span<const std::byte> header, std::uint32_t data_len) {
             got_header.assign(reinterpret_cast<const char*>(header.data()), header.size());
             EXPECT_EQ(data_len, 256_KiB);
             return std::span<std::byte>(dest);
           },
       .on_complete = [&](Endpoint&, std::span<const std::byte>,
                          std::span<std::byte> data) {
         EXPECT_EQ(data.size(), 256_KiB);
         ++completions;
       }});
  w.server.register_region(dest);
  w.establish();

  std::vector<std::byte> payload(256_KiB);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 7);
  }
  w.client.register_region(payload);

  auto origin = w.client.make_counter();
  EXPECT_TRUE(w.client
                  .send_message(*w.client_ep, kMsgData, bytes_view("big"), payload,
                                origin.get(), {}, nullptr)
                  .ok());
  // Rendezvous: origin buffer NOT reusable yet.
  EXPECT_EQ(origin->value(), 0u);
  w.sched.run();
  EXPECT_EQ(origin->value(), 1u);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(got_header, "big");
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), dest.begin()));
  EXPECT_EQ(w.client.rendezvous_sent(), 1u);
}

TEST(Rendezvous, DataBypassesTargetCpuCopy) {
  // Eager copies data out of the network buffer (memcpy cost on target
  // CPU); rendezvous RDMA-reads straight into the destination. Comparing
  // per-byte target CPU for 4 KiB (eager) vs 32 KiB (rendezvous) around
  // the default 8 KiB threshold shows the copy disappearing.
  for (bool rndz : {false, true}) {
    World w;
    const std::size_t size = rndz ? 32_KiB : 4_KiB;
    std::vector<std::byte> dest(size);
    w.server.register_handler(
        kMsgData, {.on_header = [&](Endpoint&, std::span<const std::byte>, std::uint32_t) {
          return std::span<std::byte>(dest);
        }});
    w.server.register_region(dest);
    w.establish();
    std::vector<std::byte> payload(size);
    w.client.register_region(payload);
    const auto cpu_before = w.host_server.cpu().busy_ns();
    ASSERT_TRUE(
        w.client.send_message(*w.client_ep, kMsgData, {}, payload, nullptr, {}, nullptr)
            .ok());
    w.sched.run();
    const double per_byte =
        static_cast<double>(w.host_server.cpu().busy_ns() - cpu_before) /
        static_cast<double>(size);
    if (rndz) {
      EXPECT_LT(per_byte, 0.05);  // no per-byte target CPU on the RDMA path
    } else {
      EXPECT_GT(per_byte, 0.05);  // eager pays the memcpy
    }
  }
}

TEST(Rendezvous, AllThreeCountersFire) {
  World w;
  std::vector<std::byte> dest(32_KiB);
  w.server.register_handler(
      kMsgData, {.on_header = [&](Endpoint&, std::span<const std::byte>, std::uint32_t) {
        return std::span<std::byte>(dest);
      }});
  w.server.register_region(dest);
  auto target = w.server.make_counter();
  const CounterRef target_ref = w.server.export_counter(*target);
  w.establish();

  std::vector<std::byte> payload(32_KiB);
  w.client.register_region(payload);
  auto origin = w.client.make_counter();
  auto completion = w.client.make_counter();
  bool both = false;
  w.sched.spawn([](World& wk, std::vector<std::byte>& pl, sim::Counter& org,
                   sim::Counter& completion2, CounterRef target_ref2, bool& both2) -> Task<> {
    EXPECT_TRUE(wk.client
                    .send_message(*wk.client_ep, kMsgData, {}, pl, &org, target_ref2,
                                  &completion2)
                    .ok());
    const bool o = co_await org.wait_geq(1, 1_ms);
    const bool c = co_await completion2.wait_geq(1, 1_ms);
    both2 = o && c;
  }(w, payload, *origin, *completion, target_ref, both));
  w.sched.run();
  EXPECT_TRUE(both);
  EXPECT_EQ(target->value(), 1u);
}

TEST(Rendezvous, DroppedPayloadStillReleasesOrigin) {
  // No handler registered: the target cannot name a destination buffer.
  // The origin's counters must not hang (§IV-A fault model).
  World w;
  w.establish();
  std::vector<std::byte> payload(64_KiB);
  w.client.register_region(payload);
  auto origin = w.client.make_counter();
  bool released = false;
  w.sched.spawn([](World& wk, std::vector<std::byte>& pl, sim::Counter& org,
                   bool& released2) -> Task<> {
    EXPECT_TRUE(wk.client
                    .send_message(*wk.client_ep, kMsgData, {}, pl, &org, {}, nullptr)
                    .ok());
    released2 = co_await org.wait_geq(1, 1_ms);
  }(w, payload, *origin, released));
  w.sched.run();
  EXPECT_TRUE(released);
}

TEST(Rendezvous, OversizedHeaderRejected) {
  World w;
  w.establish();
  std::vector<std::byte> header(9000);  // > eager_limit
  std::vector<std::byte> payload(64_KiB);
  EXPECT_EQ(w.client
                .send_message(*w.client_ep, kMsgData, header, payload, nullptr, {}, nullptr)
                .error(),
            Errc::invalid_argument);
}

// ------------------------------------------------------- flow control ----

TEST(FlowControl, BacklogDrainsUnderCreditPressure) {
  World w;
  int received = 0;
  w.server.register_handler(
      kMsgPing, {.on_complete = [&](Endpoint&, std::span<const std::byte>,
                                    std::span<std::byte>) { ++received; }});
  w.establish();

  // Fire 4x the credit window at once; everything must still arrive.
  const int total = static_cast<int>(UcrConfig{}.credits_per_ep) * 4;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(
        w.client.send_message(*w.client_ep, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
  }
  EXPECT_GT(w.client_ep->backlog_size(), 0u);  // window exceeded -> queued
  w.sched.run();
  EXPECT_EQ(received, total);
  EXPECT_EQ(w.client_ep->backlog_size(), 0u);
}

TEST(FlowControl, CreditsRecoverAfterDrain) {
  World w;
  w.server.register_handler(kMsgPing, {});
  w.establish();
  const auto window = UcrConfig{}.credits_per_ep;
  for (std::uint32_t i = 0; i < window * 2; ++i) {
    ASSERT_TRUE(
        w.client.send_message(*w.client_ep, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
  }
  w.sched.run();
  // After everything settles the window must be restored up to the credits
  // the peer may still be holding below its return threshold: leaked
  // credits would strangle a long-lived memcached connection.
  EXPECT_TRUE(w.client_ep->backlog_size() == 0);
  EXPECT_GE(w.client_ep->send_credits(), window - UcrConfig{}.credit_return_threshold);
}

TEST(FlowControl, BidirectionalFloodDoesNotDeadlock) {
  // Both sides blast eager messages at each other, exceeding both credit
  // windows simultaneously. Credits piggyback on opposing traffic; if the
  // piggyback path were broken, both backlogs would starve forever.
  World w;
  int server_got = 0, client_got = 0;
  w.server.register_handler(
      kMsgPing, {.on_complete = [&](Endpoint&, std::span<const std::byte>,
                                    std::span<std::byte>) { ++server_got; }});
  w.client.register_handler(
      kMsgPing, {.on_complete = [&](Endpoint&, std::span<const std::byte>,
                                    std::span<std::byte>) { ++client_got; }});
  w.establish();

  const int total = static_cast<int>(UcrConfig{}.credits_per_ep) * 6;
  for (int i = 0; i < total; ++i) {
    ASSERT_TRUE(
        w.client.send_message(*w.client_ep, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
    ASSERT_TRUE(
        w.server.send_message(*w.server_ep, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
  }
  w.sched.run();
  EXPECT_EQ(server_got, total);
  EXPECT_EQ(client_got, total);
}

// ----------------------------------------------------- fault isolation ----

TEST(Faults, WaitWithTimeoutDetectsUnresponsivePeer) {
  // §IV-A: a client blocked on a counter uses a timeout to conclude the
  // server is gone instead of hanging forever. Model an application-dead
  // server: the request handler runs but never produces the reply AM the
  // client's counter is waiting for.
  World w;
  w.server.register_handler(kMsgPing, {});  // swallows the request silently
  auto reply = w.client.make_counter();
  const CounterRef reply_ref = w.client.export_counter(*reply);
  w.establish();

  bool timed_out = false;
  sim::Time woke_at = 0;
  w.sched.spawn([](World& wk, CounterRef ref, sim::Counter& reply2, bool& timed_out2,
                   sim::Time& woke_at2) -> Task<> {
    std::vector<std::byte> header(sizeof(ref.id));
    std::memcpy(header.data(), &ref.id, sizeof(ref.id));
    (void)wk.client.send_message(*wk.client_ep, kMsgPing, header, {}, nullptr, {}, nullptr);
    const bool ok = co_await reply2.wait_geq(1, 100_us);
    timed_out2 = !ok;
    woke_at2 = wk.sched.now();
  }(w, reply_ref, *reply, timed_out, woke_at));
  w.sched.run();
  EXPECT_TRUE(timed_out);
  EXPECT_GE(woke_at, 100_us);  // woke at the timeout, not before
}

TEST(Faults, OneEndpointFailureDoesNotAffectOthers) {
  // Two clients on one server; killing one endpoint leaves the other live.
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host h_server{sched, 0, "server", 8};
  sim::Host h_c1{sched, 1, "c1", 8};
  sim::Host h_c2{sched, 2, "c2", 8};
  verbs::Hca hca_server{sched, fabric, h_server};
  verbs::Hca hca_c1{sched, fabric, h_c1};
  verbs::Hca hca_c2{sched, fabric, h_c2};
  Runtime server{hca_server};
  Runtime c1{hca_c1};
  Runtime c2{hca_c2};

  int pings = 0;
  server.register_handler(kMsgPing, {.on_complete = [&](Endpoint&, std::span<const std::byte>,
                                                        std::span<std::byte>) { ++pings; }});
  server.listen(7000, nullptr);

  Endpoint* ep1 = nullptr;
  Endpoint* ep2 = nullptr;
  sched.spawn([](Runtime& rt, Runtime& srv, Endpoint*& out) -> Task<> {
    auto r = co_await rt.connect(srv.addr(), 7000);
    out = *r;
  }(c1, server, ep1));
  sched.spawn([](Runtime& rt, Runtime& srv, Endpoint*& out) -> Task<> {
    auto r = co_await rt.connect(srv.addr(), 7000);
    out = *r;
  }(c2, server, ep2));
  sched.run();
  ASSERT_NE(ep1, nullptr);
  ASSERT_NE(ep2, nullptr);

  // Client 1 dies.
  c1.close(*ep1);
  sched.run();

  // Client 2 keeps working.
  ASSERT_TRUE(c2.send_message(*ep2, kMsgPing, {}, {}, nullptr, {}, nullptr).ok());
  sched.run();
  EXPECT_EQ(pings, 1);
}

TEST(Faults, SendOnClosedEndpointFails) {
  World w;
  w.establish();
  w.client.close(*w.client_ep);
  EXPECT_EQ(
      w.client.send_message(*w.client_ep, kMsgPing, {}, {}, nullptr, {}, nullptr).error(),
      Errc::disconnected);
}

// ------------------------------------------------- one-sided put/get ----

TEST(OneSided, PutPlacesBytesWithoutRemoteCpu) {
  World w;
  w.establish();
  std::vector<std::byte> window(4_KiB, std::byte{0});
  const auto remote = w.server.expose_memory(window);
  // Ship the descriptor to the client out-of-band (the app's job).
  std::vector<std::byte> src(1_KiB, std::byte{0x5c});
  const auto server_cpu_before = w.host_server.cpu().busy_ns();

  bool done = false;
  w.sched.spawn([](World& wk, Runtime::RemoteMemory remote2, std::vector<std::byte>& src2,
                   bool& fin) -> Task<> {
    auto counter = wk.client.make_counter();
    EXPECT_TRUE(wk.client.put(*wk.client_ep, src2, remote2, 256, counter.get()).ok());
    fin = co_await counter->wait_geq(1, 1_ms);
  }(w, remote, src, done));
  w.sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(window[255], std::byte{0});
  EXPECT_EQ(window[256], std::byte{0x5c});
  EXPECT_EQ(window[256 + 1023], std::byte{0x5c});
  EXPECT_EQ(w.host_server.cpu().busy_ns(), server_cpu_before);  // OS bypass
}

TEST(OneSided, GetPullsBytes) {
  World w;
  w.establish();
  std::vector<std::byte> window(2_KiB);
  for (std::size_t i = 0; i < window.size(); ++i) window[i] = static_cast<std::byte>(i);
  const auto remote = w.server.expose_memory(window);
  std::vector<std::byte> dst(512);
  bool done = false;
  w.sched.spawn([](World& wk, Runtime::RemoteMemory remote2, std::vector<std::byte>& dst2,
                   bool& fin) -> Task<> {
    auto counter = wk.client.make_counter();
    EXPECT_TRUE(wk.client.get(*wk.client_ep, dst2, remote2, 1024, counter.get()).ok());
    fin = co_await counter->wait_geq(1, 1_ms);
  }(w, remote, dst, done));
  w.sched.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dst[0], static_cast<std::byte>(1024 & 0xff));
  EXPECT_EQ(dst[511], static_cast<std::byte>((1024 + 511) & 0xff));
}

TEST(OneSided, WindowBoundsEnforcedLocally) {
  World w;
  w.establish();
  std::vector<std::byte> window(1_KiB);
  const auto remote = w.server.expose_memory(window);
  std::vector<std::byte> src(512);
  // offset + len past the window: rejected before touching the wire.
  EXPECT_EQ(w.client.put(*w.client_ep, src, remote, 600, nullptr).error(),
            Errc::invalid_argument);
  EXPECT_EQ(w.client.put(*w.client_ep, src, remote, 2000, nullptr).error(),
            Errc::invalid_argument);
  EXPECT_TRUE(w.client.put(*w.client_ep, src, remote, 512, nullptr).ok());
  w.sched.run();
}

TEST(OneSided, RejectedOnUnreliableEndpoints) {
  World w;
  establish_ud(w);
  ASSERT_NE(w.client_ep, nullptr);
  std::vector<std::byte> window(1_KiB);
  const auto remote = w.server.expose_memory(window);
  std::vector<std::byte> src(64);
  EXPECT_EQ(w.client.put(*w.client_ep, src, remote, 0, nullptr).error(),
            Errc::invalid_argument);
}

// ------------------------------------------------- registration cache ----

TEST(RegistrationCache, RepeatSendsReuseTheRegion) {
  // Rendezvous registers the source buffer on first use; repeat sends of
  // the same (or contained) buffers must hit the cache — no extra MRs, no
  // extra pin cost.
  World w;
  std::vector<std::byte> dest(64_KiB);
  w.server.register_handler(
      kMsgData, {.on_header = [&](Endpoint&, std::span<const std::byte>, std::uint32_t) {
        return std::span<std::byte>(dest);
      }});
  w.server.register_region(dest);
  w.establish();

  std::vector<std::byte> payload(64_KiB);
  const std::size_t regions_before = w.hca_client.pd().region_count();
  auto origin = w.client.make_counter();
  w.sched.spawn([](World& wk, std::vector<std::byte>& pl, sim::Counter& org) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(wk.client
                      .send_message(*wk.client_ep, kMsgData, {}, pl, &org, {}, nullptr)
                      .ok());
      (void)co_await org.wait_geq(static_cast<std::uint64_t>(i + 1), 10_ms);
    }
    // A sub-span of the registered buffer must also hit the cache.
    EXPECT_TRUE(wk.client
                    .send_message(*wk.client_ep, kMsgData, {},
                                  std::span<const std::byte>(pl.data() + 100, 32_KiB),
                                  &org, {}, nullptr)
                    .ok());
    (void)co_await org.wait_geq(11, 10_ms);
  }(w, payload, *origin));
  w.sched.run();
  // Exactly one new region for the payload, despite 11 sends.
  EXPECT_EQ(w.hca_client.pd().region_count(), regions_before + 1);
}

TEST(RegistrationCache, CpuCostPaidOnceNotPerSend) {
  World w;
  std::vector<std::byte> dest(64_KiB);
  w.server.register_handler(
      kMsgData, {.on_header = [&](Endpoint&, std::span<const std::byte>, std::uint32_t) {
        return std::span<std::byte>(dest);
      }});
  w.server.register_region(dest);
  w.establish();

  std::vector<std::byte> payload(256_KiB);
  auto origin = w.client.make_counter();
  std::uint64_t first_send_cpu = 0, later_send_cpu = 0;
  w.sched.spawn([](World& wk, std::vector<std::byte>& pl, sim::Counter& org,
                   std::uint64_t& first, std::uint64_t& later) -> Task<> {
    std::uint64_t before = wk.host_client.cpu().busy_ns();
    (void)wk.client.send_message(*wk.client_ep, kMsgData, {}, pl, &org, {}, nullptr);
    first = wk.host_client.cpu().busy_ns() - before;
    (void)co_await org.wait_geq(1, 10_ms);
    before = wk.host_client.cpu().busy_ns();
    (void)wk.client.send_message(*wk.client_ep, kMsgData, {}, pl, &org, {}, nullptr);
    later = wk.host_client.cpu().busy_ns() - before;
    (void)co_await org.wait_geq(2, 10_ms);
  }(w, payload, *origin, first_send_cpu, later_send_cpu));
  w.sched.run();
  // First send pays registration (pin per page); later sends do not.
  EXPECT_GT(first_send_cpu, later_send_cpu + 4000);
}

// ------------------------------------------------------- many messages ----

TEST(Stress, ThousandMixedMessagesAllComplete) {
  World w;
  std::vector<std::byte> dest(64_KiB);
  std::uint64_t bytes_received = 0;
  int count = 0;
  w.server.register_handler(
      kMsgData,
      {.on_header =
           [&](Endpoint&, std::span<const std::byte>, std::uint32_t) {
             return std::span<std::byte>(dest);
           },
       .on_complete =
           [&](Endpoint&, std::span<const std::byte>, std::span<std::byte> data) {
             bytes_received += data.size();
             ++count;
           }});
  w.server.register_region(dest);
  w.establish();

  std::vector<std::byte> payload(64_KiB);
  w.client.register_region(payload);
  std::uint64_t sent_bytes = 0;
  auto origin = w.client.make_counter();
  w.sched.spawn([](World& wk, std::vector<std::byte>& pl, sim::Counter& org,
                   std::uint64_t& sent_bytes2) -> Task<> {
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
      const std::size_t size = 1 + rng.below(48_KiB);
      sent_bytes2 += size;
      EXPECT_EQ(wk.client
                    .send_message(*wk.client_ep, kMsgData, {},
                                  std::span<const std::byte>(pl.data(), size), &org,
                                  {}, nullptr)
                    .error(),
                Errc::ok);
      // Wait for org release so the pl buffer can be reused.
      const bool ok = co_await org.wait_geq(static_cast<std::uint64_t>(i + 1), 10_ms);
      EXPECT_TRUE(ok);
    }
  }(w, payload, *origin, sent_bytes));
  w.sched.run();
  EXPECT_EQ(count, 1000);
  EXPECT_EQ(bytes_received, sent_bytes);
}

}  // namespace
}  // namespace rmc::ucr
