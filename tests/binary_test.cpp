// Tests for the memcached binary protocol: codec round trips with
// network-byte-order checks, fragmented parsing, end-to-end binary
// client/server operation, binary-only semantics (CAS-on-set, incr with
// initial value, quiet multiget), and text/binary auto-detection on one
// server port.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memcached/binary.hpp"
#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "simnet/netparams.hpp"

namespace rmc::mc {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}
std::string str(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

// --------------------------------------------------------------- codec ----

TEST(BinaryCodec, HeaderIsNetworkByteOrder) {
  bproto::Request req;
  req.opcode = bproto::Opcode::set;
  req.key = "k";
  req.flags = 0x01020304;
  req.exptime = 0x0a0b0c0d;
  req.opaque = 0x11223344;
  req.cas = 0x0102030405060708ull;
  const auto wire = bproto::encode_request(req);

  ASSERT_GE(wire.size(), bproto::kHeaderSize + 8 + 1);
  EXPECT_EQ(wire[0], std::byte{0x80});       // magic
  EXPECT_EQ(wire[1], std::byte{0x01});       // opcode set
  EXPECT_EQ(wire[2], std::byte{0x00});       // key len hi
  EXPECT_EQ(wire[3], std::byte{0x01});       // key len lo
  EXPECT_EQ(wire[4], std::byte{0x08});       // extras len
  EXPECT_EQ(wire[12], std::byte{0x11});      // opaque big-endian
  EXPECT_EQ(wire[16], std::byte{0x01});      // cas big-endian, MSB first
  EXPECT_EQ(wire[23], std::byte{0x08});
  EXPECT_EQ(wire[24], std::byte{0x01});      // flags extras big-endian
}

TEST(BinaryCodec, RequestRoundTripsAllOpcodes) {
  Rng rng(5);
  for (auto op : {bproto::Opcode::get, bproto::Opcode::set, bproto::Opcode::add,
                  bproto::Opcode::replace, bproto::Opcode::del, bproto::Opcode::increment,
                  bproto::Opcode::decrement, bproto::Opcode::quit, bproto::Opcode::flush,
                  bproto::Opcode::getq, bproto::Opcode::noop, bproto::Opcode::version,
                  bproto::Opcode::getk, bproto::Opcode::getkq, bproto::Opcode::append,
                  bproto::Opcode::prepend, bproto::Opcode::touch}) {
    bproto::Request req;
    req.opcode = op;
    req.key = rng.alnum(rng.between(1, 32));
    req.flags = static_cast<std::uint32_t>(rng());
    req.exptime = static_cast<std::uint32_t>(rng.below(100000));
    req.delta = rng();
    req.initial = rng();
    req.arith_exptime = static_cast<std::uint32_t>(rng());
    req.opaque = static_cast<std::uint32_t>(rng());
    req.cas = rng();
    const auto value = rng.alnum(rng.between(0, 200));
    req.value.assign(reinterpret_cast<const std::byte*>(value.data()),
                     reinterpret_cast<const std::byte*>(value.data()) + value.size());

    bproto::RequestParser parser;
    parser.feed(bproto::encode_request(req));
    auto r = parser.next();
    ASSERT_TRUE(r.ok() && r->has_value()) << static_cast<int>(op);
    EXPECT_EQ((*r)->opcode, op);
    EXPECT_EQ((*r)->key, req.key);
    EXPECT_EQ((*r)->value, req.value);
    EXPECT_EQ((*r)->opaque, req.opaque);
    EXPECT_EQ((*r)->cas, req.cas);
    if (op == bproto::Opcode::increment || op == bproto::Opcode::decrement) {
      EXPECT_EQ((*r)->delta, req.delta);
      EXPECT_EQ((*r)->initial, req.initial);
      EXPECT_EQ((*r)->arith_exptime, req.arith_exptime);
    }
    if (op == bproto::Opcode::set) {
      EXPECT_EQ((*r)->flags, req.flags);
      EXPECT_EQ((*r)->exptime, req.exptime);
    }
    EXPECT_EQ(parser.buffered(), 0u);
  }
}

TEST(BinaryCodec, ResponseRoundTrip) {
  bproto::Response resp;
  resp.opcode = bproto::Opcode::getk;
  resp.status = bproto::BStatus::ok;
  resp.key = "thekey";
  resp.flags = 99;
  resp.cas = 1234567;
  resp.opaque = 42;
  const std::string value = "the-value";
  resp.value.assign(reinterpret_cast<const std::byte*>(value.data()),
                    reinterpret_cast<const std::byte*>(value.data()) + value.size());

  bproto::ResponseParser parser;
  parser.feed(bproto::encode_response(resp));
  auto r = parser.next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->key, "thekey");
  EXPECT_EQ((*r)->flags, 99u);
  EXPECT_EQ((*r)->cas, 1234567u);
  EXPECT_EQ(str((*r)->value), value);
}

TEST(BinaryCodec, IncrResponseCarriesBigEndianNumber) {
  bproto::Response resp;
  resp.opcode = bproto::Opcode::increment;
  resp.status = bproto::BStatus::ok;
  resp.number = 0x0102030405060708ull;
  const auto wire = bproto::encode_response(resp);
  ASSERT_EQ(wire.size(), bproto::kHeaderSize + 8);
  EXPECT_EQ(wire[bproto::kHeaderSize], std::byte{0x01});

  bproto::ResponseParser parser;
  parser.feed(wire);
  auto r = parser.next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->number, 0x0102030405060708ull);
}

TEST(BinaryCodec, FragmentedFramesReassemble) {
  bproto::Request req;
  req.opcode = bproto::Opcode::set;
  req.key = "fragmented";
  req.value.resize(300, std::byte{7});
  const auto wire = bproto::encode_request(req);

  bproto::RequestParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.feed({wire.data() + i, 1});
    auto r = parser.next();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->has_value(), i + 1 == wire.size());
  }
}

TEST(BinaryCodec, BadMagicRejected) {
  std::vector<std::byte> junk(bproto::kHeaderSize, std::byte{0x42});
  bproto::RequestParser parser;
  parser.feed(junk);
  EXPECT_FALSE(parser.next().ok());
  bproto::ResponseParser rparser;
  rparser.feed(junk);
  EXPECT_FALSE(rparser.next().ok());
}

TEST(BinaryCodec, InconsistentLengthsRejected) {
  bproto::Request req;
  req.opcode = bproto::Opcode::get;
  req.key = "k";
  auto wire = bproto::encode_request(req);
  wire[3] = std::byte{200};  // key_len > body_len
  bproto::RequestParser parser;
  parser.feed(wire);
  EXPECT_FALSE(parser.next().ok());
}

// ---------------------------------------------------------- end to end ----

struct BinaryBed {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "server", 8};
  sim::Host client_host{sched, 1, "client", 8};
  sock::NetStack server_sock{sched, fabric, server_host, sock::sdp_ib()};
  sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
  Server server{sched, server_host, {}};
  Client client;

  BinaryBed()
      : client(sched, client_host,
               [] {
                 ClientBehavior b;
                 b.binary_protocol = true;
                 return b;
               }()) {
    server.attach_socket_frontend(server_sock);
    client.add_server_socket(client_sock, server_sock.addr(), server.config().port);
  }

  void run(Task<> task) {
    sched.spawn(std::move(task));
    sched.run();
  }
};

TEST(BinaryEndToEnd, FullCommandMatrix) {
  BinaryBed bed;
  bool done = false;
  bed.run([](Client& client, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await client.connect_all()).ok());

    EXPECT_TRUE((co_await client.set("bk", val("binary value"), 7)).ok());
    auto got = co_await client.get("bk");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(str(got->data), "binary value");
    EXPECT_EQ(got->flags, 7u);
    EXPECT_GT(got->cas, 0u);  // binary responses always carry CAS

    EXPECT_EQ((co_await client.get("miss")).error(), Errc::not_found);

    EXPECT_TRUE((co_await client.add("fresh", val("1"))).ok());
    EXPECT_EQ((co_await client.add("fresh", val("2"))).error(), Errc::not_stored);
    EXPECT_EQ((co_await client.replace("absent", val("x"))).error(), Errc::not_stored);

    EXPECT_TRUE((co_await client.append("bk", val("!"))).ok());
    EXPECT_TRUE((co_await client.prepend("bk", val(">"))).ok());
    got = co_await client.get("bk");
    EXPECT_EQ(str(got->data), ">binary value!");

    // CAS via binary set-with-cas.
    auto with_cas = co_await client.gets("fresh");
    EXPECT_TRUE(with_cas.ok());
    EXPECT_TRUE((co_await client.cas("fresh", val("3"), with_cas->cas)).ok());
    EXPECT_EQ((co_await client.cas("fresh", val("4"), with_cas->cas)).error(), Errc::exists);

    EXPECT_TRUE((co_await client.set("n", val("10"))).ok());
    auto n = co_await client.incr("n", 32);
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(*n, 42u);
    n = co_await client.decr("n", 100);
    EXPECT_EQ(*n, 0u);
    EXPECT_EQ((co_await client.incr("absent", 1)).error(), Errc::not_found);

    EXPECT_TRUE((co_await client.del("n")).ok());
    EXPECT_EQ((co_await client.del("n")).error(), Errc::not_found);

    EXPECT_TRUE((co_await client.flush_all()).ok());
    EXPECT_EQ((co_await client.get("bk")).error(), Errc::not_found);
    fin = true;
  }(bed.client, done));
  EXPECT_TRUE(done);
}

TEST(BinaryEndToEnd, QuietMultigetPipelines) {
  BinaryBed bed;
  bool done = false;
  bed.run([](Client& client, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await client.connect_all()).ok());
    std::vector<std::string> keys;
    for (int i = 0; i < 20; ++i) {
      keys.push_back("k" + std::to_string(i));
      if (i % 3 != 0) {  // leave every third key missing
        EXPECT_TRUE((co_await client.set(keys.back(), val("v" + std::to_string(i)))).ok());
      }
    }
    auto result = co_await client.mget(keys);
    EXPECT_TRUE(result.ok());
    for (int i = 0; i < 20; ++i) {
      if (i % 3 == 0) {
        EXPECT_FALSE((*result)[i].has_value()) << i;
      } else {
        EXPECT_TRUE((*result)[i].has_value()) << i;
        EXPECT_EQ(str((*result)[i]->data), "v" + std::to_string(i));
      }
    }
    fin = true;
  }(bed.client, done));
  EXPECT_TRUE(done);
}

TEST(BinaryEndToEnd, IncrWithInitialSeedsCounter) {
  // Binary-only semantics exercised at the raw protocol level: incr on a
  // missing key with a non-0xffffffff expiration seeds `initial`.
  BinaryBed bed;
  bool done = false;
  bed.run([](BinaryBed& tb, bool& fin) -> Task<> {
    auto r = co_await tb.client_sock.connect(tb.server_sock.addr(), 11211);
    EXPECT_TRUE(r.ok());
    sock::Socket* s = *r;

    bproto::Request req;
    req.opcode = bproto::Opcode::increment;
    req.key = "seeded";
    req.delta = 5;
    req.initial = 100;
    req.arith_exptime = 0;  // allow creation
    (void)co_await s->send(bproto::encode_request(req));

    bproto::ResponseParser parser;
    std::vector<std::byte> chunk(4096);
    while (true) {
      auto parsed = parser.next();
      EXPECT_TRUE(parsed.ok());
      if (parsed->has_value()) {
        EXPECT_EQ((*parsed)->status, bproto::BStatus::ok);
        EXPECT_EQ((*parsed)->number, 100u);  // created with initial
        break;
      }
      auto n = co_await s->recv(chunk);
      if (!n.ok() || *n == 0) break;
      parser.feed(std::span<const std::byte>(chunk.data(), *n));
    }
    // A second incr applies the delta.
    (void)co_await s->send(bproto::encode_request(req));
    while (true) {
      auto parsed = parser.next();
      EXPECT_TRUE(parsed.ok());
      if (parsed->has_value()) {
        EXPECT_EQ((*parsed)->number, 105u);
        break;
      }
      auto n = co_await s->recv(chunk);
      if (!n.ok() || *n == 0) break;
      parser.feed(std::span<const std::byte>(chunk.data(), *n));
    }
    fin = true;
  }(bed, done));
  EXPECT_TRUE(done);
}

TEST(BinaryEndToEnd, TextAndBinaryClientsShareOnePort) {
  // memcached 1.4 auto-detection: one server socket, one client of each
  // protocol, one shared store.
  BinaryBed bed;
  ClientBehavior text_behavior;
  Client text_client{bed.sched, bed.client_host, text_behavior};
  text_client.add_server_socket(bed.client_sock, bed.server_sock.addr(),
                                bed.server.config().port);
  bool done = false;
  bed.run([](Client& binary, Client& text, bool& fin) -> Task<> {
    EXPECT_TRUE((co_await binary.connect_all()).ok());
    EXPECT_TRUE((co_await text.connect_all()).ok());
    EXPECT_TRUE((co_await binary.set("via-binary", val("01"))).ok());
    auto got = co_await text.get("via-binary");
    EXPECT_TRUE(got.ok());
    EXPECT_EQ(str(got->data), "01");
    EXPECT_TRUE((co_await text.set("via-text", val("02"))).ok());
    auto got2 = co_await binary.get("via-text");
    EXPECT_TRUE(got2.ok());
    EXPECT_EQ(str(got2->data), "02");
    fin = true;
  }(bed.client, text_client, done));
  EXPECT_TRUE(done);
}

TEST(BinaryEndToEnd, BinaryBeatsTextOnParseCost) {
  // The binary protocol's raison d'être: fixed-offset parsing. Under the
  // same workload the server burns measurably less CPU per request.
  auto server_cpu_per_op = [](bool binary) {
    BinaryBed* bed_ptr;
    ClientBehavior behavior;
    behavior.binary_protocol = binary;
    Scheduler sched;
    sim::Fabric fabric{sched, sim::ib_qdr_link()};
    sim::Host server_host{sched, 0, "server", 8};
    sim::Host client_host{sched, 1, "client", 8};
    sock::NetStack server_sock{sched, fabric, server_host, sock::sdp_ib()};
    sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
    Server server{sched, server_host, {}};
    server.attach_socket_frontend(server_sock);
    Client client{sched, client_host, behavior};
    client.add_server_socket(client_sock, server_sock.addr(), server.config().port);
    (void)bed_ptr;

    sched.spawn([](Client& cli) -> Task<> {
      EXPECT_TRUE((co_await cli.connect_all()).ok());
      EXPECT_TRUE((co_await cli.set("key-with-a-longish-name", val("value"))).ok());
      for (int i = 0; i < 200; ++i) {
        (void)co_await cli.get("key-with-a-longish-name");
      }
    }(client));
    sched.run();
    return static_cast<double>(server_host.cpu().busy_ns()) / 200.0;
  };
  EXPECT_LT(server_cpu_per_op(true), server_cpu_per_op(false));
}

}  // namespace
}  // namespace rmc::mc
