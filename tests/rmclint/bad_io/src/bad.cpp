#include <cstdio>
#include <iostream>

namespace fx {
void report(int code) {
  std::printf("code=%d\n", code);
  std::cerr << "also here\n";
}
}  // namespace fx
