// Deterministic idioms: seeded RNG, virtual time, ordered iteration,
// unordered lookups without iteration.
#include <cstdint>
#include <map>
#include <unordered_map>

namespace fx {

struct Rng {
  std::uint64_t next();
};

struct Scheduler {
  std::uint64_t now() const;
};

struct Sim {
  Rng rng;                                         // seeded, explicit
  Scheduler sched;
  std::map<std::uint64_t, int> pending;            // iteration == insertion order
  std::unordered_map<std::uint64_t, int> routing;  // lookup-only: fine

  int route(std::uint64_t id) {
    auto it = routing.find(id);                    // point lookup, no iteration
    return it == routing.end() ? -1 : it->second;
  }

  std::uint64_t tick() {
    std::uint64_t sum = sched.now() + rng.next();
    for (auto& [id, v] : pending) sum += static_cast<std::uint64_t>(v);
    return sum;
  }
};

}  // namespace fx
