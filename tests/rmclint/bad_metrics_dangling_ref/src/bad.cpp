namespace fx {
struct Registry {
  void counter(const char* name);
};
void init(Registry& reg) { reg.counter("sim.fx.requests"); }
}  // namespace fx
