#include <chrono>
#include <ctime>

namespace fx {
long stamp() {
  auto wall = std::chrono::system_clock::now().time_since_epoch().count();
  return wall + time(nullptr);
}
}  // namespace fx
