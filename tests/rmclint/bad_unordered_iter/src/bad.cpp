#include <cstdint>
#include <unordered_map>

namespace fx {
struct Waiters {
  std::unordered_map<std::uint64_t, int> waiters_;

  int wake_all() {
    int woken = 0;
    for (auto& [id, w] : waiters_) woken += w;  // order is sim-visible
    return woken;
  }
};
}  // namespace fx
