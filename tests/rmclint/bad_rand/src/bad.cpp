#include <cstdlib>
#include <random>

namespace fx {
int roll() {
  std::random_device rd;  // nondeterministic seed source
  return static_cast<int>(rd() % 6u) + rand() % 6;
}
}  // namespace fx
