#!/usr/bin/env python3
"""Drive the rmclint fixture mini-repos.

Usage: run_fixtures.py <repo_root>

Each subdirectory of tests/rmclint/ holding a src/ tree is one case:
  good_*  must exit 0 (clean),
  bad_*   must exit 1 and report the rule id listed in <case>/expect.txt.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


def run_case(repo_root: Path, case: Path) -> list[str]:
    errors: list[str] = []
    proc = subprocess.run(
        [sys.executable, str(repo_root / "tools" / "rmclint"), "--root", str(case)],
        capture_output=True,
        text=True,
    )
    out = proc.stdout + proc.stderr
    if case.name.startswith("good_"):
        if proc.returncode != 0:
            errors.append(f"{case.name}: expected clean, exit {proc.returncode}:\n{out}")
    else:
        expect = (case / "expect.txt").read_text().split()
        if proc.returncode != 1:
            errors.append(f"{case.name}: expected exit 1, got {proc.returncode}:\n{out}")
        for rule in expect:
            if f"[{rule}]" not in out:
                errors.append(f"{case.name}: expected a [{rule}] finding, got:\n{out}")
    return errors


def main() -> int:
    repo_root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    fixture_dir = repo_root / "tests" / "rmclint"
    cases = sorted(d for d in fixture_dir.iterdir() if (d / "src").is_dir())
    if not cases:
        print("no fixture cases found", file=sys.stderr)
        return 1
    failures: list[str] = []
    for case in cases:
        errs = run_case(repo_root, case)
        status = "ok" if not errs else "FAIL"
        print(f"  {case.name:<32} {status}")
        failures.extend(errs)
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\n{len(failures)} fixture failure(s)", file=sys.stderr)
        return 1
    print(f"all {len(cases)} fixture cases behaved as expected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
