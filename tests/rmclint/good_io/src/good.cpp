namespace fx {
void log_line(const char* fmt, ...);  // routed through the logging layer

void report(int code) { log_line("code=%d", code); }
}  // namespace fx
