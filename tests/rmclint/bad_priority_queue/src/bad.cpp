// Fixture: std::priority_queue in library code — its pop order for equal
// keys is unspecified, which breaks the pinned same-timestamp dispatch
// guarantee the figures depend on.
#include <cstdint>
#include <queue>

namespace fx {

struct Pending {
  std::priority_queue<std::uint64_t> deadlines;

  void push(std::uint64_t t) { deadlines.push(t); }
};

}  // namespace fx
