#include <map>

namespace fx {
struct Endpoint;
struct Registry {
  std::map<Endpoint*, int> by_ep_;  // ordered by allocation address
};
}  // namespace fx
