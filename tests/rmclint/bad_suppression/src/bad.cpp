#include <cstdio>

namespace fx {
void dump_table() {
  std::printf("table\n");  // rmclint:allow(io-hygiene)
}
void dump_more() {
  std::printf("more\n");  // rmclint:allow(no-such-rule): justification text here
}
}  // namespace fx
