// Fixture: the safe coroutine idioms the coro-lifetime pass must NOT
// flag — directly-awaited lazy tasks (arguments live to the end of the
// full-expression, [expr.await]), spawned frames that take everything by
// value, value captures into callbacks, and a justified suppression for
// a spawned frame whose argument owner provably outlives it.
#include <span>
#include <string>

namespace fx {

struct Scheduler {
  template <typename T>
  void spawn(T&&);
  template <typename F>
  void call_at(long t, F&&);
};

struct Task {};
struct Store {
  Task lookup(const std::string& key);
};

// Only ever directly awaited: `co_await fetch(store, key)` keeps `store`
// and `key` alive until the await resumes, so reads after co_await are fine.
Task fetch(Store& store, const std::string& key) {
  co_await store.lookup(key);
  co_await store.lookup(key);
}

// Spawned, but every parameter is an owning copy — nothing aliases the
// caller's frame.
Task pump(Store store, std::string key) {
  for (;;) {
    co_await store.lookup(key);
  }
}

// Spawned with a reference parameter, justified: the fixture "runner"
// owns the Store and blocks until the task completes.
Task sweep(Store& store) {
  // rmclint:allow(coro-lifetime): store is owned by run(), which blocks until
  // this task signals completion before returning.
  co_await store.lookup("sweep");
}

void run(Scheduler& sched, Store& store) {
  sched.spawn(pump(store, "hot"));
  sched.spawn(sweep(store));

  long when = 10;
  sched.call_at(when, [when] { (void)when; });  // value capture: safe
}

}  // namespace fx
