// Fixture: detached-coroutine lifetime hazards the coro-lifetime pass
// must catch — a spawned coroutine reading reference parameters, and a
// by-reference capture escaping into a scheduler callback.
#include <span>
#include <string>

namespace fx {

struct Scheduler {
  template <typename T>
  void spawn(T&&);
  template <typename F>
  void call_at(long t, F&&);
};

struct Task {};
struct Conn {
  Task recv(std::span<std::byte> buf);
};

// Spawned below, so the frame outlives the call expression: every read of
// `conn` and `buf` races the caller's teardown.
Task pump(Conn& conn, std::span<std::byte> buf) {
  for (;;) {
    co_await conn.recv(buf);
  }
}

void start(Scheduler& sched, Conn& conn) {
  std::byte storage[64];
  std::span<std::byte> buf{storage};
  sched.spawn(pump(conn, buf));

  int local = 0;
  sched.call_at(10, [&local] { local += 1; });  // fires after `local` is gone
}

}  // namespace fx
