// rmclint:hotpath — fixture fast path
#include <array>
#include <cstddef>
#include <cstring>
#include <vector>

namespace fx {
struct Codec {
  std::array<std::byte, 256> inline_buf{};
  std::size_t used = 0;

  void append(const std::byte* p, std::size_t n) {
    std::memcpy(inline_buf.data() + used, p, n);  // fixed arena, no growth
    used += n;
  }

  std::vector<std::byte> spill_;

  void cold_grow(std::size_t n) {
    // rmclint:allow(zeroalloc): one-time warmup reservation, never grows after
    spill_.reserve(n);
  }
};
}  // namespace fx
