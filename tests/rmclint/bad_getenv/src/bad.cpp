#include <cstdlib>
#include <string>

namespace fx {
bool verbose() {
  const char* v = std::getenv("FX_VERBOSE");
  return v != nullptr && std::string(v) == "1";
}
}  // namespace fx
