// rmclint:hotpath — fixture fast path
#include <cstddef>
#include <memory>
#include <vector>

namespace fx {
struct Handler {
  std::vector<std::byte> out_;

  void on_request(const std::byte* p, std::size_t n) {
    out_.insert(out_.end(), p, p + n);     // grows per request
    auto copy = std::make_unique<std::byte[]>(n);
  }
};
}  // namespace fx
