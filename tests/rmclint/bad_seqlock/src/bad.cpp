// Fixture: seqlock-discipline violations — direct writes to guarded
// frame/index fields outside the blessed protocol helpers.
#include "rfp/layout.hpp"

#include <cstdint>
#include <cstring>

namespace fx {

struct FrameHeader {
  std::uint32_t seq = 0;
  std::uint32_t body_len = 0;
  std::uint32_t checksum = 0;
};

struct Ring {
  std::uint32_t* expected_seq = nullptr;
};

// Not a blessed writer: stamping seq directly skips the body/checksum
// ordering that makes torn frames detectable.
void publish_frame(FrameHeader& hdr, std::uint32_t epoch) {
  hdr.seq = epoch;
  hdr.checksum = 0;
}

void bump(Ring& ring, std::uint32_t slot) {
  ring.expected_seq[slot] += 1;
}

}  // namespace fx
