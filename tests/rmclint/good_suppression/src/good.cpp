#include <cstdio>

namespace fx {
void dump_table() {
  // rmclint:allow(io-hygiene): designated end-of-run stdout dump sink
  std::printf("table\n");
}
}  // namespace fx
