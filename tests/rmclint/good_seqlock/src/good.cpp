// Fixture: seqlock writes the discipline pass must accept — mutations
// inside the blessed protocol helpers, plus a justified suppression for
// an initialization no reader can race.
#include "rfp/layout.hpp"

#include <cstdint>
#include <vector>

namespace fx {

struct FrameHeader {
  std::uint32_t seq = 0;
  std::uint32_t body_len = 0;
  std::uint32_t checksum = 0;
};

struct Ring {
  std::vector<std::uint32_t> expected_seq;
};

// Blessed by name: this IS the protocol — body first, checksum second,
// seq stamp last.
void seal_frame(FrameHeader& hdr, std::uint32_t epoch, std::uint32_t sum) {
  hdr.checksum = sum;
  hdr.seq = epoch;
}

void release_slot(Ring& ring, std::uint32_t slot) {
  ring.expected_seq[slot] += 1;
}

void bootstrap(Ring& ring, std::uint32_t slots) {
  // rmclint:allow(seqlock-discipline): fresh ring during setup — no reader can
  // hold these epochs yet, so the bulk init cannot race.
  ring.expected_seq.assign(slots, 1);
}

}  // namespace fx
