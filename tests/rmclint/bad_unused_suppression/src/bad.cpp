namespace fx {
int add(int a, int b) {
  // rmclint:allow(zeroalloc): stale annotation left behind after a refactor
  return a + b;
}
}  // namespace fx
