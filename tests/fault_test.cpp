// Fault injection and failure recovery across the stack.
//
// Covers the failure semantics end to end: the FaultInjector's scripted
// link/node/partition faults at the fabric, RC retransmission and retry
// exhaustion at the verbs layer, fail_endpoint / keepalive / deferred
// reclamation at the UCR layer, and client retry + ketama ejection at the
// memcached layer. The governing invariant everywhere: endpoint failure
// is an *event*, never a silent hang — every in-flight operation resolves
// within its timeout budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "simnet/faults.hpp"
#include "simnet/netparams.hpp"
#include "ucr/runtime.hpp"

namespace rmc {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

constexpr std::uint16_t kMsgData = 7;

std::uint64_t metric(const char* name) { return obs::registry().counter(name).value(); }

std::span<const std::byte> bytes_view(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Client/server pair over one fabric, with configurable client-side UCR
/// config (keepalive tests).
struct World {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host host_client{sched, 0, "client", 8};
  sim::Host host_server{sched, 1, "server", 8};
  verbs::Hca hca_client{sched, fabric, host_client};
  verbs::Hca hca_server{sched, fabric, host_server};
  ucr::Runtime client;
  ucr::Runtime server;

  ucr::Endpoint* client_ep = nullptr;
  ucr::Endpoint* server_ep = nullptr;
  int arrivals = 0;  ///< kMsgData messages delivered at the server

  explicit World(ucr::UcrConfig client_config = {})
      : client(hca_client, client_config), server(hca_server) {
    server.register_handler(
        kMsgData, {.on_complete = [this](ucr::Endpoint&, std::span<const std::byte>,
                                         std::span<std::byte>) { ++arrivals; }});
  }

  void establish(std::uint16_t port = 7000) {
    server.listen(port, [this](ucr::Endpoint& ep) { server_ep = &ep; });
    sched.spawn([](World& w, std::uint16_t port2) -> Task<> {
      auto r = co_await w.client.connect(w.server.addr(), port2);
      EXPECT_TRUE(r.ok());
      if (r.ok()) w.client_ep = *r;
    }(*this, port));
    // run_until, not run(): with keepalive enabled the prober loop keeps
    // the event queue non-empty forever.
    sched.run_until(sched.now() + 5_ms);
    ASSERT_NE(client_ep, nullptr);
    ASSERT_NE(server_ep, nullptr);
  }

  Status send_data(const std::string& payload, sim::Counter* completion = nullptr) {
    return client.send_message(*client_ep, kMsgData, bytes_view("h"), bytes_view(payload),
                               nullptr, {}, completion);
  }
};

// ------------------------------------------------- fabric fault hooks ----

TEST(FaultInjector, LinkDownDropsUntilLinkUp) {
  World w;
  w.establish();
  const std::uint64_t drops_before = metric("sim.fault.drops");
  const std::uint64_t rexmit_before = metric("verbs.rc.retransmits");

  w.fabric.faults().set_link_down(w.client.addr(), w.server.addr(), true);
  ASSERT_TRUE(w.send_data("hello").ok());
  w.sched.run_until(w.sched.now() + 2_ms);
  EXPECT_EQ(w.arrivals, 0);  // severed link: nothing got through
  EXPECT_GT(metric("sim.fault.drops"), drops_before);

  // Restore the link before the RC retry budget runs out: the pending
  // send is retransmitted and delivered — reliable transport heals.
  w.fabric.faults().set_link_down(w.client.addr(), w.server.addr(), false);
  w.sched.run();
  EXPECT_EQ(w.arrivals, 1);
  EXPECT_GT(metric("verbs.rc.retransmits"), rexmit_before);
}

TEST(FaultInjector, NodeDownSilencesBothDirections) {
  World w;
  w.establish();
  w.fabric.faults().set_node_down(w.server.addr(), true);
  ASSERT_TRUE(w.send_data("into the void").ok());
  w.sched.run_until(w.sched.now() + 2_ms);
  EXPECT_EQ(w.arrivals, 0);
  w.fabric.faults().set_node_down(w.server.addr(), false);
  w.sched.run();
  EXPECT_EQ(w.arrivals, 1);  // revived node receives the retransmit
}

TEST(FaultInjector, ScheduledPlanFiresAtTheScriptedTimes) {
  World w;
  w.establish();
  const sim::Time t0 = w.sched.now();
  w.fabric.faults().schedule({
      {t0 + 1_ms, {.kind = sim::Fault::Kind::node_down, .a = w.server.addr()}},
      {t0 + 2_ms, {.kind = sim::Fault::Kind::node_up, .a = w.server.addr()}},
  });
  EXPECT_FALSE(w.fabric.faults().node_down(w.server.addr()));
  w.sched.run_until(t0 + 1500_us);
  EXPECT_TRUE(w.fabric.faults().node_down(w.server.addr()));
  w.sched.run_until(t0 + 2500_us);
  EXPECT_FALSE(w.fabric.faults().node_down(w.server.addr()));
}

// ------------------------------------- RC reliability under link loss ----

TEST(RcReliability, LossWindowNeverLosesReliableMessages) {
  World w;
  w.establish();
  const std::uint64_t rexmit_before = metric("verbs.rc.retransmits");

  // 10% loss on the client<->server link, enabled only after the CM
  // handshake so the connection itself is never at risk.
  w.fabric.faults().set_link_loss(w.client.addr(), w.server.addr(), 100'000);
  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(w.send_data("payload-" + std::to_string(i)).ok());
  }
  w.sched.run();
  // Every single message arrived: drops were retransmitted underneath.
  EXPECT_EQ(w.arrivals, kMessages);
  EXPECT_GT(metric("verbs.rc.retransmits"), rexmit_before);
}

TEST(RcReliability, RetryExhaustionFailsTheEndpointInsteadOfHanging) {
  World w;
  w.establish();
  const std::uint64_t failures_before = metric("ucr.ep.failures");
  const std::uint64_t exhausted_before = metric("verbs.rc.retry_exhausted");
  int notified = 0;
  w.client.on_endpoint_down([&](ucr::Endpoint& ep, Errc) {
    EXPECT_EQ(ep.state(), ucr::EpState::failed);
    ++notified;
  });

  w.fabric.faults().set_node_down(w.server.addr(), true);
  sim::Counter completion(w.sched);
  bool woke = false, ok = true;
  ASSERT_TRUE(w.send_data("doomed", &completion).ok());
  w.sched.spawn([](sim::Counter& c, bool& woke2, bool& ok2) -> Task<> {
    ok2 = co_await c.wait_geq(1);  // no timeout: only failure can wake us
    woke2 = true;
  }(completion, woke, ok));

  w.sched.run();  // drains: retries exhaust, endpoint fails, waiter wakes
  EXPECT_TRUE(woke);
  EXPECT_FALSE(ok);
  EXPECT_EQ(notified, 1);
  EXPECT_EQ(w.client.endpoint_count(), 0u);  // reaped after the failure
  EXPECT_EQ(w.client.pending_op_count(), 0u);
  EXPECT_EQ(metric("ucr.ep.failures"), failures_before + 1);
  EXPECT_GT(metric("verbs.rc.retry_exhausted"), exhausted_before);
}

// ------------------------------------------- UCR failure as an event ----

TEST(EndpointFailure, FailEndpointWakesAllPendingWaitersImmediately) {
  World w;
  w.establish();
  // Server unreachable: the completion ack can never come back, so the
  // operation stays pending until something fails it.
  w.fabric.faults().set_node_down(w.server.addr(), true);

  sim::Counter completion(w.sched);
  ASSERT_TRUE(w.send_data("waiting forever", &completion).ok());
  ASSERT_GT(w.client.pending_op_count(), 0u);
  const sim::Time failed_at = w.sched.now() + 50_us;
  bool woke = false, ok = true;
  sim::Time woke_at = 0;
  w.sched.spawn([](World& wk, sim::Counter& c, bool& woke2, bool& ok2,
                   sim::Time& woke_at2) -> Task<> {
    ok2 = co_await c.wait_geq(1, 1_s);
    woke2 = true;
    woke_at2 = wk.sched.now();
  }(w, completion, woke, ok, woke_at));
  w.sched.call_at(failed_at, [&w] { w.client.fail_endpoint(*w.client_ep); });

  w.sched.run();
  EXPECT_TRUE(woke);
  EXPECT_FALSE(ok);
  // The waiter woke at the instant of failure, not after riding out the
  // 1 s timeout — failure is an event, not a timeout.
  EXPECT_EQ(woke_at, failed_at);
  EXPECT_EQ(w.client.pending_op_count(), 0u);
}

TEST(EndpointFailure, DownHandlerFiresOncePerEndpoint) {
  World w;
  w.establish();
  int notified = 0;
  const std::uint64_t id = w.client.on_endpoint_down(
      [&](ucr::Endpoint& ep, Errc reason) {
        EXPECT_EQ(&ep, w.client_ep);
        EXPECT_EQ(reason, Errc::disconnected);
        ++notified;
      });
  w.client.fail_endpoint(*w.client_ep);
  w.client.fail_endpoint(*w.client_ep);  // idempotent: already failed
  w.sched.run();
  EXPECT_EQ(notified, 1);
  w.client.remove_endpoint_handler(id);
}

TEST(EndpointFailure, KeepaliveDetectsASilentPeer) {
  ucr::UcrConfig config;
  config.keepalive_interval = 100_us;
  World w(config);
  w.establish();
  const std::uint64_t timeouts_before = metric("ucr.keepalive.timeouts");

  w.fabric.faults().set_node_down(w.server.addr(), true);
  // No traffic at all: only the keepalive prober can notice.
  w.sched.run_until(w.sched.now() + 2_ms);
  EXPECT_EQ(w.client_ep->state(), ucr::EpState::failed);
  EXPECT_GT(metric("ucr.keepalive.timeouts"), timeouts_before);
}

TEST(EndpointChurn, ClosedEndpointsAreReclaimedOnBothSides) {
  World w;
  w.server.listen(7000, [&](ucr::Endpoint&) {});

  const std::size_t client_base = w.client.endpoint_count();
  const std::size_t server_base = w.server.endpoint_count();
  constexpr int kCycles = 10;
  for (int i = 0; i < kCycles; ++i) {
    ucr::Endpoint* ep = nullptr;
    w.sched.spawn([](World& wk, ucr::Endpoint*& out) -> Task<> {
      auto r = co_await wk.client.connect(wk.server.addr(), 7000);
      EXPECT_TRUE(r.ok());
      if (r.ok()) out = *r;
    }(w, ep));
    w.sched.run();
    ASSERT_NE(ep, nullptr);
    w.client.close(*ep);
    // Drains everything, including the close notification to the peer and
    // both sides' deferred reapers (ep_reclaim_delay later).
    w.sched.run();
  }
  EXPECT_EQ(w.client.endpoint_count(), client_base);
  EXPECT_EQ(w.server.endpoint_count(), server_base);
  EXPECT_EQ(w.client.pending_op_count(), 0u);
  EXPECT_EQ(w.server.pending_op_count(), 0u);
}

// ------------------------------------------ memcached-level recovery ----

struct McPool {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<mc::Server>> servers;

  sim::Host client_host{sched, 100, "client", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  std::unique_ptr<ucr::Runtime> client_ucr;
  std::unique_ptr<mc::Client> client;

  McPool(int n, mc::ClientBehavior behavior) {
    ucr::UcrConfig config;
    config.keepalive_interval = 100_us;
    client_ucr = std::make_unique<ucr::Runtime>(client_hca, config);
    client = std::make_unique<mc::Client>(sched, client_host, behavior);
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc" + std::to_string(i), 8));
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      servers.push_back(
          std::make_unique<mc::Server>(sched, *hosts.back(), mc::ServerConfig{}));
      servers.back()->attach_ucr_frontend(*runtimes.back());
      client->add_server_ucr(*client_ucr, runtimes.back()->addr(), 11211);
    }
  }

  /// Run one coroutine to completion under a horizon (the keepalive
  /// prober keeps the event queue non-empty forever, so a plain run()
  /// would never return).
  void drive(Task<> task, sim::Time horizon = 3_s) {
    bool done = false;
    sched.spawn([](Task<> inner, bool& fin) -> Task<> {
      co_await std::move(inner);
      fin = true;
    }(std::move(task), done));
    const sim::Time deadline = sched.now() + horizon;
    while (!done && sched.now() < deadline) {
      const sim::Time before = sched.now();
      sched.run_until(std::min(deadline, before + 1_ms));
      if (sched.now() == before) break;  // queue drained: no progress possible
    }
    ASSERT_TRUE(done) << "scenario hung past its horizon";
  }
};

mc::ClientBehavior recovery_behavior() {
  mc::ClientBehavior b;
  b.distribution = mc::Distribution::ketama;
  b.op_timeout = 300_us;
  b.max_retries = 2;
  b.retry_backoff = 20_us;
  b.eject_after_failures = 2;
  return b;
}

TEST(McRecovery, NodeCrashEjectsHostAndSurvivorsKeepServing) {
  McPool pool(3, recovery_behavior());
  const std::uint64_t ejected_before = metric("mc.pool.ejected");
  constexpr int kKeys = 60;

  pool.drive([](McPool& pool2) -> Task<> {
    mc::Client& client = *pool2.client;
    EXPECT_TRUE((co_await client.connect_all()).ok());
    std::vector<std::size_t> owner(kKeys);  // pre-crash ownership
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "k" + std::to_string(i);
      owner[i] = client.server_index(key);
      EXPECT_TRUE((co_await client.set(key, bytes_view("v" + std::to_string(i)))).ok());
    }

    pool2.fabric.faults().set_node_down(pool2.runtimes[1]->addr(), true);

    // Every read resolves — as a hit, or as a bounded miss for keys whose
    // owner died and got re-routed — within the retry budget. No hangs,
    // no errors.
    int errors = 0;
    sim::Time slowest = 0;
    for (int i = 0; i < kKeys; ++i) {
      const sim::Time begin = pool2.sched.now();
      auto got = co_await client.get("k" + std::to_string(i));
      slowest = std::max(slowest, pool2.sched.now() - begin);
      if (!got.ok() && got.error() != Errc::not_found) ++errors;
    }
    EXPECT_EQ(errors, 0);
    // Budget: (max_retries + 1) op timeouts plus backoffs, with margin.
    EXPECT_LT(slowest, 2_ms);
    EXPECT_TRUE(client.server_ejected(1));

    // Keys owned by the survivors are served as if nothing happened.
    for (int i = 0; i < kKeys; ++i) {
      if (owner[i] == 1) continue;
      auto got = co_await client.get("k" + std::to_string(i));
      EXPECT_TRUE(got.ok()) << "survivor key k" << i << " lost";
    }
  }(pool));
  EXPECT_EQ(metric("mc.pool.ejected"), ejected_before + 1);
}

TEST(McRecovery, PartitionHealsAndClientReconnects) {
  mc::ClientBehavior behavior = recovery_behavior();
  behavior.max_retries = 1;
  McPool pool(1, behavior);
  const std::uint64_t reconnects_before = metric("mc.client.reconnects");

  pool.drive([](McPool& pool2) -> Task<> {
    mc::Client& client = *pool2.client;
    EXPECT_TRUE((co_await client.connect_all()).ok());
    EXPECT_TRUE((co_await client.set("island", bytes_view("castaway"))).ok());

    // Cut the client off from everything.
    pool2.fabric.faults().partition({pool2.client_ucr->addr()});
    auto lost = co_await client.get("island");
    EXPECT_FALSE(lost.ok());  // bounded failure, not a hang

    // Give the keepalive prober time to declare the endpoint dead.
    co_await pool2.sched.delay(1_ms);

    pool2.fabric.faults().heal();
    // The retry path reconnects and the data is still there: only the
    // network died, not the server.
    auto back = co_await client.get("island");
    EXPECT_TRUE(back.ok());
    if (back.ok()) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(back->data.data()),
                            back->data.size()),
                "castaway");
    }
  }(pool));
  EXPECT_GT(metric("mc.client.reconnects"), reconnects_before);
}

}  // namespace
}  // namespace rmc
