// Tests for the core façade: testbed assembly across every (cluster,
// transport) combination, workload patterns, and the headline ordering
// properties the paper's figures rest on.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "core/workload.hpp"

namespace rmc::core {
namespace {

using namespace rmc::literals;

WorkloadResult run(ClusterKind cluster, TransportKind transport, WorkloadConfig workload,
                   unsigned clients = 1) {
  TestBedConfig config;
  config.cluster = cluster;
  config.transport = transport;
  config.num_clients = clients;
  TestBed bed(config);
  return run_workload(bed, workload);
}

TEST(TestBed, EveryValidCombinationServesTraffic) {
  WorkloadConfig workload;
  workload.ops_per_client = 20;
  workload.pattern = OpPattern::interleaved;
  workload.value_size = 512;
  for (auto cluster : {ClusterKind::cluster_a, ClusterKind::cluster_b}) {
    for (auto transport : {TransportKind::ucr_verbs, TransportKind::sdp, TransportKind::ipoib,
                           TransportKind::toe_10ge, TransportKind::tcp_1ge}) {
      if (!transport_available(cluster, transport)) continue;
      auto result = run(cluster, transport, workload);
      EXPECT_EQ(result.total_ops, 20u)
          << cluster_name(cluster) << " / " << transport_name(transport);
      EXPECT_GT(result.mean_latency_us(), 0.0);
    }
  }
}

TEST(TestBed, ClusterBRejectsTenGigE) {
  EXPECT_FALSE(transport_available(ClusterKind::cluster_b, TransportKind::toe_10ge));
  EXPECT_FALSE(transport_available(ClusterKind::cluster_b, TransportKind::tcp_1ge));
  EXPECT_TRUE(transport_available(ClusterKind::cluster_b, TransportKind::sdp));
  EXPECT_TRUE(transport_available(ClusterKind::cluster_a, TransportKind::toe_10ge));
}

TEST(TestBed, NamesAreStable) {
  EXPECT_EQ(transport_name(TransportKind::ucr_verbs), "UCR-IB");
  EXPECT_EQ(transport_name(TransportKind::toe_10ge), "10GigE-TOE");
  EXPECT_EQ(pattern_name(OpPattern::pure_get), "100% Get");
}

TEST(Workload, PatternsProduceExpectedMix) {
  WorkloadConfig workload;
  workload.ops_per_client = 200;
  workload.value_size = 64;

  workload.pattern = OpPattern::pure_get;
  auto r = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  EXPECT_EQ(r.get_latency.count(), 200u);
  EXPECT_EQ(r.set_latency.count(), 0u);

  workload.pattern = OpPattern::pure_set;
  r = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  EXPECT_EQ(r.set_latency.count(), 200u);

  workload.pattern = OpPattern::non_interleaved;
  r = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  EXPECT_EQ(r.set_latency.count(), 20u);   // 10 per 100
  EXPECT_EQ(r.get_latency.count(), 180u);

  workload.pattern = OpPattern::interleaved;
  r = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  EXPECT_EQ(r.set_latency.count(), 100u);
  EXPECT_EQ(r.get_latency.count(), 100u);
}

TEST(Workload, MultiClientAggregatesOps) {
  WorkloadConfig workload;
  workload.ops_per_client = 50;
  workload.value_size = 4;
  auto r = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload, 4);
  EXPECT_EQ(r.total_ops, 200u);
  EXPECT_GT(r.tps(), 0.0);
}

TEST(Workload, DeterministicAcrossRuns) {
  WorkloadConfig workload;
  workload.ops_per_client = 100;
  workload.value_size = 1024;
  const auto a = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  const auto b = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.mean_latency_us(), b.mean_latency_us());
}

// ------------------------------------------------- paper-shape checks ----

TEST(PaperShape, UcrBeatsEverySocketTransport4K) {
  // The core claim of Figures 3/4 at the headline 4 KB point.
  WorkloadConfig workload;
  workload.pattern = OpPattern::pure_get;
  workload.value_size = 4096;
  workload.ops_per_client = 200;

  const double ucr = run(ClusterKind::cluster_a, TransportKind::ucr_verbs, workload)
                         .mean_latency_us();
  const double toe = run(ClusterKind::cluster_a, TransportKind::toe_10ge, workload)
                         .mean_latency_us();
  const double sdp = run(ClusterKind::cluster_a, TransportKind::sdp, workload)
                         .mean_latency_us();
  const double ipoib = run(ClusterKind::cluster_a, TransportKind::ipoib, workload)
                           .mean_latency_us();

  EXPECT_LT(ucr * 3.5, toe) << "UCR must beat TOE by ~4x";
  EXPECT_LT(ucr * 4.0, sdp) << "UCR must beat SDP by >4x";
  EXPECT_LT(ucr * 4.0, ipoib) << "UCR must beat IPoIB by >4x";
}

TEST(PaperShape, QdrFasterThanDdr) {
  WorkloadConfig workload;
  workload.pattern = OpPattern::pure_get;
  workload.value_size = 4096;
  workload.ops_per_client = 200;
  const double ddr = run(ClusterKind::cluster_a, TransportKind::ucr_verbs, workload)
                         .mean_latency_us();
  const double qdr = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload)
                         .mean_latency_us();
  EXPECT_LT(qdr, ddr);
}

TEST(PaperShape, MultiClientThroughputScalesThenSaturates) {
  WorkloadConfig workload;
  workload.pattern = OpPattern::pure_get;
  workload.value_size = 4;
  workload.ops_per_client = 300;
  const double tps1 = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload, 1).tps();
  const double tps8 = run(ClusterKind::cluster_b, TransportKind::ucr_verbs, workload, 8).tps();
  EXPECT_GT(tps8, tps1 * 2) << "8 clients must deliver much more aggregate TPS than 1";
}

}  // namespace
}  // namespace rmc::core
