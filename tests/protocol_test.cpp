// Tests for the memcached ASCII protocol codec: request parsing (including
// fragmented streams and malformed input), request encoding round trips,
// response encoding/parsing, and a randomized encode->parse property test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "memcached/protocol.hpp"

namespace rmc::mc::proto {
namespace {

std::span<const std::byte> bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string str(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

std::vector<std::string> keys_of(const Request& req) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < req.key_count(); ++i) out.emplace_back(req.key_at(i));
  return out;
}

Request parse_one(const std::string& wire) {
  RequestParser parser;
  parser.feed(bytes(wire));
  auto r = parser.next();
  EXPECT_TRUE(r.ok());
  if (!r.ok() || !r->has_value()) {
    ADD_FAILURE() << "no complete request parsed from: " << wire;
    return {};
  }
  return std::move(**r);
}

// ----------------------------------------------------- request parsing ----

TEST(RequestParse, Get) {
  const Request req = parse_one("get somekey\r\n");
  EXPECT_EQ(req.command, Command::get);
  ASSERT_EQ(req.key_count(), 1u);
  EXPECT_EQ(req.key(), "somekey");
}

TEST(RequestParse, MultiKeyGet) {
  const Request req = parse_one("get a b c\r\n");
  EXPECT_EQ(keys_of(req), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RequestParse, SetWithData) {
  const Request req = parse_one("set k 42 100 5\r\nhello\r\n");
  EXPECT_EQ(req.command, Command::set);
  EXPECT_EQ(req.key(), "k");
  EXPECT_EQ(req.flags, 42u);
  EXPECT_EQ(req.exptime, 100u);
  EXPECT_EQ(str(req.data), "hello");
  EXPECT_FALSE(req.noreply);
}

TEST(RequestParse, SetNoreply) {
  const Request req = parse_one("set k 0 0 2 noreply\r\nhi\r\n");
  EXPECT_TRUE(req.noreply);
}

TEST(RequestParse, CasCarriesUnique) {
  const Request req = parse_one("cas k 0 0 2 987\r\nhi\r\n");
  EXPECT_EQ(req.command, Command::cas);
  EXPECT_EQ(req.cas_unique, 987u);
}

TEST(RequestParse, IncrDecr) {
  Request req = parse_one("incr counter 5\r\n");
  EXPECT_EQ(req.command, Command::incr);
  EXPECT_EQ(req.key(), "counter");
  EXPECT_EQ(req.delta, 5u);
  req = parse_one("decr counter 2\r\n");
  EXPECT_EQ(req.command, Command::decr);
}

TEST(RequestParse, DeleteTouchFlushVersionQuit) {
  EXPECT_EQ(parse_one("delete k\r\n").command, Command::del);
  EXPECT_EQ(parse_one("touch k 99\r\n").exptime, 99u);
  EXPECT_EQ(parse_one("flush_all\r\n").command, Command::flush_all);
  EXPECT_EQ(parse_one("flush_all 10\r\n").exptime, 10u);
  EXPECT_EQ(parse_one("version\r\n").command, Command::version);
  EXPECT_EQ(parse_one("quit\r\n").command, Command::quit);
  EXPECT_EQ(parse_one("stats\r\n").command, Command::stats);
}

TEST(RequestParse, FragmentedStreamReassembles) {
  // Feed a set command one byte at a time: the parser must wait patiently.
  const std::string wire = "set frag 1 2 10\r\n0123456789\r\n";
  RequestParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    parser.feed(bytes(wire.substr(i, 1)));
    auto r = parser.next();
    ASSERT_TRUE(r.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(r->has_value()) << "completed early at byte " << i;
    } else {
      ASSERT_TRUE(r->has_value());
      EXPECT_EQ(str((*r)->data), "0123456789");
    }
  }
}

TEST(RequestParse, PipelinedRequests) {
  RequestParser parser;
  parser.feed(bytes("get a\r\nset b 0 0 1\r\nx\r\nget c\r\n"));
  auto r1 = parser.next();
  auto r2 = parser.next();
  auto r3 = parser.next();
  auto r4 = parser.next();
  ASSERT_TRUE(r1.ok() && r1->has_value());
  ASSERT_TRUE(r2.ok() && r2->has_value());
  ASSERT_TRUE(r3.ok() && r3->has_value());
  EXPECT_EQ((*r1)->key(), "a");
  EXPECT_EQ((*r2)->key(), "b");
  EXPECT_EQ((*r3)->key(), "c");
  EXPECT_TRUE(r4.ok());
  EXPECT_FALSE(r4->has_value());
}

TEST(RequestParse, DataMayContainCrlf) {
  // The byte-count framing means binary data with \r\n inside must work.
  const Request req = parse_one("set k 0 0 5\r\na\r\nb!\r\n");
  EXPECT_EQ(str(req.data), "a\r\nb!");
}

TEST(RequestParse, GarbageIsProtocolError) {
  for (const char* bad : {"bogus cmd\r\n", "set k\r\n", "set k a b c\r\n", "incr k\r\n",
                          "get\r\n", "incr k abc\r\n"}) {
    RequestParser parser;
    parser.feed(bytes(bad));
    auto r = parser.next();
    EXPECT_FALSE(r.ok()) << bad;
  }
}

TEST(RequestParse, BadDataTerminatorIsError) {
  RequestParser parser;
  parser.feed(bytes("set k 0 0 2\r\nhiXX"));
  auto r = parser.next();
  EXPECT_FALSE(r.ok());
}

TEST(RequestParse, WireBytesAccounting) {
  const std::string wire = "set k 0 0 3\r\nabc\r\n";
  const Request req = parse_one(wire);
  EXPECT_EQ(req.wire_bytes, wire.size());
}

// ---------------------------------------------------- request encoding ----

TEST(RequestEncode, RoundTripsThroughParser) {
  Request req;
  req.command = Command::set;
  req.set_key("mykey");
  req.flags = 3;
  req.exptime = 60;
  const std::string payload = "payload-data";
  req.data.assign(reinterpret_cast<const std::byte*>(payload.data()),
                  reinterpret_cast<const std::byte*>(payload.data()) + payload.size());

  RequestParser parser;
  parser.feed(encode_request(req));
  auto r = parser.next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->key(), "mykey");
  EXPECT_EQ((*r)->flags, 3u);
  EXPECT_EQ((*r)->exptime, 60u);
  EXPECT_EQ(str((*r)->data), payload);
}

TEST(RequestEncode, AllCommandsRoundTrip) {
  Rng rng(7);
  for (auto cmd : {Command::get, Command::gets, Command::set, Command::add, Command::replace,
                   Command::append, Command::prepend, Command::cas, Command::del,
                   Command::incr, Command::decr, Command::touch, Command::flush_all,
                   Command::stats, Command::version, Command::quit}) {
    Request req;
    req.command = cmd;
    req.set_key("key-" + rng.alnum(8));
    ASSERT_TRUE(req.add_key("second"));
    req.flags = static_cast<std::uint32_t>(rng.below(1000));
    req.exptime = static_cast<std::uint32_t>(rng.below(1000));
    req.delta = rng.below(1000);
    req.cas_unique = rng.below(100000);
    const auto value = rng.alnum(rng.between(0, 64));
    req.data.assign(reinterpret_cast<const std::byte*>(value.data()),
                    reinterpret_cast<const std::byte*>(value.data()) + value.size());

    RequestParser parser;
    parser.feed(encode_request(req));
    auto r = parser.next();
    ASSERT_TRUE(r.ok() && r->has_value()) << static_cast<int>(cmd);
    EXPECT_EQ((*r)->command, cmd);
  }
}

// ---------------------------------------------------------- responses ----

TEST(Response, SimpleRepliesRoundTrip) {
  using Type = Response::Type;
  for (auto type : {Type::stored, Type::not_stored, Type::exists, Type::not_found,
                    Type::deleted, Type::touched, Type::ok, Type::error}) {
    Response resp;
    resp.type = type;
    ResponseParser parser;
    parser.feed(encode_response(resp, false));
    auto r = parser.next(ResponseParser::Expect::simple);
    ASSERT_TRUE(r.ok() && r->has_value()) << static_cast<int>(type);
    EXPECT_EQ((*r)->type, type);
  }
}

TEST(Response, ValuesBlockRoundTrip) {
  Response resp;
  resp.type = Response::Type::values;
  for (int i = 0; i < 3; ++i) {
    Value v;
    v.key = "key" + std::to_string(i);
    v.flags = static_cast<std::uint32_t>(i * 10);
    v.cas = static_cast<std::uint64_t>(i * 100);
    const std::string data = "value-" + std::to_string(i);
    v.data.assign(reinterpret_cast<const std::byte*>(data.data()),
                  reinterpret_cast<const std::byte*>(data.data()) + data.size());
    resp.values.push_back(std::move(v));
  }

  ResponseParser parser;
  parser.feed(encode_response(resp, true));
  auto r = parser.next(ResponseParser::Expect::values);
  ASSERT_TRUE(r.ok() && r->has_value());
  ASSERT_EQ((*r)->values.size(), 3u);
  EXPECT_EQ((*r)->values[1].key, "key1");
  EXPECT_EQ((*r)->values[1].flags, 10u);
  EXPECT_EQ((*r)->values[1].cas, 100u);
  EXPECT_EQ(str((*r)->values[2].data), "value-2");
}

TEST(Response, EmptyValuesIsAllMisses) {
  Response resp;
  resp.type = Response::Type::values;
  ResponseParser parser;
  parser.feed(encode_response(resp, false));
  auto r = parser.next(ResponseParser::Expect::values);
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_TRUE((*r)->values.empty());
}

TEST(Response, NumberReply) {
  Response resp;
  resp.type = Response::Type::number;
  resp.number = 1234567;
  ResponseParser parser;
  parser.feed(encode_response(resp, false));
  auto r = parser.next(ResponseParser::Expect::number);
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->number, 1234567u);
}

TEST(Response, ErrorsCarryMessages) {
  Response resp;
  resp.type = Response::Type::client_error;
  resp.message = "bad data chunk";
  ResponseParser parser;
  parser.feed(encode_response(resp, false));
  auto r = parser.next(ResponseParser::Expect::simple);
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->type, Response::Type::client_error);
  EXPECT_EQ((*r)->message, "bad data chunk");
}

TEST(Response, PartialValuesWaitForMoreBytes) {
  Response resp;
  resp.type = Response::Type::values;
  Value v;
  v.key = "k";
  const std::string data(100, 'd');
  v.data.assign(reinterpret_cast<const std::byte*>(data.data()),
                reinterpret_cast<const std::byte*>(data.data()) + data.size());
  resp.values.push_back(std::move(v));
  const auto wire = encode_response(resp, false);

  ResponseParser parser;
  parser.feed(std::span<const std::byte>(wire.data(), wire.size() / 2));
  auto r = parser.next(ResponseParser::Expect::values);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
  parser.feed(std::span<const std::byte>(wire.data() + wire.size() / 2,
                                         wire.size() - wire.size() / 2));
  r = parser.next(ResponseParser::Expect::values);
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->values.size(), 1u);
}

// Property: any sequence of valid encoded requests, fed in random chunk
// sizes, parses back to the same sequence.
TEST(Property, RandomChunkingNeverCorruptsStream) {
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<Request> sent;
    std::vector<std::byte> wire;
    const int count = static_cast<int>(rng.between(1, 20));
    for (int i = 0; i < count; ++i) {
      Request req;
      if (rng.chance(0.5)) {
        req.command = Command::set;
        req.set_key(rng.alnum(rng.between(1, 30)));
        const auto value = rng.alnum(rng.between(0, 500));
        req.data.assign(reinterpret_cast<const std::byte*>(value.data()),
                        reinterpret_cast<const std::byte*>(value.data()) + value.size());
      } else {
        req.command = Command::get;
        req.set_key(rng.alnum(rng.between(1, 30)));
      }
      const auto encoded = encode_request(req);
      wire.insert(wire.end(), encoded.begin(), encoded.end());
      sent.push_back(std::move(req));
    }

    RequestParser parser;
    std::vector<Request> got;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t n = std::min<std::size_t>(rng.between(1, 64), wire.size() - offset);
      parser.feed(std::span<const std::byte>(wire.data() + offset, n));
      offset += n;
      while (true) {
        auto r = parser.next();
        ASSERT_TRUE(r.ok());
        if (!r->has_value()) break;
        got.push_back(std::move(**r));
      }
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].command, sent[i].command);
      EXPECT_EQ(keys_of(got[i]), keys_of(sent[i]));
      EXPECT_EQ(got[i].data, sent[i].data);
    }
  }
}

// ------------------------------------------- hot-path regression tests ----

TEST(RequestParse, KeySurvivesLaterFeedsAndCompaction) {
  // A parsed Request owns its key bytes: mutating the parser's buffer
  // afterwards (more feeds, compaction, further requests) must not change
  // what key()/key_at() return.
  RequestParser parser;
  parser.feed(bytes("get aliased-key another\r\n"));
  auto r = parser.next();
  ASSERT_TRUE(r.ok() && r->has_value());
  Request req = std::move(**r);
  // Push enough traffic through the parser to force reallocation and
  // front-compaction of its internal buffer.
  const std::string filler = "set filler 0 0 40000\r\n" + std::string(40000, 'z') + "\r\n";
  for (int i = 0; i < 4; ++i) {
    parser.feed(bytes(filler));
    auto f = parser.next();
    ASSERT_TRUE(f.ok() && f->has_value());
  }
  EXPECT_EQ(req.key(), "aliased-key");
  ASSERT_EQ(req.key_count(), 2u);
  EXPECT_EQ(req.key_at(1), "another");
  // Copies and moves keep the keys intact too.
  Request copy = req;
  Request moved = std::move(req);
  EXPECT_EQ(copy.key_at(1), "another");
  EXPECT_EQ(moved.key(), "aliased-key");
}

TEST(RequestParse, OversizedKeyIsRejectedBeforeCopy) {
  const std::string big(251, 'k');
  for (const std::string& wire : {"get " + big + "\r\n", "set " + big + " 0 0 1\r\nx\r\n",
                                  "delete " + big + "\r\n"}) {
    RequestParser parser;
    parser.feed(bytes(wire));
    auto r = parser.next();
    EXPECT_FALSE(r.ok()) << wire.substr(0, 20);
  }
  // 250 bytes is exactly legal.
  const std::string legal(250, 'k');
  const Request req = parse_one("get " + legal + "\r\n");
  EXPECT_EQ(req.key(), legal);
}

TEST(RequestParse, TokenFloodIsRejected) {
  // More tokens than the tokenizer's fixed cap: protocol_error, not an
  // unbounded allocation.
  std::string wire = "get";
  for (int i = 0; i < 200; ++i) wire += " k" + std::to_string(i);
  wire += "\r\n";
  RequestParser parser;
  parser.feed(bytes(wire));
  auto r = parser.next();
  EXPECT_FALSE(r.ok());
}

TEST(RequestParse, ManyKeysSpillButParse) {
  // More keys than the inline arena holds: they spill to the heap
  // (mc.alloc.key_spills) but parse and copy correctly.
  std::string wire = "get";
  std::vector<std::string> expect;
  for (int i = 0; i < 40; ++i) {
    expect.push_back("key-number-" + std::to_string(i));
    wire += " " + expect.back();
  }
  wire += "\r\n";
  const Request req = parse_one(wire);
  EXPECT_EQ(keys_of(req), expect);
  Request copy = req;  // spilled keys survive copies as well
  EXPECT_EQ(keys_of(copy), expect);
}

}  // namespace
}  // namespace rmc::mc::proto
