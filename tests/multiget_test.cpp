// True server-side multiget, end to end: one request AM carries the whole
// key block, the server answers in chunked scatter-gather replies, and the
// client scatters records back into positional slots. Covers partial
// hit/miss ordering, maximum-length keys at width 256 (chunked
// sub-requests AND multi-chunk replies), oversize values riding the
// rendezvous path, the per-server grouping of multi-server pools, the
// socket fallback, and multiget under fabric packet loss (RC retransmits
// must never tear or duplicate a value).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "memcached/client.hpp"
#include "memcached/server.hpp"
#include "obs/metrics.hpp"
#include "simnet/faults.hpp"
#include "simnet/netparams.hpp"

namespace rmc::mc {
namespace {

using sim::Scheduler;
using sim::Task;

std::span<const std::byte> val(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string value_for(std::size_t i, std::size_t len) {
  // Distinct, position-dependent bytes so a torn / mis-scattered value
  // cannot masquerade as a correct one.
  std::string v;
  v.reserve(len);
  for (std::size_t b = 0; b < len; ++b) {
    v.push_back(static_cast<char>('a' + (i * 31 + b * 7) % 26));
  }
  return v;
}

bool slot_matches(const MgetSlot& slot, const std::string& expect) {
  if (!slot.hit || slot.value_len != expect.size() || slot.value.size() != expect.size()) {
    return false;
  }
  return std::memcmp(slot.value.data(), expect.data(), expect.size()) == 0;
}

/// One client / N UCR servers over a QDR fabric.
struct World {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host client_host{sched, 100, "web", 8};
  verbs::Hca client_hca{sched, fabric, client_host};
  ucr::Runtime client_ucr{client_hca};
  Client client;

  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<verbs::Hca>> hcas;
  std::vector<std::unique_ptr<ucr::Runtime>> runtimes;
  std::vector<std::unique_ptr<Server>> servers;

  explicit World(int n_servers = 1, ClientBehavior behavior = {})
      : client(sched, client_host, behavior) {
    for (int i = 0; i < n_servers; ++i) {
      hosts.push_back(std::make_unique<sim::Host>(sched, i, "mc", 8));
      servers.push_back(std::make_unique<Server>(sched, *hosts.back(), ServerConfig{}));
      hcas.push_back(std::make_unique<verbs::Hca>(sched, fabric, *hosts.back()));
      runtimes.push_back(std::make_unique<ucr::Runtime>(*hcas.back()));
      servers.back()->attach_ucr_frontend(*runtimes.back());
      client.add_server_ucr(client_ucr, runtimes.back()->addr(),
                            servers.back()->config().port);
    }
  }
};

TEST(Multiget, PartialHitMissOrderingIsPositional) {
  World w;
  bool done = false;
  w.sched.spawn([](World& world, bool& fin) -> Task<> {
    Client& cli = world.client;
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    std::vector<std::string> keys;
    std::vector<std::string> values;
    for (int i = 0; i < 9; ++i) {
      keys.push_back("mg:key:" + std::to_string(i));
      values.push_back(value_for(i, 40 + i));
      if (i % 2 == 0) {  // only even keys exist
        auto st = co_await cli.set(keys.back(), val(values.back()),
                                   /*flags=*/static_cast<std::uint32_t>(100 + i));
        if (!st.ok()) { ADD_FAILURE() << "set " << i; co_return; }
      }
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<MgetSlot> slots(keys.size());
    auto st = co_await cli.mget_into(views, slots);
    if (!st.ok()) { ADD_FAILURE() << "mget_into"; co_return; }
    for (int i = 0; i < 9; ++i) {
      if (i % 2 == 0) {
        EXPECT_TRUE(slot_matches(slots[i], values[i])) << "slot " << i;
        EXPECT_EQ(slots[i].flags, static_cast<std::uint32_t>(100 + i)) << "slot " << i;
        EXPECT_NE(slots[i].cas, 0u) << "slot " << i;
      } else {
        EXPECT_FALSE(slots[i].hit) << "slot " << i;
      }
    }
    // The vector mget API rides the same batched path.
    auto r = co_await cli.mget(keys);
    if (!r.ok()) { ADD_FAILURE() << "mget"; co_return; }
    for (int i = 0; i < 9; ++i) {
      if (i % 2 == 0) {
        if (!(*r)[i].has_value()) { ADD_FAILURE() << "miss at " << i; continue; }
        EXPECT_EQ((*r)[i]->key, keys[i]);
        EXPECT_EQ((*r)[i]->data.size(), values[i].size());
        EXPECT_EQ(std::memcmp((*r)[i]->data.data(), values[i].data(), values[i].size()), 0)
            << "value mismatch at " << i;
      } else {
        EXPECT_FALSE((*r)[i].has_value()) << "ghost hit at " << i;
      }
    }
    fin = true;
  }(w, done));
  w.sched.run();
  EXPECT_TRUE(done);
  EXPECT_GT(obs::registry().timer("mc.mget.batch_size").hist().count(), 0u);
}

TEST(Multiget, Width256WithMaxLengthKeysChunksRequestsAndReplies) {
  World w;
  bool done = false;
  w.sched.spawn([](World& world, bool& fin) -> Task<> {
    Client& cli = world.client;
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    // 250 B keys: 256 * (2 + 250) B of key block >> one 8 KiB frame, so the
    // client must split into many sub-requests; 512 B values make each
    // sub-request's reply span multiple chunks too.
    constexpr std::size_t kWidth = 256;
    std::vector<std::string> keys;
    std::vector<std::string> values;
    for (std::size_t i = 0; i < kWidth; ++i) {
      std::string key = "mg:long:" + std::to_string(i);
      key.resize(250, 'k');
      keys.push_back(std::move(key));
      values.push_back(value_for(i, 512));
      auto st = co_await cli.set(keys.back(), val(values.back()));
      if (!st.ok()) { ADD_FAILURE() << "set " << i; co_return; }
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<MgetSlot> slots(kWidth);
    auto st = co_await cli.mget_into(views, slots);
    if (!st.ok()) { ADD_FAILURE() << "mget_into"; co_return; }
    for (std::size_t i = 0; i < kWidth; ++i) {
      if (!slot_matches(slots[i], values[i])) ADD_FAILURE() << "slot " << i;
    }
    fin = true;
  }(w, done));
  w.sched.run();
  EXPECT_TRUE(done);
}

TEST(Multiget, OversizeValueRidesTheRendezvousPath) {
  World w;
  bool done = false;
  w.sched.spawn([](World& world, bool& fin) -> Task<> {
    Client& cli = world.client;
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    // One value far beyond the eager frame sandwiched between small ones:
    // its chunk must go rendezvous (header now, bytes RDMA-read) while its
    // neighbors stay eager — and order must still be positional.
    const std::string small_a = value_for(1, 64);
    const std::string big = value_for(2, 20 * 1024);
    const std::string small_b = value_for(3, 64);
    if (!(co_await cli.set("mg:a", val(small_a))).ok()) { ADD_FAILURE(); co_return; }
    if (!(co_await cli.set("mg:big", val(big))).ok()) { ADD_FAILURE(); co_return; }
    if (!(co_await cli.set("mg:b", val(small_b))).ok()) { ADD_FAILURE(); co_return; }
    std::vector<std::string_view> views{"mg:a", "mg:big", "mg:b", "mg:absent"};
    std::vector<MgetSlot> slots(views.size());
    auto st = co_await cli.mget_into(views, slots);
    if (!st.ok()) { ADD_FAILURE() << "mget_into"; co_return; }
    EXPECT_TRUE(slot_matches(slots[0], small_a));
    EXPECT_TRUE(slot_matches(slots[1], big));
    EXPECT_TRUE(slot_matches(slots[2], small_b));
    EXPECT_FALSE(slots[3].hit);
    fin = true;
  }(w, done));
  w.sched.run();
  EXPECT_TRUE(done);
}

TEST(Multiget, CallerBuffersAndMultiServerGrouping) {
  World w{3};
  bool done = false;
  w.sched.spawn([](World& world, bool& fin) -> Task<> {
    Client& cli = world.client;
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    constexpr std::size_t kWidth = 48;
    std::vector<std::string> keys;
    std::vector<std::string> values;
    for (std::size_t i = 0; i < kWidth; ++i) {
      keys.push_back("mg:pool:" + std::to_string(i));
      values.push_back(value_for(i, 100));
      auto st = co_await cli.set(keys.back(), val(values.back()));
      if (!st.ok()) { ADD_FAILURE() << "set " << i; co_return; }
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<std::array<std::byte, 128>> buffers(kWidth);
    std::vector<MgetSlot> slots(kWidth);
    for (std::size_t i = 0; i < kWidth; ++i) slots[i].dest = buffers[i];
    auto st = co_await cli.mget_into(views, slots);
    if (!st.ok()) { ADD_FAILURE() << "mget_into"; co_return; }
    for (std::size_t i = 0; i < kWidth; ++i) {
      if (!slot_matches(slots[i], values[i])) ADD_FAILURE() << "slot " << i;
      // dest was big enough: the bytes must have landed in the caller's
      // buffer, not transport storage.
      EXPECT_EQ(static_cast<const void*>(slots[i].value.data()),
                static_cast<const void*>(buffers[i].data()))
          << "slot " << i;
    }
    fin = true;
  }(w, done));
  w.sched.run();
  EXPECT_TRUE(done);
}

TEST(Multiget, SocketFallbackAnswersThroughPerKeyGets) {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host server_host{sched, 0, "mc", 8};
  sim::Host client_host{sched, 1, "web", 8};
  sock::NetStack server_sock{sched, fabric, server_host, sock::sdp_ib()};
  sock::NetStack client_sock{sched, fabric, client_host, sock::sdp_ib()};
  Server server{sched, server_host, {}};
  server.attach_socket_frontend(server_sock);
  Client client{sched, client_host};
  client.add_server_socket(client_sock, server_sock.addr(), server.config().port);

  bool done = false;
  sched.spawn([](Client& cli, bool& fin) -> Task<> {
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    const std::string v0 = value_for(0, 32);
    if (!(co_await cli.set("sk:0", val(v0))).ok()) { ADD_FAILURE(); co_return; }
    std::vector<std::string_view> views{"sk:0", "sk:missing"};
    std::array<std::byte, 64> buf;
    std::vector<MgetSlot> slots(2);
    slots[0].dest = buf;
    auto st = co_await cli.mget_into(views, slots);
    if (!st.ok()) { ADD_FAILURE() << "mget_into"; co_return; }
    EXPECT_TRUE(slot_matches(slots[0], v0));
    EXPECT_FALSE(slots[1].hit);
    fin = true;
  }(client, done));
  sched.run();
  EXPECT_TRUE(done);
}

TEST(Multiget, SurvivesLinkLossWithoutTearingValues) {
  World w;
  bool done = false;
  // 5% loss in both directions: RC retransmission recovers every chunk;
  // PSN dedup means a retried chunk must never scatter twice or tear.
  w.fabric.faults().set_link_loss(w.client_ucr.addr(), w.runtimes[0]->addr(), 50'000);
  w.fabric.faults().set_link_loss(w.runtimes[0]->addr(), w.client_ucr.addr(), 50'000);
  w.sched.spawn([](World& world, bool& fin) -> Task<> {
    Client& cli = world.client;
    if (!(co_await cli.connect_all()).ok()) { ADD_FAILURE() << "connect"; co_return; }
    constexpr std::size_t kWidth = 64;
    std::vector<std::string> keys;
    std::vector<std::string> values;
    for (std::size_t i = 0; i < kWidth; ++i) {
      keys.push_back("mg:loss:" + std::to_string(i));
      values.push_back(value_for(i, 128));
      auto st = co_await cli.set(keys.back(), val(values.back()));
      if (!st.ok()) { ADD_FAILURE() << "set " << i; co_return; }
    }
    std::vector<std::string_view> views(keys.begin(), keys.end());
    std::vector<MgetSlot> slots(kWidth);
    for (int round = 0; round < 20; ++round) {
      auto st = co_await cli.mget_into(views, slots);
      if (!st.ok()) { ADD_FAILURE() << "mget_into round " << round; co_return; }
      for (std::size_t i = 0; i < kWidth; ++i) {
        if (!slot_matches(slots[i], values[i])) {
          ADD_FAILURE() << "torn/duplicated value, round " << round << " slot " << i;
          co_return;
        }
      }
    }
    fin = true;
  }(w, done));
  w.sched.run();
  EXPECT_TRUE(done);
  EXPECT_GT(obs::registry().counter("verbs.rc.retransmits").value(), 0u)
      << "loss plan injected no loss — the test proved nothing";
}

}  // namespace
}  // namespace rmc::mc
