// Fuzz harness for the memcached request parsers (text + binary). The
// server feeds both parsers raw socket bytes, so arbitrary input must
// never crash, loop, or read out of bounds. Beyond that, parsing must be
// chunking-invariant: feeding the same bytes all at once or split into
// two arbitrary chunks yields the same accept/reject sequence — the
// incremental buffering the connection loops depend on.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "memcached/binary.hpp"
#include "memcached/protocol.hpp"

#define FUZZ_REQUIRE(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ FAILURE: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

namespace {

/// Parse everything buffered; returns (requests accepted, hit an error).
template <typename Parser>
std::pair<int, bool> drain(Parser& parser) {
  int accepted = 0;
  for (;;) {
    auto r = parser.next();
    if (!r.ok()) return {accepted, true};
    if (!r->has_value()) return {accepted, false};
    ++accepted;
    // Termination: the parser may never accept more requests than bytes.
    FUZZ_REQUIRE(accepted <= 1 << 20);
  }
}

template <typename Parser>
void check_chunking_invariance(std::span<const std::byte> bytes, std::size_t split) {
  Parser whole;
  whole.feed(bytes);
  const auto one_shot = drain(whole);

  Parser chunked;
  split = bytes.empty() ? 0 : split % (bytes.size() + 1);
  chunked.feed(bytes.first(split));
  auto partial = drain(chunked);
  if (!partial.second) {
    chunked.feed(bytes.subspan(split));
    const auto rest = drain(chunked);
    FUZZ_REQUIRE(partial.first + rest.first == one_shot.first);
    FUZZ_REQUIRE(rest.second == one_shot.second);
  } else {
    // An error surfaced from the prefix alone must also surface whole.
    FUZZ_REQUIRE(one_shot.second);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 1 || size > (64 << 10)) return 0;
  const std::size_t split = data[0];
  const std::span<const std::byte> bytes{
      reinterpret_cast<const std::byte*>(data + 1), size - 1};

  check_chunking_invariance<rmc::mc::proto::RequestParser>(bytes, split);
  check_chunking_invariance<rmc::mc::bproto::RequestParser>(bytes, split);
  return 0;
}

#include "standalone_driver.hpp"
