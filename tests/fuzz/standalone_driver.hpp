// Standalone fallback driver for the fuzz harnesses.
//
// The CI toolchain is GCC, which has no libFuzzer. When a harness is built
// without -fsanitize=fuzzer (no RMC_HAVE_LIBFUZZER), this driver provides
// main(): it replays every corpus file it is given, then runs a bounded,
// fully deterministic mutation loop derived from those seeds (fixed
// xorshift state — two runs of the smoke are byte-identical). Under Clang
// the same LLVMFuzzerTestOneInput links against real libFuzzer and this
// file is inert.
//
// Usage: harness [--rounds N] [corpus file or directory]...
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace rmc::fuzz {

inline std::vector<std::uint8_t> read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

inline int standalone_main(int argc, char** argv) {
  std::uint64_t rounds = 256;
  std::vector<std::vector<std::uint8_t>> seeds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::strtoull(argv[++i], nullptr, 10);
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& e : std::filesystem::directory_iterator(arg)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& f : files) seeds.push_back(read_file(f));
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      seeds.push_back(read_file(arg));
    } else {
      std::fprintf(stderr, "fuzz: no such corpus input: %s\n", arg.c_str());
      return 2;
    }
  }
  if (seeds.empty()) {
    // Built-in minimal seeds so the harness smokes even with no corpus.
    seeds.push_back({});
    seeds.push_back({0x00});
    seeds.push_back({0xff, 0xff, 0xff, 0xff});
  }

  for (const auto& s : seeds) LLVMFuzzerTestOneInput(s.data(), s.size());

  // Deterministic mutation rounds: xorshift64 from a fixed seed, so a
  // smoke failure reproduces with the same binary and arguments.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::vector<std::uint8_t> input = seeds[next() % seeds.size()];
    const std::uint64_t edits = 1 + next() % 8;
    for (std::uint64_t e = 0; e < edits; ++e) {
      switch (next() % 4) {
        case 0:  // flip a byte
          if (!input.empty()) input[next() % input.size()] ^= static_cast<std::uint8_t>(next());
          break;
        case 1:  // append a byte
          input.push_back(static_cast<std::uint8_t>(next()));
          break;
        case 2:  // truncate
          if (!input.empty()) input.resize(next() % input.size());
          break;
        case 3:  // splice a chunk of another seed
          if (const auto& other = seeds[next() % seeds.size()]; !other.empty()) {
            const std::size_t n = next() % other.size();
            input.insert(input.end(), other.begin(), other.begin() + n);
          }
          break;
      }
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("fuzz: %zu seed(s), %llu mutation round(s), no failures\n",
              seeds.size(), static_cast<unsigned long long>(rounds));
  return 0;
}

}  // namespace rmc::fuzz

#ifndef RMC_HAVE_LIBFUZZER
int main(int argc, char** argv) { return rmc::fuzz::standalone_main(argc, argv); }
#endif
