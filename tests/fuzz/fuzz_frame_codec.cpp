// Fuzz harness for the RFP frame codec (rfp/layout.hpp) — the seqlock
// framing both ring directions depend on. Properties checked on every
// input, beyond "does not crash":
//
//  1. read_frame on arbitrary slot bytes never returns `ready` with a body
//     that escapes the slot or exceeds the slot's body capacity.
//  2. seal_frame → read_frame roundtrips byte-exactly for a fuzz-chosen
//     body and epoch.
//  3. Corrupting one byte inside the framed region of a sealed slot never
//     yields a `ready` body different from the sealed one (the checksum /
//     version-pair argument: torn or tampered frames are detectable).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "rfp/layout.hpp"

// Unconditional check: the harness runs in Release trees where NDEBUG
// would compile assert() out.
#define FUZZ_REQUIRE(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "FUZZ FAILURE: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

namespace {

constexpr std::size_t kMinSlot =
    rmc::rfp::FrameHeader::kSize + rmc::rfp::FrameHeader::kTailSize;

void check_read(std::span<const std::byte> slot, std::uint32_t seq) {
  std::span<const std::byte> body;
  if (rmc::rfp::read_frame(slot, seq, body) == rmc::rfp::FrameState::ready) {
    FUZZ_REQUIRE(body.data() >= slot.data());
    FUZZ_REQUIRE(body.data() + body.size() <= slot.data() + slot.size());
    FUZZ_REQUIRE(body.size() <=
                 rmc::rfp::body_capacity(static_cast<std::uint32_t>(slot.size())));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 5) return 0;
  std::uint32_t seq = 0;
  std::memcpy(&seq, data, sizeof(seq));
  data += sizeof(seq);
  size -= sizeof(seq);

  // Property 1: arbitrary bytes as a slot.
  std::vector<std::byte> slot(std::max(size, kMinSlot), std::byte{0});
  std::memcpy(slot.data(), data, size);
  check_read(slot, seq);
  check_read(slot, seq + 1);
  check_read(slot, 0);

  // Property 2: seal a fuzz-chosen body into a fresh slot and read it back.
  const auto slot_size =
      static_cast<std::uint32_t>(std::min<std::size_t>(slot.size() + 1, 1 << 20));
  std::vector<std::byte> sealed(slot_size, std::byte{0});
  const std::uint32_t body_len = std::min(
      static_cast<std::uint32_t>(size), rmc::rfp::body_capacity(slot_size));
  auto body_dst = rmc::rfp::frame_body(sealed);
  std::memcpy(body_dst.data(), data, body_len);
  rmc::rfp::seal_frame(sealed, seq, body_len);

  std::span<const std::byte> body;
  const auto st = rmc::rfp::read_frame(sealed, seq, body);
  FUZZ_REQUIRE(st == rmc::rfp::FrameState::ready);
  FUZZ_REQUIRE(body.size() == body_len);
  FUZZ_REQUIRE(std::memcmp(body.data(), data, body_len) == 0);

  // Property 3: one-byte corruption inside the framed region must never
  // verify as a different body.
  const std::size_t framed = rmc::rfp::framed_size(body_len);
  std::vector<std::byte> tampered = sealed;
  const std::size_t victim = data[size - 1] % framed;
  tampered[victim] ^= std::byte{0x01};
  std::span<const std::byte> tampered_body;
  if (rmc::rfp::read_frame(tampered, seq, tampered_body) ==
      rmc::rfp::FrameState::ready) {
    FUZZ_REQUIRE(tampered_body.size() == body_len);
    FUZZ_REQUIRE(std::memcmp(tampered_body.data(), data, body_len) == 0);
  }
  return 0;
}

#include "standalone_driver.hpp"
