// Tests for src/obs: registry semantics (find-or-create identity, reset
// keeps pointers valid), JSON dumps validated by a minimal in-test JSON
// parser, tracer span ordering and Chrome trace_event structure, the
// log_prefix sim-time hook, and an end-to-end TestBed run asserting spans
// from >= 4 layers plus the per-stage server timers summing to no more
// than the measured end-to-end latency.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "common/log.hpp"
#include "core/testbed.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "simnet/scheduler.hpp"

namespace rmc {
namespace {

// ------------------------------------------------ minimal JSON parser ----
// Just enough of RFC 8259 to validate the dumps: objects, arrays, strings
// with escapes, numbers, true/false/null. Returns true iff `text` is a
// single well-formed JSON value with nothing trailing.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (!strchr("\"\\/bfnrt", e)) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- registry ----

TEST(Registry, FindOrCreateReturnsSameObject) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.a");
  obs::Counter& b = reg.counter("x.a");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(&reg.counter("x.b"), &a);
  // Counters, gauges and timers live in separate namespaces.
  reg.gauge("x.a").set(7);
  EXPECT_EQ(reg.counter("x.a").value(), 3u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, GaugeTracksHighWaterMark) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("depth");
  g.add(5);
  g.add(5);
  g.sub(8);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.hwm(), 10);
  g.set(4);
  EXPECT_EQ(g.hwm(), 10);  // set below hwm keeps it
  g.set(11);
  EXPECT_EQ(g.hwm(), 11);
}

TEST(Registry, TimerRecordsIntoHistogram) {
  obs::Registry reg;
  obs::Timer& t = reg.timer("stage");
  t.record(100);
  t.record(300);
  EXPECT_EQ(t.hist().count(), 2u);
  EXPECT_EQ(t.hist().min(), 100u);
  EXPECT_DOUBLE_EQ(t.hist().mean(), 200.0);
}

// The contract the instrumented layers rely on: reset() zeroes values but
// keeps every entry alive, so cached pointers stay valid.
TEST(Registry, ResetKeepsEntriesAndPointersValid) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  obs::Timer& t = reg.timer("t");
  c.inc(9);
  g.set(9);
  t.record(9);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);  // entries survive
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.hwm(), 0);
  EXPECT_EQ(t.hist().count(), 0u);
  c.inc();  // cached pointer still writes into the registry
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(Registry, ToJsonIsWellFormed) {
  obs::Registry reg;
  reg.counter("a.b.c").inc(42);
  reg.gauge("g\"quote").set(-5);  // name needing escaping
  reg.timer("t1").record(1000);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"a.b.c\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("counters"), std::string::npos);
  EXPECT_NE(json.find("gauges"), std::string::npos);
  EXPECT_NE(json.find("timers"), std::string::npos);
}

TEST(Registry, ForEachStatIsSortedWithinKinds) {
  obs::Registry reg;
  reg.counter("z.late").inc();
  reg.counter("a.early").inc(2);
  std::vector<std::string> names;
  reg.for_each_stat([&](const std::string& name, std::string) { names.push_back(name); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.early");
  EXPECT_EQ(names[1], "z.late");
}

// ------------------------------------------------------------- tracer ----

TEST(Tracer, DisabledByDefaultAndClearDropsEvents) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.enable();
  t.complete(10, 5, "track", "span", "cat");
  t.instant(20, "track", "point", "cat");
  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_EQ(t.track_count(), 1u);
  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.track_count(), 0u);
  EXPECT_TRUE(t.enabled());  // clear keeps the flag
}

TEST(Tracer, ChromeJsonIsWellFormedAndSorted) {
  obs::Tracer t;
  t.enable();
  // Record deliberately out of timestamp order across two tracks.
  t.complete(3000, 500, "mc:server/w0", "text", "mc");
  t.instant(1000, "sock:server", "accept", "sock");
  t.complete(2000, 250, "wire:a->b", "xfer 64B", "simnet");
  const std::string json = t.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Thread-name metadata for every track.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("mc:server/w0"), std::string::npos);
  // Events sorted by timestamp: accept (t=1us) before xfer before text.
  const auto p_accept = json.find("\"accept\"");
  const auto p_xfer = json.find("xfer 64B");
  const auto p_text = json.find("\"text\"");
  ASSERT_NE(p_accept, std::string::npos);
  ASSERT_NE(p_xfer, std::string::npos);
  ASSERT_NE(p_text, std::string::npos);
  EXPECT_LT(p_accept, p_xfer);
  EXPECT_LT(p_xfer, p_text);
  // Complete events carry a duration; instants carry scope "t".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(Tracer, TimestampsAreFractionalMicroseconds) {
  obs::Tracer t;
  t.enable();
  t.complete(1500, 250, "trk", "ns-precision", "cat");  // 1.5 us, 0.25 us
  const std::string json = t.to_chrome_json();
  EXPECT_NE(json.find("\"ts\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":0.25"), std::string::npos) << json;
}

TEST(Tracer, RecordsAreDroppedWhenDisabled) {
  obs::Tracer t;
  t.complete(1, 1, "trk", "x", "c");
  t.instant(1, "trk", "y", "c");
  EXPECT_EQ(t.event_count(), 0u);
}

// ------------------------------------------------------- log sim-time ----

TEST(LogPrefix, DefaultHasNoTimestamp) {
  set_log_clock(nullptr, nullptr);
  EXPECT_EQ(log_prefix(LogLevel::warn), "[WARN ] ");
  EXPECT_EQ(log_prefix(LogLevel::error), "[ERROR] ");
}

TEST(LogPrefix, AttachedSchedulerAddsSimTime) {
  sim::Scheduler sched;
  sim::attach_log_clock(&sched);
  EXPECT_EQ(log_prefix(LogLevel::info), "[INFO ] [t=0ns] ");
  sched.spawn([](sim::Scheduler& s) -> sim::Task<> {
    co_await s.delay(1500);
  }(sched));
  sched.run();
  EXPECT_EQ(log_prefix(LogLevel::debug), "[DEBUG] [t=1500ns] ");
  sim::attach_log_clock(nullptr);
  EXPECT_EQ(log_prefix(LogLevel::info), "[INFO ] ");
}

// ----------------------------------------------------------- profiler ----

// Deterministic fake wall clock: every read advances 10 ns, so each
// push/pop/enable/disable lands on a known tick and self-time arithmetic
// is checkable exactly.
std::uint64_t fake_tick(void* ctx) {
  auto* t = static_cast<std::uint64_t*>(ctx);
  *t += 10;
  return *t;
}

TEST(Profiler, NestedScopesChargeSelfTimeOnly) {
  obs::Profiler prof;
  std::uint64_t wall = 0;
  prof.set_wall_clock(&fake_tick, &wall);
  const std::uint16_t outer = prof.register_scope("outer.scope.a", obs::ScopeKind::engine);
  const std::uint16_t inner = prof.register_scope("outer.scope.b", obs::ScopeKind::payload);
  prof.enable();                    // wall = 10
  ASSERT_TRUE(prof.push(outer));    // 20: opens outer
  ASSERT_TRUE(prof.push(inner));    // 30: charges 10 to outer
  prof.pop();                       // 40: charges 10 to inner
  prof.pop();                       // 50: charges 10 to outer
  prof.disable();                   // 60: window = 60 - 10
  EXPECT_EQ(prof.sample_count(), 2u);
  EXPECT_EQ(prof.node_count(), 2u);
  EXPECT_EQ(prof.attributed_wall_ns(), 30u);  // parent self excludes child
  EXPECT_EQ(prof.window_wall_ns(), 50u);
  const std::string json = prof.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"rmc-prof/1\""), std::string::npos);
  EXPECT_NE(json.find("\"stack\":\"outer.scope.a;outer.scope.b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine\":{\"wall_ns\":20"), std::string::npos) << json;
  EXPECT_NE(json.find("\"payload\":{\"wall_ns\":10"), std::string::npos) << json;
  const std::string folded = prof.to_collapsed();
  EXPECT_NE(folded.find("outer.scope.a 20\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("outer.scope.a;outer.scope.b 10\n"), std::string::npos) << folded;
}

TEST(Profiler, ReentrantScopeNestsAsDistinctPathNodes) {
  obs::Profiler prof;
  std::uint64_t wall = 0;
  prof.set_wall_clock(&fake_tick, &wall);
  const std::uint16_t s = prof.register_scope("re.entrant.scope", obs::ScopeKind::engine);
  // register_scope is find-or-create: same literal, same id.
  EXPECT_EQ(prof.register_scope("re.entrant.scope", obs::ScopeKind::engine), s);
  prof.enable();
  ASSERT_TRUE(prof.push(s));
  ASSERT_TRUE(prof.push(s));  // re-entry: same scope, deeper trie node
  prof.pop();
  ASSERT_TRUE(prof.push(s));  // second re-entry reuses that node
  prof.pop();
  prof.pop();
  prof.disable();
  EXPECT_EQ(prof.node_count(), 2u);
  EXPECT_EQ(prof.sample_count(), 3u);
  EXPECT_EQ(prof.dropped(), 0u);
  const std::string folded = prof.to_collapsed();
  EXPECT_NE(folded.find("re.entrant.scope;re.entrant.scope "), std::string::npos) << folded;
}

TEST(Profiler, DepthOverflowIsDroppedNotGrown) {
  obs::Profiler prof;
  std::uint64_t wall = 0;
  prof.set_wall_clock(&fake_tick, &wall);
  const std::uint16_t s = prof.register_scope("deep.stack.scope", obs::ScopeKind::engine);
  prof.enable();
  std::size_t pushed = 0;
  for (std::size_t i = 0; i < obs::Profiler::kMaxDepth + 5; ++i) {
    if (prof.push(s)) ++pushed;
  }
  EXPECT_EQ(pushed, obs::Profiler::kMaxDepth);
  EXPECT_EQ(prof.dropped(), 5u);
  for (std::size_t i = 0; i < pushed; ++i) prof.pop();
  // An unregistered id (a failed register_scope returns kNone) stays inert.
  EXPECT_FALSE(prof.push(obs::Profiler::kNone));
  prof.disable();
}

TEST(Profiler, DisabledProfScopeRecordsNothing) {
  obs::Profiler& p = obs::profiler();
  p.disable();
  const std::uint64_t before = p.sample_count();
  { obs::ProfScope scope{0}; }
  EXPECT_EQ(p.sample_count(), before);
}

// The acceptance property behind `--profile`: two identical runs produce
// byte-identical dumps (fake wall clock ticks once per sample, sim stamps
// are deterministic by construction), and the instrumented layers show up.
TEST(Profiler, WorkloadAttributionIsDeterministic) {
  obs::Profiler& p = obs::profiler();
  auto run_once = [&]() -> std::string {
    std::uint64_t wall = 0;
    p.set_wall_clock(&fake_tick, &wall);
    p.reset();
    p.enable();
    core::TestBedConfig config;
    config.cluster = core::ClusterKind::cluster_b;
    config.transport = core::TransportKind::ucr_verbs;
    core::TestBed bed(config);
    core::WorkloadConfig workload;
    workload.pattern = core::OpPattern::pure_get;
    workload.value_size = 64;
    workload.ops_per_client = 50;
    (void)core::run_workload(bed, workload);
    p.disable();
    const std::string json = p.to_json();
    p.set_wall_clock(nullptr, nullptr);
    return json;
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_TRUE(JsonChecker(first).valid());
  EXPECT_EQ(first, second);
  // The drive-loop root, the scheduler dispatch under it, and payload work.
  EXPECT_NE(first.find("prof.mc.workload.run"), std::string::npos) << first.substr(0, 2000);
  EXPECT_NE(first.find("prof.sim.sched.dispatch"), std::string::npos);
  EXPECT_NE(first.find("prof.mc.server.execute"), std::string::npos);
  EXPECT_EQ(first.find("\"samples\":0,"), std::string::npos);  // some samples landed
  p.reset();
}

// ------------------------------------------------------- latency spans ----

// The client decomposes every RPC op into build -> wait -> complete using
// adjacent sim-time stamps, so the stage sums reconstruct the total
// *exactly* (the histograms keep exact running sums; only the final double
// division rounds).
TEST(LatencySpans, StageSumMatchesTotalExactly) {
  obs::registry().reset();
  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_b;
  config.transport = core::TransportKind::ucr_verbs;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::non_interleaved;  // sets then gets
  workload.value_size = 64;
  workload.ops_per_client = 100;
  const auto result = core::run_workload(bed, workload);
  ASSERT_GT(result.all_latency.count(), 0u);

  struct OpSpans {
    const char* build;
    const char* wait;
    const char* complete;
    const char* total;
  };
  const OpSpans ops[] = {
      {"mc.latency.get.build", "mc.latency.get.wait", "mc.latency.get.complete",
       "mc.latency.get.total"},
      {"mc.latency.set.build", "mc.latency.set.wait", "mc.latency.set.complete",
       "mc.latency.set.total"},
  };
  for (const OpSpans& op : ops) {
    const auto& b = obs::registry().timer(op.build).hist();
    const auto& w = obs::registry().timer(op.wait).hist();
    const auto& c = obs::registry().timer(op.complete).hist();
    const auto& t = obs::registry().timer(op.total).hist();
    ASSERT_GT(t.count(), 0u) << op.total;
    EXPECT_EQ(b.count(), t.count()) << op.build;
    EXPECT_EQ(w.count(), t.count()) << op.wait;
    EXPECT_EQ(c.count(), t.count()) << op.complete;
    EXPECT_NEAR(b.mean() + w.mean() + c.mean(), t.mean(), 1e-9 * t.mean() + 1e-9)
        << op.total;
    // The wait stage (wire + server turnaround) dominates a remote op.
    EXPECT_GT(w.mean(), b.mean()) << op.wait;
  }
}

// ------------------------------------- end-to-end: the acceptance path ----

// Run a small UCR workload with the tracer on and check the full-path
// artifact the issue asks for: spans from at least four layers, monotone
// non-negative stamps, and the per-stage server timers (parse/queue/
// execute/format) summing to no more than the measured end-to-end latency.
TEST(ObsEndToEnd, TracedWorkloadCoversFourLayersAndStagesFitLatency) {
  obs::registry().reset();
  obs::tracer().clear();
  obs::tracer().enable();

  core::TestBedConfig config;
  config.cluster = core::ClusterKind::cluster_a;
  config.transport = core::TransportKind::ucr_verbs;
  core::TestBed bed(config);
  core::WorkloadConfig workload;
  workload.pattern = core::OpPattern::pure_get;
  workload.value_size = 4096;
  workload.ops_per_client = 20;
  const auto result = core::run_workload(bed, workload);
  obs::tracer().disable();

  ASSERT_GT(result.all_latency.count(), 0u);
  EXPECT_GT(obs::tracer().event_count(), 0u);

  // (a) valid Chrome JSON with spans from >= 4 of the 5 layers.
  const std::string json = obs::tracer().to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  std::set<std::string> cats;
  for (std::string_view c : {"simnet", "verbs", "ucr", "sock", "mc"}) {
    if (json.find("\"cat\":\"" + std::string(c) + "\"") != std::string::npos)
      cats.insert(std::string(c));
  }
  EXPECT_GE(cats.size(), 4u) << json.substr(0, 2000);

  // (b) per-layer counters registered and moving.
  EXPECT_GT(obs::registry().counter("sim.fabric.packets").value(), 0u);
  EXPECT_GT(obs::registry().counter("verbs.cq.completions").value(), 0u);
  EXPECT_GT(obs::registry().counter("ucr.msgs.received").value(), 0u);
  EXPECT_GT(obs::registry().counter("mc.requests.ucr").value(), 0u);

  // (c) stage decomposition: every stage sampled once per request (the
  // untimed populate Sets pass through the same stages, hence >=), and the
  // mean stage sum cannot exceed the mean end-to-end latency (stages are
  // disjoint sub-intervals of the request's server-side path).
  const auto& parse = obs::registry().timer("mc.server.stage.parse").hist();
  const auto& queue = obs::registry().timer("mc.server.stage.queue").hist();
  const auto& execute = obs::registry().timer("mc.server.stage.execute").hist();
  const auto& format = obs::registry().timer("mc.server.stage.format").hist();
  EXPECT_GE(parse.count(), result.all_latency.count());
  EXPECT_EQ(parse.count(), queue.count());
  EXPECT_EQ(parse.count(), execute.count());
  EXPECT_EQ(parse.count(), format.count());
  const double stage_sum_ns = parse.mean() + queue.mean() + execute.mean() + format.mean();
  EXPECT_GT(stage_sum_ns, 0.0);
  EXPECT_LE(stage_sum_ns, result.all_latency.mean());

  obs::tracer().clear();
}

}  // namespace
}  // namespace rmc
