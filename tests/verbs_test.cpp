// Unit + integration tests for the software verbs layer: MR protection,
// SEND/RECV matching, RDMA READ/WRITE data movement and validation, RC
// completion semantics, SRQ sharing, connection management, error flushes,
// and the OS-bypass property (one-sided ops charge no remote host CPU).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "simnet/netparams.hpp"
#include "verbs/hca.hpp"

namespace rmc::verbs {
namespace {

using namespace rmc::literals;
using sim::Scheduler;
using sim::Task;

/// Two hosts on one IB fabric with one HCA each — the standard fixture.
struct Pair {
  Scheduler sched;
  sim::Fabric fabric{sched, sim::ib_qdr_link()};
  sim::Host host_a{sched, 0, "a", 8};
  sim::Host host_b{sched, 1, "b", 8};
  Hca hca_a{sched, fabric, host_a};
  Hca hca_b{sched, fabric, host_b};

  std::unique_ptr<CompletionQueue> cq_a = hca_a.create_cq();
  std::unique_ptr<CompletionQueue> cq_b = hca_b.create_cq();

  QueuePair* qp_a = nullptr;
  QueuePair* qp_b = nullptr;

  /// Manually wire a QP pair (no CM).
  void wire() {
    qp_a = &hca_a.create_qp(*cq_a, *cq_a);
    qp_b = &hca_b.create_qp(*cq_b, *cq_b);
    qp_a->connect(hca_b.addr(), qp_b->qp_num());
    qp_b->connect(hca_a.addr(), qp_a->qp_num());
  }
};

// ----------------------------------------------------------- memory ----

TEST(Memory, RegisterAssignsDistinctKeys) {
  Pair p;
  std::vector<std::byte> buf_a(128), buf_b(128);
  auto& mr_a = p.hca_a.reg_mr(buf_a);
  auto& mr_b = p.hca_a.reg_mr(buf_b);
  EXPECT_NE(mr_a.lkey(), mr_b.lkey());
  EXPECT_NE(mr_a.rkey(), mr_b.rkey());
  EXPECT_NE(mr_a.lkey(), mr_a.rkey());
  EXPECT_EQ(p.hca_a.pd().region_count(), 2u);
}

TEST(Memory, ContainsChecksBounds) {
  Pair p;
  std::vector<std::byte> buf(100);
  auto& mr = p.hca_a.reg_mr(buf);
  EXPECT_TRUE(mr.contains(mr.addr(), 100));
  EXPECT_TRUE(mr.contains(mr.addr() + 50, 50));
  EXPECT_FALSE(mr.contains(mr.addr() + 50, 51));
  EXPECT_FALSE(mr.contains(mr.addr() - 1, 10));
  // Overflow probe: huge length must not wrap.
  EXPECT_FALSE(mr.contains(mr.addr(), ~std::size_t{0}));
}

TEST(Memory, DeregisterInvalidatesKeys) {
  Pair p;
  std::vector<std::byte> buf(64);
  auto& mr = p.hca_a.reg_mr(buf);
  const auto lkey = mr.lkey();
  p.hca_a.dereg_mr(mr);
  EXPECT_FALSE(p.hca_a.pd().check_local(lkey, std::span<const std::byte>(buf)).ok());
}

TEST(Memory, RegistrationChargesCpu) {
  Pair p;
  const auto before = p.host_a.cpu().busy_ns();
  std::vector<std::byte> big(1_MiB);
  p.hca_a.reg_mr(big);
  EXPECT_GT(p.host_a.cpu().busy_ns(), before);
}

// -------------------------------------------------------- send/recv ----

TEST(SendRecv, DeliversPayloadAndImmediate) {
  Pair p;
  p.wire();
  std::vector<std::byte> src(256), dst(512);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i);
  auto& mr_src = p.hca_a.reg_mr(src);
  auto& mr_dst = p.hca_b.reg_mr(dst);

  ASSERT_TRUE(p.qp_b->post_recv({.wr_id = 7, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 1,
                               .opcode = Opcode::send,
                               .local = src,
                               .lkey = mr_src.lkey(),
                               .imm_data = 0xabcd})
                  .ok());

  bool recv_done = false, send_done = false;
  p.sched.spawn([](CompletionQueue& cq, bool& done, std::vector<std::byte>& dst2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(wc.opcode, Opcode::recv);
    EXPECT_EQ(wc.wr_id, 7u);
    EXPECT_EQ(wc.byte_len, 256u);
    EXPECT_EQ(wc.imm_data, 0xabcdu);
    EXPECT_EQ(dst2[255], static_cast<std::byte>(255));
    done = true;
  }(*p.cq_b, recv_done, dst));
  p.sched.spawn([](CompletionQueue& cq, bool& done) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(wc.opcode, Opcode::send);
    EXPECT_EQ(wc.wr_id, 1u);
    done = true;
  }(*p.cq_a, send_done));

  p.sched.run();
  EXPECT_TRUE(recv_done);
  EXPECT_TRUE(send_done);
}

TEST(SendRecv, RnrWhenNoReceivePosted) {
  Pair p;
  p.wire();
  std::vector<std::byte> src(64);
  auto& mr = p.hca_a.reg_mr(src);
  ASSERT_TRUE(
      p.qp_a->post_send({.wr_id = 9, .opcode = Opcode::send, .local = src, .lkey = mr.lkey()})
          .ok());
  bool saw = false;
  p.sched.spawn([](CompletionQueue& cq, bool& saw2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::receiver_not_ready);
    saw2 = true;
  }(*p.cq_a, saw));
  p.sched.run();
  EXPECT_TRUE(saw);
}

TEST(SendRecv, OversizedPayloadErrorsBothSides) {
  Pair p;
  p.wire();
  std::vector<std::byte> src(512), dst(64);
  auto& mr_src = p.hca_a.reg_mr(src);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  ASSERT_TRUE(p.qp_b->post_recv({.wr_id = 2, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  ASSERT_TRUE(
      p.qp_a
          ->post_send({.wr_id = 3, .opcode = Opcode::send, .local = src, .lkey = mr_src.lkey()})
          .ok());
  int errors = 0;
  p.sched.spawn([](CompletionQueue& cq, int& errors2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::local_protection_error);
    ++errors2;
  }(*p.cq_b, errors));
  p.sched.spawn([](CompletionQueue& cq, int& errors2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::remote_access_error);
    ++errors2;
  }(*p.cq_a, errors));
  p.sched.run();
  EXPECT_EQ(errors, 2);
}

TEST(SendRecv, PostSendWithBadLkeyFailsSynchronously) {
  Pair p;
  p.wire();
  std::vector<std::byte> src(64);
  EXPECT_EQ(
      p.qp_a->post_send({.wr_id = 1, .opcode = Opcode::send, .local = src, .lkey = 999}).error(),
      Errc::invalid_argument);
}

TEST(SendRecv, PostOnUnconnectedQpFails) {
  Pair p;
  auto& qp = p.hca_a.create_qp(*p.cq_a, *p.cq_a);
  std::vector<std::byte> src(16);
  auto& mr = p.hca_a.reg_mr(src);
  EXPECT_EQ(
      qp.post_send({.wr_id = 1, .opcode = Opcode::send, .local = src, .lkey = mr.lkey()}).error(),
      Errc::disconnected);
}

TEST(SendRecv, ManyMessagesArriveInOrder) {
  Pair p;
  p.wire();
  constexpr int kCount = 50;
  std::vector<std::vector<std::byte>> bufs(kCount, std::vector<std::byte>(8));
  std::vector<std::byte> src(8);
  auto& mr_src = p.hca_a.reg_mr(src);
  std::vector<MemoryRegion*> mrs;
  for (auto& b : bufs) mrs.push_back(&p.hca_b.reg_mr(b));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(p.qp_b
                    ->post_recv({.wr_id = static_cast<std::uint64_t>(i),
                                 .buffer = bufs[i],
                                 .lkey = mrs[i]->lkey()})
                    .ok());
  }
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(p.qp_a
                    ->post_send({.wr_id = 100u + i,
                                 .opcode = Opcode::send,
                                 .local = src,
                                 .lkey = mr_src.lkey(),
                                 .imm_data = static_cast<std::uint32_t>(i)})
                    .ok());
  }
  std::vector<std::uint32_t> order;
  p.sched.spawn([](CompletionQueue& cq, std::vector<std::uint32_t>& order2) -> Task<> {
    for (int i = 0; i < kCount; ++i) {
      auto wc = co_await cq.next();
      EXPECT_EQ(wc.status, WcStatus::success);
      order2.push_back(wc.imm_data);
    }
  }(*p.cq_b, order));
  p.sched.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(order[i], static_cast<std::uint32_t>(i));
}

// ------------------------------------------------------------- rdma ----

TEST(Rdma, ReadPullsRemoteBytes) {
  Pair p;
  p.wire();
  std::vector<std::byte> remote(1024);
  std::vector<std::byte> local(1024);
  for (std::size_t i = 0; i < remote.size(); ++i) remote[i] = static_cast<std::byte>(i * 3);
  auto& mr_remote = p.hca_b.reg_mr(remote);
  auto& mr_local = p.hca_a.reg_mr(local);

  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 11,
                               .opcode = Opcode::rdma_read,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = mr_remote.addr(),
                               .rkey = mr_remote.rkey()})
                  .ok());
  bool done = false;
  p.sched.spawn([](CompletionQueue& cq, bool& fin, std::vector<std::byte>& local2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(wc.opcode, Opcode::rdma_read);
    EXPECT_EQ(wc.byte_len, 1024u);
    EXPECT_EQ(local2[100], static_cast<std::byte>(300 & 0xff));
    fin = true;
  }(*p.cq_a, done, local));
  p.sched.run();
  EXPECT_TRUE(done);
}

TEST(Rdma, ReadSeesBytesAtResponseTime) {
  // RDMA reads race with remote writes: the bytes captured are whatever is
  // in memory when the responder processes the request — the hazard the
  // paper cites when rejecting client-cached addresses (§III).
  Pair p;
  p.wire();
  std::vector<std::byte> remote(16, std::byte{0});
  std::vector<std::byte> local(16);
  auto& mr_remote = p.hca_b.reg_mr(remote);
  auto& mr_local = p.hca_a.reg_mr(local);

  // Mutate remote memory before the read request can arrive (wire latency
  // is ~450ns, so t=100 beats it).
  p.sched.call_at(100, [&remote] { remote[0] = std::byte{42}; });
  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 1,
                               .opcode = Opcode::rdma_read,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = mr_remote.addr(),
                               .rkey = mr_remote.rkey()})
                  .ok());
  p.sched.spawn([](CompletionQueue& cq) -> Task<> { (void)co_await cq.next(); }(*p.cq_a));
  p.sched.run();
  EXPECT_EQ(local[0], std::byte{42});
}

TEST(Rdma, WritePushesLocalBytes) {
  Pair p;
  p.wire();
  std::vector<std::byte> local(128, std::byte{7});
  std::vector<std::byte> remote(128, std::byte{0});
  auto& mr_local = p.hca_a.reg_mr(local);
  auto& mr_remote = p.hca_b.reg_mr(remote);

  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 5,
                               .opcode = Opcode::rdma_write,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = mr_remote.addr(),
                               .rkey = mr_remote.rkey()})
                  .ok());
  bool done = false;
  p.sched.spawn([](CompletionQueue& cq, bool& fin, std::vector<std::byte>& remote2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(remote2[127], std::byte{7});
    fin = true;
  }(*p.cq_a, done, remote));
  p.sched.run();
  EXPECT_TRUE(done);
}

TEST(Rdma, BadRkeyYieldsRemoteAccessError) {
  Pair p;
  p.wire();
  std::vector<std::byte> local(64);
  auto& mr_local = p.hca_a.reg_mr(local);
  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 5,
                               .opcode = Opcode::rdma_read,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = 0xdead,
                               .rkey = 0xbeef})
                  .ok());
  bool done = false;
  p.sched.spawn([](CompletionQueue& cq, bool& fin) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::remote_access_error);
    fin = true;
  }(*p.cq_a, done));
  p.sched.run();
  EXPECT_TRUE(done);
}

TEST(Rdma, OutOfBoundsReadRejected) {
  Pair p;
  p.wire();
  std::vector<std::byte> remote(64);
  std::vector<std::byte> local(128);  // asks for more than the MR holds
  auto& mr_remote = p.hca_b.reg_mr(remote);
  auto& mr_local = p.hca_a.reg_mr(local);
  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 5,
                               .opcode = Opcode::rdma_read,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = mr_remote.addr(),
                               .rkey = mr_remote.rkey()})
                  .ok());
  bool done = false;
  p.sched.spawn([](CompletionQueue& cq, bool& fin) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::remote_access_error);
    fin = true;
  }(*p.cq_a, done));
  p.sched.run();
  EXPECT_TRUE(done);
}

TEST(Rdma, OneSidedOpsDoNotChargeRemoteHostCpu) {
  // The OS-bypass property the whole paper rests on: an RDMA read is
  // served by the remote HCA, not the remote host's cores.
  Pair p;
  p.wire();
  std::vector<std::byte> remote(4096);
  std::vector<std::byte> local(4096);
  auto& mr_remote = p.hca_b.reg_mr(remote);
  auto& mr_local = p.hca_a.reg_mr(local);
  const auto remote_cpu_before = p.host_b.cpu().busy_ns();

  ASSERT_TRUE(p.qp_a
                  ->post_send({.wr_id = 1,
                               .opcode = Opcode::rdma_read,
                               .local = local,
                               .lkey = mr_local.lkey(),
                               .remote_addr = mr_remote.addr(),
                               .rkey = mr_remote.rkey()})
                  .ok());
  p.sched.spawn([](CompletionQueue& cq) -> Task<> { (void)co_await cq.next(); }(*p.cq_a));
  p.sched.run();
  EXPECT_EQ(p.host_b.cpu().busy_ns(), remote_cpu_before);
}

// ---------------------------------------------------------------- srq ----

TEST(Srq, SharedAcrossQps) {
  Pair p;
  SharedReceiveQueue srq;
  auto cq_b2 = p.hca_b.create_cq();
  auto& qp_a1 = p.hca_a.create_qp(*p.cq_a, *p.cq_a);
  auto& qp_a2 = p.hca_a.create_qp(*p.cq_a, *p.cq_a);
  auto& qp_b1 = p.hca_b.create_qp(*p.cq_b, *p.cq_b, &srq);
  auto& qp_b2 = p.hca_b.create_qp(*cq_b2, *cq_b2, &srq);
  qp_a1.connect(p.hca_b.addr(), qp_b1.qp_num());
  qp_b1.connect(p.hca_a.addr(), qp_a1.qp_num());
  qp_a2.connect(p.hca_b.addr(), qp_b2.qp_num());
  qp_b2.connect(p.hca_a.addr(), qp_a2.qp_num());

  std::vector<std::vector<std::byte>> pool(2, std::vector<std::byte>(64));
  auto& mr0 = p.hca_b.reg_mr(pool[0]);
  auto& mr1 = p.hca_b.reg_mr(pool[1]);
  srq.post({.wr_id = 0, .buffer = pool[0], .lkey = mr0.lkey()});
  srq.post({.wr_id = 1, .buffer = pool[1], .lkey = mr1.lkey()});

  std::vector<std::byte> src(32);
  auto& mr_src = p.hca_a.reg_mr(src);
  ASSERT_TRUE(
      qp_a1.post_send({.wr_id = 1, .opcode = Opcode::send, .local = src, .lkey = mr_src.lkey()})
          .ok());
  ASSERT_TRUE(
      qp_a2.post_send({.wr_id = 2, .opcode = Opcode::send, .local = src, .lkey = mr_src.lkey()})
          .ok());

  int got = 0;
  auto drain = [](CompletionQueue& cq, int& res_out) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    ++res_out;
  };
  p.sched.spawn(drain(*p.cq_b, got));
  p.sched.spawn(drain(*cq_b2, got));
  p.sched.run();
  EXPECT_EQ(got, 2);
  EXPECT_TRUE(srq.empty());
}

TEST(Srq, QpWithSrqRejectsDirectPostRecv) {
  Pair p;
  SharedReceiveQueue srq;
  auto& qp = p.hca_b.create_qp(*p.cq_b, *p.cq_b, &srq);
  std::vector<std::byte> buf(64);
  auto& mr = p.hca_b.reg_mr(buf);
  EXPECT_EQ(qp.post_recv({.wr_id = 0, .buffer = buf, .lkey = mr.lkey()}).error(),
            Errc::invalid_argument);
}

// ----------------------------------------------------------------- cm ----

TEST(Cm, ConnectEstablishesBothSides) {
  Pair p;
  QueuePair* server_qp = nullptr;
  p.hca_b.listen(4711, {.make_qp = [&] { return &p.hca_b.create_qp(*p.cq_b, *p.cq_b); },
                        .on_established = [&](QueuePair& qp) { server_qp = &qp; }});

  QueuePair* client_qp = nullptr;
  p.sched.spawn([](Pair& pb, QueuePair*& out) -> Task<> {
    auto result = co_await pb.hca_a.connect(pb.hca_b.addr(), 4711, *pb.cq_a, *pb.cq_a);
    EXPECT_TRUE(result.ok());
    out = *result;
  }(p, client_qp));
  p.sched.run();

  ASSERT_NE(client_qp, nullptr);
  ASSERT_NE(server_qp, nullptr);
  EXPECT_EQ(client_qp->state(), QpState::ready);
  EXPECT_EQ(server_qp->state(), QpState::ready);
  EXPECT_EQ(client_qp->remote_qpn(), server_qp->qp_num());
  EXPECT_EQ(server_qp->remote_qpn(), client_qp->qp_num());
}

TEST(Cm, ConnectToClosedPortIsRefused) {
  Pair p;
  Errc err = Errc::ok;
  p.sched.spawn([](Pair& pb, Errc& ec) -> Task<> {
    auto result = co_await pb.hca_a.connect(pb.hca_b.addr(), 9999, *pb.cq_a, *pb.cq_a);
    ec = result.error();
  }(p, err));
  p.sched.run();
  EXPECT_EQ(err, Errc::refused);
}

TEST(Cm, DataFlowsAfterCmHandshake) {
  Pair p;
  std::vector<std::byte> dst(64);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  p.hca_b.listen(80, {.make_qp = [&] { return &p.hca_b.create_qp(*p.cq_b, *p.cq_b); },
                      .on_established = [&](QueuePair& qp) {
                        EXPECT_TRUE(
                            qp.post_recv({.wr_id = 1, .buffer = dst, .lkey = mr_dst.lkey()})
                                .ok());
                      }});

  std::vector<std::byte> src(32, std::byte{9});
  auto& mr_src = p.hca_a.reg_mr(src);
  bool done = false;
  p.sched.spawn([](Pair& pb, std::vector<std::byte>& src2, MemoryRegion& mr, bool& fin) -> Task<> {
    auto result = co_await pb.hca_a.connect(pb.hca_b.addr(), 80, *pb.cq_a, *pb.cq_a);
    EXPECT_TRUE(result.ok());
    QueuePair* qp = *result;
    EXPECT_TRUE(
        qp->post_send({.wr_id = 2, .opcode = Opcode::send, .local = src2, .lkey = mr.lkey()})
            .ok());
    auto wc = co_await pb.cq_a->next();
    EXPECT_EQ(wc.status, WcStatus::success);
    fin = true;
  }(p, src, mr_src, done));

  bool got = false;
  p.sched.spawn([](CompletionQueue& cq, std::vector<std::byte>& dst2, bool& res_out) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(dst2[0], std::byte{9});
    res_out = true;
  }(*p.cq_b, dst, got));

  p.sched.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(got);
}

TEST(Cm, DisconnectFlushesPeer) {
  Pair p;
  p.wire();
  // Peer b posts a recv that will never be matched; disconnect flushes it.
  std::vector<std::byte> dst(64);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  ASSERT_TRUE(p.qp_b->post_recv({.wr_id = 77, .buffer = dst, .lkey = mr_dst.lkey()}).ok());

  p.hca_a.disconnect(*p.qp_a);
  bool flushed = false;
  p.sched.spawn([](CompletionQueue& cq, bool& flushed2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::flushed);
    EXPECT_EQ(wc.wr_id, 77u);
    flushed2 = true;
  }(*p.cq_b, flushed));
  p.sched.run();
  EXPECT_TRUE(flushed);
  EXPECT_EQ(p.qp_a->state(), QpState::error);
  EXPECT_EQ(p.qp_b->state(), QpState::error);
}

TEST(Cm, PostAfterDisconnectFails) {
  Pair p;
  p.wire();
  p.hca_a.disconnect(*p.qp_a);
  std::vector<std::byte> src(16);
  auto& mr = p.hca_a.reg_mr(src);
  EXPECT_EQ(p.qp_a->post_send({.wr_id = 1, .opcode = Opcode::send, .local = src,
                               .lkey = mr.lkey()})
                .error(),
            Errc::disconnected);
  p.sched.run();
}

// ---------------------------------------------------------------- ud ----

TEST(Ud, DatagramDeliveredWithSourceAddressing) {
  Pair p;
  auto& qa = p.hca_a.create_ud_qp(*p.cq_a, *p.cq_a);
  auto& qb = p.hca_b.create_ud_qp(*p.cq_b, *p.cq_b);
  EXPECT_EQ(qa.type(), QpType::ud);
  EXPECT_EQ(qa.state(), QpState::ready);  // connectionless: born ready

  std::vector<std::byte> src(128, std::byte{3}), dst(256);
  auto& mr_src = p.hca_a.reg_mr(src);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  ASSERT_TRUE(qb.post_recv({.wr_id = 5, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  ASSERT_TRUE(qa.post_send({.wr_id = 6,
                            .opcode = Opcode::send,
                            .local = src,
                            .lkey = mr_src.lkey(),
                            .ud_remote_nic = p.hca_b.addr(),
                            .ud_remote_qpn = qb.qp_num()})
                  .ok());
  bool got = false;
  p.sched.spawn([](Pair& pb, QueuePair& qa2, bool& res_out, std::vector<std::byte>& dst2) -> Task<> {
    auto wc = co_await pb.cq_b->next();
    EXPECT_EQ(wc.status, WcStatus::success);
    EXPECT_EQ(wc.byte_len, 128u);
    EXPECT_EQ(wc.src_qp, qa2.qp_num());
    EXPECT_EQ(wc.src_nic, pb.hca_a.addr());
    EXPECT_EQ(dst2[0], std::byte{3});
    res_out = true;
  }(p, qa, got, dst));
  p.sched.run();
  EXPECT_TRUE(got);
}

TEST(Ud, SendCompletesLocallyWithoutAck) {
  Pair p;
  auto& qa = p.hca_a.create_ud_qp(*p.cq_a, *p.cq_a);
  auto& qb = p.hca_b.create_ud_qp(*p.cq_b, *p.cq_b);
  std::vector<std::byte> src(32);
  auto& mr = p.hca_a.reg_mr(src);
  // No recv posted at b: the datagram will be dropped — but the sender
  // still gets a success completion, immediately (local semantics).
  ASSERT_TRUE(qa.post_send({.wr_id = 1,
                            .opcode = Opcode::send,
                            .local = src,
                            .lkey = mr.lkey(),
                            .ud_remote_nic = p.hca_b.addr(),
                            .ud_remote_qpn = qb.qp_num()})
                  .ok());
  auto wc = p.cq_a->poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->status, WcStatus::success);
  p.sched.run();  // the drop at b generates nothing at all
  EXPECT_FALSE(p.cq_b->poll().has_value());
}

TEST(Ud, OversizedDatagramRejectedAtPost) {
  Pair p;
  auto& qa = p.hca_a.create_ud_qp(*p.cq_a, *p.cq_a);
  std::vector<std::byte> src(VerbsCosts{}.ud_mtu + 1);
  auto& mr = p.hca_a.reg_mr(src);
  EXPECT_EQ(qa.post_send({.wr_id = 1,
                          .opcode = Opcode::send,
                          .local = src,
                          .lkey = mr.lkey(),
                          .ud_remote_nic = p.hca_b.addr(),
                          .ud_remote_qpn = 1})
                .error(),
            Errc::invalid_argument);
}

TEST(Ud, RdmaOpsRejectedOnUdQp) {
  Pair p;
  auto& qa = p.hca_a.create_ud_qp(*p.cq_a, *p.cq_a);
  std::vector<std::byte> buf(64);
  auto& mr = p.hca_a.reg_mr(buf);
  EXPECT_EQ(qa.post_send({.wr_id = 1,
                          .opcode = Opcode::rdma_read,
                          .local = buf,
                          .lkey = mr.lkey(),
                          .remote_addr = 0x1000,
                          .rkey = 7})
                .error(),
            Errc::invalid_argument);
}

TEST(Ud, TruncatingDatagramBurnsReceive) {
  Pair p;
  auto& qa = p.hca_a.create_ud_qp(*p.cq_a, *p.cq_a);
  auto& qb = p.hca_b.create_ud_qp(*p.cq_b, *p.cq_b);
  std::vector<std::byte> src(512), dst(64);
  auto& mr_src = p.hca_a.reg_mr(src);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  ASSERT_TRUE(qb.post_recv({.wr_id = 9, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  ASSERT_TRUE(qa.post_send({.wr_id = 1,
                            .opcode = Opcode::send,
                            .local = src,
                            .lkey = mr_src.lkey(),
                            .ud_remote_nic = p.hca_b.addr(),
                            .ud_remote_qpn = qb.qp_num()})
                  .ok());
  bool saw = false;
  p.sched.spawn([](CompletionQueue& cq, bool& saw2) -> Task<> {
    auto wc = co_await cq.next();
    EXPECT_EQ(wc.status, WcStatus::local_protection_error);
    EXPECT_EQ(wc.wr_id, 9u);
    saw2 = true;
  }(*p.cq_b, saw));
  p.sched.run();
  EXPECT_TRUE(saw);
}

TEST(Ud, FabricDropLosesDatagramSilently) {
  Scheduler sched;
  auto link = sim::ib_qdr_link();
  link.drop_per_million = 1000000;  // drop everything
  sim::Fabric fabric{sched, link};
  sim::Host ha{sched, 0, "a", 8}, hb{sched, 1, "b", 8};
  Hca hca_a{sched, fabric, ha}, hca_b{sched, fabric, hb};
  auto cq_a = hca_a.create_cq();
  auto cq_b = hca_b.create_cq();
  auto& qa = hca_a.create_ud_qp(*cq_a, *cq_a);
  auto& qb = hca_b.create_ud_qp(*cq_b, *cq_b);
  std::vector<std::byte> src(16), dst(64);
  auto& mr_src = hca_a.reg_mr(src);
  auto& mr_dst = hca_b.reg_mr(dst);
  ASSERT_TRUE(qb.post_recv({.wr_id = 1, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  ASSERT_TRUE(qa.post_send({.wr_id = 2,
                            .opcode = Opcode::send,
                            .local = src,
                            .lkey = mr_src.lkey(),
                            .ud_remote_nic = hca_b.addr(),
                            .ud_remote_qpn = qb.qp_num()})
                  .ok());
  sched.run();
  EXPECT_FALSE(cq_b->poll().has_value());           // never arrived
  EXPECT_GT(fabric.nic(1).dropped_messages(), 0u);  // and the fabric knows
}

// ------------------------------------------------------------ timing ----

TEST(Timing, SmallSendLatencyIsAFewMicroseconds) {
  // §I: verbs-level one-way latency on IB is 1-2 us. Measure send-post to
  // recv-completion for 8 bytes on the QDR fabric.
  Pair p;
  p.wire();
  std::vector<std::byte> src(8), dst(8);
  auto& mr_src = p.hca_a.reg_mr(src);
  auto& mr_dst = p.hca_b.reg_mr(dst);
  ASSERT_TRUE(p.qp_b->post_recv({.wr_id = 1, .buffer = dst, .lkey = mr_dst.lkey()}).ok());
  sim::Time done_at = 0;
  p.sched.spawn([](Pair& pb, std::vector<std::byte>& src2, MemoryRegion& mr,
                   sim::Time& done_at2) -> Task<> {
    EXPECT_TRUE(pb.qp_a
                    ->post_send(
                        {.wr_id = 2, .opcode = Opcode::send, .local = src2, .lkey = mr.lkey()})
                    .ok());
    auto wc = co_await pb.cq_b->next();
    EXPECT_EQ(wc.status, WcStatus::success);
    done_at2 = pb.sched.now();
  }(p, src, mr_src, done_at));
  p.sched.run();
  EXPECT_GT(done_at, 500u);     // can't beat the wire
  EXPECT_LT(done_at, 3000u);    // must stay in the verbs ballpark (< 3 us)
}

TEST(Timing, EventDrivenCqAddsInterruptCost) {
  Pair p;
  auto cq_poll = p.hca_b.create_cq(CqMode::polling);
  auto cq_event = p.hca_b.create_cq(CqMode::event_driven);

  sim::Time poll_at = 0, event_at = 0;
  p.sched.spawn([](CompletionQueue& cq, sim::Time& at, Scheduler& s) -> Task<> {
    (void)co_await cq.next();
    at = s.now();
  }(*cq_poll, poll_at, p.sched));
  p.sched.spawn([](CompletionQueue& cq, sim::Time& at, Scheduler& s) -> Task<> {
    (void)co_await cq.next();
    at = s.now();
  }(*cq_event, event_at, p.sched));

  p.sched.call_at(1000, [&] {
    cq_poll->push({});
    cq_event->push({});
  });
  p.sched.run();
  EXPECT_EQ(poll_at, 1000u);
  EXPECT_EQ(event_at, 1000u + VerbsCosts{}.interrupt_ns);
}

}  // namespace
}  // namespace rmc::verbs
